//! Property tests on the core data structures and invariants:
//! the write-set RAW rules of §4.1, the comparison algebra, orec word
//! encoding, and linearizability of pure-increment traffic.
//!
//! Two tiers share the same properties:
//!
//! * an always-on deterministic tier driven by [`SplitMix64`] (no
//!   registry dependencies, runs offline in tier-1);
//! * the original proptest suite, gated behind the off-by-default
//!   `registry-deps` feature (see Cargo.toml for how to enable it).

use semtm_core::sets::{WriteKind, WriteSet};
use semtm_core::util::SplitMix64;
use semtm_core::{Addr, Algorithm, CmpOp, Stm, StmConfig};

#[derive(Clone, Copy, Debug)]
enum WsOp {
    Write(u8, i64),
    Inc(u8, i64),
}

fn random_wsop(rng: &mut SplitMix64) -> WsOp {
    let addr = rng.below(4) as u8;
    let val = rng.below(80) as i64 - 40;
    if rng.chance(50) {
        WsOp::Write(addr, val)
    } else {
        WsOp::Inc(addr, val)
    }
}

/// §4.1 write-set rules against a direct model: applying the write-set
/// to any initial memory must equal applying the raw operations
/// sequentially. (Port of the proptest case, 300 deterministic runs.)
#[test]
fn write_set_equals_sequential_model_deterministic() {
    let mut rng = SplitMix64::new(0xC0FE);
    for _ in 0..300 {
        let init: [i64; 4] = std::array::from_fn(|_| rng.below(200) as i64 - 100);
        let n_ops = rng.index(24);
        let mut ws = WriteSet::default();
        let mut model = init;
        for _ in 0..n_ops {
            match random_wsop(&mut rng) {
                WsOp::Write(a, v) => {
                    ws.write(Addr::from_index(a as usize), v);
                    model[a as usize] = v;
                }
                WsOp::Inc(a, d) => {
                    ws.inc(Addr::from_index(a as usize), d);
                    model[a as usize] = model[a as usize].wrapping_add(d);
                }
            }
        }
        let mut mem = init;
        for (addr, e) in ws.iter() {
            let i = addr.index();
            mem[i] = match e.kind {
                WriteKind::Store => e.value,
                WriteKind::Increment => mem[i].wrapping_add(e.value),
            };
        }
        assert_eq!(mem, model);
    }
}

/// Promotion pins exactly the value the live memory had: promote then
/// commit equals inc then commit when memory is unchanged.
#[test]
fn promotion_is_transparent_when_memory_unchanged_deterministic() {
    let mut rng = SplitMix64::new(0xBEEF);
    for _ in 0..300 {
        let init = rng.below(200) as i64 - 100;
        let n = 1 + rng.index(5);
        let deltas: Vec<i64> = (0..n).map(|_| rng.below(40) as i64 - 20).collect();
        let a = Addr::from_index(0);
        let mut plain = WriteSet::default();
        let mut promoted = WriteSet::default();
        for &d in &deltas {
            plain.inc(a, d);
            promoted.inc(a, d);
        }
        let total: i64 = deltas.iter().sum();
        let promoted_value = promoted.promote(a, init);
        assert_eq!(promoted_value, init.wrapping_add(total));
        let commit = |ws: &WriteSet| {
            let mut mem = init;
            for (_, e) in ws.iter() {
                mem = match e.kind {
                    WriteKind::Store => e.value,
                    WriteKind::Increment => mem.wrapping_add(e.value),
                };
            }
            mem
        };
        assert_eq!(commit(&plain), commit(&promoted));
    }
}

/// cmp algebra: for every operator and operands, exactly one of
/// (op, inverse) holds, and swap mirrors operands. Samples random pairs
/// plus the boundary values where comparison bugs live.
#[test]
fn cmp_algebra_deterministic() {
    let mut rng = SplitMix64::new(7);
    let mut pairs: Vec<(i64, i64)> = Vec::new();
    let edges = [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX];
    for &a in &edges {
        for &b in &edges {
            pairs.push((a, b));
        }
    }
    for _ in 0..500 {
        pairs.push((rng.next_u64() as i64, rng.next_u64() as i64));
    }
    for (a, b) in pairs {
        for op in CmpOp::ALL {
            assert_ne!(op.eval(a, b), op.inverse().eval(a, b), "{op:?} {a} {b}");
            assert_eq!(op.eval(a, b), op.swap().eval(b, a), "{op:?} {a} {b}");
            assert_eq!(op.inverse().inverse(), op);
        }
    }
}

/// Fx32 increments commute and associate exactly (word addition), the
/// property Kmeans relies on.
#[test]
fn fx32_increments_commute_deterministic() {
    use semtm_core::Fx32;
    let mut rng = SplitMix64::new(31);
    for _ in 0..200 {
        let n = 2 + rng.index(6);
        let values: Vec<i64> = (0..n)
            .map(|_| rng.below(2_000_000) as i64 - 1_000_000)
            .collect();
        let forward = values.iter().fold(Fx32(0), |acc, &v| acc + Fx32(v));
        let mut rev = values.clone();
        rev.reverse();
        let backward = rev.iter().fold(Fx32(0), |acc, &v| acc + Fx32(v));
        assert_eq!(forward, backward);
    }
}

/// Single-threaded transactions of guarded increments behave like the
/// direct computation, for every algorithm (a cheap whole-stack property
/// on top of the unit suites).
#[test]
fn guarded_increment_matches_model_deterministic() {
    let mut rng = SplitMix64::new(99);
    for round in 0..40 {
        let init = rng.below(100) as i64 - 50;
        let n = 1 + rng.index(11);
        let steps: Vec<(i64, i64)> = (0..n)
            .map(|_| (rng.below(40) as i64 - 20, rng.below(40) as i64 - 20))
            .collect();
        for alg in Algorithm::ALL {
            let stm = Stm::new(StmConfig::new(alg).heap_words(64).orec_count(16));
            let x = stm.alloc_cell(init);
            let mut model = init;
            for &(threshold, delta) in &steps {
                stm.atomic(|tx| {
                    if tx.cmp(x, CmpOp::Gte, threshold)? {
                        tx.inc(x, delta)?;
                    }
                    Ok(())
                });
                if model >= threshold {
                    model += delta;
                }
            }
            assert_eq!(stm.read_now(x), model, "{alg} round {round}");
        }
    }
}

/// The original proptest tier. Enable with the (off-by-default)
/// `registry-deps` feature after uncommenting the proptest
/// dev-dependency in Cargo.toml.
#[cfg(feature = "registry-deps")]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn wsop() -> impl Strategy<Value = WsOp> {
        prop_oneof![
            (0u8..4, -40i64..40).prop_map(|(a, v)| WsOp::Write(a, v)),
            (0u8..4, -40i64..40).prop_map(|(a, v)| WsOp::Inc(a, v)),
        ]
    }

    proptest! {
        #[test]
        fn write_set_equals_sequential_model(
            init in prop::array::uniform4(-100i64..100),
            ops in prop::collection::vec(wsop(), 0..24),
        ) {
            let mut ws = WriteSet::default();
            let mut model = init;
            for op in &ops {
                match *op {
                    WsOp::Write(a, v) => {
                        ws.write(Addr::from_index(a as usize), v);
                        model[a as usize] = v;
                    }
                    WsOp::Inc(a, d) => {
                        ws.inc(Addr::from_index(a as usize), d);
                        model[a as usize] = model[a as usize].wrapping_add(d);
                    }
                }
            }
            let mut mem = init;
            for (addr, e) in ws.iter() {
                let i = addr.index();
                mem[i] = match e.kind {
                    WriteKind::Store => e.value,
                    WriteKind::Increment => mem[i].wrapping_add(e.value),
                };
            }
            prop_assert_eq!(mem, model);
        }

        #[test]
        fn cmp_algebra(a in any::<i64>(), b in any::<i64>()) {
            for op in CmpOp::ALL {
                prop_assert_ne!(op.eval(a, b), op.inverse().eval(a, b));
                prop_assert_eq!(op.eval(a, b), op.swap().eval(b, a));
                prop_assert_eq!(op.inverse().inverse(), op);
            }
        }

        #[test]
        fn guarded_increment_matches_model(
            init in -50i64..50,
            steps in prop::collection::vec((-20i64..20, -20i64..20), 1..12),
        ) {
            for alg in Algorithm::ALL {
                let stm = Stm::new(StmConfig::new(alg).heap_words(64).orec_count(16));
                let x = stm.alloc_cell(init);
                let mut model = init;
                for &(threshold, delta) in &steps {
                    stm.atomic(|tx| {
                        if tx.cmp(x, CmpOp::Gte, threshold)? {
                            tx.inc(x, delta)?;
                        }
                        Ok(())
                    });
                    if model >= threshold {
                        model += delta;
                    }
                }
                prop_assert_eq!(stm.read_now(x), model, "{}", alg);
            }
        }
    }
}
