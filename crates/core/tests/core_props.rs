//! Property tests on the core data structures and invariants:
//! the write-set RAW rules of §4.1, the comparison algebra, orec word
//! encoding, and linearizability of pure-increment traffic.

use proptest::prelude::*;
use semtm_core::sets::{WriteKind, WriteSet};
use semtm_core::{Addr, Algorithm, CmpOp, Stm, StmConfig};

#[derive(Clone, Copy, Debug)]
enum WsOp {
    Write(u8, i64),
    Inc(u8, i64),
}

fn wsop() -> impl Strategy<Value = WsOp> {
    prop_oneof![
        (0u8..4, -40i64..40).prop_map(|(a, v)| WsOp::Write(a, v)),
        (0u8..4, -40i64..40).prop_map(|(a, v)| WsOp::Inc(a, v)),
    ]
}

proptest! {
    /// §4.1 write-set rules against a direct model: applying the
    /// write-set to any initial memory must equal applying the raw
    /// operations sequentially.
    #[test]
    fn write_set_equals_sequential_model(
        init in prop::array::uniform4(-100i64..100),
        ops in prop::collection::vec(wsop(), 0..24),
    ) {
        let mut ws = WriteSet::default();
        let mut model = init;
        for op in &ops {
            match *op {
                WsOp::Write(a, v) => {
                    ws.write(Addr::from_index(a as usize), v);
                    model[a as usize] = v;
                }
                WsOp::Inc(a, d) => {
                    ws.inc(Addr::from_index(a as usize), d);
                    model[a as usize] = model[a as usize].wrapping_add(d);
                }
            }
        }
        // "Commit": apply buffered entries over the initial memory.
        let mut mem = init;
        for (addr, e) in ws.iter() {
            let i = addr.index();
            mem[i] = match e.kind {
                WriteKind::Store => e.value,
                WriteKind::Increment => mem[i].wrapping_add(e.value),
            };
        }
        prop_assert_eq!(mem, model);
    }

    /// Promotion pins exactly the value the live memory had: promote
    /// then commit equals inc then commit when memory is unchanged.
    #[test]
    fn promotion_is_transparent_when_memory_unchanged(
        init in -100i64..100,
        deltas in prop::collection::vec(-20i64..20, 1..6),
    ) {
        let a = Addr::from_index(0);
        let mut plain = WriteSet::default();
        let mut promoted = WriteSet::default();
        for &d in &deltas {
            plain.inc(a, d);
            promoted.inc(a, d);
        }
        // The algorithms promote with the value read from live memory,
        // which is still `init` here; the promoted entry must pin
        // `init + total`.
        let total: i64 = deltas.iter().sum();
        let promoted_value = promoted.promote(a, init);
        prop_assert_eq!(promoted_value, init.wrapping_add(total));
        // Apply both against memory `init`.
        let commit = |ws: &WriteSet| {
            let mut mem = init;
            for (_, e) in ws.iter() {
                mem = match e.kind {
                    WriteKind::Store => e.value,
                    WriteKind::Increment => mem.wrapping_add(e.value),
                };
            }
            mem
        };
        prop_assert_eq!(commit(&plain), commit(&promoted));
    }

    /// cmp algebra: for every operator and operands, exactly one of
    /// (op, inverse) holds, and swap mirrors operands.
    #[test]
    fn cmp_algebra(a in any::<i64>(), b in any::<i64>()) {
        for op in CmpOp::ALL {
            prop_assert_ne!(op.eval(a, b), op.inverse().eval(a, b));
            prop_assert_eq!(op.eval(a, b), op.swap().eval(b, a));
            prop_assert_eq!(op.inverse().inverse(), op);
        }
    }

    /// Fx32 increments commute and associate exactly (word addition),
    /// the property Kmeans relies on.
    #[test]
    fn fx32_increments_commute(values in prop::collection::vec(-1_000_000i64..1_000_000, 2..8)) {
        use semtm_core::Fx32;
        let forward = values.iter().fold(Fx32(0), |acc, &v| acc + Fx32(v));
        let mut rev = values.clone();
        rev.reverse();
        let backward = rev.iter().fold(Fx32(0), |acc, &v| acc + Fx32(v));
        prop_assert_eq!(forward, backward);
    }

    /// Single-threaded transactions of guarded increments behave like
    /// the direct computation, for every algorithm (a cheap whole-stack
    /// property on top of the unit suites).
    #[test]
    fn guarded_increment_matches_model(
        init in -50i64..50,
        steps in prop::collection::vec((-20i64..20, -20i64..20), 1..12),
    ) {
        for alg in Algorithm::ALL {
            let stm = Stm::new(StmConfig::new(alg).heap_words(64).orec_count(16));
            let x = stm.alloc_cell(init);
            let mut model = init;
            for &(threshold, delta) in &steps {
                stm.atomic(|tx| {
                    if tx.cmp(x, CmpOp::Gte, threshold)? {
                        tx.inc(x, delta)?;
                    }
                    Ok(())
                });
                if model >= threshold {
                    model += delta;
                }
            }
            prop_assert_eq!(stm.read_now(x), model, "{}", alg);
        }
    }
}
