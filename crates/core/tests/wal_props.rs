//! Property tests for the WAL record codec and recovery, following the
//! repo's deterministic SplitMix64 loop convention (no proptest): a
//! fixed seed drives many random cases, every case prints enough to
//! reproduce on failure.

use semtm_core::util::SplitMix64;
use semtm_core::wal::{encode_record, read_records, replay, StopReason};
use semtm_core::{Addr, Heap};

const HEAP_WORDS: usize = 1 << 10;

/// A random stream of records over a small heap, plus its encoding.
fn random_log(rng: &mut SplitMix64, max_records: usize) -> (Vec<Vec<(u32, i64)>>, Vec<u8>) {
    let n = rng.index(max_records + 1);
    let mut originals = Vec::with_capacity(n);
    let mut bytes = Vec::new();
    for seq in 1..=n as u64 {
        let count = rng.index(17);
        let writes: Vec<(u32, i64)> = (0..count)
            .map(|_| (rng.index(HEAP_WORDS) as u32, rng.next_u64() as i64))
            .collect();
        let addrs: Vec<(Addr, i64)> = writes
            .iter()
            .map(|&(a, v)| (Addr::from_index(a as usize), v))
            .collect();
        encode_record(&mut bytes, seq, &addrs);
        originals.push(writes);
    }
    (originals, bytes)
}

#[test]
fn roundtrip_random_record_streams() {
    let mut rng = SplitMix64::new(0xD00D_F00D);
    for case in 0..200 {
        let (originals, bytes) = random_log(&mut rng, 24);
        let (records, consumed, stop) = read_records(&bytes);
        assert_eq!(stop, StopReason::CleanEnd, "case {case}");
        assert_eq!(consumed, bytes.len(), "case {case}");
        assert_eq!(records.len(), originals.len(), "case {case}");
        for (i, (rec, orig)) in records.iter().zip(&originals).enumerate() {
            assert_eq!(rec.seq, (i + 1) as u64, "case {case} record {i}");
            assert_eq!(&rec.writes, orig, "case {case} record {i}");
        }
    }
}

#[test]
fn replay_twice_yields_identical_heap() {
    let mut rng = SplitMix64::new(0xABAD_1DEA);
    for case in 0..100 {
        let (_, bytes) = random_log(&mut rng, 24);
        let heap = Heap::new(HEAP_WORDS);
        let r1 = replay(&bytes, &heap);
        let snap1: Vec<i64> = (0..HEAP_WORDS)
            .map(|i| heap.load(Addr::from_index(i)))
            .collect();
        let r2 = replay(&bytes, &heap);
        let snap2: Vec<i64> = (0..HEAP_WORDS)
            .map(|i| heap.load(Addr::from_index(i)))
            .collect();
        assert_eq!(r1.records, r2.records, "case {case}");
        assert_eq!(r1.last_seq, r2.last_seq, "case {case}");
        assert_eq!(snap1, snap2, "case {case}: replay must be idempotent");
        // And replaying into a second fresh heap matches too.
        let heap2 = Heap::new(HEAP_WORDS);
        replay(&bytes, &heap2);
        let snap3: Vec<i64> = (0..HEAP_WORDS)
            .map(|i| heap2.load(Addr::from_index(i)))
            .collect();
        assert_eq!(snap1, snap3, "case {case}: replay must be deterministic");
    }
}

#[test]
fn truncation_at_every_offset_recovers_a_prefix() {
    let mut rng = SplitMix64::new(0x7EA5_0FF5);
    let (originals, bytes) = random_log(&mut rng, 8);
    assert!(!bytes.is_empty());
    for cut in 0..=bytes.len() {
        let (records, consumed, stop) = read_records(&bytes[..cut]);
        assert!(consumed <= cut, "cut {cut}");
        assert!(
            stop.is_tail() || stop == StopReason::BadCrc,
            "cut {cut}: truncation may tear or corrupt the tail record, \
             never anything stronger ({stop:?})"
        );
        assert!(records.len() <= originals.len(), "cut {cut}");
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.writes, originals[i], "cut {cut} record {i}");
        }
        if cut == bytes.len() {
            assert_eq!(stop, StopReason::CleanEnd);
            assert_eq!(records.len(), originals.len());
        }
    }
}

#[test]
fn random_truncation_fuzz() {
    let mut rng = SplitMix64::new(0x5EED_CAFE);
    for case in 0..300 {
        let (originals, bytes) = random_log(&mut rng, 16);
        if bytes.is_empty() {
            continue;
        }
        let cut = rng.index(bytes.len());
        let (records, _, _) = read_records(&bytes[..cut]);
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.writes, originals[i], "case {case} cut {cut} record {i}");
        }
    }
}

#[test]
fn byte_flip_fuzz_stops_at_last_valid_record() {
    let mut rng = SplitMix64::new(0xF1B0_0B1E);
    for case in 0..300 {
        let (originals, mut bytes) = random_log(&mut rng, 12);
        if bytes.is_empty() {
            continue;
        }
        let pos = rng.index(bytes.len());
        let bit = 1u8 << rng.index(8);
        bytes[pos] ^= bit;
        // Must not panic, and every record it does return must match an
        // original prefix exactly (a flipped byte can only truncate the
        // recovery, never fabricate or alter a record — CRC + contiguous
        // seqs guarantee it with overwhelming probability).
        let (records, consumed, _stop) = read_records(&bytes);
        assert!(consumed <= bytes.len(), "case {case} pos {pos}");
        assert!(records.len() <= originals.len(), "case {case} pos {pos}");
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(
                rec.writes, originals[i],
                "case {case} pos {pos}: corrupted log replayed garbage"
            );
        }
        // Replaying the corrupted log into a heap must also be safe.
        let heap = Heap::new(HEAP_WORDS);
        let report = replay(&bytes, &heap);
        assert_eq!(report.records as usize, records.len(), "case {case}");
    }
}

#[test]
fn garbage_input_never_panics() {
    let mut rng = SplitMix64::new(0x6A5B_A6E5);
    for _ in 0..500 {
        let len = rng.index(200);
        let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let (records, consumed, _stop) = read_records(&garbage);
        assert!(consumed <= garbage.len());
        // Random bytes essentially never form a CRC-valid seq-1 record.
        assert!(records.len() <= 1);
    }
}
