//! Integration tests for the telemetry subsystem: level gating, shard
//! merging under real threads, histogram/trace invariants against the
//! runtime's own accounting, and sampler deltas.

use semtm_core::util::SplitMix64;
use semtm_core::{Abort, Algorithm, Sampler, Stm, StmConfig, TelemetryLevel};

fn stm(alg: Algorithm, level: TelemetryLevel) -> Stm {
    Stm::new(
        StmConfig::new(alg)
            .heap_words(1 << 10)
            .orec_count(1 << 8)
            .telemetry(level)
            .trace_capacity(8),
    )
}

#[test]
fn counters_level_keeps_histograms_and_trace_empty() {
    let s = stm(Algorithm::SNOrec, TelemetryLevel::Counters);
    let a = s.alloc_cell(0i64);
    for _ in 0..20 {
        s.atomic(|tx| tx.inc(a, 1));
    }
    assert_eq!(s.stats().commits, 20);
    let t = s.telemetry();
    assert_eq!(
        t.commit_latency_ns().count(),
        0,
        "no histograms at Counters"
    );
    assert_eq!(t.attempts_per_commit().count(), 0);
    assert!(t.trace_events().is_empty(), "no trace at Counters");
}

#[test]
fn histograms_level_profiles_commits_but_no_trace() {
    let s = stm(Algorithm::Tl2, TelemetryLevel::Histograms);
    let a = s.alloc_cell(0i64);
    for _ in 0..25 {
        s.atomic(|tx| tx.inc(a, 1));
    }
    let t = s.telemetry();
    assert_eq!(t.commit_latency_ns().count(), 25);
    assert_eq!(t.attempts_per_commit().count(), 25);
    assert!(t.commit_latency_ns().sum() > 0, "latencies are non-zero");
    assert!(t.trace_events().is_empty(), "trace requires Trace level");
}

#[test]
fn explicit_aborts_are_traced_with_reason_and_attempt() {
    let s = stm(Algorithm::SNOrec, TelemetryLevel::Trace);
    let a = s.alloc_cell(0i64);
    // Retry twice (explicit), then commit on the third attempt.
    let mut tries = 0;
    let v = s.atomic(|tx| {
        tries += 1;
        if tries < 3 {
            return Err(Abort::explicit());
        }
        tx.inc(a, 1)?;
        tx.read(a)
    });
    assert_eq!(v, 1);
    let st = s.stats();
    assert_eq!(st.commits, 1);
    assert_eq!(st.aborts_explicit, 2);
    assert_eq!(st.attempts(), 3);
    let t = s.telemetry();
    let events = t.trace_events();
    assert_eq!(events.len(), 2);
    assert!(events.iter().all(|e| e.reason.name() == "explicit"));
    assert_eq!(events[0].attempt, 1, "first abort happens on attempt 1");
    assert_eq!(events[1].attempt, 2);
    assert!(events[0].timestamp_ns <= events[1].timestamp_ns);
    // Attempts histogram: one commit that needed 3 attempts.
    assert_eq!(t.attempts_per_commit().count(), 1);
    assert_eq!(t.attempts_per_commit().sum(), 3);
    assert_eq!(t.attempts_per_commit().max(), 3);
}

#[test]
fn trace_ring_keeps_newest_events_under_overflow() {
    let s = stm(Algorithm::SNOrec, TelemetryLevel::Trace); // capacity 8
    let a = s.alloc_cell(0i64);
    for round in 0..20 {
        let mut first = true;
        s.atomic(|tx| {
            if first {
                first = false;
                return Err(Abort::explicit());
            }
            tx.inc(a, 1)?;
            Ok(round)
        });
    }
    let t = s.telemetry();
    let events = t.trace_events();
    assert_eq!(events.len(), 8, "ring holds only its capacity");
    assert_eq!(t.trace_evicted(), 12, "older events are counted as evicted");
    assert_eq!(
        events.len() as u64 + t.trace_evicted(),
        s.stats().total_aborts()
    );
    for w in events.windows(2) {
        assert!(w[0].timestamp_ns <= w[1].timestamp_ns, "sorted by time");
    }
}

#[test]
fn shards_merge_exactly_under_concurrent_threads() {
    for alg in Algorithm::ALL {
        let s = stm(alg, TelemetryLevel::Trace);
        let a = s.alloc_cell(0i64);
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 500;
        std::thread::scope(|scope| {
            for tid in 0..THREADS {
                let s = &s;
                scope.spawn(move || {
                    let mut rng = SplitMix64::new(tid as u64 + 1);
                    for _ in 0..PER_THREAD {
                        // A little jitter so threads interleave differently.
                        if rng.chance(10) {
                            std::hint::spin_loop();
                        }
                        s.atomic(|tx| tx.inc(a, 1));
                    }
                });
            }
        });
        let st = s.stats();
        let expected = THREADS as u64 * PER_THREAD;
        assert_eq!(st.commits, expected, "{alg}: every commit counted once");
        assert_eq!(s.read_now(a), expected as i64, "{alg}");
        assert_eq!(
            st.attempts(),
            st.commits + st.total_aborts(),
            "{alg}: attempts identity"
        );
        let t = s.telemetry();
        // Histogram invariants against the merged shard counters.
        assert_eq!(t.commit_latency_ns().count(), st.commits, "{alg}");
        assert_eq!(t.attempts_per_commit().count(), st.commits, "{alg}");
        assert_eq!(t.attempts_per_commit().sum(), st.attempts(), "{alg}");
        assert_eq!(
            t.trace_events().len() as u64 + t.trace_evicted(),
            st.total_aborts(),
            "{alg}: every abort traced or evicted"
        );
    }
}

#[test]
fn sampler_deltas_partition_the_run() {
    let s = stm(Algorithm::STl2, TelemetryLevel::Counters);
    let a = s.alloc_cell(0i64);
    let mut sampler = Sampler::new(s.stats());
    let mut sampled = 0u64;
    for chunk in [5u64, 12, 7] {
        for _ in 0..chunk {
            s.atomic(|tx| tx.inc(a, 1));
        }
        let p = sampler.sample(s.stats());
        assert_eq!(p.commits, chunk, "each sample sees only its interval");
        sampled += p.commits;
    }
    assert_eq!(sampled, s.stats().commits);
    // An idle interval yields a zero sample, not a negative one.
    let idle = sampler.sample(s.stats());
    assert_eq!(idle.commits, 0);
    assert_eq!(idle.conflict_aborts, 0);
}

#[test]
fn wasted_work_counts_only_aborted_attempts() {
    let s = stm(Algorithm::SNOrec, TelemetryLevel::Counters);
    let a = s.alloc_cell(0i64);
    // Two committed incs; one attempt aborted after two incs.
    let mut first = true;
    s.atomic(|tx| {
        tx.inc(a, 1)?;
        tx.inc(a, 1)?;
        if first {
            first = false;
            return Err(Abort::explicit());
        }
        Ok(())
    });
    let st = s.stats();
    assert_eq!(st.commits, 1);
    assert_eq!(st.incs, 2, "committed attempt's ops");
    assert_eq!(st.aborted_incs, 2, "aborted attempt's ops land separately");
    assert_eq!(st.committed_ops(), 2);
    assert_eq!(st.aborted_ops(), 2);
    assert!((st.wasted_work_ratio() - 0.5).abs() < 1e-9);
}
