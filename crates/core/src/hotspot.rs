//! Lock-free contention-attribution sketches behind
//! [`Telemetry::hot_addresses`](crate::Telemetry::hot_addresses) and
//! [`Telemetry::conflict_edges`](crate::Telemetry::conflict_edges).
//!
//! Both structures are per-shard (one instance per telemetry counter
//! shard, so the writing thread rarely shares cache lines) and built
//! from relaxed atomics only. Races are benign: a lost update costs one
//! count of precision, never a torn value, and the estimates are only
//! read at snapshot time when the report is assembled.
//!
//! * [`HotSketch`] — a fixed-size count-min sketch over conflicting
//!   heap addresses plus a small top-K slot table that tracks the
//!   current heavy hitters (the "heap" of a classic count-min + heap
//!   ranking, flattened to a scan-friendly fixed array).
//! * [`EdgeTable`] — a fixed-size table of `(victim, aborter)` thread
//!   pairs with counts: the who-aborted-whom summary.

use std::sync::atomic::{AtomicU64, Ordering};

/// Count-min rows. Two independent hashes keep the overestimate small
/// at the sketch sizes we use while costing only two `fetch_add`s.
const SKETCH_ROWS: usize = 2;

/// Per-row salt mixed into the address hash so the rows are
/// independent.
const SKETCH_SALTS: [u32; SKETCH_ROWS] = [0x9E37_79B9, 0x85EB_CA6B];

/// Columns per row when the sketch is enabled (power of two).
const SKETCH_COLS: usize = 128;

/// Heavy-hitter slots tracked per shard.
const TOP_SLOTS: usize = 16;

/// A per-shard count-min sketch plus top-K heavy-hitter slots over
/// conflicting heap addresses. All operations are lock-free; see the
/// module docs for the race model.
pub struct HotSketch {
    counts: Box<[AtomicU64]>,
    cols: usize,
    keys: Box<[AtomicU64]>,
    weights: Box<[AtomicU64]>,
}

fn atomic_zeroes(n: usize) -> Box<[AtomicU64]> {
    let mut v = Vec::with_capacity(n);
    v.resize_with(n, || AtomicU64::new(0));
    v.into_boxed_slice()
}

impl HotSketch {
    /// Create a sketch. When `enabled` is false (telemetry below
    /// `Spans`) the rows collapse to one column each so a disabled
    /// sketch costs a few words, not kilobytes.
    pub fn new(enabled: bool) -> HotSketch {
        let cols = if enabled { SKETCH_COLS } else { 1 };
        HotSketch {
            counts: atomic_zeroes(SKETCH_ROWS * cols),
            cols,
            keys: atomic_zeroes(TOP_SLOTS),
            weights: atomic_zeroes(TOP_SLOTS),
        }
    }

    /// Count one conflict on heap word `addr_index` and refresh the
    /// heavy-hitter slots with its new estimate.
    pub fn record(&self, addr_index: u32) {
        let mask = self.cols - 1;
        let mut est = u64::MAX;
        for (row, salt) in SKETCH_SALTS.iter().enumerate() {
            let col = crate::util::hash_u32(addr_index ^ salt) as usize & mask;
            let v = self.counts[row * self.cols + col].fetch_add(1, Ordering::Relaxed) + 1;
            est = est.min(v);
        }
        // Keys are stored +1 so 0 can mean "empty slot".
        let key = addr_index as u64 + 1;
        let mut min_i = 0usize;
        let mut min_w = u64::MAX;
        for i in 0..TOP_SLOTS {
            let k = self.keys[i].load(Ordering::Relaxed);
            if k == key {
                self.weights[i].fetch_max(est, Ordering::Relaxed);
                return;
            }
            if k == 0 {
                // Claim the empty slot. A racing claimer may overwrite
                // us; the loser's counts survive in the sketch and its
                // slot is re-established on its next record.
                self.keys[i].store(key, Ordering::Relaxed);
                self.weights[i].store(est, Ordering::Relaxed);
                return;
            }
            let w = self.weights[i].load(Ordering::Relaxed);
            if w < min_w {
                min_w = w;
                min_i = i;
            }
        }
        if est > min_w {
            self.keys[min_i].store(key, Ordering::Relaxed);
            self.weights[min_i].store(est, Ordering::Relaxed);
        }
    }

    /// Current heavy hitters as `(addr_index, estimated_count)` pairs,
    /// unordered.
    pub fn entries(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        (0..TOP_SLOTS).filter_map(move |i| {
            let k = self.keys[i].load(Ordering::Relaxed);
            if k == 0 {
                None
            } else {
                Some(((k - 1) as u32, self.weights[i].load(Ordering::Relaxed)))
            }
        })
    }
}

/// One aggregated who-aborted-whom edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConflictEdge {
    /// Thread token of the aborted transaction.
    pub victim: u64,
    /// Thread token of the committer that invalidated it.
    pub by: u64,
    /// How many aborts this edge accounts for (approximate: a table
    /// eviction under extreme thread churn resets an edge's count).
    pub count: u64,
}

/// A per-shard fixed-size table of `(victim, aborter)` pairs.
pub struct EdgeTable {
    keys: Box<[AtomicU64]>,
    counts: Box<[AtomicU64]>,
}

/// Pack a `(victim, by)` pair of thread tokens into one nonzero key
/// word. Tokens are small sequential integers, so truncating to 32 bits
/// each is lossless in practice; both are ≥ 1, so the key is never 0.
fn edge_key(victim: u64, by: u64) -> u64 {
    ((victim & 0xFFFF_FFFF) << 32) | (by & 0xFFFF_FFFF)
}

impl EdgeTable {
    /// Create an empty table.
    pub fn new() -> EdgeTable {
        EdgeTable {
            keys: atomic_zeroes(TOP_SLOTS),
            counts: atomic_zeroes(TOP_SLOTS),
        }
    }

    /// Count one abort of `victim` caused by `by`.
    pub fn record(&self, victim: u64, by: u64) {
        let key = edge_key(victim, by);
        let mut min_i = 0usize;
        let mut min_c = u64::MAX;
        for i in 0..TOP_SLOTS {
            let k = self.keys[i].load(Ordering::Relaxed);
            if k == key {
                self.counts[i].fetch_add(1, Ordering::Relaxed);
                return;
            }
            if k == 0 {
                self.keys[i].store(key, Ordering::Relaxed);
                self.counts[i].store(1, Ordering::Relaxed);
                return;
            }
            let c = self.counts[i].load(Ordering::Relaxed);
            if c < min_c {
                min_c = c;
                min_i = i;
            }
        }
        // Table full of other edges: evict the rarest. With ≤ 64 live
        // threads a shard sees one victim, so this only fires under
        // extreme thread churn.
        self.keys[min_i].store(key, Ordering::Relaxed);
        self.counts[min_i].store(1, Ordering::Relaxed);
    }

    /// Current edges, unordered.
    pub fn entries(&self) -> impl Iterator<Item = ConflictEdge> + '_ {
        (0..TOP_SLOTS).filter_map(move |i| {
            let k = self.keys[i].load(Ordering::Relaxed);
            if k == 0 {
                None
            } else {
                Some(ConflictEdge {
                    victim: k >> 32,
                    by: k & 0xFFFF_FFFF,
                    count: self.counts[i].load(Ordering::Relaxed),
                })
            }
        })
    }
}

impl Default for EdgeTable {
    fn default() -> Self {
        EdgeTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_ranks_heavy_hitter_first() {
        let s = HotSketch::new(true);
        for _ in 0..100 {
            s.record(7);
        }
        for a in 0..10u32 {
            s.record(a + 100);
        }
        let mut top: Vec<_> = s.entries().collect();
        top.sort_by_key(|e| std::cmp::Reverse(e.1));
        assert_eq!(top[0].0, 7);
        assert!(top[0].1 >= 100, "count-min never undercounts: {top:?}");
    }

    #[test]
    fn sketch_eviction_keeps_the_heaviest() {
        let s = HotSketch::new(true);
        // More distinct keys than slots; one key dominates.
        for a in 0..64u32 {
            s.record(a);
        }
        for _ in 0..500 {
            s.record(999);
        }
        let top: Vec<_> = s.entries().collect();
        assert!(
            top.iter().any(|&(k, w)| k == 999 && w >= 500),
            "dominant key must survive eviction: {top:?}"
        );
        assert!(top.len() <= TOP_SLOTS);
    }

    #[test]
    fn disabled_sketch_still_accepts_records() {
        let s = HotSketch::new(false);
        s.record(3);
        s.record(3);
        let top: Vec<_> = s.entries().collect();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, 3);
    }

    #[test]
    fn edge_table_counts_pairs() {
        let t = EdgeTable::new();
        for _ in 0..5 {
            t.record(2, 3);
        }
        t.record(2, 4);
        let mut edges: Vec<_> = t.entries().collect();
        edges.sort_by_key(|e| std::cmp::Reverse(e.count));
        assert_eq!(
            edges[0],
            ConflictEdge {
                victim: 2,
                by: 3,
                count: 5
            }
        );
        assert_eq!(
            edges[1],
            ConflictEdge {
                victim: 2,
                by: 4,
                count: 1
            }
        );
    }
}
