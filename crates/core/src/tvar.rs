//! Typed convenience layer over raw heap words: [`TVar`] (one cell) and
//! [`TArray`] (a contiguous block), parameterised by a [`Word`] codec.
//!
//! These are zero-cost wrappers — a `TVar<T>` is just an [`Addr`] plus a
//! phantom type; the STM algorithms below never see types, exactly as in
//! the paper's word-granular model.

use crate::error::Abort;
use crate::heap::Addr;
use crate::ops::CmpOp;
use crate::stm::{Stm, Tx};
use crate::value::Word;
use std::marker::PhantomData;

/// A typed transactional variable occupying one heap word.
pub struct TVar<T: Word> {
    addr: Addr,
    _t: PhantomData<T>,
}

// Manual impls: `TVar` is Copy regardless of `T` (it is only an address).
impl<T: Word> Clone for TVar<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Word> Copy for TVar<T> {}

impl<T: Word> TVar<T> {
    /// Allocate a new variable on `stm`'s heap with initial value `init`.
    pub fn new(stm: &Stm, init: T) -> TVar<T> {
        TVar {
            addr: stm.alloc_cell(init),
            _t: PhantomData,
        }
    }

    /// Wrap an existing address (the caller asserts the word holds a
    /// `T`-encoded value).
    pub fn from_addr(addr: Addr) -> TVar<T> {
        TVar {
            addr,
            _t: PhantomData,
        }
    }

    /// The underlying address.
    #[inline]
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Transactional read.
    #[inline]
    pub fn read(&self, tx: &mut Tx<'_>) -> Result<T, Abort> {
        Ok(T::from_word(tx.read(self.addr)?))
    }

    /// Transactional write.
    #[inline]
    pub fn write(&self, tx: &mut Tx<'_>, v: T) -> Result<(), Abort> {
        tx.write(self.addr, v.to_word())
    }

    /// Semantic comparison against a constant.
    #[inline]
    pub fn cmp(&self, tx: &mut Tx<'_>, op: CmpOp, v: T) -> Result<bool, Abort> {
        tx.cmp(self.addr, op, v.to_word())
    }

    /// Semantic comparison against another variable of the same type.
    #[inline]
    pub fn cmp_var(&self, tx: &mut Tx<'_>, op: CmpOp, other: TVar<T>) -> Result<bool, Abort> {
        tx.cmp_addr(self.addr, op, other.addr)
    }

    /// Semantic increment by a word-encoded delta.
    ///
    /// Valid only for codecs whose addition is word addition (all the
    /// integral codecs and [`crate::Fx32`]).
    #[inline]
    pub fn inc(&self, tx: &mut Tx<'_>, delta: T) -> Result<(), Abort> {
        tx.inc(self.addr, delta.to_word())
    }

    /// Non-transactional read (setup / assertions).
    #[inline]
    pub fn read_now(&self, stm: &Stm) -> T {
        T::from_word(stm.read_now(self.addr))
    }

    /// Non-transactional write (setup only).
    #[inline]
    pub fn write_now(&self, stm: &Stm, v: T) {
        stm.write_now(self.addr, v.to_word());
    }
}

/// A typed block of transactional words: contiguous by default, or
/// line-striped (one cache line per element) via [`TArray::new_striped`].
pub struct TArray<T: Word> {
    base: Addr,
    len: usize,
    /// Word distance between consecutive elements (1 = contiguous,
    /// [`crate::heap::LINE_WORDS`] = one cache line — and therefore one
    /// commit-clock shard — per element).
    stride: usize,
    _t: PhantomData<T>,
}

impl<T: Word> Clone for TArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Word> Copy for TArray<T> {}

impl<T: Word> TArray<T> {
    /// Allocate an array of `len` elements, all `init`.
    pub fn new(stm: &Stm, len: usize, init: T) -> TArray<T> {
        TArray {
            base: stm.alloc_array(len, init),
            len,
            stride: 1,
            _t: PhantomData,
        }
    }

    /// Allocate a line-striped array: each element sits on its own cache
    /// line, so no two elements share a line (no false sharing between
    /// them) and, under a sharded commit clock, no two elements share a
    /// clock-shard word gratuitously. Costs
    /// `len × `[`crate::heap::LINE_WORDS`] heap words instead of `len`.
    pub fn new_striped(stm: &Stm, len: usize, init: T) -> TArray<T> {
        let stride = crate::heap::LINE_WORDS;
        let base = stm.alloc_padded(len.max(1) * stride);
        let arr = TArray {
            base,
            len,
            stride,
            _t: PhantomData,
        };
        for i in 0..len {
            stm.write_now(arr.addr(i), init.to_word());
        }
        arr
    }

    /// Word distance between consecutive elements.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of element `i` (bounds-checked).
    #[inline]
    pub fn addr(&self, i: usize) -> Addr {
        assert!(
            i < self.len,
            "TArray index {i} out of bounds ({})",
            self.len
        );
        self.base.offset(i * self.stride)
    }

    /// The element as a [`TVar`].
    #[inline]
    pub fn at(&self, i: usize) -> TVar<T> {
        TVar::from_addr(self.addr(i))
    }

    /// Transactional element read.
    #[inline]
    pub fn read(&self, tx: &mut Tx<'_>, i: usize) -> Result<T, Abort> {
        Ok(T::from_word(tx.read(self.addr(i))?))
    }

    /// Transactional element write.
    #[inline]
    pub fn write(&self, tx: &mut Tx<'_>, i: usize, v: T) -> Result<(), Abort> {
        tx.write(self.addr(i), v.to_word())
    }

    /// Semantic element comparison.
    #[inline]
    pub fn cmp(&self, tx: &mut Tx<'_>, i: usize, op: CmpOp, v: T) -> Result<bool, Abort> {
        tx.cmp(self.addr(i), op, v.to_word())
    }

    /// Semantic element increment.
    #[inline]
    pub fn inc(&self, tx: &mut Tx<'_>, i: usize, delta: T) -> Result<(), Abort> {
        tx.inc(self.addr(i), delta.to_word())
    }

    /// Non-transactional element read.
    #[inline]
    pub fn read_now(&self, stm: &Stm, i: usize) -> T {
        T::from_word(stm.read_now(self.addr(i)))
    }

    /// Non-transactional element write.
    #[inline]
    pub fn write_now(&self, stm: &Stm, i: usize, v: T) {
        stm.write_now(self.addr(i), v.to_word());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, StmConfig};
    use crate::value::Fx32;

    fn stm() -> Stm {
        Stm::new(StmConfig::new(Algorithm::SNOrec).heap_words(1 << 10))
    }

    #[test]
    fn typed_roundtrip() {
        let s = stm();
        let v = TVar::new(&s, -9i64);
        assert_eq!(v.read_now(&s), -9);
        s.atomic(|tx| {
            assert_eq!(v.read(tx)?, -9);
            v.write(tx, 33)
        });
        assert_eq!(v.read_now(&s), 33);
    }

    #[test]
    fn bool_var() {
        let s = stm();
        let v = TVar::new(&s, false);
        s.atomic(|tx| v.write(tx, true));
        assert!(v.read_now(&s));
    }

    #[test]
    fn fx32_inc_is_exact() {
        let s = stm();
        let v = TVar::new(&s, Fx32::from_f64(1.5));
        s.atomic(|tx| v.inc(tx, Fx32::from_f64(0.25)));
        assert!((v.read_now(&s).to_f64() - 1.75).abs() < 1e-9);
    }

    #[test]
    fn array_indexing_and_ops() {
        let s = stm();
        let arr = TArray::new(&s, 8, 0i64);
        s.atomic(|tx| {
            for i in 0..arr.len() {
                arr.write(tx, i, i as i64)?;
            }
            Ok(())
        });
        assert_eq!(arr.read_now(&s, 5), 5);
        let found = s.atomic(|tx| {
            let mut hits = 0;
            for i in 0..arr.len() {
                if arr.cmp(tx, i, CmpOp::Gt, 3)? {
                    hits += 1;
                }
            }
            Ok(hits)
        });
        assert_eq!(found, 4);
    }

    #[test]
    fn striped_array_spaces_elements_one_line_apart() {
        let s = stm();
        let arr = TArray::new_striped(&s, 4, 7i64);
        assert_eq!(arr.stride(), crate::heap::LINE_WORDS);
        for i in 0..arr.len() {
            assert_eq!(arr.read_now(&s, i), 7, "init reaches element {i}");
            assert_eq!(
                arr.addr(i).index() % crate::heap::LINE_WORDS,
                0,
                "element {i} must start a line"
            );
        }
        assert_eq!(
            arr.addr(1).index() - arr.addr(0).index(),
            crate::heap::LINE_WORDS
        );
        s.atomic(|tx| arr.inc(tx, 2, 5));
        assert_eq!(arr.read_now(&s, 2), 12);
        assert_eq!(arr.read_now(&s, 1), 7, "neighbours untouched");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn array_bounds_checked() {
        let s = stm();
        let arr = TArray::new(&s, 2, 0i64);
        let _ = arr.addr(2);
    }

    #[test]
    fn cmp_var_pair() {
        let s = stm();
        let a = TVar::new(&s, 3i64);
        let b = TVar::new(&s, 7i64);
        let lt = s.atomic(|tx| a.cmp_var(tx, CmpOp::Lt, b));
        assert!(lt);
    }
}
