//! TL2 and S-TL2 (the paper's Algorithm 7).
//!
//! TL2 [Dice, Shalev, Shavit, DISC 2006] validates reads through a table
//! of **ownership records** ([`orec::OrecTable`]): each committed write
//! stamps its orecs with the commit timestamp, and a read is consistent if
//! its orec is unlocked and not newer than the transaction's start
//! snapshot. Writers lock only their write-set orecs, so disjoint commits
//! proceed concurrently (unlike NOrec's single global lock).
//!
//! S-TL2 adds:
//!
//! * a **compare-set** holding semantic `(addr, op, operand)` entries,
//!   validated by *re-evaluating the relation* rather than by version
//!   comparison;
//! * a **three-phase execution**: before the first plain read ("phase 1")
//!   a `cmp` that observes a too-new orec may *extend the snapshot* after
//!   revalidating the whole compare-set (Algorithm 7 lines 19–25), and may
//!   politely wait on locked orecs instead of aborting; after the first
//!   plain read ("phase 2") `cmp` validates exactly like a read, but its
//!   entry still gets the semantic treatment at commit;
//! * a **CAS-based commit timestamp** instead of fetch-and-add: the
//!   compare-set must be revalidated if any other writer slips a commit
//!   in during `ValidateCompareSet` (lines 68–72), which the CAS detects.
//!
//! Note on Algorithm 7 line 73 (`if start_version + 1 ≠ time`): read
//! against the original TL2 this is the "no concurrent commits since
//! start" fast path; with `time` sampled *before* the CAS the equivalent
//! skip condition is `start_version == time`, which is what we implement.

pub mod orec;

use crate::error::Abort;
use crate::fault;
use crate::heap::{Addr, Heap};
use crate::ops::CmpOp;
use crate::sched;
use crate::sets::{ReadEntry, WriteEntry, WriteKind, WriteSet};
use crate::stats::OpCounts;
use crate::telemetry::PhaseRecorder;
use crate::util::{thread_token, SpinWait};
use crate::wal::CommitLog;
use orec::{OrecTable, OrecWord};
use std::sync::atomic::{AtomicU64, Ordering};

/// Global state shared by all TL2-family transactions of one
/// [`crate::Stm`]: the version clock and the orec table.
pub struct Tl2Global {
    timestamp: AtomicU64,
    orecs: OrecTable,
    /// Thread token of the most recent committed writer, stamped while
    /// its commit locks are still held — but only when the flight
    /// recorder ([`crate::TelemetryLevel::Spans`]) is on. Validation
    /// aborts read it as a "who probably invalidated me" heuristic;
    /// 0 (never stamped) is [`crate::Conflict`]'s "unknown" sentinel.
    committer: AtomicU64,
}

impl Tl2Global {
    /// Create global TL2 state with (at least) `orec_count` orecs.
    pub fn new(orec_count: usize) -> Tl2Global {
        Tl2Global {
            timestamp: AtomicU64::new(0),
            orecs: OrecTable::new(orec_count),
            committer: AtomicU64::new(0),
        }
    }

    #[inline]
    fn now(&self) -> u64 {
        self.timestamp.load(Ordering::SeqCst)
    }

    #[inline]
    fn try_advance(&self, from: u64) -> bool {
        self.timestamp
            .compare_exchange(from, from + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Current global version clock (diagnostics/tests).
    pub fn time(&self) -> u64 {
        self.now()
    }

    /// Era bump for an adaptive mode switch ([`crate::adapt`]): advance
    /// the version clock past every orec stamp. Called only on a
    /// quiescent runtime (no orec locked), so transactions of the new
    /// era start with `rv` strictly newer than all pre-switch versions.
    pub(crate) fn reseed(&self) {
        self.timestamp.fetch_add(1, Ordering::SeqCst);
    }
}

/// One TL2 / S-TL2 transaction attempt. Used through [`crate::stm::Tx`].
pub struct Tl2Tx<'a> {
    heap: &'a Heap,
    global: &'a Tl2Global,
    owner: u64,
    lock_wait_spins: u32,
    snapshot_extension: bool,
    start_version: u64,
    /// Orec indices of plain reads (Algorithm 7 line 48 stores orecs, not
    /// addresses).
    reads: Vec<usize>,
    /// Semantic compare entries (separate set, §4.2).
    compares: Vec<ReadEntry>,
    writes: WriteSet,
    /// Orecs locked during commit, with their pre-lock words for rollback.
    locked: Vec<(usize, OrecWord)>,
    /// Flight-recorder phase marks; inert (its enabled check is the
    /// materialised `level >= Spans` guard) unless
    /// [`Tl2Tx::enable_spans`] installed a live recorder.
    phases: PhaseRecorder,
    /// Stamp/read the global committer word for abort attribution.
    /// Only true at `TelemetryLevel::Spans`.
    record_committer: bool,
    /// The write-ahead commit log, when the owning [`crate::Stm`] is
    /// durable.
    wal: Option<&'a CommitLog>,
}

impl<'a> Tl2Tx<'a> {
    pub(crate) fn new(
        heap: &'a Heap,
        global: &'a Tl2Global,
        lock_wait_spins: u32,
        snapshot_extension: bool,
    ) -> Self {
        Tl2Tx {
            heap,
            global,
            owner: thread_token(),
            lock_wait_spins,
            snapshot_extension,
            start_version: 0,
            reads: Vec::new(),
            compares: Vec::new(),
            writes: WriteSet::default(),
            locked: Vec::new(),
            phases: PhaseRecorder::disabled(),
            record_committer: false,
            wal: None,
        }
    }

    /// Make writer commits durable (see
    /// [`crate::norec::NorecTx::enable_wal`]).
    pub(crate) fn enable_wal(&mut self, log: &'a CommitLog) {
        self.wal = Some(log);
    }

    /// Turn the flight recorder on for this context: install a live
    /// phase recorder and enable committer stamping/attribution.
    pub(crate) fn enable_spans(&mut self, recorder: PhaseRecorder) {
        self.phases = recorder;
        self.record_committer = recorder.is_enabled();
    }

    /// Current phase marks (read back by the span recorder).
    pub(crate) fn phases(&self) -> PhaseRecorder {
        self.phases
    }

    /// Begin / re-begin: clear metadata, snapshot the clock (Algorithm 7
    /// `Start`).
    pub(crate) fn begin(&mut self) {
        debug_assert!(self.locked.is_empty(), "locks leaked across attempts");
        self.reads.clear();
        self.compares.clear();
        self.writes.clear();
        self.phases.reset();
        sched::point(sched::PointKind::Tl2Begin);
        self.start_version = self.global.now();
    }

    #[inline]
    fn orec_index(&self, addr: Addr) -> usize {
        self.global.orecs.index_of(addr.index())
    }

    /// Spin until orec `oi` is unlocked, up to the configured patience
    /// (the §4.2 starvation-avoidance timeout). A timeout is attributed
    /// to the orec and to the lock holder we last saw on it.
    fn wait_unlocked(&self, oi: usize) -> Result<OrecWord, Abort> {
        let mut wait = SpinWait::new();
        let mut holder = 0;
        for _ in 0..self.lock_wait_spins {
            let o = self.global.orecs.load(oi);
            if !o.locked_by_other(self.owner) {
                return Ok(o);
            }
            holder = o.owner();
            sched::spin();
            wait.spin();
        }
        Err(Abort::timeout().at_orec(oi).by(holder))
    }

    /// A validation abort attributed to orec `oi` plus, when the flight
    /// recorder is on, the most-recent-committer heuristic (see
    /// [`Tl2Global::committer`]).
    fn validation_at(&self, oi: usize) -> Abort {
        let mut abort = Abort::validation().at_orec(oi);
        if self.record_committer {
            abort = abort.by(self.global.committer.load(Ordering::Relaxed));
        }
        abort
    }

    /// Read-after-write resolution (same rules as Algorithm 6's `RAW`):
    /// promoted increments become plain reads + stores.
    fn raw(&mut self, addr: Addr, ops: &mut OpCounts) -> Result<Option<i64>, Abort> {
        match self.writes.get(addr) {
            None => Ok(None),
            Some(WriteEntry {
                kind: WriteKind::Store,
                value,
            }) => Ok(Some(value)),
            Some(WriteEntry {
                kind: WriteKind::Increment,
                ..
            }) => {
                let observed = self.read_validated(addr)?;
                ops.promotes += 1;
                Ok(Some(self.writes.promote(addr, observed)))
            }
        }
    }

    /// The core TL2 consistent read: value is valid if its orec was
    /// unlocked and not newer than `start_version`, unchanged across the
    /// data load. Appends the orec to the read-set.
    fn read_validated(&mut self, addr: Addr) -> Result<i64, Abort> {
        let oi = self.orec_index(addr);
        sched::point(sched::PointKind::Tl2Read);
        let l1 = self.global.orecs.load(oi);
        if l1.is_locked() {
            debug_assert!(
                l1.owner() != self.owner,
                "read while holding own commit locks"
            );
            return Err(Abort::locked().at_addr(addr).at_orec(oi).by(l1.owner()));
        }
        let val = self.heap.tm_load(addr);
        sched::point(sched::PointKind::Tl2ReadWindow);
        let l2 = self.global.orecs.load(oi);
        if l1 != l2 || l1.version() > self.start_version {
            return Err(self.validation_at(oi).at_addr(addr));
        }
        self.reads.push(oi);
        Ok(val)
    }

    /// `TM_READ` (Algorithm 7 lines 37–50).
    pub(crate) fn read(&mut self, addr: Addr, ops: &mut OpCounts) -> Result<i64, Abort> {
        if let Some(v) = self.raw(addr, ops)? {
            return Ok(v);
        }
        self.read_validated(addr)
    }

    /// `TM_WRITE` — buffered, like Algorithm 6.
    pub(crate) fn write(&mut self, addr: Addr, value: i64) {
        self.writes.write(addr, value);
    }

    /// `TM_INC` — deferred delta in the write-set.
    pub(crate) fn inc(&mut self, addr: Addr, delta: i64) {
        self.writes.inc(addr, delta);
    }

    /// Whether the transaction is still in phase 1 (no plain reads yet).
    #[inline]
    fn in_phase1(&self) -> bool {
        self.reads.is_empty() && self.snapshot_extension
    }

    /// Phase-1 tolerant read of one word: waits out locks and retries
    /// version changes instead of aborting (Algorithm 7 lines 11–16).
    /// Returns the value and the orec word it was read under.
    fn patient_read(&mut self, addr: Addr) -> Result<(i64, OrecWord), Abort> {
        let oi = self.orec_index(addr);
        loop {
            sched::point(sched::PointKind::Tl2Read);
            let l1 = self.wait_unlocked(oi).map_err(|e| e.at_addr(addr))?;
            if l1.is_locked() {
                // locked by self — cannot happen outside commit
                return Err(Abort::locked().at_addr(addr).at_orec(oi));
            }
            let val = self.heap.tm_load(addr);
            sched::point(sched::PointKind::Tl2ReadWindow);
            let l2 = self.global.orecs.load(oi);
            if l1 == l2 {
                return Ok((val, l1));
            }
            sched::spin();
            std::hint::spin_loop(); // transient: l1 != l2 resolves fast
        }
    }

    /// Extend the snapshot after a phase-1 `cmp` observed a too-new orec:
    /// revalidate the compare-set, retrying while other commits interleave
    /// (Algorithm 7 lines 19–25).
    fn extend_snapshot(&mut self) -> Result<(), Abort> {
        loop {
            sched::point(sched::PointKind::Tl2Extend);
            let time = self.global.now();
            self.validate_compare_set()?;
            if time == self.global.now() {
                self.start_version = self.start_version.max(time);
                return Ok(());
            }
        }
    }

    /// Semantic compare, address–value form (Algorithm 7 `Compare`).
    pub(crate) fn cmp(
        &mut self,
        addr: Addr,
        op: CmpOp,
        operand: i64,
        ops: &mut OpCounts,
    ) -> Result<bool, Abort> {
        if let Some(v) = self.raw(addr, ops)? {
            return Ok(op.eval(v, operand));
        }
        if self.in_phase1() {
            let (val, l1) = self.patient_read(addr)?;
            let result = op.eval(val, operand);
            self.compares.push(ReadEntry::Val {
                addr,
                op: if result { op } else { op.inverse() },
                operand,
            });
            if l1.version() > self.start_version {
                self.extend_snapshot()?;
            }
            Ok(result)
        } else {
            // Phase 2: consistency with previous reads is mandatory; the
            // snapshot can no longer move (lines 26–34).
            let oi = self.orec_index(addr);
            sched::point(sched::PointKind::Tl2Read);
            let l1 = self.global.orecs.load(oi);
            if l1.locked_by_other(self.owner) {
                return Err(Abort::locked().at_addr(addr).at_orec(oi).by(l1.owner()));
            }
            let val = self.heap.tm_load(addr);
            sched::point(sched::PointKind::Tl2ReadWindow);
            let l2 = self.global.orecs.load(oi);
            if l1 != l2 || (!l1.is_locked() && l1.version() > self.start_version) {
                return Err(self.validation_at(oi).at_addr(addr));
            }
            let result = op.eval(val, operand);
            self.compares.push(ReadEntry::Val {
                addr,
                op: if result { op } else { op.inverse() },
                operand,
            });
            Ok(result)
        }
    }

    /// Semantic compare, address–address form. Write-set-pinned sides
    /// collapse to the address–value form; otherwise both words are read
    /// consistently and recorded as one `Pair` compare entry.
    pub(crate) fn cmp_addr(
        &mut self,
        a: Addr,
        op: CmpOp,
        b: Addr,
        ops: &mut OpCounts,
    ) -> Result<bool, Abort> {
        let wa = self.raw(a, ops)?;
        let wb = self.raw(b, ops)?;
        match (wa, wb) {
            (Some(va), Some(vb)) => Ok(op.eval(va, vb)),
            (Some(va), None) => self.cmp(b, op.swap(), va, ops),
            (None, Some(vb)) => self.cmp(a, op, vb, ops),
            (None, None) => {
                if self.in_phase1() {
                    let (va, l1a) = self.patient_read(a)?;
                    let (vb, l1b) = self.patient_read(b)?;
                    let result = op.eval(va, vb);
                    self.compares.push(ReadEntry::Pair {
                        a,
                        op: if result { op } else { op.inverse() },
                        b,
                    });
                    if l1a.version() > self.start_version || l1b.version() > self.start_version {
                        self.extend_snapshot()?;
                    }
                    Ok(result)
                } else {
                    let va = self.phase2_load(a)?;
                    let vb = self.phase2_load(b)?;
                    let result = op.eval(va, vb);
                    self.compares.push(ReadEntry::Pair {
                        a,
                        op: if result { op } else { op.inverse() },
                        b,
                    });
                    Ok(result)
                }
            }
        }
    }

    /// Phase-2 consistent load that does *not* append to the read-set
    /// (the caller appends a compare entry instead).
    fn phase2_load(&mut self, addr: Addr) -> Result<i64, Abort> {
        let oi = self.orec_index(addr);
        sched::point(sched::PointKind::Tl2Read);
        let l1 = self.global.orecs.load(oi);
        if l1.locked_by_other(self.owner) {
            return Err(Abort::locked().at_addr(addr).at_orec(oi).by(l1.owner()));
        }
        let val = self.heap.tm_load(addr);
        sched::point(sched::PointKind::Tl2ReadWindow);
        let l2 = self.global.orecs.load(oi);
        if l1 != l2 || (!l1.is_locked() && l1.version() > self.start_version) {
            return Err(self.validation_at(oi).at_addr(addr));
        }
        Ok(val)
    }

    /// `ValidateCompareSet` (Algorithm 7 lines 56–65): semantic re-check
    /// of entries whose orecs moved past `start_version`; waits out locks
    /// held by other committers (with the starvation timeout).
    fn validate_compare_set(&self) -> Result<(), Abort> {
        for e in &self.compares {
            let (a0, a1) = e.addrs();
            let mut changed = false;
            for addr in std::iter::once(a0).chain(a1) {
                let oi = self.orec_index(addr);
                let mut o = self.global.orecs.load(oi);
                if o.locked_by_other(self.owner) {
                    o = self.wait_unlocked(oi).map_err(|err| err.at_addr(addr))?;
                }
                if o.is_locked() || o.version() > self.start_version {
                    // Locked by self (commit-time orec aliasing) or newer
                    // than our snapshot: value may have changed.
                    changed = true;
                }
            }
            if changed && !e.holds(self.heap) {
                return Err(self.validation_at(self.orec_index(a0)).at_addr(a0));
            }
        }
        Ok(())
    }

    /// `ValidateReadSet` (Algorithm 7 lines 51–55): version-based, aborts
    /// on any moved orec. Self-locked orecs are checked against their
    /// pre-lock version.
    fn validate_read_set(&self) -> Result<(), Abort> {
        for &oi in &self.reads {
            let o = self.global.orecs.load(oi);
            if o.locked_by_other(self.owner) {
                // Only the orec is known here: Algorithm 7 line 48 keeps
                // orec indices, not addresses, in the read-set.
                return Err(Abort::locked().at_orec(oi).by(o.owner()));
            }
            let version = if o.is_locked() {
                // Locked by us at commit: consult the pre-lock word.
                self.locked
                    .iter()
                    .find(|(i, _)| *i == oi)
                    .map(|(_, old)| old.version())
                    .expect("self-locked orec missing from lock list")
            } else {
                o.version()
            };
            if version > self.start_version {
                return Err(self.validation_at(oi));
            }
        }
        Ok(())
    }

    /// Acquire commit locks for every distinct write-set orec, in index
    /// order (bounded spin per orec; failure rolls everything back).
    fn acquire_write_locks(&mut self) -> Result<(), Abort> {
        let mut targets: Vec<usize> = self
            .writes
            .iter()
            .map(|(addr, _)| self.global.orecs.index_of(addr.index()))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        for oi in targets {
            let mut acquired = false;
            let mut wait = SpinWait::new();
            let mut holder = 0;
            sched::point(sched::PointKind::Tl2LockCas);
            for _ in 0..self.lock_wait_spins {
                let o = self.global.orecs.load(oi);
                if o.is_locked() {
                    debug_assert!(o.owner() != self.owner);
                    holder = o.owner();
                    sched::spin();
                    wait.spin();
                    continue;
                }
                if self.global.orecs.try_lock(oi, o, self.owner) {
                    self.locked.push((oi, o));
                    acquired = true;
                    break;
                }
            }
            if !acquired {
                self.release_locks_rollback();
                return Err(Abort::lock_acquire().at_orec(oi).by(holder));
            }
        }
        Ok(())
    }

    /// Roll back: restore every locked orec to its pre-lock word.
    fn release_locks_rollback(&mut self) {
        for (oi, old) in self.locked.drain(..) {
            self.global.orecs.store(oi, old);
        }
    }

    /// Release after successful write-back, stamping the commit version.
    fn release_locks_committed(&mut self, new_version: u64) {
        for (oi, _) in self.locked.drain(..) {
            self.global.orecs.store(oi, OrecWord::unlocked(new_version));
        }
    }

    /// Commit (Algorithm 7 lines 66–77). Read-only transactions (possibly
    /// with compare entries) commit immediately: every entry was validated
    /// against `start_version` when recorded, so the transaction
    /// serialises at its (possibly extended) snapshot.
    pub(crate) fn commit(&mut self) -> Result<(), Abort> {
        if self.writes.is_empty() {
            return Ok(());
        }
        self.phases.mark_lock();
        self.acquire_write_locks()?;

        // CAS-based timestamp advance with compare-set revalidation
        // (lines 68–72). The CAS — rather than fetch-and-add — guarantees
        // no other writer committed between the semantic validation and
        // our serialisation point.
        self.phases.mark_validate();
        let time = loop {
            sched::point(sched::PointKind::Tl2CommitCas);
            let time = self.global.now();
            if time != self.start_version {
                if let Err(e) = self.validate_compare_set() {
                    self.release_locks_rollback();
                    return Err(e);
                }
            }
            if self.global.try_advance(time) {
                break time;
            }
        };
        let write_version = time + 1;

        if time != self.start_version && !fault::active(fault::TL2_SKIP_READ_VALIDATION) {
            if let Err(e) = self.validate_read_set() {
                self.release_locks_rollback();
                return Err(e);
            }
        }

        // Validation passed, locks held, nothing stored yet: resolve
        // deferred increments to absolute values and append the WAL
        // record. A refused append rolls back cleanly — the advanced
        // clock is harmless without a stamped orec (other transactions
        // at worst revalidate spuriously).
        let ticket = if let Some(log) = self.wal {
            let resolved: Vec<(Addr, i64)> = self
                .writes
                .iter()
                .map(|(addr, e)| (addr, self.resolve(addr, &e)))
                .collect();
            sched::point(sched::PointKind::WalAppend);
            match log.append(&resolved) {
                Ok(t) => Some(t),
                Err(_) => {
                    self.release_locks_rollback();
                    return Err(Abort::durability());
                }
            }
        } else {
            None
        };

        // Locks held, clock advanced: from here through the lock release
        // the write-back is one atomic step of the virtual schedule.
        sched::point(sched::PointKind::Tl2Writeback);
        self.phases.mark_writeback();
        for (addr, e) in self.writes.iter() {
            let v = self.resolve(addr, &e);
            self.heap.tm_store(addr, v);
        }
        if self.record_committer {
            // Still under our commit locks: a reader whose validation
            // fails against `write_version` also observes this token.
            self.global.committer.store(self.owner, Ordering::Relaxed);
        }
        self.release_locks_committed(write_version);
        if let (Some(log), Some(t)) = (self.wal, ticket) {
            // Fail stop on flush failure: the in-memory commit is
            // already visible and cannot be retried.
            if let Err(e) = log.wait_durable(t) {
                panic!(
                    "commit {} is applied but cannot be made durable: {e}",
                    t.seq()
                );
            }
        }
        Ok(())
    }

    /// The absolute value a write entry stores (increments materialised
    /// against live memory; valid only under the commit locks, after
    /// validation).
    #[inline]
    fn resolve(&self, addr: Addr, e: &WriteEntry) -> i64 {
        match e.kind {
            WriteKind::Store => e.value,
            WriteKind::Increment => self.heap.tm_load(addr).wrapping_add(e.value),
        }
    }

    /// Abort cleanup (no locks are held outside `commit`, which already
    /// rolls back on failure; this is a safety net for the runner).
    pub(crate) fn on_abort(&mut self) {
        self.release_locks_rollback();
    }

    /// Diagnostics: compare-set size.
    pub(crate) fn compare_set_len(&self) -> usize {
        self.compares.len()
    }

    /// Diagnostics: read-set size.
    pub(crate) fn read_set_len(&self) -> usize {
        self.reads.len()
    }

    /// Number of write-set entries (flight-recorder spans).
    pub(crate) fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    /// Diagnostics: current start version (observes snapshot extension).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn start_version(&self) -> u64 {
        self.start_version
    }

    /// Whether the transaction has buffered writes.
    pub(crate) fn is_writer(&self) -> bool {
        !self.writes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Heap, Tl2Global) {
        (Heap::new(256), Tl2Global::new(256))
    }

    fn tx<'a>(heap: &'a Heap, global: &'a Tl2Global) -> Tl2Tx<'a> {
        let mut t = Tl2Tx::new(heap, global, 64, true);
        t.begin();
        t
    }

    fn commit_write(heap: &Heap, global: &Tl2Global, addr: Addr, v: i64) {
        let mut t = tx(heap, global);
        t.write(addr, v);
        t.commit().unwrap();
    }

    #[test]
    fn read_write_roundtrip() {
        let (heap, global) = setup();
        let a = heap.alloc(1);
        let mut ops = OpCounts::default();
        let mut t = tx(&heap, &global);
        t.write(a, 9);
        assert_eq!(t.read(a, &mut ops).unwrap(), 9);
        t.commit().unwrap();
        assert_eq!(heap.load(a), 9);
        assert_eq!(global.time(), 1, "one writer commit advances the clock");
    }

    #[test]
    fn stale_read_aborts() {
        let (heap, global) = setup();
        let a = heap.alloc(1);
        let mut ops = OpCounts::default();
        let mut t1 = tx(&heap, &global);
        commit_write(&heap, &global, a, 5); // newer than t1's snapshot
        assert_eq!(t1.read(a, &mut ops), Err(Abort::validation()));
    }

    #[test]
    fn phase1_cmp_extends_snapshot_over_newer_commit() {
        let (heap, global) = setup();
        let x = heap.alloc(1);
        heap.store(x, 5);
        let mut ops = OpCounts::default();
        let mut t1 = tx(&heap, &global);
        let sv0 = t1.start_version();
        commit_write(&heap, &global, x, 7); // bumps clock past t1's snapshot
                                            // Phase-1 cmp sees the newer orec but extends instead of aborting.
        assert!(t1.cmp(x, CmpOp::Gt, 0, &mut ops).unwrap());
        assert!(t1.start_version() > sv0, "snapshot must have been extended");
        assert_eq!(t1.compare_set_len(), 1);
        assert_eq!(t1.read_set_len(), 0);
    }

    #[test]
    fn phase1_cmp_without_extension_knob_aborts() {
        let (heap, global) = setup();
        let x = heap.alloc(1);
        heap.store(x, 5);
        let mut ops = OpCounts::default();
        let mut t1 = Tl2Tx::new(&heap, &global, 64, false);
        t1.begin();
        commit_write(&heap, &global, x, 7);
        assert_eq!(t1.cmp(x, CmpOp::Gt, 0, &mut ops), Err(Abort::validation()));
    }

    #[test]
    fn phase2_cmp_on_newer_orec_aborts() {
        let (heap, global) = setup();
        let x = heap.alloc(1);
        let y = heap.alloc(1);
        heap.store(x, 5);
        let mut ops = OpCounts::default();
        let mut t1 = tx(&heap, &global);
        let _ = t1.read(y, &mut ops).unwrap(); // enter phase 2
        commit_write(&heap, &global, x, 7);
        assert_eq!(t1.cmp(x, CmpOp::Gt, 0, &mut ops), Err(Abort::validation()));
    }

    #[test]
    fn commit_semantically_revalidates_compare_set() {
        // A compare recorded in phase 1 stays valid through a concurrent
        // commit that preserves the relation, and the writer commits.
        let (heap, global) = setup();
        let x = heap.alloc(1);
        let out = heap.alloc(1);
        heap.store(x, 5);
        let mut ops = OpCounts::default();
        let mut t1 = tx(&heap, &global);
        assert!(t1.cmp(x, CmpOp::Gt, 0, &mut ops).unwrap());
        commit_write(&heap, &global, x, 6); // still > 0
        t1.write(out, 1);
        t1.commit()
            .expect("semantic compare-set validation must pass");
        assert_eq!(heap.load(out), 1);
    }

    #[test]
    fn commit_aborts_when_compare_relation_flips() {
        let (heap, global) = setup();
        let x = heap.alloc(1);
        let out = heap.alloc(1);
        heap.store(x, 5);
        let mut ops = OpCounts::default();
        let mut t1 = tx(&heap, &global);
        assert!(t1.cmp(x, CmpOp::Gt, 0, &mut ops).unwrap());
        commit_write(&heap, &global, x, -1); // relation flipped
        t1.write(out, 1);
        assert_eq!(t1.commit(), Err(Abort::validation()));
        assert_eq!(heap.load(out), 0, "no write-back on abort");
        // All locks must have been rolled back.
        let oi = global.orecs.index_of(out.index());
        assert!(!global.orecs.load(oi).is_locked());
    }

    #[test]
    fn commit_aborts_when_read_set_is_stale() {
        let (heap, global) = setup();
        let x = heap.alloc(1);
        let out = heap.alloc(1);
        let mut ops = OpCounts::default();
        let mut t1 = tx(&heap, &global);
        let _ = t1.read(x, &mut ops).unwrap();
        commit_write(&heap, &global, x, 3);
        t1.write(out, 1);
        assert_eq!(t1.commit(), Err(Abort::validation()));
    }

    #[test]
    fn deferred_inc_has_no_read_set_and_never_conflicts() {
        let (heap, global) = setup();
        let x = heap.alloc(1);
        heap.store(x, 100);
        let mut t1 = tx(&heap, &global);
        t1.inc(x, 1);
        commit_write(&heap, &global, x, 200); // concurrent overwrite
        t1.commit().expect("inc-only transaction validates nothing");
        assert_eq!(heap.load(x), 201);
    }

    #[test]
    fn promote_in_tl2_moves_to_phase2() {
        let (heap, global) = setup();
        let x = heap.alloc(1);
        heap.store(x, 10);
        let mut ops = OpCounts::default();
        let mut t1 = tx(&heap, &global);
        t1.inc(x, 5);
        assert_eq!(t1.read(x, &mut ops).unwrap(), 15);
        assert_eq!(ops.promotes, 1);
        assert_eq!(t1.read_set_len(), 1, "promotion performs a plain read");
        t1.commit().unwrap();
        assert_eq!(heap.load(x), 15);
    }

    #[test]
    fn locked_orec_times_out_in_phase1() {
        let (heap, global) = setup();
        let x = heap.alloc(1);
        let oi = global.orecs.index_of(x.index());
        let pre = global.orecs.load(oi);
        assert!(global.orecs.try_lock(oi, pre, 999)); // stuck foreign lock
        let mut ops = OpCounts::default();
        let mut t1 = Tl2Tx::new(&heap, &global, 16, true);
        t1.begin();
        assert_eq!(t1.cmp(x, CmpOp::Gt, 0, &mut ops), Err(Abort::timeout()));
        global.orecs.store(oi, pre);
    }

    #[test]
    fn disjoint_writers_commit_with_distinct_versions() {
        let (heap, global) = setup();
        let a = heap.alloc(1);
        let b = heap.alloc(1);
        commit_write(&heap, &global, a, 1);
        commit_write(&heap, &global, b, 2);
        let oa = global.orecs.load(global.orecs.index_of(a.index()));
        let ob = global.orecs.load(global.orecs.index_of(b.index()));
        assert_eq!(oa.version(), 1);
        assert_eq!(ob.version(), 2);
    }

    #[test]
    fn stale_read_attributes_address_and_orec() {
        let (heap, global) = setup();
        let a = heap.alloc(1);
        let mut ops = OpCounts::default();
        let mut t1 = tx(&heap, &global);
        commit_write(&heap, &global, a, 5);
        let err = t1.read(a, &mut ops).unwrap_err();
        assert_eq!(err, Abort::validation());
        assert_eq!(err.conflict().addr(), Some(a));
        assert_eq!(
            err.conflict().orec(),
            Some(global.orecs.index_of(a.index()) as u32)
        );
        assert_eq!(
            err.conflict().by(),
            None,
            "committer heuristic is Spans-only"
        );
    }

    #[test]
    fn validation_abort_attributes_committer_under_spans() {
        use crate::telemetry::PhaseRecorder;
        let (heap, global) = setup();
        let a = heap.alloc(1);
        let out = heap.alloc(1);
        let mut ops = OpCounts::default();
        let mut t1 = Tl2Tx::new(&heap, &global, 64, true);
        t1.enable_spans(PhaseRecorder::enabled(std::time::Instant::now()));
        t1.begin();
        let _ = t1.read(a, &mut ops).unwrap();
        // Concurrent commit with the recorder on stamps the committer.
        let mut t2 = Tl2Tx::new(&heap, &global, 64, true);
        t2.enable_spans(PhaseRecorder::enabled(std::time::Instant::now()));
        t2.begin();
        t2.write(a, 3);
        t2.commit().unwrap();
        t1.write(out, 1);
        let err = t1.commit().unwrap_err();
        assert_eq!(err, Abort::validation());
        assert_eq!(
            err.conflict().orec(),
            Some(global.orecs.index_of(a.index()) as u32)
        );
        assert_eq!(err.conflict().by(), Some(thread_token()));
    }

    #[test]
    fn timeout_attributes_lock_holder() {
        let (heap, global) = setup();
        let x = heap.alloc(1);
        let oi = global.orecs.index_of(x.index());
        let pre = global.orecs.load(oi);
        assert!(global.orecs.try_lock(oi, pre, 999)); // stuck foreign lock
        let mut ops = OpCounts::default();
        let mut t1 = Tl2Tx::new(&heap, &global, 16, true);
        t1.begin();
        let err = t1.cmp(x, CmpOp::Gt, 0, &mut ops).unwrap_err();
        assert_eq!(err, Abort::timeout());
        assert_eq!(err.conflict().addr(), Some(x));
        assert_eq!(err.conflict().orec(), Some(oi as u32));
        assert_eq!(err.conflict().by(), Some(999));
        global.orecs.store(oi, pre);
    }

    #[test]
    fn cmp_addr_pair_validates_both_orecs() {
        let (heap, global) = setup();
        let h = heap.alloc(1);
        let t = heap.alloc(1);
        let out = heap.alloc(1);
        heap.store(h, 3);
        heap.store(t, 9);
        let mut ops = OpCounts::default();
        let mut t1 = tx(&heap, &global);
        assert!(t1.cmp_addr(h, CmpOp::Neq, t, &mut ops).unwrap());
        commit_write(&heap, &global, t, 11); // relation preserved
        t1.write(out, 1);
        t1.commit().unwrap();

        let mut t2 = tx(&heap, &global);
        assert!(t2.cmp_addr(h, CmpOp::Neq, t, &mut ops).unwrap());
        commit_write(&heap, &global, h, 11); // h == t now
        t2.write(out, 2);
        assert_eq!(t2.commit(), Err(Abort::validation()));
    }
}
