//! The ownership-record (orec) table of the TL2 family.
//!
//! Each orec is one atomic word encoding either
//!
//! * `version << 1` — unlocked, last written at global time `version`; or
//! * `(owner << 1) | 1` — write-locked by the committer whose
//!   [thread token](crate::util::thread_token) is `owner`.
//!
//! Addresses map to orecs by masking the word index, so a table of `2^k`
//! orecs stripes the heap; distinct hot words in small structures get
//! distinct orecs, while unrelated words may alias (false conflicts are
//! allowed — they only cost precision, not safety).
//!
//! Like the heap's word array, the table is base-aligned to a 128-byte
//! cache line (over-allocate one line, index at a runtime offset — the
//! crate forbids `unsafe`, so no aligned-allocation tricks). Orec 0 then
//! starts a line, and together with [`crate::heap::Heap::alloc_padded`]
//! this keeps the orecs of unrelated padded nodes [`LINE_WORDS`] indices —
//! a full line — apart instead of packed into the same one.

use crate::heap::{LINE_BYTES, LINE_WORDS};
use std::sync::atomic::{AtomicU64, Ordering};

/// An orec word value (snapshot of the atomic).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OrecWord(pub u64);

impl OrecWord {
    /// Is the lock bit set?
    #[inline]
    pub fn is_locked(self) -> bool {
        self.0 & 1 == 1
    }

    /// Owner token (valid only when locked).
    #[inline]
    pub fn owner(self) -> u64 {
        debug_assert!(self.is_locked());
        self.0 >> 1
    }

    /// Version (valid only when unlocked).
    #[inline]
    pub fn version(self) -> u64 {
        debug_assert!(!self.is_locked());
        self.0 >> 1
    }

    /// Locked by someone other than `me`?
    #[inline]
    pub fn locked_by_other(self, me: u64) -> bool {
        self.is_locked() && self.owner() != me
    }

    /// Encode an unlocked word at `version`.
    #[inline]
    pub fn unlocked(version: u64) -> OrecWord {
        OrecWord(version << 1)
    }

    /// Encode a locked word owned by `owner`.
    #[inline]
    pub fn locked(owner: u64) -> OrecWord {
        OrecWord((owner << 1) | 1)
    }
}

/// The shared orec table.
pub struct OrecTable {
    /// Backing store, over-allocated by `LINE_WORDS - 1`; orec `i` lives
    /// at `orecs[base + i]`.
    orecs: Box<[AtomicU64]>,
    /// Offset of orec 0, chosen so it starts a 128-byte line.
    base: usize,
    mask: usize,
}

impl OrecTable {
    /// Create a table with at least `count` orecs (rounded up to a power
    /// of two), orec 0 cache-line-aligned.
    pub fn new(count: usize) -> OrecTable {
        let n = count.max(2).next_power_of_two();
        let mut v = Vec::with_capacity(n + LINE_WORDS - 1);
        v.resize_with(n + LINE_WORDS - 1, || AtomicU64::new(0));
        let orecs = v.into_boxed_slice();
        let addr = orecs.as_ptr() as usize;
        let base = (LINE_BYTES - (addr % LINE_BYTES)) % LINE_BYTES / 8;
        OrecTable {
            orecs,
            base,
            mask: n - 1,
        }
    }

    /// The orec index covering heap word `word_index`.
    #[inline]
    pub fn index_of(&self, word_index: usize) -> usize {
        word_index & self.mask
    }

    /// Snapshot orec `i`.
    #[inline]
    pub fn load(&self, i: usize) -> OrecWord {
        OrecWord(self.orecs[self.base + i].load(Ordering::SeqCst))
    }

    /// Try to swing orec `i` from the unlocked word `expected` to locked
    /// by `owner`.
    #[inline]
    pub fn try_lock(&self, i: usize, expected: OrecWord, owner: u64) -> bool {
        debug_assert!(!expected.is_locked());
        self.orecs[self.base + i]
            .compare_exchange(
                expected.0,
                OrecWord::locked(owner).0,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Store an arbitrary word into orec `i` (release with a new version,
    /// or roll back to the pre-lock word after a failed commit).
    #[inline]
    pub fn store(&self, i: usize, word: OrecWord) {
        self.orecs[self.base + i].store(word.0, Ordering::SeqCst);
    }

    /// Number of orecs in the table.
    #[inline]
    pub fn len(&self) -> usize {
        self.mask + 1
    }

    /// Whether the table is empty (never true in practice; for lint
    /// symmetry with `len`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_encoding_roundtrip() {
        let u = OrecWord::unlocked(77);
        assert!(!u.is_locked());
        assert_eq!(u.version(), 77);
        let l = OrecWord::locked(5);
        assert!(l.is_locked());
        assert_eq!(l.owner(), 5);
        assert!(l.locked_by_other(4));
        assert!(!l.locked_by_other(5));
    }

    #[test]
    fn table_rounds_to_power_of_two_and_masks() {
        let t = OrecTable::new(100);
        assert_eq!(t.len(), 128);
        assert_eq!(t.index_of(128), 0);
        assert_eq!(t.index_of(129), 1);
        assert_eq!(t.index_of(127), 127);
    }

    #[test]
    fn orec_zero_is_line_aligned() {
        let t = OrecTable::new(64);
        let addr = t.orecs[t.base..].as_ptr() as usize;
        assert_eq!(addr % LINE_BYTES, 0, "orec 0 not on a 128-byte boundary");
    }

    #[test]
    fn lock_unlock_cycle() {
        let t = OrecTable::new(4);
        let w0 = t.load(0);
        assert_eq!(w0.version(), 0);
        assert!(t.try_lock(0, w0, 9));
        assert!(t.load(0).locked_by_other(1));
        assert!(!t.try_lock(0, OrecWord::unlocked(0), 1), "already locked");
        t.store(0, OrecWord::unlocked(3));
        assert_eq!(t.load(0).version(), 3);
    }
}
