//! The telemetry subsystem: sharded counters, log-bucketed latency
//! histograms, an abort-event trace, and an interval sampler.
//!
//! Everything the paper's evaluation measures — Table 3's per-operation
//! invocation counts, the abort-rate series of Figures 1–2 — and
//! everything a scaling investigation needs on top of it (commit-latency
//! quantiles, wasted work from aborted attempts, per-abort forensics)
//! flows through one [`Telemetry`] instance owned by the
//! [`crate::Stm`].
//!
//! Three levels, selected by [`StmConfig::telemetry`](crate::StmConfig):
//!
//! * [`TelemetryLevel::Counters`] (default) — the sharded counter cells
//!   only. This *replaces* the old single global `Stats` block of shared
//!   atomics: each thread increments a cache-line-padded shard selected
//!   by its [`crate::util::thread_token`], so the hot commit/abort path
//!   never bounces a counter cache line between cores. Cost: the same
//!   relaxed `fetch_add`s as before, minus the contention.
//! * [`TelemetryLevel::Histograms`] — additionally samples commit
//!   latency, attempts per transaction, read/compare-set sizes at
//!   commit, and contention-manager backoff into fixed-size atomic
//!   [`Histogram`]s (two `Instant::now` calls plus a handful of relaxed
//!   increments per transaction).
//! * [`TelemetryLevel::Trace`] — additionally records every abort into a
//!   per-thread fixed-capacity [`EventRing`](crate::ring::EventRing) of
//!   [`AbortEvent`]s for postmortem dumps (who aborted, why, at which
//!   attempt, carrying how much metadata).
//! * [`TelemetryLevel::Spans`] — the flight recorder: additionally
//!   records every transaction *attempt* as a [`SpanEvent`]
//!   (begin/validate/lock/writeback/end timestamps plus set sizes) into
//!   a second per-thread ring, attributes each abort to the conflicting
//!   address/orec and committer where knowable
//!   ([`Conflict`](crate::error::Conflict)), and feeds the per-shard
//!   hot-address sketch behind [`Telemetry::hot_addresses`] and the
//!   who-aborted-whom summary behind [`Telemetry::conflict_edges`].
//!
//! The [`Sampler`] turns successive [`StatsSnapshot`]s into a
//! throughput/abort-rate time series ([`SamplePoint`]) — the exporter
//! side lives in the bench crate's report writer.

use crate::config::Algorithm;
use crate::error::{AbortReason, Conflict};
use crate::heap::Addr;
use crate::hotspot::{ConflictEdge, EdgeTable, HotSketch};
use crate::ring::EventRing;
use crate::stats::{OpCounts, StatsSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How much the runtime records. Levels are cumulative and ordered:
/// `Counters < Histograms < Trace < Spans`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum TelemetryLevel {
    /// Sharded commit/abort/operation counters only (default).
    Counters,
    /// Counters plus latency/attempt/set-size/backoff histograms.
    Histograms,
    /// Histograms plus the per-thread abort-event trace ring.
    Trace,
    /// Trace plus the transaction flight recorder: per-attempt spans,
    /// abort attribution, hot-address sketch, conflict summary.
    Spans,
}

impl TelemetryLevel {
    /// Display name (used by exporters).
    pub fn name(self) -> &'static str {
        match self {
            TelemetryLevel::Counters => "counters",
            TelemetryLevel::Histograms => "histograms",
            TelemetryLevel::Trace => "trace",
            TelemetryLevel::Spans => "spans",
        }
    }
}

/// Number of counter shards (and trace rings). A power of two larger
/// than any sane core count; threads map onto shards by
/// `thread_token() % SHARDS`, so two threads share a shard only beyond
/// 64 live threads — and sharing is merely a perf, not a correctness,
/// concern.
pub const SHARDS: usize = 64;

/// One cache-line-padded block of per-shard counters. 128-byte aligned
/// so neighbouring shards can never share a line (and to respect the
/// 2-line prefetcher granularity on x86).
#[repr(align(128))]
#[derive(Default)]
pub struct StatShard {
    commits: AtomicU64,
    aborts_validation: AtomicU64,
    aborts_locked: AtomicU64,
    aborts_timeout: AtomicU64,
    aborts_lock_acquire: AtomicU64,
    aborts_explicit: AtomicU64,
    aborts_durability: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    cmps: AtomicU64,
    cmp_pairs: AtomicU64,
    incs: AtomicU64,
    promotes: AtomicU64,
    aborted_reads: AtomicU64,
    aborted_writes: AtomicU64,
    aborted_cmps: AtomicU64,
    aborted_cmp_pairs: AtomicU64,
    aborted_incs: AtomicU64,
    aborted_promotes: AtomicU64,
}

impl StatShard {
    /// Record a committed transaction together with its operation counts.
    #[inline]
    pub fn record_commit(&self, ops: &OpCounts) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.reads.fetch_add(ops.reads, Ordering::Relaxed);
        self.writes.fetch_add(ops.writes, Ordering::Relaxed);
        self.cmps.fetch_add(ops.cmps, Ordering::Relaxed);
        self.cmp_pairs.fetch_add(ops.cmp_pairs, Ordering::Relaxed);
        self.incs.fetch_add(ops.incs, Ordering::Relaxed);
        self.promotes.fetch_add(ops.promotes, Ordering::Relaxed);
    }

    /// Record an aborted attempt, flushing its operation counts into the
    /// wasted-work counters (an aborted attempt's work is real work the
    /// machine did and threw away; hiding it flatters abort-heavy runs).
    #[inline]
    pub fn record_abort(&self, reason: AbortReason, ops: &OpCounts) {
        let ctr = match reason {
            AbortReason::Validation => &self.aborts_validation,
            AbortReason::Locked => &self.aborts_locked,
            AbortReason::Timeout => &self.aborts_timeout,
            AbortReason::LockAcquire => &self.aborts_lock_acquire,
            AbortReason::Explicit => &self.aborts_explicit,
            AbortReason::Durability => &self.aborts_durability,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
        self.aborted_reads.fetch_add(ops.reads, Ordering::Relaxed);
        self.aborted_writes.fetch_add(ops.writes, Ordering::Relaxed);
        self.aborted_cmps.fetch_add(ops.cmps, Ordering::Relaxed);
        self.aborted_cmp_pairs
            .fetch_add(ops.cmp_pairs, Ordering::Relaxed);
        self.aborted_incs.fetch_add(ops.incs, Ordering::Relaxed);
        self.aborted_promotes
            .fetch_add(ops.promotes, Ordering::Relaxed);
    }

    fn merge_into(&self, out: &mut StatsSnapshot) {
        out.commits += self.commits.load(Ordering::Relaxed);
        out.aborts_validation += self.aborts_validation.load(Ordering::Relaxed);
        out.aborts_locked += self.aborts_locked.load(Ordering::Relaxed);
        out.aborts_timeout += self.aborts_timeout.load(Ordering::Relaxed);
        out.aborts_lock_acquire += self.aborts_lock_acquire.load(Ordering::Relaxed);
        out.aborts_explicit += self.aborts_explicit.load(Ordering::Relaxed);
        out.aborts_durability += self.aborts_durability.load(Ordering::Relaxed);
        out.reads += self.reads.load(Ordering::Relaxed);
        out.writes += self.writes.load(Ordering::Relaxed);
        out.cmps += self.cmps.load(Ordering::Relaxed);
        out.cmp_pairs += self.cmp_pairs.load(Ordering::Relaxed);
        out.incs += self.incs.load(Ordering::Relaxed);
        out.promotes += self.promotes.load(Ordering::Relaxed);
        out.aborted_reads += self.aborted_reads.load(Ordering::Relaxed);
        out.aborted_writes += self.aborted_writes.load(Ordering::Relaxed);
        out.aborted_cmps += self.aborted_cmps.load(Ordering::Relaxed);
        out.aborted_cmp_pairs += self.aborted_cmp_pairs.load(Ordering::Relaxed);
        out.aborted_incs += self.aborted_incs.load(Ordering::Relaxed);
        out.aborted_promotes += self.aborted_promotes.load(Ordering::Relaxed);
    }
}

// --- histograms -----------------------------------------------------------

/// 8 sub-buckets per power-of-two octave, HDR-histogram style: values
/// below 8 get an exact bucket each; larger values land in the bucket
/// `(msb - 2) * 8 + ((v >> (msb - 3)) - 8)`, giving a worst-case
/// relative error of 12.5% across the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 62 * 8;

/// Map a value to its bucket index.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (msb - 3)) - 8) as usize;
        (msb - 2) * 8 + sub
    }
}

/// The smallest value mapping to bucket `i` (the value reported for any
/// sample in that bucket — quantiles are therefore lower bounds).
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i < 8 {
        i as u64
    } else {
        let shift = i / 8 - 1;
        ((8 + (i % 8)) as u64) << shift
    }
}

/// A fixed-size concurrent histogram: one relaxed `fetch_add` per
/// sample, no allocation after construction, mergeable by snapshotting.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        let mut v = Vec::with_capacity(HISTOGRAM_BUCKETS);
        v.resize_with(HISTOGRAM_BUCKETS, || AtomicU64::new(0));
        Histogram {
            buckets: v.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            // Sentinel: `fetch_min` pulls this down on the first sample;
            // the snapshot reports 0 while the histogram is empty.
            min: AtomicU64::new(u64::MAX),
        }
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Copy out a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let raw_min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            // The sentinel can also be visible transiently when a racing
            // `record` has bumped `count` but not yet lowered `min`.
            min: if count == 0 || raw_min == u64::MAX {
                0
            } else {
                raw_min
            },
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile accessors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

impl HistogramSnapshot {
    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples (bucketing never loses the sum,
    /// which is what lets tests assert exact invariants).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded sample (exact), 0 when empty.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Mean of all recorded samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` — the lower bound of the
    /// bucket containing the `⌈q·count⌉`-th smallest sample (≤ the true
    /// quantile, within the 12.5% bucket width). 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_lower_bound(i);
            }
        }
        self.max
    }

    /// Median (see [`Self::value_at_quantile`]).
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }
    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.value_at_quantile(0.90)
    }
    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// Non-empty buckets as `(lower_bound, sample_count)` pairs, in
    /// ascending value order — the exporter's raw material.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower_bound(i), c))
    }
}

// --- abort trace ----------------------------------------------------------

/// One aborted attempt, as recorded at [`TelemetryLevel::Trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbortEvent {
    /// Nanoseconds since the owning [`Telemetry`] (i.e. the `Stm`) was
    /// created — a per-instance monotonic timeline shared by all threads.
    pub timestamp_ns: u64,
    /// Algorithm the instance runs (carried so merged dumps from several
    /// instances stay attributable).
    pub algorithm: Algorithm,
    /// Why the attempt aborted.
    pub reason: AbortReason,
    /// Best-effort attribution: the conflicting address/orec and the
    /// committer that caused the abort, where the algorithm knew them.
    pub conflict: Conflict,
    /// 1-based attempt number within its transaction (1 = first try).
    pub attempt: u32,
    /// Read-set entries at abort time.
    pub read_set: usize,
    /// Compare-set entries at abort time (0 for the NOrec family).
    pub compare_set: usize,
}

// --- flight-recorder spans ------------------------------------------------

/// One transaction attempt as recorded at [`TelemetryLevel::Spans`]:
/// a begin/end interval with optional intra-attempt phase marks and,
/// for aborted attempts, the attributed cause. The raw material of the
/// Chrome trace-event export ([`crate::chrome`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// [Thread token](crate::util::thread_token) of the executing
    /// thread — one timeline track per thread.
    pub thread: u64,
    /// Attempt start, nanoseconds on the owning [`Telemetry`] timeline.
    pub start_ns: u64,
    /// Attempt end (commit completed or abort detected).
    pub end_ns: u64,
    /// When validation first ran within this attempt, if it did.
    pub validate_ns: Option<u64>,
    /// When commit-time lock acquisition first ran, if it did.
    pub lock_ns: Option<u64>,
    /// When writeback first ran, if it did.
    pub writeback_ns: Option<u64>,
    /// 1-based attempt number within its transaction.
    pub attempt: u32,
    /// Read-set entries at attempt end.
    pub read_set: usize,
    /// Write-set entries at attempt end.
    pub write_set: usize,
    /// Compare-set entries at attempt end (0 for the NOrec family).
    pub compare_set: usize,
    /// `None` for a committed attempt; the cause and attribution for an
    /// aborted one.
    pub abort: Option<(AbortReason, Conflict)>,
}

impl SpanEvent {
    /// Did this attempt commit?
    #[inline]
    pub fn committed(&self) -> bool {
        self.abort.is_none()
    }

    /// Attempt duration in nanoseconds.
    #[inline]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Intra-attempt phase-timestamp recorder, embedded in the per-thread
/// transaction contexts. Construction from
/// [`Telemetry::phase_recorder`] materialises the `level >= Spans`
/// check once into the `epoch` field: a disabled recorder's marks are
/// a single always-false branch, so the `Counters` hot path takes no
/// clock reads.
///
/// Marks are first-wins within an attempt ([`PhaseRecorder::reset`]
/// clears them at attempt begin), so a validation retry loop records
/// when validation *started*.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseRecorder {
    epoch: Option<Instant>,
    validate_ns: Option<u64>,
    lock_ns: Option<u64>,
    writeback_ns: Option<u64>,
}

impl PhaseRecorder {
    /// A recorder whose marks are no-ops (telemetry below `Spans`).
    #[inline]
    pub fn disabled() -> PhaseRecorder {
        PhaseRecorder::default()
    }

    /// A live recorder stamping nanoseconds since `epoch` (the owning
    /// [`Telemetry`]'s creation instant, so marks share the span
    /// timeline).
    #[inline]
    pub fn enabled(epoch: Instant) -> PhaseRecorder {
        PhaseRecorder {
            epoch: Some(epoch),
            ..PhaseRecorder::default()
        }
    }

    /// Is this recorder live?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.epoch.is_some()
    }

    #[inline]
    fn stamp(&self) -> Option<u64> {
        self.epoch.map(|e| e.elapsed().as_nanos() as u64)
    }

    /// Mark the start of validation (first call per attempt wins).
    #[inline]
    pub fn mark_validate(&mut self) {
        if self.validate_ns.is_none() {
            self.validate_ns = self.stamp();
        }
    }

    /// Mark the start of commit-time lock acquisition.
    #[inline]
    pub fn mark_lock(&mut self) {
        if self.lock_ns.is_none() {
            self.lock_ns = self.stamp();
        }
    }

    /// Mark the start of writeback.
    #[inline]
    pub fn mark_writeback(&mut self) {
        if self.writeback_ns.is_none() {
            self.writeback_ns = self.stamp();
        }
    }

    /// Clear the marks for a fresh attempt (keeps the epoch).
    #[inline]
    pub fn reset(&mut self) {
        self.validate_ns = None;
        self.lock_ns = None;
        self.writeback_ns = None;
    }

    /// The validation mark, if any.
    #[inline]
    pub fn validate_ns(&self) -> Option<u64> {
        self.validate_ns
    }

    /// The lock-acquisition mark, if any.
    #[inline]
    pub fn lock_ns(&self) -> Option<u64> {
        self.lock_ns
    }

    /// The writeback mark, if any.
    #[inline]
    pub fn writeback_ns(&self) -> Option<u64> {
        self.writeback_ns
    }
}

// --- sampler --------------------------------------------------------------

/// One point of the throughput/abort-rate time series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplePoint {
    /// Seconds since sampling started, at the end of this interval.
    pub t_secs: f64,
    /// Length of this interval in seconds.
    pub dt_secs: f64,
    /// Commits in this interval.
    pub commits: u64,
    /// Conflict aborts in this interval.
    pub conflict_aborts: u64,
    /// Commits per second over this interval.
    pub throughput: f64,
    /// Conflict-abort percentage over this interval.
    pub abort_pct: f64,
}

/// Interval snapshot-differ: feed it absolute [`StatsSnapshot`]s and it
/// emits per-interval [`SamplePoint`]s. Drives the time-series export.
#[derive(Debug)]
pub struct Sampler {
    started: Instant,
    prev: StatsSnapshot,
    prev_t: f64,
}

impl Sampler {
    /// Start sampling from the given baseline snapshot at t = 0.
    pub fn new(baseline: StatsSnapshot) -> Sampler {
        Sampler {
            started: Instant::now(),
            prev: baseline,
            prev_t: 0.0,
        }
    }

    /// Take a sample now (wall clock measured internally).
    pub fn sample(&mut self, snapshot: StatsSnapshot) -> SamplePoint {
        let t = self.started.elapsed().as_secs_f64();
        self.sample_at(t, snapshot)
    }

    /// Take a sample with an externally supplied timestamp (seconds since
    /// sampling started). Deterministic, for tests.
    pub fn sample_at(&mut self, t_secs: f64, snapshot: StatsSnapshot) -> SamplePoint {
        let delta = snapshot.since(&self.prev);
        let dt = (t_secs - self.prev_t).max(1e-9);
        self.prev = snapshot;
        self.prev_t = t_secs;
        SamplePoint {
            t_secs,
            dt_secs: dt,
            commits: delta.commits,
            conflict_aborts: delta.conflict_aborts(),
            throughput: delta.commits as f64 / dt,
            abort_pct: delta.abort_pct(),
        }
    }
}

// --- the front object -----------------------------------------------------

/// All telemetry state of one [`crate::Stm`] instance.
pub struct Telemetry {
    level: TelemetryLevel,
    algorithm: Algorithm,
    started: Instant,
    shards: Box<[StatShard]>,
    commit_latency_ns: Histogram,
    attempts_per_commit: Histogram,
    commit_read_set: Histogram,
    commit_compare_set: Histogram,
    backoff_spins: Histogram,
    traces: Box<[Mutex<EventRing<AbortEvent>>]>,
    spans: Box<[Mutex<EventRing<SpanEvent>>]>,
    hot: Box<[HotSketch]>,
    edges: Box<[EdgeTable]>,
    rates: Mutex<RateState>,
}

/// One smoothed rate window from [`Telemetry::rates`]: commit/abort
/// rates and average set sizes, EWMA-folded across sampling windows.
///
/// Built **entirely from the Counters tier** — one [`StatsSnapshot`]
/// merge per call, no histogram, trace, or span access — so a controller
/// polling it never touches a Spans-gated path and costs nothing between
/// calls (pull-based; there is no background sampling).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RateEwma {
    /// Commits per second (smoothed).
    pub commit_rate: f64,
    /// Conflict aborts per attempt, 0..1 (smoothed).
    pub abort_ratio: f64,
    /// Read-set entries per committed transaction — plain reads plus
    /// semantic compares, both forms (smoothed).
    pub avg_read_set: f64,
    /// Write-set entries per committed transaction — writes plus
    /// deferred increments (smoothed).
    pub avg_write_set: f64,
    /// Operations wasted in aborted attempts, as a fraction of all
    /// operations observed in the window (smoothed).
    pub wasted_ratio: f64,
    /// Fraction of committed operations using the semantic API
    /// (`cmp`/`inc`), 0..1 (smoothed). Stays 0 under baseline modes,
    /// where the semantic calls delegate to plain reads/writes.
    pub semantic_share: f64,
    /// Commits in the **raw** newest window (not smoothed) — the
    /// controller's "is there enough signal" gate.
    pub window_commits: u64,
    /// Length of the raw newest window in seconds.
    pub window_secs: f64,
}

#[derive(Default)]
struct RateState {
    prev: StatsSnapshot,
    prev_ns: u64,
    ewma: Option<RateEwma>,
}

fn fold(alpha: f64, prev: f64, next: f64) -> f64 {
    prev + alpha * (next - prev)
}

impl Telemetry {
    /// Create telemetry state for one runtime instance. `trace_capacity`
    /// is the per-thread ring capacity (newest events win) — it governs
    /// both the abort-event rings (≥ `Trace`) and the span rings
    /// (≥ `Spans`). See [`crate::StmConfig::trace_capacity`] for the
    /// memory cost.
    pub fn new(level: TelemetryLevel, algorithm: Algorithm, trace_capacity: usize) -> Telemetry {
        let mut shards = Vec::with_capacity(SHARDS);
        shards.resize_with(SHARDS, StatShard::default);
        // The rings only ever see events at their level or above; size
        // them to 1 otherwise so a disabled trace costs a few words, not
        // megabytes.
        let ring_capacity = if level >= TelemetryLevel::Trace {
            trace_capacity.max(1)
        } else {
            1
        };
        let span_capacity = if level >= TelemetryLevel::Spans {
            trace_capacity.max(1)
        } else {
            1
        };
        let spans_on = level >= TelemetryLevel::Spans;
        let mut traces = Vec::with_capacity(SHARDS);
        traces.resize_with(SHARDS, || Mutex::new(EventRing::new(ring_capacity)));
        let mut spans = Vec::with_capacity(SHARDS);
        spans.resize_with(SHARDS, || Mutex::new(EventRing::new(span_capacity)));
        let mut hot = Vec::with_capacity(SHARDS);
        hot.resize_with(SHARDS, || HotSketch::new(spans_on));
        let mut edges = Vec::with_capacity(SHARDS);
        edges.resize_with(SHARDS, EdgeTable::new);
        Telemetry {
            level,
            algorithm,
            started: Instant::now(),
            shards: shards.into_boxed_slice(),
            commit_latency_ns: Histogram::default(),
            attempts_per_commit: Histogram::default(),
            commit_read_set: Histogram::default(),
            commit_compare_set: Histogram::default(),
            backoff_spins: Histogram::default(),
            traces: traces.into_boxed_slice(),
            spans: spans.into_boxed_slice(),
            hot: hot.into_boxed_slice(),
            edges: edges.into_boxed_slice(),
            rates: Mutex::new(RateState::default()),
        }
    }

    /// The configured recording level.
    #[inline]
    pub fn level(&self) -> TelemetryLevel {
        self.level
    }

    /// Nanoseconds since this instance was created (the trace timeline).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// The calling thread's counter shard. Cache the reference once per
    /// transaction, not per event: the `thread_token()` TLS read is cheap
    /// but not free.
    #[inline]
    pub fn shard(&self) -> &StatShard {
        &self.shards[crate::util::thread_token() as usize % SHARDS]
    }

    /// Merge all shards into one [`StatsSnapshot`].
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut out = StatsSnapshot::default();
        for s in self.shards.iter() {
            s.merge_into(&mut out);
        }
        out
    }

    /// Advance the rate window and return the smoothed rates: the delta
    /// between the previous call's [`StatsSnapshot`] and now, folded into
    /// EWMAs with weight `alpha` (the newest window's share, `0 < α ≤ 1`).
    ///
    /// Counters tier only — the one consumer pattern is a controller (or
    /// sampler) polling at its own cadence; the window state is shared,
    /// so interleaving *independent* pollers would split the windows
    /// between them. The first call's window spans from construction.
    pub fn rates(&self, alpha: f64) -> RateEwma {
        let now_ns = self.elapsed_ns();
        let snap = self.snapshot();
        let mut state = self.rates.lock().expect("rate state poisoned");
        let dt = (now_ns.saturating_sub(state.prev_ns)) as f64 / 1e9;
        let d = |cur: u64, prev: u64| cur.saturating_sub(prev) as f64;
        let p = &state.prev;
        let commits = d(snap.commits, p.commits);
        let aborts = d(snap.conflict_aborts(), p.conflict_aborts());
        let attempts = commits + d(snap.total_aborts(), p.total_aborts());
        let reads = d(snap.reads, p.reads) + d(snap.cmps, p.cmps) + d(snap.cmp_pairs, p.cmp_pairs);
        let writes = d(snap.writes, p.writes) + d(snap.incs, p.incs);
        let semantic = d(snap.cmps, p.cmps) + d(snap.cmp_pairs, p.cmp_pairs) + d(snap.incs, p.incs);
        let committed_ops = reads + writes;
        let wasted = d(snap.aborted_reads, p.aborted_reads)
            + d(snap.aborted_writes, p.aborted_writes)
            + d(snap.aborted_cmps, p.aborted_cmps)
            + d(snap.aborted_cmp_pairs, p.aborted_cmp_pairs)
            + d(snap.aborted_incs, p.aborted_incs);
        let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
        let window = RateEwma {
            commit_rate: ratio(commits, dt.max(1e-9)),
            abort_ratio: ratio(aborts, attempts),
            avg_read_set: ratio(reads, commits),
            avg_write_set: ratio(writes, commits),
            wasted_ratio: ratio(wasted, committed_ops + wasted),
            semantic_share: ratio(semantic, committed_ops),
            window_commits: commits as u64,
            window_secs: dt,
        };
        let alpha = alpha.clamp(f64::MIN_POSITIVE, 1.0);
        let smoothed = match state.ewma {
            None => window,
            Some(prev) => RateEwma {
                commit_rate: fold(alpha, prev.commit_rate, window.commit_rate),
                abort_ratio: fold(alpha, prev.abort_ratio, window.abort_ratio),
                avg_read_set: fold(alpha, prev.avg_read_set, window.avg_read_set),
                avg_write_set: fold(alpha, prev.avg_write_set, window.avg_write_set),
                wasted_ratio: fold(alpha, prev.wasted_ratio, window.wasted_ratio),
                semantic_share: fold(alpha, prev.semantic_share, window.semantic_share),
                window_commits: window.window_commits,
                window_secs: window.window_secs,
            },
        };
        state.prev = snap;
        state.prev_ns = now_ns;
        state.ewma = Some(smoothed);
        smoothed
    }

    /// Record the profile of a committed transaction (histogram level).
    #[inline]
    pub fn record_commit_profile(
        &self,
        latency_ns: u64,
        attempts: u64,
        read_set: usize,
        compare_set: usize,
    ) {
        self.commit_latency_ns.record(latency_ns);
        self.attempts_per_commit.record(attempts);
        self.commit_read_set.record(read_set as u64);
        self.commit_compare_set.record(compare_set as u64);
    }

    /// Record a contention-manager pause (histogram level; spin counts
    /// of zero still count a sample so yield-only policies show up).
    #[inline]
    pub fn record_backoff(&self, spins: u64) {
        self.backoff_spins.record(spins);
    }

    /// Append an abort event to the calling thread's trace ring.
    pub fn record_abort_event(
        &self,
        reason: AbortReason,
        conflict: Conflict,
        attempt: u32,
        rs: usize,
        cs: usize,
    ) {
        let event = AbortEvent {
            timestamp_ns: self.elapsed_ns(),
            algorithm: self.algorithm,
            reason,
            conflict,
            attempt,
            read_set: rs,
            compare_set: cs,
        };
        let slot = crate::util::thread_token() as usize % SHARDS;
        if let Ok(mut ring) = self.traces[slot].lock() {
            ring.push(event);
        }
    }

    /// A [`PhaseRecorder`] appropriate for this telemetry level: live
    /// (sharing this instance's timeline) at `Spans`, inert below.
    #[inline]
    pub fn phase_recorder(&self) -> PhaseRecorder {
        if self.level >= TelemetryLevel::Spans {
            PhaseRecorder::enabled(self.started)
        } else {
            PhaseRecorder::disabled()
        }
    }

    /// Append a flight-recorder span to the calling thread's span ring
    /// (spans level).
    pub fn record_span(&self, event: SpanEvent) {
        let slot = crate::util::thread_token() as usize % SHARDS;
        if let Ok(mut ring) = self.spans[slot].lock() {
            ring.push(event);
        }
    }

    /// Feed an abort's attribution into the hot-address sketch and the
    /// who-aborted-whom table (spans level). `victim` is the aborted
    /// transaction's thread token.
    pub fn record_conflict(&self, victim: u64, conflict: Conflict) {
        let slot = victim as usize % SHARDS;
        if let Some(addr) = conflict.addr() {
            self.hot[slot].record(addr.index() as u32);
        }
        if let Some(by) = conflict.by() {
            self.edges[slot].record(victim, by);
        }
    }

    /// End-to-end commit latency in nanoseconds (histogram level).
    pub fn commit_latency_ns(&self) -> HistogramSnapshot {
        self.commit_latency_ns.snapshot()
    }
    /// Attempts needed per committed transaction (histogram level).
    pub fn attempts_per_commit(&self) -> HistogramSnapshot {
        self.attempts_per_commit.snapshot()
    }
    /// Read-set size at commit (histogram level).
    pub fn commit_read_set(&self) -> HistogramSnapshot {
        self.commit_read_set.snapshot()
    }
    /// Compare-set size at commit (histogram level; all-zero for the
    /// NOrec family and the delegating baselines).
    pub fn commit_compare_set(&self) -> HistogramSnapshot {
        self.commit_compare_set.snapshot()
    }
    /// Contention-manager spins per pause (histogram level).
    pub fn backoff_spins(&self) -> HistogramSnapshot {
        self.backoff_spins.snapshot()
    }

    /// All retained abort events, merged across threads and sorted by
    /// timestamp. Each thread retains at most `trace_capacity` newest
    /// events; [`EventRing::evicted`] tells how many were dropped.
    pub fn trace_events(&self) -> Vec<AbortEvent> {
        let mut out = Vec::new();
        for ring in self.traces.iter() {
            if let Ok(ring) = ring.lock() {
                out.extend(ring.iter().copied());
            }
        }
        out.sort_by_key(|e| e.timestamp_ns);
        out
    }

    /// Total abort events evicted from trace rings (trace truncation
    /// indicator: nonzero means the dump is missing the oldest events).
    pub fn trace_evicted(&self) -> u64 {
        self.traces
            .iter()
            .filter_map(|r| r.lock().ok().map(|ring| ring.evicted()))
            .sum()
    }

    /// All retained flight-recorder spans, merged across threads and
    /// sorted by start time. Each thread retains at most
    /// `trace_capacity` newest spans.
    pub fn span_events(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for ring in self.spans.iter() {
            if let Ok(ring) = ring.lock() {
                out.extend(ring.iter().copied());
            }
        }
        out.sort_by_key(|e| (e.start_ns, e.end_ns));
        out
    }

    /// Total spans evicted from span rings (nonzero means the timeline
    /// is missing its oldest attempts).
    pub fn spans_evicted(&self) -> u64 {
        self.spans
            .iter()
            .filter_map(|r| r.lock().ok().map(|ring| ring.evicted()))
            .sum()
    }

    /// The most contended heap addresses seen by abort attribution,
    /// ranked by estimated conflict count (descending; ties broken by
    /// address for determinism). Merges the per-shard sketches; the
    /// estimates are count-min upper bounds, so ranks are reliable for
    /// genuinely hot addresses and noisy for one-off conflicts. Empty
    /// below [`TelemetryLevel::Spans`].
    pub fn hot_addresses(&self) -> Vec<(Addr, u64)> {
        let mut agg: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for sketch in self.hot.iter() {
            for (addr, weight) in sketch.entries() {
                *agg.entry(addr).or_insert(0) += weight;
            }
        }
        let mut out: Vec<(u32, u64)> = agg.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.into_iter()
            .map(|(a, w)| (Addr::from_index(a as usize), w))
            .collect()
    }

    /// The who-aborted-whom summary: aggregated `(victim, aborter)`
    /// thread pairs with abort counts, heaviest first (ties broken by
    /// victim then aborter token). Empty below
    /// [`TelemetryLevel::Spans`], and only as complete as the
    /// algorithms' attribution (TL2 lock conflicts name the owner
    /// exactly; NOrec validation failures use the most-recent-committer
    /// heuristic).
    pub fn conflict_edges(&self) -> Vec<ConflictEdge> {
        let mut agg: std::collections::HashMap<(u64, u64), u64> = std::collections::HashMap::new();
        for table in self.edges.iter() {
            for e in table.entries() {
                *agg.entry((e.victim, e.by)).or_insert(0) += e.count;
            }
        }
        let mut out: Vec<ConflictEdge> = agg
            .into_iter()
            .map(|((victim, by), count)| ConflictEdge { victim, by, count })
            .collect();
        out.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(a.victim.cmp(&b.victim))
                .then(a.by.cmp(&b.by))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(TelemetryLevel::Counters < TelemetryLevel::Histograms);
        assert!(TelemetryLevel::Histograms < TelemetryLevel::Trace);
        assert!(TelemetryLevel::Trace < TelemetryLevel::Spans);
    }

    #[test]
    fn rates_windows_diff_counters_and_fold_ewma() {
        use crate::stats::OpCounts;
        let t = Telemetry::new(TelemetryLevel::Counters, Algorithm::SNOrec, 1);
        let commit = |reads: u64, writes: u64| {
            t.shard().record_commit(&OpCounts {
                reads,
                writes,
                ..OpCounts::default()
            })
        };
        for _ in 0..10 {
            commit(8, 2);
        }
        let w1 = t.rates(1.0); // α = 1: no smoothing, raw window
        assert_eq!(w1.window_commits, 10);
        assert_eq!(w1.avg_read_set, 8.0);
        assert_eq!(w1.avg_write_set, 2.0);
        assert_eq!(w1.abort_ratio, 0.0);
        assert!(w1.commit_rate > 0.0);
        // Second window: different profile, half-weight smoothing.
        for _ in 0..10 {
            commit(16, 0);
        }
        let w2 = t.rates(0.5);
        assert_eq!(w2.window_commits, 10, "window is the delta, not totals");
        assert_eq!(w2.avg_read_set, 12.0, "EWMA of 8 and 16 at α = 0.5");
        assert_eq!(w2.avg_write_set, 1.0);
        // Counters tier throughout: no Spans-gated state was touched.
        assert!(t.hot_addresses().is_empty());
        assert!(t.span_events().is_empty());
    }

    #[test]
    fn bucket_index_is_exact_below_eight() {
        for v in 0..8 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_monotone_and_consistent() {
        // Every bucket's lower bound must map back to that bucket, and
        // bounds must strictly increase.
        let mut prev = None;
        for i in 0..HISTOGRAM_BUCKETS {
            let lb = bucket_lower_bound(i);
            assert_eq!(bucket_index(lb), i, "lower bound of bucket {i}");
            if let Some(p) = prev {
                assert!(lb > p, "bucket {i} bound not increasing");
            }
            prev = Some(lb);
        }
        // And the extremes are representable.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        let mut rng = crate::util::SplitMix64::new(11);
        for _ in 0..10_000 {
            let v = rng.next_u64() >> rng.below(60);
            let lb = bucket_lower_bound(bucket_index(v));
            assert!(lb <= v);
            // Lower bound within 12.5% of the sample.
            assert!((v - lb) as f64 <= 0.125 * v as f64 + 1.0, "v={v} lb={lb}");
        }
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum(), 5050);
        assert_eq!(s.max(), 100);
        // Exact below 8; bucketed (≤12.5% low) above.
        let p50 = s.p50();
        assert!(p50 <= 50 && p50 as f64 >= 50.0 * 0.875 - 1.0, "p50={p50}");
        let p99 = s.p99();
        assert!(p99 <= 99 && p99 as f64 >= 99.0 * 0.875 - 1.0, "p99={p99}");
        assert_eq!(s.value_at_quantile(0.0), 1, "q=0 is the minimum sample");
        let p100 = s.value_at_quantile(1.0);
        assert!(p100 <= 100 && p100 as f64 >= 100.0 * 0.875, "p100={p100}");
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.nonzero_buckets().count(), 0);
    }

    #[test]
    fn nonzero_buckets_cover_all_samples() {
        let h = Histogram::default();
        for v in [0u64, 1, 7, 8, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let total: u64 = s.nonzero_buckets().map(|(_, c)| c).sum();
        assert_eq!(total, s.count());
    }

    #[test]
    fn shard_merge_sums_counts() {
        let t = Telemetry::new(TelemetryLevel::Counters, Algorithm::SNOrec, 16);
        let ops = OpCounts {
            reads: 2,
            incs: 1,
            ..OpCounts::default()
        };
        // Write into two different shards directly.
        t.shards[0].record_commit(&ops);
        t.shards[1].record_commit(&ops);
        t.shards[1].record_abort(AbortReason::Validation, &ops);
        let s = t.snapshot();
        assert_eq!(s.commits, 2);
        assert_eq!(s.reads, 4);
        assert_eq!(s.incs, 2);
        assert_eq!(s.aborts_validation, 1);
        assert_eq!(s.aborted_reads, 2);
        assert_eq!(s.aborted_incs, 1);
    }

    #[test]
    fn sampler_emits_interval_deltas() {
        let s0 = StatsSnapshot {
            commits: 100,
            aborts_locked: 10,
            ..StatsSnapshot::default()
        };
        let mut sampler = Sampler::new(s0);
        let s1 = StatsSnapshot {
            commits: 300,
            aborts_locked: 110,
            ..StatsSnapshot::default()
        };
        let p = sampler.sample_at(2.0, s1);
        assert_eq!(p.commits, 200);
        assert_eq!(p.conflict_aborts, 100);
        assert!((p.throughput - 100.0).abs() < 1e-9);
        assert!((p.abort_pct - 100.0 * 100.0 / 300.0).abs() < 1e-9);
        // Second interval differences against the previous sample.
        let s2 = StatsSnapshot {
            commits: 310,
            aborts_locked: 110,
            ..StatsSnapshot::default()
        };
        let p2 = sampler.sample_at(3.0, s2);
        assert_eq!(p2.commits, 10);
        assert_eq!(p2.conflict_aborts, 0);
        assert!((p2.dt_secs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trace_records_and_sorts_events() {
        let t = Telemetry::new(TelemetryLevel::Trace, Algorithm::STl2, 8);
        t.record_abort_event(AbortReason::Validation, Conflict::NONE, 1, 3, 2);
        t.record_abort_event(AbortReason::Locked, Conflict::NONE, 2, 5, 0);
        let events = t.trace_events();
        assert_eq!(events.len(), 2);
        assert!(events[0].timestamp_ns <= events[1].timestamp_ns);
        assert_eq!(events[0].reason, AbortReason::Validation);
        assert_eq!(events[0].algorithm, Algorithm::STl2);
        assert!(events[0].conflict.is_none());
        assert_eq!(t.trace_evicted(), 0);
    }

    #[test]
    fn trace_events_carry_attribution() {
        let t = Telemetry::new(TelemetryLevel::Trace, Algorithm::SNOrec, 8);
        let conflict = crate::error::Abort::validation()
            .at_addr(Addr::from_index(42))
            .by(7)
            .conflict();
        t.record_abort_event(AbortReason::Validation, conflict, 1, 3, 0);
        let events = t.trace_events();
        assert_eq!(events[0].conflict.addr(), Some(Addr::from_index(42)));
        assert_eq!(events[0].conflict.by(), Some(7));
    }

    #[test]
    fn histogram_min_tracks_smallest_sample() {
        let h = Histogram::default();
        assert_eq!(h.snapshot().min(), 0, "empty histogram reports 0");
        h.record(500);
        assert_eq!(h.snapshot().min(), 500);
        h.record(3);
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.min(), 3);
        assert_eq!(s.max(), 1000);
        assert!(s.min() <= s.max());
    }

    #[test]
    fn histogram_min_handles_zero_sample() {
        let h = Histogram::default();
        h.record(0);
        h.record(9);
        assert_eq!(h.snapshot().min(), 0);
        assert_eq!(h.snapshot().count(), 2);
    }

    // Satellite: deterministic property sweep over the bucketing maps.
    #[test]
    fn bucket_lower_bound_never_exceeds_value() {
        let mut values = vec![0u64, 1, u64::MAX];
        for k in 0..64u32 {
            let p = 1u64 << k;
            values.push(p);
            values.push(p.saturating_sub(1));
            values.push(p.saturating_add(1));
        }
        let mut rng = crate::util::SplitMix64::new(0xB0C4_0001);
        for _ in 0..10_000 {
            // Shift to cover every magnitude, not just 64-bit values.
            values.push(rng.next_u64() >> rng.below(64));
        }
        for &v in &values {
            let i = bucket_index(v);
            assert!(i < HISTOGRAM_BUCKETS, "v={v} index={i} out of range");
            let lb = bucket_lower_bound(i);
            assert!(lb <= v, "v={v} bucket={i} lower_bound={lb}");
        }
    }

    #[test]
    fn value_at_quantile_is_monotone_in_q() {
        let h = Histogram::default();
        let mut rng = crate::util::SplitMix64::new(0xB0C4_0002);
        for _ in 0..2_000 {
            h.record(rng.next_u64() >> rng.below(60));
        }
        let s = h.snapshot();
        let mut prev = 0u64;
        for step in 0..=100u32 {
            let q = step as f64 / 100.0;
            let v = s.value_at_quantile(q);
            assert!(v >= prev, "quantile not monotone: q={q} v={v} prev={prev}");
            prev = v;
        }
        assert!(s.value_at_quantile(1.0) <= s.max());
        assert!(s.value_at_quantile(0.0) >= s.min().min(1));
    }

    #[test]
    fn span_ring_records_and_sorts() {
        let t = Telemetry::new(TelemetryLevel::Spans, Algorithm::SNOrec, 8);
        let span = |start: u64, end: u64, abort| SpanEvent {
            thread: 1,
            start_ns: start,
            end_ns: end,
            validate_ns: None,
            lock_ns: None,
            writeback_ns: None,
            attempt: 1,
            read_set: 2,
            write_set: 1,
            compare_set: 0,
            abort,
        };
        t.record_span(span(
            50,
            90,
            Some((AbortReason::Validation, Conflict::NONE)),
        ));
        t.record_span(span(10, 40, None));
        let spans = t.span_events();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start_ns, 10);
        assert!(spans[0].committed());
        assert_eq!(spans[0].duration_ns(), 30);
        assert!(!spans[1].committed());
        assert_eq!(t.spans_evicted(), 0);
    }

    #[test]
    fn span_ring_capacity_follows_trace_capacity() {
        let t = Telemetry::new(TelemetryLevel::Spans, Algorithm::NOrec, 2);
        for i in 0..5u64 {
            t.record_span(SpanEvent {
                thread: 1,
                start_ns: i,
                end_ns: i + 1,
                validate_ns: None,
                lock_ns: None,
                writeback_ns: None,
                attempt: 1,
                read_set: 0,
                write_set: 0,
                compare_set: 0,
                abort: None,
            });
        }
        assert_eq!(t.span_events().len(), 2, "ring keeps the newest 2");
        assert_eq!(t.spans_evicted(), 3);
    }

    #[test]
    fn phase_recorder_disabled_records_nothing() {
        let mut p = PhaseRecorder::disabled();
        assert!(!p.is_enabled());
        p.mark_validate();
        p.mark_lock();
        p.mark_writeback();
        assert_eq!(p.validate_ns(), None);
        assert_eq!(p.lock_ns(), None);
        assert_eq!(p.writeback_ns(), None);
    }

    #[test]
    fn phase_recorder_marks_are_first_wins_and_resettable() {
        let mut p = PhaseRecorder::enabled(Instant::now());
        assert!(p.is_enabled());
        p.mark_validate();
        let first = p.validate_ns().expect("enabled recorder stamps");
        std::thread::sleep(std::time::Duration::from_millis(1));
        p.mark_validate();
        assert_eq!(p.validate_ns(), Some(first), "first mark wins");
        p.reset();
        assert_eq!(p.validate_ns(), None);
        assert!(p.is_enabled(), "reset keeps the epoch");
    }

    #[test]
    fn hot_addresses_rank_by_conflict_weight() {
        let t = Telemetry::new(TelemetryLevel::Spans, Algorithm::SNOrec, 8);
        let hit = |addr: usize| {
            crate::error::Abort::validation()
                .at_addr(Addr::from_index(addr))
                .conflict()
        };
        for _ in 0..20 {
            t.record_conflict(1, hit(5));
        }
        for _ in 0..3 {
            t.record_conflict(2, hit(9));
        }
        let hot = t.hot_addresses();
        assert!(hot.len() >= 2);
        assert_eq!(hot[0].0, Addr::from_index(5));
        assert!(hot[0].1 >= 20);
        assert_eq!(hot[1].0, Addr::from_index(9));
    }

    #[test]
    fn conflict_edges_aggregate_across_shards() {
        let t = Telemetry::new(TelemetryLevel::Spans, Algorithm::STl2, 8);
        let by = |token: u64| crate::error::Abort::locked().by(token).conflict();
        // Same edge recorded from two victims mapping to different shards.
        for _ in 0..4 {
            t.record_conflict(1, by(9));
        }
        t.record_conflict(2, by(9));
        let edges = t.conflict_edges();
        assert_eq!(
            edges[0],
            ConflictEdge {
                victim: 1,
                by: 9,
                count: 4
            }
        );
        assert!(edges.contains(&ConflictEdge {
            victim: 2,
            by: 9,
            count: 1
        }));
    }

    #[test]
    fn unattributed_conflicts_leave_sketches_empty() {
        let t = Telemetry::new(TelemetryLevel::Spans, Algorithm::NOrec, 8);
        t.record_conflict(1, Conflict::NONE);
        assert!(t.hot_addresses().is_empty());
        assert!(t.conflict_edges().is_empty());
    }
}
