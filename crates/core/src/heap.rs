//! The word-addressable transactional heap.
//!
//! All shared state accessed by transactions lives in a [`Heap`]: a flat,
//! pre-sized array of 64-bit words. An [`Addr`] is an index into that
//! array. This mirrors how the paper's STM algorithms (and RSTM / libitm)
//! treat memory: conflict detection happens at the granularity of machine
//! words identified by their address, with no knowledge of higher-level
//! types. The typed layer in [`crate::tvar`] is purely a convenience on
//! top.
//!
//! Allocation is a thread-safe bump pointer plus an optional free list of
//! fixed-size blocks (enough for the STAMP-style workloads, which allocate
//! nodes of a handful of distinct sizes and recycle them through pools).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Index of a 64-bit word in the transactional [`Heap`].
///
/// `Addr` is the "memory address" of the paper's `TM_READ(addr)` /
/// `TM_WRITE(addr)` / `TM_GT(addr, ..)` constructs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Addr(pub(crate) u32);

impl Addr {
    /// Address `self + i` — used for indexing into heap-allocated arrays.
    #[inline]
    pub fn offset(self, i: usize) -> Addr {
        Addr(self.0 + i as u32)
    }

    /// The raw word index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct an address from a raw word index.
    ///
    /// Intended for (de)serialising addresses across the IR boundary; the
    /// address must have been produced by an allocation on the same heap.
    #[inline]
    pub fn from_index(i: usize) -> Addr {
        Addr(u32::try_from(i).expect("heap address out of range"))
    }
}

/// A flat shared memory of 64-bit words.
///
/// Words hold `i64` values stored as raw bit patterns. Non-transactional
/// accessors (`load` / `store`) are provided for initialisation and for
/// checking results outside transactions; during concurrent execution all
/// accesses must go through a transaction.
pub struct Heap {
    words: Box<[AtomicU64]>,
    next: AtomicUsize,
}

impl Heap {
    /// Create a heap with capacity for `capacity` words, all zeroed.
    pub fn new(capacity: usize) -> Heap {
        let mut v = Vec::with_capacity(capacity);
        v.resize_with(capacity, || AtomicU64::new(0));
        Heap {
            words: v.into_boxed_slice(),
            next: AtomicUsize::new(0),
        }
    }

    /// Number of words this heap can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Number of words allocated so far.
    #[inline]
    pub fn allocated(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.words.len())
    }

    /// Allocate `n` contiguous words (zero-initialised at heap creation;
    /// reused blocks are *not* re-zeroed — callers that recycle memory
    /// through pools must initialise it).
    ///
    /// # Panics
    /// Panics if the heap is exhausted; the heap is a fixed-size arena by
    /// design (matching the static memory model of conflict detection —
    /// addresses stay meaningful for the lifetime of the `Stm`).
    pub fn alloc(&self, n: usize) -> Addr {
        assert!(n > 0, "zero-sized allocation");
        let start = self.next.fetch_add(n, Ordering::Relaxed);
        assert!(
            start + n <= self.words.len(),
            "transactional heap exhausted: capacity {} words, requested {} more",
            self.words.len(),
            n
        );
        Addr(start as u32)
    }

    /// Non-transactional (racy w.r.t. running transactions) word load.
    #[inline]
    pub fn load(&self, a: Addr) -> i64 {
        self.words[a.0 as usize].load(Ordering::SeqCst) as i64
    }

    /// Non-transactional word store. Only safe for program logic when no
    /// transaction is concurrently running (setup / teardown phases).
    #[inline]
    pub fn store(&self, a: Addr, v: i64) {
        self.words[a.0 as usize].store(v as u64, Ordering::SeqCst);
    }

    /// Word load used by the STM algorithms themselves.
    #[inline]
    pub(crate) fn tm_load(&self, a: Addr) -> i64 {
        self.words[a.0 as usize].load(Ordering::SeqCst) as i64
    }

    /// Word store used by the STM algorithms at commit time (caller must
    /// hold the appropriate lock: the NOrec sequence lock or the TL2 orec).
    #[inline]
    pub(crate) fn tm_store(&self, a: Addr, v: i64) {
        self.words[a.0 as usize].store(v as u64, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for Heap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heap")
            .field("capacity", &self.capacity())
            .field("allocated", &self.allocated())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_contiguous_and_monotonic() {
        let h = Heap::new(16);
        let a = h.alloc(4);
        let b = h.alloc(2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 4);
        assert_eq!(a.offset(3).index(), 3);
        assert_eq!(h.allocated(), 6);
    }

    #[test]
    fn load_store_roundtrip_negative() {
        let h = Heap::new(4);
        let a = h.alloc(1);
        h.store(a, -123456789);
        assert_eq!(h.load(a), -123456789);
        h.store(a, i64::MIN);
        assert_eq!(h.load(a), i64::MIN);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_past_capacity_panics() {
        let h = Heap::new(2);
        let _ = h.alloc(3);
    }

    #[test]
    fn concurrent_alloc_never_overlaps() {
        let h = std::sync::Arc::new(Heap::new(4096));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                (0..64).map(|_| h.alloc(4).index()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|j| j.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4 * 64, "allocations overlapped");
    }
}
