//! The word-addressable transactional heap.
//!
//! All shared state accessed by transactions lives in a [`Heap`]: a flat,
//! pre-sized array of 64-bit words. An [`Addr`] is an index into that
//! array. This mirrors how the paper's STM algorithms (and RSTM / libitm)
//! treat memory: conflict detection happens at the granularity of machine
//! words identified by their address, with no knowledge of higher-level
//! types. The typed layer in [`crate::tvar`] is purely a convenience on
//! top.
//!
//! Allocation is a thread-safe CAS-reserved bump pointer (enough for the
//! STAMP-style workloads, which allocate nodes of a handful of distinct
//! sizes and recycle them through pools).
//!
//! # Cache-line discipline
//!
//! Word index 0 sits on a 128-byte boundary and every run of
//! [`LINE_WORDS`] consecutive indices shares one cache line (the crate is
//! `forbid(unsafe_code)`, so instead of an aligned allocation the backing
//! array is over-allocated by one line and indexed at a runtime base
//! offset — one integer add on the access path). On top of that,
//! [`Heap::alloc_padded`] reserves whole cache lines, so independently
//! allocated nodes never false-share a line; see DESIGN.md §8.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Bytes per padding unit: two 64-byte cache lines, matching the
/// `#[repr(align(128))]` stat shards in [`crate::telemetry`] (adjacent-line
/// prefetchers pull line pairs, so 128 is the safe stride).
pub const LINE_BYTES: usize = 128;

/// Heap words per padding unit ([`LINE_BYTES`] / 8).
pub const LINE_WORDS: usize = LINE_BYTES / 8;

/// Index of a 64-bit word in the transactional [`Heap`].
///
/// `Addr` is the "memory address" of the paper's `TM_READ(addr)` /
/// `TM_WRITE(addr)` / `TM_GT(addr, ..)` constructs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Addr(pub(crate) u32);

impl Addr {
    /// Address `self + i` — used for indexing into heap-allocated arrays.
    ///
    /// # Panics
    /// Panics if `self + i` overflows the address space (`u32`). The old
    /// unchecked form truncated `i` to 32 bits and wrapped the add in
    /// release builds, silently aliasing an unrelated heap word — which
    /// corrupts value-based conflict detection rather than failing.
    #[inline]
    pub fn offset(self, i: usize) -> Addr {
        let i = u32::try_from(i)
            .ok()
            .and_then(|i| self.0.checked_add(i))
            .unwrap_or_else(|| panic!("address offset out of range: {} + {}", self.0, i));
        Addr(i)
    }

    /// The raw word index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct an address from a raw word index.
    ///
    /// Intended for (de)serialising addresses across the IR boundary; the
    /// address must have been produced by an allocation on the same heap.
    ///
    /// # Panics
    /// Panics if `i` does not fit the 32-bit address space.
    #[inline]
    pub fn from_index(i: usize) -> Addr {
        Addr(u32::try_from(i).expect("heap address out of range"))
    }
}

/// A flat shared memory of 64-bit words.
///
/// Words hold `i64` values stored as raw bit patterns. Non-transactional
/// accessors (`load` / `store`) are provided for initialisation and for
/// checking results outside transactions; during concurrent execution all
/// accesses must go through a transaction.
pub struct Heap {
    /// Backing store, over-allocated by `LINE_WORDS - 1` words; logical
    /// word `i` lives at `words[base + i]`.
    words: Box<[AtomicU64]>,
    /// Offset of logical word 0, chosen so it starts a 128-byte line.
    base: usize,
    /// Logical capacity in words (what `alloc` may hand out).
    capacity: usize,
    next: AtomicUsize,
}

impl Heap {
    /// Create a heap with capacity for `capacity` words, all zeroed, with
    /// word 0 cache-line-aligned.
    ///
    /// # Panics
    /// Panics if `capacity` exceeds the 32-bit [`Addr`] space (checked
    /// before the backing array is allocated).
    pub fn new(capacity: usize) -> Heap {
        assert!(
            capacity <= u32::MAX as usize + 1,
            "heap capacity {capacity} words exceeds the 32-bit address space"
        );
        let mut v = Vec::with_capacity(capacity + LINE_WORDS - 1);
        v.resize_with(capacity + LINE_WORDS - 1, || AtomicU64::new(0));
        let words = v.into_boxed_slice();
        // `as usize` on a pointer is safe (no deref); AtomicU64 is 8-byte
        // aligned, so the distance to the next 128-byte boundary is a
        // whole number of words.
        let addr = words.as_ptr() as usize;
        let base = (LINE_BYTES - (addr % LINE_BYTES)) % LINE_BYTES / 8;
        Heap {
            words,
            base,
            capacity,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of words this heap can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of words allocated so far. A failed (panicking) allocation
    /// does not change this — reservation is a CAS that only succeeds
    /// when the block fits.
    #[inline]
    pub fn allocated(&self) -> usize {
        self.next.load(Ordering::Relaxed)
    }

    /// Reserve `n` words starting at `next` rounded up by `align_up`,
    /// retrying the CAS under contention. Returns the reserved start.
    fn reserve(&self, n: usize, align: usize) -> usize {
        assert!(n > 0, "zero-sized allocation");
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            let start = cur.next_multiple_of(align);
            let end = start.saturating_add(n);
            assert!(
                end <= self.capacity,
                "transactional heap exhausted: capacity {} words, {} in use, requested {} more",
                self.capacity,
                cur,
                n
            );
            match self
                .next
                .compare_exchange_weak(cur, end, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return start,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Allocate `n` contiguous words (zero-initialised at heap creation;
    /// reused blocks are *not* re-zeroed — callers that recycle memory
    /// through pools must initialise it).
    ///
    /// # Panics
    /// Panics if the heap is exhausted; the heap is a fixed-size arena by
    /// design (matching the static memory model of conflict detection —
    /// addresses stay meaningful for the lifetime of the `Stm`). A failed
    /// allocation leaves the heap unchanged: the reservation is a CAS
    /// loop, not a blind `fetch_add`, so racing allocators cannot leak
    /// reservations past the arena.
    pub fn alloc(&self, n: usize) -> Addr {
        Addr::from_index(self.reserve(n, 1))
    }

    /// Allocate `n` contiguous words on a fresh cache line, consuming a
    /// whole number of lines so the *next* allocation (padded or not)
    /// starts on a different line. Opt-in layout mode for workload node
    /// pools: nodes allocated this way never false-share, at a cost of
    /// up to `LINE_WORDS - 1` words of slack per allocation.
    ///
    /// # Panics
    /// As [`Heap::alloc`].
    pub fn alloc_padded(&self, n: usize) -> Addr {
        assert!(n > 0, "zero-sized allocation");
        let lines = n.div_ceil(LINE_WORDS);
        Addr::from_index(self.reserve(lines * LINE_WORDS, LINE_WORDS))
    }

    /// Non-transactional (racy w.r.t. running transactions) word load.
    #[inline]
    pub fn load(&self, a: Addr) -> i64 {
        self.words[self.base + a.0 as usize].load(Ordering::SeqCst) as i64
    }

    /// Non-transactional word store. Only safe for program logic when no
    /// transaction is concurrently running (setup / teardown phases).
    #[inline]
    pub fn store(&self, a: Addr, v: i64) {
        self.words[self.base + a.0 as usize].store(v as u64, Ordering::SeqCst);
    }

    /// Word load used by the STM algorithms themselves.
    #[inline]
    pub(crate) fn tm_load(&self, a: Addr) -> i64 {
        self.words[self.base + a.0 as usize].load(Ordering::SeqCst) as i64
    }

    /// Word store used by the STM algorithms at commit time (caller must
    /// hold the appropriate lock: the NOrec sequence lock or the TL2 orec).
    #[inline]
    pub(crate) fn tm_store(&self, a: Addr, v: i64) {
        self.words[self.base + a.0 as usize].store(v as u64, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for Heap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heap")
            .field("capacity", &self.capacity())
            .field("allocated", &self.allocated())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_contiguous_and_monotonic() {
        let h = Heap::new(16);
        let a = h.alloc(4);
        let b = h.alloc(2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 4);
        assert_eq!(a.offset(3).index(), 3);
        assert_eq!(h.allocated(), 6);
    }

    #[test]
    fn load_store_roundtrip_negative() {
        let h = Heap::new(4);
        let a = h.alloc(1);
        h.store(a, -123456789);
        assert_eq!(h.load(a), -123456789);
        h.store(a, i64::MIN);
        assert_eq!(h.load(a), i64::MIN);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_past_capacity_panics() {
        let h = Heap::new(2);
        let _ = h.alloc(3);
    }

    #[test]
    #[should_panic(expected = "offset out of range")]
    fn offset_overflow_panics() {
        // The old `self.0 + i as u32` truncated this offset to 0 in a
        // release build and returned the *same* address.
        let _ = Addr(1).offset(1 << 32);
    }

    #[test]
    #[should_panic(expected = "offset out of range")]
    fn offset_add_wrap_panics() {
        let _ = Addr(u32::MAX).offset(1);
    }

    #[test]
    #[should_panic(expected = "exceeds the 32-bit address space")]
    fn oversized_arena_rejected_up_front() {
        // Checked before the backing array is allocated, so this does not
        // try to reserve 32 GiB — and `alloc` can never hand out an index
        // that `Addr::from_index` would truncate.
        let _ = Heap::new((u32::MAX as usize) + 2);
    }

    #[test]
    fn failed_alloc_leaves_allocated_consistent() {
        let h = Heap::new(8);
        let _ = h.alloc(6);
        // The old fetch-add-then-assert bumped `next` to 10 here and
        // `allocated()` clamped over it; now the reservation never lands.
        assert!(std::panic::catch_unwind(|| h.alloc(4)).is_err());
        assert_eq!(h.allocated(), 6);
        // A fitting retry still succeeds.
        let a = h.alloc(2);
        assert_eq!(a.index(), 6);
        assert_eq!(h.allocated(), 8);
    }

    #[test]
    fn word_zero_is_line_aligned() {
        let h = Heap::new(64);
        let addr = h.words[h.base..].as_ptr() as usize;
        assert_eq!(addr % LINE_BYTES, 0, "word 0 not on a 128-byte boundary");
    }

    #[test]
    fn padded_allocs_land_on_distinct_lines() {
        let h = Heap::new(LINE_WORDS * 8);
        let a = h.alloc_padded(1);
        let b = h.alloc_padded(LINE_WORDS + 1);
        let c = h.alloc(1);
        assert_eq!(a.index() % LINE_WORDS, 0);
        assert_eq!(b.index() % LINE_WORDS, 0);
        assert_eq!(b.index(), LINE_WORDS);
        // A two-line node consumes both of its lines.
        assert_eq!(c.index(), 3 * LINE_WORDS);
        assert_eq!(h.allocated(), 3 * LINE_WORDS + 1);
    }

    #[test]
    fn padded_alloc_after_unpadded_skips_to_boundary() {
        let h = Heap::new(LINE_WORDS * 4);
        let _ = h.alloc(3);
        let a = h.alloc_padded(2);
        assert_eq!(a.index(), LINE_WORDS);
    }

    #[test]
    fn concurrent_alloc_never_overlaps() {
        let h = std::sync::Arc::new(Heap::new(4096));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                (0..64).map(|_| h.alloc(4).index()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|j| j.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4 * 64, "allocations overlapped");
    }
}
