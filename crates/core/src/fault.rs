//! Runtime-gated fault injection for checker regression tests.
//!
//! The `semtm-check` harness proves it can *catch* bugs by deliberately
//! reintroducing known ones: each constant below names a specific
//! validation step an algorithm may (incorrectly) skip. Without the
//! `fault-injection` feature [`active`] is a const `false` and the gates
//! compile away; with it, a test process arms a bit via [`arm`] and the
//! corresponding `#[should_panic]` test asserts the history checker
//! flags the resulting non-serializable execution.
//!
//! Faults are process-global, so each `#[should_panic]` regression test
//! lives in its own integration-test file (own process).

/// S-NOrec: skip the per-entry semantic revalidation of the read/compare
/// set during [`validate`](crate::norec), committing on a stale snapshot.
pub const SNOREC_SKIP_REVALIDATION: u32 = 1 << 0;

/// TL2/S-TL2: skip commit-time read-set validation when the commit
/// timestamp moved past the start version, publishing writes that were
/// derived from since-overwritten reads.
pub const TL2_SKIP_READ_VALIDATION: u32 = 1 << 1;

/// WAL: the storage backend fails appends with an I/O error, exercising
/// the clean pre-write-back abort path (see [`crate::wal`]).
pub const WAL_APPEND_IO_ERROR: u32 = 1 << 2;

/// WAL: the storage backend fails fsyncs with an I/O error, exercising
/// the fail-stop path in [`crate::wal::CommitLog::wait_durable`].
pub const WAL_FSYNC_IO_ERROR: u32 = 1 << 3;

/// Adaptive switching: skip the drain barrier of
/// [`crate::Stm::switch_to`] — the switch publishes the new mode while
/// old-mode attempts are still in flight, so a new-mode transaction can
/// commit without the old mode's clock ever noticing (the cross-engine
/// torn-validation bug the mode word's quiesce protocol exists to
/// prevent).
pub const ADAPT_SKIP_DRAIN: u32 = 1 << 4;

#[cfg(feature = "fault-injection")]
mod armed {
    use std::sync::atomic::{AtomicU32, Ordering};

    static FAULTS: AtomicU32 = AtomicU32::new(0);

    /// Arm exactly the faults in `mask` (replacing any previous mask).
    pub fn arm(mask: u32) {
        FAULTS.store(mask, Ordering::SeqCst);
    }

    /// Whether the fault `bit` is currently armed.
    #[inline]
    pub fn active(bit: u32) -> bool {
        FAULTS.load(Ordering::Relaxed) & bit != 0
    }
}

#[cfg(feature = "fault-injection")]
pub use armed::{active, arm};

/// Whether the fault `bit` is armed — always `false` in this build.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn active(_bit: u32) -> bool {
    false
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn arm_sets_exactly_the_mask() {
        assert!(!active(SNOREC_SKIP_REVALIDATION));
        arm(SNOREC_SKIP_REVALIDATION);
        assert!(active(SNOREC_SKIP_REVALIDATION));
        assert!(!active(TL2_SKIP_READ_VALIDATION));
        arm(0);
        assert!(!active(SNOREC_SKIP_REVALIDATION));
    }
}
