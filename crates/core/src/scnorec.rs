//! NOrec / S-NOrec over the sharded commit clock ([`crate::sclock`]).
//!
//! This is the NOrec-family engine selected by the
//! [`clock_shards`](crate::StmConfig::clock_shards) knob when it is
//! greater than one. The algorithm is NOrec's (value- or semantic-
//! validating, commit-time write-back) with the single global sequence
//! lock replaced by the per-line shard vector:
//!
//! * **Begin** double-collects an all-even snapshot of the shard vector
//!   (sample every shard, then confirm none moved), so the snapshot
//!   corresponds to a real instant of the heap.
//! * **Validation** samples the vector, semantically re-checks **only
//!   the read-set entries whose covering shards moved** — a shard's
//!   sequence word covers exactly the addresses mapping to it, so an
//!   unmoved shard proves its entries' words are untouched — and
//!   confirms with a second sample. This is the scalability win on the
//!   read side: a foreign commit no longer forces an O(read-set)
//!   re-check, only an O(moved entries) one. Reads consult the clock's
//!   single monotone acquire-epoch word first
//!   ([`ShardedClock::epoch`]): when it hasn't moved since the last
//!   validated snapshot, even the O(shards) vector scan is skipped, so
//!   the quiescent read path costs the same two loads as plain NOrec's.
//! * **Commit** acquires the shards covering the write-set in ascending
//!   index order (CAS from the validated snapshot, rolling back all
//!   acquired shards on any failure), then re-validates entries in
//!   *foreign* shards under the held locks — held shards cannot move,
//!   and a foreign shard that stays odd past
//!   [`lock_wait_spins`](crate::StmConfig::lock_wait_spins) aborts with
//!   `Timeout`, which is what breaks the cross-committer wait cycle two
//!   overlapping commits could otherwise deadlock on. Write-back and
//!   release (`snapshot + 2` on every held shard) follow.
//!
//! With one shard the protocol is exactly [`crate::norec`] (one
//! sequence word, every commit moves it, validation re-checks
//! everything); the DFS tests in `semtm-check` exploit this by
//! exploring both engines over the same scenarios. See DESIGN.md §8 for
//! the full protocol and its opacity argument.
//!
//! The RingSTM filter fast path ([`crate::ring`]) is not wired here:
//! the per-shard moved test already plays the same role (skip
//! revalidation when nothing relevant committed) at line rather than
//! filter-bit granularity.

use crate::error::Abort;
use crate::fault;
use crate::heap::{Addr, Heap};
use crate::ops::CmpOp;
use crate::sched;
use crate::sclock::ShardedClock;
use crate::sets::{ReadEntry, WriteEntry, WriteKind, WriteSet};
use crate::stats::OpCounts;
use crate::telemetry::PhaseRecorder;
use crate::util::SpinWait;
use crate::wal::CommitLog;

/// One sharded-clock NOrec / S-NOrec transaction attempt.
///
/// Not a public API — used through [`crate::stm::Tx`].
pub struct ScNorecTx<'a> {
    heap: &'a Heap,
    clock: &'a ShardedClock,
    dedup_reads: bool,
    lock_wait_spins: u32,
    /// Last validated shard vector (all even). Invariant: every read-set
    /// entry holds in the heap state determined by these shard values.
    snapshot: Vec<u64>,
    /// Acquire-epoch sampled *before* the vector pass that produced
    /// `snapshot` ([`ShardedClock::epoch`]). The read fast path compares
    /// one word against this instead of scanning the vector; sampling
    /// before the pass keeps the stored value stale-low, which is safe
    /// (at worst one spurious validation) — adopting a fresher epoch
    /// than the confirmed vector would let a pending write-back slip
    /// past the filter.
    epoch_snapshot: u64,
    /// Bumped whenever `snapshot` changes — a cheap "did validation move
    /// the snapshot" probe for the pair-read consistency loop.
    snapshot_gen: u64,
    /// Sampling buffer for validation rounds.
    sample: Vec<u64>,
    reads: Vec<ReadEntry>,
    writes: WriteSet,
    /// Sorted, deduplicated shard indices covering the write-set
    /// (populated at commit; kept allocated across attempts).
    wshards: Vec<usize>,
    phases: PhaseRecorder,
    record_committer: bool,
    /// The write-ahead commit log, when the owning [`crate::Stm`] is
    /// durable.
    wal: Option<&'a CommitLog>,
}

impl<'a> ScNorecTx<'a> {
    /// Create a transaction context bound to `heap` and the shard clock.
    pub(crate) fn new(
        heap: &'a Heap,
        clock: &'a ShardedClock,
        dedup_reads: bool,
        lock_wait_spins: u32,
    ) -> Self {
        ScNorecTx {
            heap,
            clock,
            dedup_reads,
            lock_wait_spins,
            snapshot: vec![0; clock.len()],
            epoch_snapshot: 0,
            snapshot_gen: 0,
            sample: vec![0; clock.len()],
            reads: Vec::new(),
            writes: WriteSet::default(),
            wshards: Vec::new(),
            phases: PhaseRecorder::disabled(),
            record_committer: false,
            wal: None,
        }
    }

    /// Make writer commits durable (see
    /// [`crate::norec::NorecTx::enable_wal`]).
    pub(crate) fn enable_wal(&mut self, log: &'a CommitLog) {
        self.wal = Some(log);
    }

    /// Turn the flight recorder on for this context (see
    /// [`crate::norec::NorecTx::enable_spans`]).
    pub(crate) fn enable_spans(&mut self, recorder: PhaseRecorder) {
        self.phases = recorder;
        self.record_committer = recorder.is_enabled();
    }

    /// Current phase marks (read back by the span recorder).
    pub(crate) fn phases(&self) -> PhaseRecorder {
        self.phases
    }

    /// Begin (or re-begin after an abort): clear metadata and
    /// double-collect an all-even snapshot of the shard vector.
    pub(crate) fn begin(&mut self) {
        self.reads.clear();
        self.writes.clear();
        self.phases.reset();
        let mut wait = SpinWait::new();
        'round: loop {
            sched::point(sched::PointKind::ScNorecBegin);
            // Epoch before the vector pass (see `epoch_snapshot`).
            let epoch = self.clock.epoch();
            for s in 0..self.clock.len() {
                let v = self.clock.load(s);
                if v & 1 != 0 {
                    sched::spin();
                    wait.spin();
                    continue 'round;
                }
                self.snapshot[s] = v;
            }
            // Confirming pass: all shards still at the sampled values ⇒
            // there was an instant where the whole vector held at once.
            for s in 0..self.clock.len() {
                if self.clock.load(s) != self.snapshot[s] {
                    sched::spin();
                    wait.spin();
                    continue 'round;
                }
            }
            self.epoch_snapshot = epoch;
            self.snapshot_gen = self.snapshot_gen.wrapping_add(1);
            return;
        }
    }

    /// Whether entry `e` is covered by a shard that moved between
    /// `snapshot` and `sample`.
    #[inline]
    fn entry_moved(&self, e: &ReadEntry) -> bool {
        let (a, b) = e.addrs();
        let sa = self.clock.shard_of(a);
        if self.sample[sa] != self.snapshot[sa] {
            return true;
        }
        b.is_some_and(|b| {
            let sb = self.clock.shard_of(b);
            self.sample[sb] != self.snapshot[sb]
        })
    }

    /// Is shard `s` one of the write-set shards this commit holds?
    /// (Meaningful only during commit, when `wshards` is populated.)
    #[inline]
    fn holds_shard(&self, s: usize) -> bool {
        self.wshards.binary_search(&s).is_ok()
    }

    /// One validation pass: sample the vector (treating shards in
    /// `held` mode as pinned to the snapshot), re-check moved entries,
    /// confirm, adopt. `held` distinguishes the in-transaction variant
    /// (no locks held, wait out odd shards indefinitely) from the
    /// commit-time variant (write shards held and skipped, foreign odd
    /// shards waited out only `lock_wait_spins` times — the holder might
    /// be waiting on *us*, so patience must be bounded).
    fn validate_inner(&mut self, held: bool) -> Result<(), Abort> {
        self.phases.mark_validate();
        let mut wait = SpinWait::new();
        let mut spins: u32 = 0;
        'round: loop {
            sched::point(sched::PointKind::ScNorecValidate);
            // Epoch before the vector pass (see `epoch_snapshot`).
            let epoch = self.clock.epoch();
            for s in 0..self.clock.len() {
                if held && self.holds_shard(s) {
                    self.sample[s] = self.snapshot[s];
                    continue;
                }
                let v = self.clock.load(s);
                if v & 1 != 0 {
                    sched::spin();
                    wait.spin();
                    if held {
                        spins += 1;
                        if spins > self.lock_wait_spins {
                            return Err(Abort::timeout());
                        }
                    }
                    continue 'round;
                }
                self.sample[s] = v;
            }
            let moved = self.sample != self.snapshot;
            if moved && !fault::active(fault::SNOREC_SKIP_REVALIDATION) {
                for e in &self.reads {
                    if self.entry_moved(e) && !e.holds(self.heap) {
                        return Err(self.attributed_validation(e));
                    }
                }
            }
            sched::point(sched::PointKind::ScNorecValidateRecheck);
            for s in 0..self.clock.len() {
                if (!held || !self.holds_shard(s)) && self.clock.load(s) != self.sample[s] {
                    continue 'round;
                }
            }
            if moved {
                self.snapshot.copy_from_slice(&self.sample);
                self.snapshot_gen = self.snapshot_gen.wrapping_add(1);
            }
            self.epoch_snapshot = epoch;
            return Ok(());
        }
    }

    /// In-transaction validation (no locks held).
    fn validate(&mut self) -> Result<(), Abort> {
        self.validate_inner(false)
    }

    /// Read a word, re-validating (and moving the snapshot forward)
    /// whenever the acquire-epoch says a write-back may have started —
    /// the sharded `ReadValid`. The fast path is two epoch loads around
    /// the heap load: unchanged epoch proves the value is consistent
    /// with the validated snapshot (no acquisition ⇒ no write-back),
    /// without scanning the shard vector.
    fn read_valid(&mut self, addr: Addr) -> Result<i64, Abort> {
        loop {
            sched::point(sched::PointKind::ScNorecRead);
            let epoch = self.clock.epoch();
            if epoch != self.epoch_snapshot {
                self.validate()?;
                continue;
            }
            let val = self.heap.tm_load(addr);
            if self.clock.epoch() == epoch {
                return Ok(val);
            }
        }
    }

    /// Read-after-write resolution (as [`crate::norec::NorecTx`]):
    /// returns the buffered value, promoting `Increment` entries.
    fn raw(&mut self, addr: Addr, ops: &mut OpCounts) -> Result<Option<i64>, Abort> {
        match self.writes.get(addr) {
            None => Ok(None),
            Some(WriteEntry {
                kind: WriteKind::Store,
                value,
            }) => Ok(Some(value)),
            Some(WriteEntry {
                kind: WriteKind::Increment,
                ..
            }) => {
                let observed = self.read_valid(addr)?;
                self.push_read(ReadEntry::Val {
                    addr,
                    op: CmpOp::Eq,
                    operand: observed,
                });
                ops.promotes += 1;
                Ok(Some(self.writes.promote(addr, observed)))
            }
        }
    }

    fn push_read(&mut self, entry: ReadEntry) {
        if self.dedup_reads && self.reads.contains(&entry) {
            return;
        }
        self.reads.push(entry);
    }

    /// `TM_READ`.
    pub(crate) fn read(&mut self, addr: Addr, ops: &mut OpCounts) -> Result<i64, Abort> {
        if let Some(v) = self.raw(addr, ops)? {
            return Ok(v);
        }
        let val = self.read_valid(addr)?;
        self.push_read(ReadEntry::Val {
            addr,
            op: CmpOp::Eq,
            operand: val,
        });
        Ok(val)
    }

    /// `TM_WRITE`.
    pub(crate) fn write(&mut self, addr: Addr, value: i64) {
        self.writes.write(addr, value);
    }

    /// Semantic compare, address–value form.
    pub(crate) fn cmp(
        &mut self,
        addr: Addr,
        op: CmpOp,
        operand: i64,
        ops: &mut OpCounts,
    ) -> Result<bool, Abort> {
        if let Some(v) = self.raw(addr, ops)? {
            return Ok(op.eval(v, operand));
        }
        let val = self.read_valid(addr)?;
        let result = op.eval(val, operand);
        self.push_read(ReadEntry::Val {
            addr,
            op: if result { op } else { op.inverse() },
            operand,
        });
        Ok(result)
    }

    /// Semantic compare, address–address form (`_ITM_S2R`).
    pub(crate) fn cmp_addr(
        &mut self,
        a: Addr,
        op: CmpOp,
        b: Addr,
        ops: &mut OpCounts,
    ) -> Result<bool, Abort> {
        let wa = self.raw(a, ops)?;
        let wb = self.raw(b, ops)?;
        match (wa, wb) {
            (Some(va), Some(vb)) => Ok(op.eval(va, vb)),
            (Some(va), None) => self.cmp(b, op.swap(), va, ops),
            (None, Some(vb)) => self.cmp(a, op, vb, ops),
            (None, None) => {
                // Read both sides under one snapshot generation so the
                // recorded relation reflects a consistent memory state.
                let (va, vb) = loop {
                    let gen = self.snapshot_gen;
                    let va = self.read_valid(a)?;
                    let vb = self.read_valid(b)?;
                    if self.snapshot_gen == gen {
                        break (va, vb);
                    }
                };
                let result = op.eval(va, vb);
                self.push_read(ReadEntry::Pair {
                    a,
                    op: if result { op } else { op.inverse() },
                    b,
                });
                Ok(result)
            }
        }
    }

    /// Semantic increment/decrement: pure write-set bookkeeping; the
    /// read happens at commit time under the covering shard lock.
    pub(crate) fn inc(&mut self, addr: Addr, delta: i64) {
        self.writes.inc(addr, delta);
    }

    /// The failing entry's address plus (flight recorder only) the
    /// most-recent-committer heuristic.
    fn attributed_validation(&self, entry: &ReadEntry) -> Abort {
        let mut abort = Abort::validation().at_addr(entry.addrs().0);
        if self.record_committer {
            abort = abort.by(self.clock.committer());
        }
        abort
    }

    /// Commit. Read-only transactions commit immediately; writers
    /// acquire their write-set's shards in ascending order, re-validate
    /// foreign-shard entries under the locks, write back and release.
    pub(crate) fn commit(&mut self) -> Result<(), Abort> {
        if self.writes.is_empty() {
            return Ok(());
        }
        self.phases.mark_lock();
        self.wshards.clear();
        for (a, _) in self.writes.iter() {
            self.wshards.push(self.clock.shard_of(a));
        }
        // Ascending acquisition order: two commits contending for the
        // same shard pair always race on the lower index first, so the
        // acquisition phase itself cannot deadlock (only the foreign-
        // shard wait in `validate_inner(true)` can cycle, and that one
        // is patience-bounded).
        self.wshards.sort_unstable();
        self.wshards.dedup();
        'acquire: loop {
            sched::point(sched::PointKind::ScNorecCommitAcquire);
            for k in 0..self.wshards.len() {
                let s = self.wshards[k];
                if !self.clock.try_acquire(s, self.snapshot[s]) {
                    // Roll back: restore pre-acquire values. Sound
                    // because nothing was written back yet, so the
                    // bounce odd→same-even published no data change.
                    for &t in &self.wshards[..k] {
                        self.clock.release(t, self.snapshot[t]);
                    }
                    self.validate()?;
                    continue 'acquire;
                }
            }
            break;
        }
        // All write shards held. Entries covered by held shards are
        // frozen; entries in foreign shards may have been invalidated
        // since the last validation — re-check them under the locks.
        if let Err(abort) = self.validate_inner(true) {
            for &s in &self.wshards {
                self.clock.release(s, self.snapshot[s]);
            }
            return Err(abort);
        }
        if self.record_committer {
            self.clock.stamp_committer(crate::util::thread_token());
        }
        // Write shards held and validation passed: resolve deferred
        // increments to absolute values and append the WAL record now,
        // before the epoch bump announces any data change. A refused
        // append rolls back cleanly — nothing was written.
        let ticket = if let Some(log) = self.wal {
            let resolved: Vec<(Addr, i64)> = self
                .writes
                .iter()
                .map(|(addr, e)| (addr, self.resolve(addr, &e)))
                .collect();
            sched::point(sched::PointKind::WalAppend);
            match log.append(&resolved) {
                Ok(t) => Some(t),
                Err(_) => {
                    for &s in &self.wshards {
                        self.clock.release(s, self.snapshot[s]);
                    }
                    return Err(Abort::durability());
                }
            }
        } else {
            None
        };
        // Publish intent before the first data store: readers' epoch
        // fast path relies on every write-back being preceded by a bump
        // (see [`ShardedClock::bump_epoch`]).
        self.clock.bump_epoch();
        // Locks held: from here through the releases the write-back is
        // one atomic step of the virtual schedule (no further sched
        // points).
        sched::point(sched::PointKind::ScNorecWriteback);
        self.phases.mark_writeback();
        for (addr, e) in self.writes.iter() {
            let v = self.resolve(addr, &e);
            self.heap.tm_store(addr, v);
        }
        for &s in &self.wshards {
            self.clock.release(s, self.snapshot[s] + 2);
        }
        if let (Some(log), Some(t)) = (self.wal, ticket) {
            // Fail stop on flush failure: the in-memory commit is
            // already visible and cannot be retried.
            if let Err(e) = log.wait_durable(t) {
                panic!(
                    "commit {} is applied but cannot be made durable: {e}",
                    t.seq()
                );
            }
        }
        Ok(())
    }

    /// The absolute value a write entry stores (increments materialised
    /// against live memory; valid only with the write shards held).
    #[inline]
    fn resolve(&self, addr: Addr, e: &WriteEntry) -> i64 {
        match e.kind {
            WriteKind::Store => e.value,
            WriteKind::Increment => self.heap.tm_load(addr).wrapping_add(e.value),
        }
    }

    /// Number of read-set entries (diagnostics/tests).
    pub(crate) fn read_set_len(&self) -> usize {
        self.reads.len()
    }

    /// Number of write-set entries (flight-recorder spans).
    pub(crate) fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    /// Whether the transaction has buffered writes.
    pub(crate) fn is_writer(&self) -> bool {
        !self.writes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::LINE_WORDS;

    fn setup(shards: usize) -> (Heap, ShardedClock) {
        (Heap::new(LINE_WORDS * 16), ShardedClock::new(shards))
    }

    fn commit_write(heap: &Heap, clock: &ShardedClock, addr: Addr, v: i64) {
        let mut tx = ScNorecTx::new(heap, clock, false, 64);
        tx.begin();
        tx.write(addr, v);
        tx.commit().unwrap();
    }

    #[test]
    fn read_write_roundtrip_single_tx() {
        for shards in [1, 4] {
            let (heap, clock) = setup(shards);
            let a = heap.alloc(1);
            let mut ops = OpCounts::default();
            let mut tx = ScNorecTx::new(&heap, &clock, false, 64);
            tx.begin();
            tx.write(a, 41);
            assert_eq!(tx.read(a, &mut ops).unwrap(), 41); // RAW
            tx.inc(a, 1);
            assert_eq!(tx.read(a, &mut ops).unwrap(), 42); // inc onto Store
            tx.commit().unwrap();
            assert_eq!(heap.load(a), 42);
        }
    }

    #[test]
    fn commit_bumps_only_covering_shards() {
        let (heap, clock) = setup(4);
        // Padded allocations: each lands on its own line ⇒ own shard.
        let a = heap.alloc_padded(1); // line 0 → shard 0
        let b = heap.alloc_padded(1); // line 1 → shard 1
        commit_write(&heap, &clock, a, 7);
        assert_eq!(clock.load(clock.shard_of(a)), 2);
        assert_eq!(clock.load(clock.shard_of(b)), 0, "foreign shard untouched");
    }

    #[test]
    fn plain_read_conflict_aborts_at_validation() {
        for shards in [1, 4] {
            let (heap, clock) = setup(shards);
            let a = heap.alloc(1);
            heap.store(a, 5);
            let mut ops = OpCounts::default();
            let mut t1 = ScNorecTx::new(&heap, &clock, false, 64);
            t1.begin();
            assert_eq!(t1.read(a, &mut ops).unwrap(), 5);
            commit_write(&heap, &clock, a, 6);
            t1.write(a, 100);
            assert_eq!(t1.commit(), Err(Abort::validation()), "{shards} shards");
        }
    }

    #[test]
    fn foreign_shard_commit_does_not_abort_reader() {
        // The per-shard win: a commit to a different line leaves the
        // reader's snapshot intact on the shard that matters, and the
        // value re-check (which would pass anyway) is skipped entirely.
        let (heap, clock) = setup(4);
        let a = heap.alloc_padded(1); // shard 0
        let b = heap.alloc_padded(1); // shard 1
        heap.store(a, 5);
        let mut ops = OpCounts::default();
        let mut t1 = ScNorecTx::new(&heap, &clock, false, 64);
        t1.begin();
        assert_eq!(t1.read(a, &mut ops).unwrap(), 5);
        commit_write(&heap, &clock, b, 9); // foreign shard
        t1.write(a, 6);
        t1.commit()
            .expect("disjoint-shard commit must not conflict");
        assert_eq!(heap.load(a), 6);
    }

    #[test]
    fn same_shard_value_revalidation_still_runs() {
        // Same line, different word: the shard moves, the value
        // re-check runs, and the unchanged word passes (NOrec value
        // semantics preserved at shard granularity).
        let (heap, clock) = setup(4);
        let base = heap.alloc_padded(2); // two words, one line, one shard
        let a = base;
        let b = base.offset(1);
        heap.store(a, 5);
        let mut ops = OpCounts::default();
        let mut t1 = ScNorecTx::new(&heap, &clock, false, 64);
        t1.begin();
        assert_eq!(t1.read(a, &mut ops).unwrap(), 5);
        commit_write(&heap, &clock, b, 9); // same shard, different word
        t1.write(a, 6);
        t1.commit()
            .expect("value of `a` unchanged: validation passes");
    }

    #[test]
    fn semantic_cmp_survives_value_change_that_preserves_relation() {
        for shards in [1, 4] {
            let (heap, clock) = setup(shards);
            let x = heap.alloc(1);
            heap.store(x, 5);
            let y = heap.alloc_padded(1);
            let mut ops = OpCounts::default();
            let mut t1 = ScNorecTx::new(&heap, &clock, false, 64);
            t1.begin();
            assert!(t1.cmp(x, CmpOp::Gt, 0, &mut ops).unwrap());
            commit_write(&heap, &clock, x, 6); // still > 0
            t1.write(y, 1);
            t1.commit().expect("semantic validation must pass");
            assert_eq!(heap.load(y), 1);
        }
    }

    #[test]
    fn semantic_cmp_aborts_when_relation_flips() {
        for shards in [1, 4] {
            let (heap, clock) = setup(shards);
            let x = heap.alloc(1);
            heap.store(x, 1);
            let y = heap.alloc_padded(1);
            let mut ops = OpCounts::default();
            let mut t1 = ScNorecTx::new(&heap, &clock, false, 64);
            t1.begin();
            assert!(t1.cmp(x, CmpOp::Gt, 0, &mut ops).unwrap());
            commit_write(&heap, &clock, x, -3);
            t1.write(y, 1);
            assert_eq!(t1.commit(), Err(Abort::validation()), "{shards} shards");
        }
    }

    #[test]
    fn deferred_inc_applies_against_live_memory() {
        let (heap, clock) = setup(4);
        let x = heap.alloc(1);
        heap.store(x, 10);
        let mut t1 = ScNorecTx::new(&heap, &clock, false, 64);
        t1.begin();
        t1.inc(x, 1);
        let mut t2 = ScNorecTx::new(&heap, &clock, false, 64);
        t2.begin();
        t2.inc(x, 5);
        t2.commit().unwrap();
        assert_eq!(heap.load(x), 15);
        t1.commit().expect("pure-inc transaction has no read-set");
        assert_eq!(heap.load(x), 16, "no lost update");
    }

    #[test]
    fn promote_pins_the_observed_value() {
        let (heap, clock) = setup(4);
        let x = heap.alloc(1);
        heap.store(x, 7);
        let mut ops = OpCounts::default();
        let mut t1 = ScNorecTx::new(&heap, &clock, false, 64);
        t1.begin();
        t1.inc(x, 2);
        assert_eq!(t1.read(x, &mut ops).unwrap(), 9);
        assert_eq!(ops.promotes, 1);
        assert_eq!(t1.read_set_len(), 1);
        commit_write(&heap, &clock, x, 100);
        assert_eq!(t1.commit(), Err(Abort::validation()));
    }

    #[test]
    fn cmp_addr_pair_across_shards() {
        let (heap, clock) = setup(4);
        let h = heap.alloc_padded(1); // shard 0
        let t = heap.alloc_padded(1); // shard 1
        heap.store(h, 3);
        heap.store(t, 9);
        let out = heap.alloc_padded(1); // shard 2
        let mut ops = OpCounts::default();
        let mut t1 = ScNorecTx::new(&heap, &clock, false, 64);
        t1.begin();
        assert!(t1.cmp_addr(h, CmpOp::Neq, t, &mut ops).unwrap());
        commit_write(&heap, &clock, t, 10); // bump tail: relation holds
        t1.write(out, 1);
        t1.commit().expect("pair relation still holds");
        let mut t2 = ScNorecTx::new(&heap, &clock, false, 64);
        t2.begin();
        assert!(t2.cmp_addr(h, CmpOp::Neq, t, &mut ops).unwrap());
        commit_write(&heap, &clock, h, 10); // head == tail: flips
        t2.write(out, 2);
        assert_eq!(t2.commit(), Err(Abort::validation()));
    }

    #[test]
    fn read_only_tx_commits_without_touching_any_shard() {
        let (heap, clock) = setup(4);
        let a = heap.alloc(1);
        let mut ops = OpCounts::default();
        let mut tx = ScNorecTx::new(&heap, &clock, false, 64);
        tx.begin();
        let _ = tx.read(a, &mut ops).unwrap();
        tx.commit().unwrap();
        for s in 0..clock.len() {
            assert_eq!(clock.load(s), 0);
        }
    }

    #[test]
    fn multi_shard_commit_releases_all_shards_even() {
        let (heap, clock) = setup(4);
        let a = heap.alloc_padded(1); // shard 0
        let b = heap.alloc_padded(1); // shard 1
        let mut tx = ScNorecTx::new(&heap, &clock, false, 64);
        tx.begin();
        tx.write(a, 1);
        tx.write(b, 2);
        tx.commit().unwrap();
        assert_eq!(clock.load(0), 2);
        assert_eq!(clock.load(1), 2);
        assert_eq!(clock.load(2), 0);
        assert_eq!(heap.load(a), 1);
        assert_eq!(heap.load(b), 2);
    }

    #[test]
    fn stale_snapshot_acquire_revalidates_and_retries() {
        // A commit needing shards {0, 1} whose shard-1 snapshot is stale:
        // the acquire pass takes shard 0, fails the shard-1 CAS, rolls
        // shard 0 back to its pre-acquire value, revalidates, and the
        // retry lands. The rollback bounce must not look like a commit.
        let (heap, clock) = setup(4);
        let a = heap.alloc_padded(1); // shard 0
        let b = heap.alloc_padded(1); // shard 1
        let mut tx = ScNorecTx::new(&heap, &clock, false, 64);
        tx.begin();
        tx.write(a, 1);
        tx.write(b, 2);
        // Foreign commit moves shard 1 after the snapshot was taken.
        commit_write(&heap, &clock, b, 7);
        tx.commit().expect("no reads: revalidation is vacuous");
        assert_eq!(clock.load(0), 2, "one commit on shard 0");
        assert_eq!(clock.load(1), 4, "two commits on shard 1");
        assert_eq!(heap.load(a), 1);
        assert_eq!(heap.load(b), 2, "second commit overwrote the foreign 7");
    }

    #[test]
    fn commit_blocked_by_held_shard_times_out() {
        let (heap, clock) = setup(4);
        let a = heap.alloc_padded(1); // shard 0
        let b = heap.alloc_padded(1); // shard 1
        heap.store(b, 3);
        let mut tx = ScNorecTx::new(&heap, &clock, false, 16);
        tx.begin();
        let mut ops = OpCounts::default();
        // Read from shard 1, write to shard 0.
        assert_eq!(tx.read(b, &mut ops).unwrap(), 3);
        tx.write(a, 1);
        // A foreign committer now holds shard 1: commit-time validation
        // of the read must bound its wait and abort with Timeout.
        assert!(clock.try_acquire(1, 0));
        assert_eq!(tx.commit(), Err(Abort::timeout()));
        assert_eq!(clock.load(0), 0, "write shard rolled back to even");
        clock.release(1, 0);
        // After the holder goes away the retry commits.
        tx.begin();
        tx.write(a, 1);
        tx.commit().unwrap();
        assert_eq!(heap.load(a), 1);
    }

    #[test]
    fn single_shard_degenerates_to_norec_times() {
        // One shard: every commit bumps the same word by 2, exactly the
        // NOrec global clock.
        let (heap, clock) = setup(1);
        let a = heap.alloc_padded(1);
        let b = heap.alloc_padded(1);
        commit_write(&heap, &clock, a, 1);
        commit_write(&heap, &clock, b, 2);
        assert_eq!(clock.load(0), 4);
    }
}
