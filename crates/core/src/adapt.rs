//! Adaptive engine switching: one runtime, many engines, chosen by load.
//!
//! All four engines' global metadata (NOrec's sequence lock, the sharded
//! commit clock, TL2's version clock + orec table) coexist inside one
//! [`crate::Stm`]; which engine a transaction *runs* is decided per
//! attempt from a single packed **mode word**. That makes engine choice a
//! runtime property — [`crate::Stm::switch_to`] hot-swaps a live runtime
//! between NOrec ↔ sharded-clock NOrec ↔ TL2 (and the semantic variants)
//! without stopping the world longer than one quiesce epoch, and the
//! [`Controller`] closes the loop from the PR-1 telemetry (abort-rate /
//! wasted-work / set-size EWMAs) to that choice.
//!
//! ## The mode word and the quiesce handoff
//!
//! The mode word packs `(mode, draining, next-mode, epoch)` into one
//! `AtomicU64`. Attempts **enter** the current epoch before running and
//! **exit** when they retire (commit, or abort *after* rollback):
//!
//! ```text
//! enter:  loop {
//!           w := word;            if draining(w) { wait; retry }
//!           slot[tid % 64] += 1;                       // publish presence
//!           if word == w { return w }                  // still that epoch
//!           slot[tid % 64] -= 1; retry                 // raced a switch
//!         }
//! exit:   slot[tid % 64] -= 1
//! ```
//!
//! The slots are 64 cache-line-padded **counters** (not flags): beyond 64
//! threads, slots are shared and the count still sums correctly. A switch
//! CAS-publishes `Draining(next)` (winning switcher takes the word), waits
//! for every slot to reach zero — at which point *no* transaction is
//! in flight: no commit lock is held, no write-back is partial, and every
//! durable commit has been acked (the WAL `wait_durable` happens inside
//! commit, before the attempt exits) — reseeds the engine metadata, and
//! publishes `Running(next, epoch+1)`. The epoch in the packed word makes
//! the enter re-check ABA-safe: even if a full switch cycle lands between
//! an attempt's first load and its re-check, the word differs.
//!
//! **Opacity across the boundary** (DESIGN.md §10): entering attempts
//! never observe `Draining`, and draining completes only when the heap
//! holds exactly the committed state of the old era with no metadata
//! locked. The new era's engine therefore starts from a quiescent,
//! consistent heap — its metadata clocks are bumped (never rewound) by
//! the reseed so no stale snapshot from the old era can validate against
//! new-era state.
//!
//! Every synchronization edge added here is [`crate::sched`]-instrumented
//! (`AdaptEnter` / `AdaptEnterRecheck` / `AdaptAcquire` / `AdaptDrain` /
//! `AdaptReseed` / `AdaptPublish`), so `semtm-check` DFS explores
//! switches interleaved with commits, aborts, and WAL group-commit
//! flushes; the [`crate::fault::ADAPT_SKIP_DRAIN`] injection proves the
//! checker catches a switch that skips the drain barrier.

use crate::config::{Algorithm, StmConfig};
use crate::sched;
use crate::telemetry::RateEwma;
use crate::util::SpinWait;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One engine the runtime can be switched to: an [`Algorithm`] plus
/// whether the NOrec family runs on the sharded commit clock.
///
/// `sharded` is only meaningful for the NOrec family (TL2's version
/// clock has no sharded variant — see [`crate::sclock`]) and only
/// available when the runtime was built with
/// [`StmConfig::clock_shards`] > 1 (the shard vector is sized at
/// construction).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mode {
    /// The algorithm this mode runs.
    pub algorithm: Algorithm,
    /// NOrec family only: run on the sharded commit clock.
    pub sharded: bool,
}

impl Mode {
    /// A global-clock (unsharded) mode for `algorithm`.
    pub fn new(algorithm: Algorithm) -> Mode {
        Mode {
            algorithm,
            sharded: false,
        }
    }

    /// The sharded-clock mode for a NOrec-family `algorithm`.
    pub fn sharded(algorithm: Algorithm) -> Mode {
        Mode {
            algorithm,
            sharded: true,
        }
    }

    /// The mode a runtime starts in, per its construction config: the
    /// configured algorithm, sharded when the NOrec family has
    /// `clock_shards > 1` (the pre-adaptive dispatch rule, unchanged).
    pub fn initial(config: &StmConfig) -> Mode {
        Mode {
            algorithm: config.algorithm,
            sharded: config.algorithm.baseline() == Algorithm::NOrec && config.clock_shards > 1,
        }
    }

    /// Whether this mode can run on a runtime built with `config`
    /// (sharded modes need a multi-shard clock and the NOrec family).
    pub fn available_under(self, config: &StmConfig) -> bool {
        !self.sharded || (self.algorithm.baseline() == Algorithm::NOrec && config.clock_shards > 1)
    }

    /// Figure-legend style label: `NOrec`, `S-NOrec/sharded`, …
    pub fn label(self) -> String {
        if self.sharded {
            format!("{}/sharded", self.algorithm.name())
        } else {
            self.algorithm.name().to_string()
        }
    }

    fn idx(self) -> u64 {
        let a = match self.algorithm {
            Algorithm::NOrec => 0,
            Algorithm::SNOrec => 1,
            Algorithm::Tl2 => 2,
            Algorithm::STl2 => 3,
        };
        a | if self.sharded { 4 } else { 0 }
    }

    fn from_idx(v: u64) -> Mode {
        let algorithm = match v & 3 {
            0 => Algorithm::NOrec,
            1 => Algorithm::SNOrec,
            2 => Algorithm::Tl2,
            _ => Algorithm::STl2,
        };
        Mode {
            algorithm,
            sharded: v & 4 != 0,
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

// Packed mode-word layout (u64):
//   bits 0..3   current mode (algorithm 2 bits + sharded bit)
//   bit  3      draining flag
//   bits 4..7   next mode (valid only while draining)
//   bits 8..64  epoch (bumped once per completed switch)
const DRAINING: u64 = 1 << 3;
const EPOCH_SHIFT: u32 = 8;

fn pack_running(mode: Mode, epoch: u64) -> u64 {
    mode.idx() | (epoch << EPOCH_SHIFT)
}

fn pack_draining(cur: Mode, next: Mode, epoch: u64) -> u64 {
    cur.idx() | DRAINING | (next.idx() << 4) | (epoch << EPOCH_SHIFT)
}

fn unpack_mode(word: u64) -> Mode {
    Mode::from_idx(word & 7)
}

/// The mode of a packed word returned by [`ModeMachine::enter`].
pub(crate) fn word_mode(word: u64) -> Mode {
    unpack_mode(word)
}

fn is_draining(word: u64) -> bool {
    word & DRAINING != 0
}

fn unpack_epoch(word: u64) -> u64 {
    word >> EPOCH_SHIFT
}

/// Number of epoch slots (matches the telemetry shard count; threads map
/// by `thread_token() % SLOTS` and may share slots — the counters sum
/// correctly regardless).
const SLOTS: usize = 64;

/// One padded epoch-slot counter (own line pair, like the stat shards).
#[repr(align(128))]
#[derive(Default)]
struct Slot {
    active: AtomicU64,
}

#[inline]
fn slot_index() -> usize {
    (crate::util::thread_token() as usize) & (SLOTS - 1)
}

/// Why a [`crate::Stm::switch_to`] request was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwitchError {
    /// The target mode needs the sharded clock but the runtime was built
    /// with `clock_shards = 1`, or a sharded TL2 was requested (the TL2
    /// family has no sharded variant).
    Unavailable(Mode),
}

impl std::fmt::Display for SwitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwitchError::Unavailable(m) => {
                write!(f, "mode {m} is not available on this runtime")
            }
        }
    }
}

impl std::error::Error for SwitchError {}

/// What a completed (or no-op) switch did — drain cost and latency, for
/// the A7 ablation's switch-latency quantification.
#[derive(Clone, Copy, Debug)]
pub struct SwitchReport {
    /// Mode before the switch.
    pub from: Mode,
    /// Mode after the switch (`== from` for a no-op request).
    pub to: Mode,
    /// Epoch published with the new mode.
    pub epoch: u64,
    /// Spin rounds the drain barrier waited for in-flight attempts.
    pub drain_rounds: u64,
    /// Wall-clock time from acquiring the switch to publishing the new
    /// mode (the window in which starting attempts wait).
    pub elapsed: Duration,
}

impl SwitchReport {
    /// Whether the switch actually changed the running mode.
    pub fn changed(&self) -> bool {
        self.from != self.to
    }
}

/// The mode word + epoch slots: the switch protocol's shared state.
/// Owned by [`crate::Stm`]; not constructible elsewhere.
pub(crate) struct ModeMachine {
    word: AtomicU64,
    slots: Box<[Slot]>,
    switches: AtomicU64,
}

impl ModeMachine {
    pub(crate) fn new(initial: Mode) -> ModeMachine {
        let mut slots = Vec::with_capacity(SLOTS);
        slots.resize_with(SLOTS, Slot::default);
        ModeMachine {
            word: AtomicU64::new(pack_running(initial, 0)),
            slots: slots.into_boxed_slice(),
            switches: AtomicU64::new(0),
        }
    }

    /// The currently published mode (draining reports the *old* mode —
    /// it is still the one in-flight attempts run).
    pub(crate) fn mode(&self) -> Mode {
        unpack_mode(self.word.load(Ordering::SeqCst))
    }

    /// Completed switches so far.
    pub(crate) fn switch_count(&self) -> u64 {
        self.switches.load(Ordering::SeqCst)
    }

    /// Enter the current epoch: publish this thread's presence in a slot
    /// and return the packed word the attempt runs under. Waits out any
    /// in-flight drain (bounded by one quiesce epoch).
    pub(crate) fn enter(&self) -> u64 {
        let mut wait = SpinWait::new();
        loop {
            sched::point(sched::PointKind::AdaptEnter);
            let w = self.word.load(Ordering::SeqCst);
            if is_draining(w) {
                sched::spin();
                wait.spin();
                continue;
            }
            let slot = &self.slots[slot_index()].active;
            slot.fetch_add(1, Ordering::SeqCst);
            sched::point(sched::PointKind::AdaptEnterRecheck);
            // Re-check *the full word*: a switch published `Draining`
            // (or even completed, bumping the epoch) between the load
            // and the slot increment. The epoch bits make a complete
            // switch cycle distinguishable from "nothing happened".
            if self.word.load(Ordering::SeqCst) == w {
                return w;
            }
            slot.fetch_sub(1, Ordering::SeqCst);
            sched::spin();
            wait.spin();
        }
    }

    /// Retire the attempt entered by the matching [`ModeMachine::enter`].
    pub(crate) fn exit(&self) {
        self.slots[slot_index()]
            .active
            .fetch_sub(1, Ordering::SeqCst);
    }

    fn active_total(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.active.load(Ordering::SeqCst))
            .sum()
    }

    /// The switch protocol: acquire the word (`Running → Draining`),
    /// wait for in-flight attempts to retire, run `reseed` on the
    /// quiescent runtime, publish `Running(target, epoch+1)`.
    ///
    /// Must not be called from inside a transaction body on the same
    /// runtime — the drain would wait for the caller's own attempt.
    pub(crate) fn switch(&self, target: Mode, reseed: impl FnOnce()) -> SwitchReport {
        let started = Instant::now();
        let mut wait = SpinWait::new();
        // Acquire: CAS Running(cur, e) → Draining(cur → target, e).
        // A concurrent switcher that wins makes us wait for its epoch
        // to complete, then retry against the new mode.
        let (from, epoch) = loop {
            sched::point(sched::PointKind::AdaptAcquire);
            let w = self.word.load(Ordering::SeqCst);
            if is_draining(w) {
                sched::spin();
                wait.spin();
                continue;
            }
            let from = unpack_mode(w);
            let epoch = unpack_epoch(w);
            if from == target {
                return SwitchReport {
                    from,
                    to: target,
                    epoch,
                    drain_rounds: 0,
                    elapsed: started.elapsed(),
                };
            }
            let draining = pack_draining(from, target, epoch);
            if self
                .word
                .compare_exchange(w, draining, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break (from, epoch);
            }
            sched::spin();
        };
        // Drain: every slot at zero ⇒ no attempt is in flight ⇒ no
        // commit lock held, no partial write-back, all durable commits
        // acked. New attempts see `Draining` and wait, so the count
        // cannot rise again. ADAPT_SKIP_DRAIN reintroduces the obvious
        // bug for the checker regression.
        let mut drain_rounds = 0u64;
        if !crate::fault::active(crate::fault::ADAPT_SKIP_DRAIN) {
            sched::point(sched::PointKind::AdaptDrain);
            while self.active_total() != 0 {
                drain_rounds += 1;
                sched::spin();
                wait.spin();
            }
        }
        sched::point(sched::PointKind::AdaptReseed);
        reseed();
        sched::point(sched::PointKind::AdaptPublish);
        self.word
            .store(pack_running(target, epoch + 1), Ordering::SeqCst);
        self.switches.fetch_add(1, Ordering::SeqCst);
        SwitchReport {
            from,
            to: target,
            epoch: epoch + 1,
            drain_rounds,
            elapsed: started.elapsed(),
        }
    }
}

/// Tuning knobs of the adaptive [`Controller`] — sampling, hysteresis,
/// and the cost-model weights (see [`Controller::cost`] and DESIGN.md
/// §10 for the model).
#[derive(Clone, Copy, Debug)]
pub struct AdaptPolicy {
    /// EWMA smoothing factor handed to [`crate::telemetry::Telemetry::rates`]
    /// (weight of the newest window; `1.0` = no smoothing).
    pub sample_alpha: f64,
    /// Ignore windows with fewer commits than this (no signal).
    pub min_commits: u64,
    /// Hysteresis: ticks to dwell in a freshly chosen mode before
    /// another switch may be considered.
    pub dwell_ticks: u32,
    /// Hysteresis: the best candidate's modeled cost must undercut the
    /// current mode's by this relative margin to justify a switch.
    pub margin: f64,
    /// Cost weight of one read-set entry revalidated when the commit
    /// clock moves (NOrec-family validation term).
    pub revalidation_weight: f64,
    /// Cost weight of acquiring one extra clock shard at commit
    /// (the sharded clock's write-side tax — what A5's Bank row shows).
    pub shard_commit_weight: f64,
    /// Cost weight of the two orec loads bracketing every TL2 read.
    pub tl2_read_weight: f64,
    /// Cost weight of locking one orec at TL2 commit.
    pub tl2_write_weight: f64,
    /// Cost weight of TL2's restart exposure under contention: a TL2
    /// conflict discards the whole attempt (`r` reads of wasted work),
    /// where the NOrec family's value-based revalidation and snapshot
    /// extension usually salvage the attempt in place.
    pub tl2_contention_weight: f64,
}

impl Default for AdaptPolicy {
    fn default() -> AdaptPolicy {
        AdaptPolicy {
            sample_alpha: 0.5,
            min_commits: 64,
            dwell_ticks: 3,
            margin: 0.25,
            revalidation_weight: 1.0,
            shard_commit_weight: 2.0,
            tl2_read_weight: 0.01,
            tl2_write_weight: 0.5,
            tl2_contention_weight: 0.5,
        }
    }
}

/// The telemetry-driven mode controller: consumes smoothed rate windows
/// ([`RateEwma`], Counters tier only — never a Spans-gated path), scores
/// the available modes with a cost model, and proposes switches with
/// hysteresis. Pull-based: the embedding harness calls
/// [`crate::Stm::adapt_tick`] at its own cadence (no hidden thread).
#[derive(Clone, Debug)]
pub struct Controller {
    policy: AdaptPolicy,
    dwell: u32,
}

impl Controller {
    /// A controller following `policy`.
    pub fn new(policy: AdaptPolicy) -> Controller {
        Controller { policy, dwell: 0 }
    }

    /// The policy this controller follows.
    pub fn policy(&self) -> &AdaptPolicy {
        &self.policy
    }

    /// The per-commit overhead the cost model predicts for `mode` under
    /// the observed window. Dimensionless — only relative order matters.
    ///
    /// The model (DESIGN.md §10): with `r` the average read-set size,
    /// `w` the average write-set size, `p_w = min(1, w)` the likelihood
    /// a commit moves the clock, and `c` an abort-ratio-derived
    /// contention multiplier,
    ///
    /// * global NOrec family: `1 + r·p_w·(¼ + c)·REVAL` — every clock
    ///   move revalidates the whole read-set;
    /// * sharded NOrec family: the same revalidation term scaled by the
    ///   fraction of shards a typical commit moves (`min(1, w/shards)`),
    ///   plus `w·SHARD` for the multi-shard commit acquisition;
    /// * TL2 family: `1.5 + r·TL2R + w·TL2W + r·c·TL2C` — per-read orec
    ///   loads and per-write orec locks (both cheap and
    ///   contention-independent), plus a restart-exposure term: a TL2
    ///   conflict throws away the whole `r`-read attempt, where the
    ///   NOrec family's value revalidation / snapshot extension usually
    ///   saves it. TL2 therefore wins exactly the big-read-set,
    ///   low-abort regime (A7's scan phase) and loses it back as aborts
    ///   appear (the hot hashtable).
    pub fn cost(&self, mode: Mode, rates: &RateEwma, clock_shards: usize) -> f64 {
        let p = &self.policy;
        let r = rates.avg_read_set;
        let w = rates.avg_write_set;
        let p_w = w.min(1.0);
        let contention = (rates.abort_ratio * 8.0).min(4.0);
        let reval = r * p_w * (0.25 + contention) * p.revalidation_weight;
        match (mode.algorithm.baseline(), mode.sharded) {
            (Algorithm::NOrec, false) => 1.0 + reval,
            (Algorithm::NOrec, true) => {
                let moved = (w / clock_shards.max(1) as f64).min(1.0);
                1.0 + w * p.shard_commit_weight + reval * moved
            }
            (Algorithm::Tl2, _) => {
                1.5 + r * p.tl2_read_weight
                    + w * p.tl2_write_weight
                    + r * contention * p.tl2_contention_weight
            }
            _ => unreachable!("baseline() returns a baseline"),
        }
    }

    /// Consider the smoothed window and propose a mode, or `None` to
    /// stay. `clock_shards` is the runtime's shard count (1 = sharded
    /// modes unavailable). The proposal always preserves the current
    /// mode's semanticity: whether `cmp`/`inc` are handled semantically
    /// is an API-level property of the workload (under a baseline mode
    /// the semantic ops delegate to reads/writes and the semantic-usage
    /// signal is invisible), so adaptation only moves between engine
    /// families and clock layouts.
    pub fn decide(&mut self, current: Mode, rates: &RateEwma, clock_shards: usize) -> Option<Mode> {
        if self.dwell > 0 {
            self.dwell -= 1;
            return None;
        }
        if rates.window_commits < self.policy.min_commits {
            return None;
        }
        let semantic = current.algorithm.is_semantic();
        let norec = if semantic {
            Algorithm::SNOrec
        } else {
            Algorithm::NOrec
        };
        let tl2 = if semantic {
            Algorithm::STl2
        } else {
            Algorithm::Tl2
        };
        let mut candidates = vec![Mode::new(norec), Mode::new(tl2)];
        if clock_shards > 1 {
            candidates.push(Mode::sharded(norec));
        }
        let current_cost = self.cost(current, rates, clock_shards);
        let best = candidates
            .into_iter()
            .map(|m| (m, self.cost(m, rates, clock_shards)))
            .min_by(|a, b| a.1.total_cmp(&b.1))?;
        if best.0 != current && best.1 < current_cost * (1.0 - self.policy.margin) {
            Some(best.0)
        } else {
            None
        }
    }

    /// Note that a proposed switch was performed (starts the dwell).
    pub fn note_switched(&mut self) {
        self.dwell = self.policy.dwell_ticks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_modes() -> Vec<Mode> {
        let mut v: Vec<Mode> = Algorithm::ALL.into_iter().map(Mode::new).collect();
        v.extend(
            [Algorithm::NOrec, Algorithm::SNOrec]
                .into_iter()
                .map(Mode::sharded),
        );
        v
    }

    #[test]
    fn mode_word_packs_and_unpacks() {
        for mode in all_modes() {
            for epoch in [0u64, 1, 7, 1 << 40] {
                let w = pack_running(mode, epoch);
                assert!(!is_draining(w));
                assert_eq!(unpack_mode(w), mode);
                assert_eq!(unpack_epoch(w), epoch);
                for next in all_modes() {
                    let d = pack_draining(mode, next, epoch);
                    assert!(is_draining(d));
                    assert_eq!(unpack_mode(d), mode, "draining keeps the old mode");
                    assert_eq!(unpack_epoch(d), epoch);
                    assert_eq!(Mode::from_idx((d >> 4) & 7), next);
                }
            }
        }
    }

    #[test]
    fn initial_mode_follows_the_dispatch_rule() {
        let cfg = StmConfig::new(Algorithm::SNOrec).clock_shards(4);
        assert_eq!(Mode::initial(&cfg), Mode::sharded(Algorithm::SNOrec));
        let cfg = StmConfig::new(Algorithm::SNOrec);
        assert_eq!(Mode::initial(&cfg), Mode::new(Algorithm::SNOrec));
        let cfg = StmConfig::new(Algorithm::STl2).clock_shards(4);
        assert_eq!(Mode::initial(&cfg), Mode::new(Algorithm::STl2));
    }

    #[test]
    fn availability_gates_sharded_modes() {
        let single = StmConfig::new(Algorithm::NOrec);
        let multi = StmConfig::new(Algorithm::NOrec).clock_shards(8);
        assert!(Mode::new(Algorithm::Tl2).available_under(&single));
        assert!(!Mode::sharded(Algorithm::SNOrec).available_under(&single));
        assert!(Mode::sharded(Algorithm::SNOrec).available_under(&multi));
        assert!(!Mode::sharded(Algorithm::STl2).available_under(&multi));
    }

    #[test]
    fn machine_switch_drains_and_bumps_epoch() {
        let m = ModeMachine::new(Mode::new(Algorithm::SNOrec));
        let w = m.enter();
        assert_eq!(unpack_mode(w), Mode::new(Algorithm::SNOrec));
        m.exit();
        let mut reseeded = false;
        let r = m.switch(Mode::new(Algorithm::STl2), || reseeded = true);
        assert!(reseeded);
        assert!(r.changed());
        assert_eq!(r.epoch, 1);
        assert_eq!(m.mode(), Mode::new(Algorithm::STl2));
        assert_eq!(m.switch_count(), 1);
        // No-op switch: no drain, no epoch bump, no reseed.
        let r2 = m.switch(Mode::new(Algorithm::STl2), || panic!("no reseed"));
        assert!(!r2.changed());
        assert_eq!(m.switch_count(), 1);
    }

    #[test]
    fn machine_drain_waits_for_inflight_attempts() {
        use std::sync::Arc;
        let m = Arc::new(ModeMachine::new(Mode::new(Algorithm::NOrec)));
        let entered = m.enter();
        let m2 = m.clone();
        let switcher = std::thread::spawn(move || m2.switch(Mode::new(Algorithm::Tl2), || ()));
        // The switcher cannot finish while we are in flight. Give it a
        // moment to reach the drain loop, then retire; it must complete.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(unpack_mode(entered).algorithm, Algorithm::NOrec);
        m.exit();
        let report = switcher.join().unwrap();
        assert!(report.changed());
        assert_eq!(m.mode(), Mode::new(Algorithm::Tl2));
        // Post-switch attempts run the new mode.
        let w = m.enter();
        assert_eq!(unpack_mode(w), Mode::new(Algorithm::Tl2));
        m.exit();
    }

    fn window(r: f64, w: f64, abort_ratio: f64, commits: u64) -> RateEwma {
        RateEwma {
            commit_rate: 1000.0,
            abort_ratio,
            avg_read_set: r,
            avg_write_set: w,
            wasted_ratio: abort_ratio,
            semantic_share: 0.0,
            window_commits: commits,
            window_secs: 0.1,
        }
    }

    #[test]
    fn controller_maps_the_three_phase_profiles() {
        // The A7 phase profiles (EXPERIMENTS.md): write-wide Bank wants
        // the global clock, the contended hashtable wants cheap partial
        // revalidation, the scan phase's huge read-sets want per-shard
        // (or per-orec) validation rather than whole-set revalidation.
        let mut c = Controller::new(AdaptPolicy {
            dwell_ticks: 0,
            ..AdaptPolicy::default()
        });
        let shards = 16;
        let bank = window(12.0, 20.0, 0.05, 10_000);
        let hot = window(30.0, 4.0, 0.35, 10_000);
        let scan = window(120.0, 0.2, 0.02, 10_000);
        let global = Mode::new(Algorithm::SNOrec);
        let sharded = Mode::sharded(Algorithm::SNOrec);
        let stl2 = Mode::new(Algorithm::STl2);
        // Bank: global NOrec-family is the cheapest of the three.
        let cost_g = c.cost(global, &bank, shards);
        assert!(cost_g < c.cost(sharded, &bank, shards));
        assert!(cost_g < c.cost(stl2, &bank, shards));
        // Contended hashtable: whole-set revalidation is the worst.
        assert!(c.cost(global, &hot, shards) > c.cost(sharded, &hot, shards));
        // Scan: global revalidation of 120-entry read-sets loses badly.
        assert!(c.cost(global, &scan, shards) > c.cost(sharded, &scan, shards));
        // The measured A7 scan profile (64-read windows, every commit
        // writes a summary word, no aborts): per-orec validation beats
        // even the sharded clock — revalidation-free reads win once the
        // clock is busy and nothing ever aborts.
        let busy_scan = window(64.0, 1.15, 0.0, 10_000);
        assert!(c.cost(stl2, &busy_scan, shards) < c.cost(sharded, &busy_scan, shards));
        assert!(c.cost(stl2, &busy_scan, shards) < c.cost(global, &busy_scan, shards));
        // decide() proposes to leave global mode on the hot profile …
        let proposal = c.decide(global, &hot, shards);
        assert!(proposal.is_some());
        // … preserving semanticity.
        assert!(proposal.unwrap().algorithm.is_semantic());
    }

    #[test]
    fn controller_hysteresis_dwell_and_margin() {
        let mut c = Controller::new(AdaptPolicy {
            dwell_ticks: 2,
            ..AdaptPolicy::default()
        });
        let hot = window(30.0, 4.0, 0.35, 10_000);
        let global = Mode::new(Algorithm::SNOrec);
        // Under-sampled window: no decision.
        assert_eq!(c.decide(global, &window(30.0, 4.0, 0.35, 3), 16), None);
        let target = c.decide(global, &hot, 16).expect("clear win");
        c.note_switched();
        // Dwell: the next two ticks stay put even with the same signal.
        assert_eq!(c.decide(target, &hot, 16), None);
        assert_eq!(c.decide(target, &hot, 16), None);
        // After the dwell, the chosen mode is already the best: stay.
        assert_eq!(c.decide(target, &hot, 16), None);
    }
}
