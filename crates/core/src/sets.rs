//! Transaction-local metadata: the semantic read-set, the overloaded
//! write-set, and (for S-TL2) the compare-set.
//!
//! * The **read-set** stores `(address, operator, operand)` triples. A
//!   plain `TM_READ` is recorded as a semantic `EQ` entry (Algorithm 6,
//!   §4.1), which makes NOrec's value-based validation the special case of
//!   semantic validation where every operator is `EQ`.
//! * The **write-set** is NOrec's write-set "overloaded" with a flag per
//!   entry indicating a standard write or an increment (§4.1).
//! * The **compare-set** of S-TL2 reuses the same entry representation as
//!   the read-set; only its validation rule differs (module [`crate::tl2`]).

use crate::heap::{Addr, Heap};
use crate::ops::CmpOp;
use crate::util::hash_u32;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// One recorded semantic read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadEntry {
    /// `*addr OP operand` held when recorded (address–value form; plain
    /// reads are `op == Eq, operand == value read`).
    Val {
        /// Compared address.
        addr: Addr,
        /// Relation that held (or the inverse of the requested one, if the
        /// comparison came out false).
        op: CmpOp,
        /// The constant operand.
        operand: i64,
    },
    /// `*a OP *b` held when recorded (address–address form, `_ITM_S2R`).
    Pair {
        /// Left-hand address.
        a: Addr,
        /// Relation that held.
        op: CmpOp,
        /// Right-hand address.
        b: Addr,
    },
}

impl ReadEntry {
    /// Re-evaluate the recorded relation against current memory — the
    /// semantic validation step (Algorithm 6, line 5).
    #[inline]
    pub fn holds(&self, heap: &Heap) -> bool {
        match *self {
            ReadEntry::Val { addr, op, operand } => op.eval(heap.tm_load(addr), operand),
            ReadEntry::Pair { a, op, b } => op.eval(heap.tm_load(a), heap.tm_load(b)),
        }
    }

    /// Addresses this entry depends on (1 or 2).
    pub fn addrs(&self) -> (Addr, Option<Addr>) {
        match *self {
            ReadEntry::Val { addr, .. } => (addr, None),
            ReadEntry::Pair { a, b, .. } => (a, Some(b)),
        }
    }
}

/// Whether a write-set entry is a buffered store or a deferred increment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteKind {
    /// A standard buffered `TM_WRITE`; `value` is the value to store.
    Store,
    /// A deferred `TM_INC`; `value` is the accumulated delta, applied to
    /// the live memory value at commit time.
    Increment,
}

/// A write-set entry: value-or-delta plus the kind flag (§4.1: "a flag is
/// added to each write-set entry to indicate whether it stores a standard
/// write or an increment").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteEntry {
    /// Buffered value (`Store`) or accumulated delta (`Increment`).
    pub value: i64,
    /// Entry kind.
    pub kind: WriteKind,
}

#[derive(Default)]
struct IdentityU64 {
    h: u64,
}

impl Hasher for IdentityU64 {
    fn finish(&self) -> u64 {
        self.h
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("only u32 keys are hashed");
    }
    fn write_u32(&mut self, v: u32) {
        self.h = hash_u32(v);
    }
}

type AddrMap<V> = HashMap<u32, V, BuildHasherDefault<IdentityU64>>;

/// The transaction write-set, preserving insertion order for deterministic
/// write-back.
///
/// Entries live **inline** in the insertion-order vec; the hash map only
/// holds indices into it. Lookups (`get`, the `write`/`inc` upsert,
/// `promote`) pay one hash probe as before, but [`WriteSet::iter`] — the
/// commit write-back and WAL record-construction path, executed while the
/// commit locks are held — is a linear scan with no per-entry hashing.
#[derive(Default)]
pub struct WriteSet {
    map: AddrMap<u32>,
    entries: Vec<(Addr, WriteEntry)>,
}

impl WriteSet {
    /// Look up the buffered entry for `addr`.
    #[inline]
    pub fn get(&self, addr: Addr) -> Option<WriteEntry> {
        self.map.get(&addr.0).map(|&i| self.entries[i as usize].1)
    }

    /// Record a `TM_WRITE`: overwrites any previous entry and resets the
    /// kind to `Store` (Algorithm 6, line 51).
    pub fn write(&mut self, addr: Addr, value: i64) {
        let entry = WriteEntry {
            value,
            kind: WriteKind::Store,
        };
        match self.map.get(&addr.0) {
            Some(&i) => self.entries[i as usize].1 = entry,
            None => {
                self.map.insert(addr.0, self.entries.len() as u32);
                self.entries.push((addr, entry));
            }
        }
    }

    /// Record a `TM_INC`: accumulates the delta onto the existing entry
    /// *without changing its kind* (Algorithm 6, line 46), or creates a
    /// fresh `Increment` entry (line 48).
    pub fn inc(&mut self, addr: Addr, delta: i64) {
        match self.map.get(&addr.0) {
            Some(&i) => {
                let e = &mut self.entries[i as usize].1;
                e.value = e.value.wrapping_add(delta);
            }
            None => {
                self.map.insert(addr.0, self.entries.len() as u32);
                self.entries.push((
                    addr,
                    WriteEntry {
                        value: delta,
                        kind: WriteKind::Increment,
                    },
                ));
            }
        }
    }

    /// Promote an `Increment` entry to a `Store` after observing the
    /// current memory value `observed` (Algorithm 6, lines 19–22).
    /// Returns the promoted value. Panics if the entry is not an
    /// increment — callers must check the kind first.
    pub fn promote(&mut self, addr: Addr, observed: i64) -> i64 {
        let i = *self
            .map
            .get(&addr.0)
            .expect("promote of address not in write-set");
        let e = &mut self.entries[i as usize].1;
        assert_eq!(e.kind, WriteKind::Increment, "promote of a Store entry");
        e.value = e.value.wrapping_add(observed);
        e.kind = WriteKind::Store;
        e.value
    }

    /// Iterate entries in insertion order (a plain slice walk — the
    /// commit-path fast iteration this layout exists for).
    pub fn iter(&self) -> impl Iterator<Item = (Addr, WriteEntry)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of distinct addresses written.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no writes are buffered (read-only transaction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all entries, keeping allocations for the next attempt.
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap_with(vals: &[i64]) -> (Heap, Vec<Addr>) {
        let h = Heap::new(vals.len().max(1));
        let addrs: Vec<Addr> = vals
            .iter()
            .map(|&v| {
                let a = h.alloc(1);
                h.store(a, v);
                a
            })
            .collect();
        (h, addrs)
    }

    #[test]
    fn read_entry_validation() {
        let (h, a) = heap_with(&[5, -1]);
        assert!(ReadEntry::Val {
            addr: a[0],
            op: CmpOp::Gt,
            operand: 0
        }
        .holds(&h));
        assert!(!ReadEntry::Val {
            addr: a[1],
            op: CmpOp::Gt,
            operand: 0
        }
        .holds(&h));
        assert!(ReadEntry::Pair {
            a: a[0],
            op: CmpOp::Gt,
            b: a[1]
        }
        .holds(&h));
    }

    #[test]
    fn write_after_write_overwrites_and_sets_store() {
        let mut ws = WriteSet::default();
        let a = Addr(3);
        ws.inc(a, 4);
        ws.write(a, 10);
        let e = ws.get(a).unwrap();
        assert_eq!(e.kind, WriteKind::Store);
        assert_eq!(e.value, 10);
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn inc_after_write_accumulates_onto_store() {
        // Algorithm 6 line 46: delta is added, kind stays Store.
        let mut ws = WriteSet::default();
        let a = Addr(0);
        ws.write(a, 10);
        ws.inc(a, -3);
        let e = ws.get(a).unwrap();
        assert_eq!(e.kind, WriteKind::Store);
        assert_eq!(e.value, 7);
    }

    #[test]
    fn inc_after_inc_accumulates_delta() {
        let mut ws = WriteSet::default();
        let a = Addr(1);
        ws.inc(a, 2);
        ws.inc(a, 5);
        let e = ws.get(a).unwrap();
        assert_eq!(e.kind, WriteKind::Increment);
        assert_eq!(e.value, 7);
    }

    #[test]
    fn promote_turns_increment_into_store() {
        let mut ws = WriteSet::default();
        let a = Addr(2);
        ws.inc(a, 2);
        let v = ws.promote(a, 40);
        assert_eq!(v, 42);
        let e = ws.get(a).unwrap();
        assert_eq!(e.kind, WriteKind::Store);
        assert_eq!(e.value, 42);
    }

    #[test]
    #[should_panic(expected = "Store")]
    fn promote_of_store_panics() {
        let mut ws = WriteSet::default();
        let a = Addr(2);
        ws.write(a, 1);
        let _ = ws.promote(a, 0);
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut ws = WriteSet::default();
        for i in [5u32, 1, 9, 3] {
            ws.write(Addr(i), i as i64);
        }
        let order: Vec<u32> = ws.iter().map(|(a, _)| a.0).collect();
        assert_eq!(order, vec![5, 1, 9, 3]);
    }

    #[test]
    fn iteration_order_survives_overwrites_incs_and_promotes() {
        // The inline-entry layout must keep one slot per address at its
        // *first* insertion position, with later writes/incs/promotes
        // updating in place — write-back order is first-touch order.
        let mut ws = WriteSet::default();
        ws.write(Addr(7), 70);
        ws.inc(Addr(2), 1);
        ws.write(Addr(4), 40);
        ws.write(Addr(7), 71); // overwrite: position 0 keeps its slot
        ws.inc(Addr(2), 2); // accumulate: still an Increment
        ws.inc(Addr(4), -5); // inc-after-write stays a Store
        let _ = ws.promote(Addr(2), 100); // promote in place
        let got: Vec<(u32, i64, WriteKind)> =
            ws.iter().map(|(a, e)| (a.0, e.value, e.kind)).collect();
        assert_eq!(
            got,
            vec![
                (7, 71, WriteKind::Store),
                (2, 103, WriteKind::Store),
                (4, 35, WriteKind::Store),
            ]
        );
        assert_eq!(ws.len(), 3);
    }

    #[test]
    fn clear_resets_but_reuses() {
        let mut ws = WriteSet::default();
        ws.write(Addr(1), 1);
        ws.clear();
        assert!(ws.is_empty());
        assert_eq!(ws.get(Addr(1)), None);
    }
}
