//! The sharded commit clock of the NOrec family.
//!
//! Plain NOrec serialises every writer commit through **one** global
//! sequence lock, and every reader revalidates its whole read-set
//! whenever that word moves — ROADMAP item 3's scalability ceiling. The
//! sharded clock splits the single word into `2^k` per-shard sequence
//! locks (each on its own 128-byte line, like the telemetry stat
//! shards), with heap addresses mapped to shards at cache-line
//! granularity:
//!
//! ```text
//! shard(addr) = (addr.index() / LINE_WORDS) & mask
//! ```
//!
//! Two consequences fall out of that mapping:
//!
//! * **Writers only contend when their write-sets share a line.** A
//!   commit acquires exactly the shards covering its write-set (in
//!   ascending index order — see [`crate::scnorec`] for the protocol),
//!   so disjoint commits touch disjoint shard words.
//! * **Readers only revalidate what moved.** A shard's sequence word
//!   covers *exactly* the addresses mapping to it, so a reader whose
//!   snapshot of shard `s` is still current knows no write-back touched
//!   any shard-`s` address — those read-set entries are skipped.
//!
//! With `clock_shards = 1` the mapping collapses to a single word and
//! the protocol degenerates to textbook NOrec.
//!
//! The per-shard words follow the NOrec seqlock convention: even = free
//! (a timestamp), odd = a writer is committing. Timestamps only move
//! forward on commit (`+2`); a failed acquisition rolls back to the
//! pre-acquire even value, which is indistinguishable from the lock
//! never having been taken because rollback happens strictly before any
//! data write-back.

use crate::heap::{Addr, LINE_WORDS};
use std::sync::atomic::{AtomicU64, Ordering};

/// One shard of the commit clock, padded to its own line pair so that
/// writers bumping different shards never false-share (the same
/// `#[repr(align(128))]` treatment as [`crate::telemetry`]'s stat
/// shards).
#[repr(align(128))]
#[derive(Default)]
struct ClockShard {
    lock: AtomicU64,
}

/// The sharded commit clock: `2^k` sequence locks plus the
/// abort-attribution committer stamp shared by the shard family.
pub struct ShardedClock {
    shards: Box<[ClockShard]>,
    mask: usize,
    /// Monotone write-back epoch: bumped once per commit, after the
    /// commit holds all of its shard locks and strictly before its first
    /// data store. Readers use it as an O(1) filter — a validated
    /// snapshot saw every shard even (no write-back in progress), and
    /// any later write-back must bump this counter first, so "epoch
    /// unchanged" proves the heap is still in the snapshot's state and
    /// the O(shards) vector scan (and any entry re-checks) can be
    /// skipped. The counter never moves backwards.
    epoch: ClockShard,
    /// Most recent committer's thread token, stamped under *all* of the
    /// commit's shard locks and only at `TelemetryLevel::Spans` — same
    /// heuristic as `NorecGlobal::committer`.
    committer: AtomicU64,
}

impl ShardedClock {
    /// Create a clock with at least `count` shards (rounded up to a
    /// power of two; `count = 1` is allowed and yields plain NOrec).
    pub fn new(count: usize) -> ShardedClock {
        let n = count.max(1).next_power_of_two();
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, ClockShard::default);
        ShardedClock {
            shards: v.into_boxed_slice(),
            mask: n - 1,
            epoch: ClockShard::default(),
            committer: AtomicU64::new(0),
        }
    }

    /// Number of shards (a power of two).
    #[inline]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the clock has no shards (never true; for lint symmetry).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shard covering heap address `a`. Line granularity: all
    /// [`LINE_WORDS`] words of one cache line share a shard, so padded
    /// allocations ([`crate::heap::Heap::alloc_padded`]) also get
    /// per-node shard words.
    #[inline]
    pub fn shard_of(&self, a: Addr) -> usize {
        (a.index() / LINE_WORDS) & self.mask
    }

    /// Snapshot shard `s`'s sequence word.
    #[inline]
    pub fn load(&self, s: usize) -> u64 {
        self.shards[s].lock.load(Ordering::SeqCst)
    }

    /// Current write-back epoch (see the field docs). A reader holding a
    /// validated all-even snapshot who observes the epoch unchanged
    /// across a heap load knows the load is consistent with that
    /// snapshot: any intervening write-back would have bumped the epoch
    /// first.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.lock.load(Ordering::SeqCst)
    }

    /// Advance the write-back epoch. Committers call this exactly once,
    /// after acquiring every write shard and before the first data
    /// store; failed acquisitions that roll back never touch it.
    #[inline]
    pub fn bump_epoch(&self) {
        self.epoch.lock.fetch_add(1, Ordering::SeqCst);
    }

    /// Era bump for an adaptive mode switch ([`crate::adapt`]): advance
    /// every shard word by one commit's worth (keeping it even/free) and
    /// the write-back epoch. Called only on a quiescent runtime — the
    /// drain barrier guarantees no shard is held — so no pre-switch
    /// shard-vector snapshot can validate as current afterwards.
    pub(crate) fn reseed(&self) {
        for s in self.shards.iter() {
            s.lock.fetch_add(2, Ordering::SeqCst);
        }
        self.bump_epoch();
    }

    /// Try to swing shard `s` from the even value `expected_even` to the
    /// odd (locked) value `expected_even + 1`.
    #[inline]
    pub fn try_acquire(&self, s: usize, expected_even: u64) -> bool {
        debug_assert_eq!(expected_even & 1, 0);
        self.shards[s]
            .lock
            .compare_exchange(
                expected_even,
                expected_even + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Store an even value into shard `s`: `snapshot + 2` after a
    /// committed write-back, or the pre-acquire `snapshot` to roll back
    /// a failed multi-shard acquisition (sound because rollback happens
    /// before any data write-back under this shard).
    #[inline]
    pub fn release(&self, s: usize, new_even: u64) {
        debug_assert_eq!(new_even & 1, 0);
        self.shards[s].lock.store(new_even, Ordering::SeqCst);
    }

    /// Stamp the committer token (flight-recorder attribution; called
    /// only under the commit's shard locks at `TelemetryLevel::Spans`).
    #[inline]
    pub fn stamp_committer(&self, token: u64) {
        self.committer.store(token, Ordering::Relaxed);
    }

    /// The most recent stamped committer (0 = never stamped).
    #[inline]
    pub fn committer(&self) -> u64 {
        self.committer.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_power_of_two() {
        assert_eq!(ShardedClock::new(1).len(), 1);
        assert_eq!(ShardedClock::new(5).len(), 8);
        assert_eq!(ShardedClock::new(8).len(), 8);
    }

    #[test]
    fn shard_mapping_is_line_granular() {
        let c = ShardedClock::new(4);
        // All words of line 0 share shard 0.
        for i in 0..LINE_WORDS {
            assert_eq!(c.shard_of(Addr(i as u32)), 0);
        }
        // Consecutive lines rotate through the shards.
        assert_eq!(c.shard_of(Addr(LINE_WORDS as u32)), 1);
        assert_eq!(c.shard_of(Addr((4 * LINE_WORDS) as u32)), 0);
    }

    #[test]
    fn single_shard_maps_everything_to_zero() {
        let c = ShardedClock::new(1);
        assert_eq!(c.shard_of(Addr(0)), 0);
        assert_eq!(c.shard_of(Addr(12345)), 0);
    }

    #[test]
    fn acquire_release_cycle() {
        let c = ShardedClock::new(2);
        assert_eq!(c.load(0), 0);
        assert!(c.try_acquire(0, 0));
        assert_eq!(c.load(0), 1, "odd while held");
        assert!(!c.try_acquire(0, 0), "second acquire fails");
        assert_eq!(c.load(1), 0, "other shard untouched");
        c.release(0, 2);
        assert_eq!(c.load(0), 2);
        // Rollback path: acquire then restore the pre-acquire value.
        assert!(c.try_acquire(0, 2));
        c.release(0, 2);
        assert_eq!(c.load(0), 2);
    }

    #[test]
    fn epoch_is_explicit_and_monotone() {
        let c = ShardedClock::new(2);
        assert_eq!(c.epoch(), 0);
        assert!(c.try_acquire(0, 0));
        assert_eq!(c.epoch(), 0, "acquisition alone does not move it");
        c.bump_epoch();
        assert_eq!(c.epoch(), 1, "committer bumps before write-back");
        c.release(0, 2);
        assert_eq!(c.epoch(), 1);
        c.bump_epoch();
        assert_eq!(c.epoch(), 2);
    }

    #[test]
    fn shards_are_line_padded() {
        assert_eq!(std::mem::size_of::<ClockShard>(), 128);
        assert_eq!(std::mem::align_of::<ClockShard>(), 128);
    }
}
