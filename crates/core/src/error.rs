//! Abort signalling.
//!
//! Transaction bodies return `Result<T, Abort>`; the runtime's retry loop
//! in [`crate::stm::Stm::atomic`] catches `Err(Abort)` from any barrier,
//! rolls the transaction back, applies contention-manager backoff and
//! re-executes the body. The reason is kept for statistics (the paper's
//! abort-rate plots distinguish nothing finer than "aborted", but the
//! breakdown is useful for the ablation benches).
//!
//! Besides the reason, an `Abort` carries a best-effort [`Conflict`]
//! attribution — *which* heap address (or orec, for the TL2 family)
//! failed, and *whose* commit invalidated it. Attribution is advisory:
//! it feeds the flight recorder and the hot-address sketch, never
//! control flow, which is why `Abort` equality deliberately compares
//! the reason alone.

use crate::heap::Addr;

/// Best-effort attribution of the conflict behind an abort.
///
/// Packed with in-band sentinels (`u32::MAX` for "no address/orec",
/// `0` for "no thread" — thread tokens start at 1) so the error value
/// stays small on the `Result` hot path; use the accessors.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Conflict {
    addr: u32,
    orec: u32,
    by: u64,
}

impl Conflict {
    /// No attribution recorded.
    pub const NONE: Conflict = Conflict {
        addr: u32::MAX,
        orec: u32::MAX,
        by: 0,
    };

    /// The heap address whose validation (or lock acquisition) failed,
    /// when the algorithm could name one.
    #[inline]
    pub fn addr(&self) -> Option<Addr> {
        if self.addr == u32::MAX {
            None
        } else {
            Some(Addr(self.addr))
        }
    }

    /// The orec index involved (TL2 family only).
    #[inline]
    pub fn orec(&self) -> Option<u32> {
        if self.orec == u32::MAX {
            None
        } else {
            Some(self.orec)
        }
    }

    /// The [thread token](crate::util::thread_token) of the transaction
    /// whose commit caused this abort, where knowable: the lock owner
    /// for TL2 lock conflicts, the most recent committer (a heuristic —
    /// see `NorecGlobal`) for value-validation failures.
    #[inline]
    pub fn by(&self) -> Option<u64> {
        if self.by == 0 {
            None
        } else {
            Some(self.by)
        }
    }

    /// Is any attribution present at all?
    #[inline]
    pub fn is_none(&self) -> bool {
        *self == Conflict::NONE
    }
}

impl Default for Conflict {
    fn default() -> Self {
        Conflict::NONE
    }
}

/// Why a transaction attempt must be rolled back and retried.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AbortReason {
    /// Read-set / compare-set validation failed: a concurrent commit
    /// changed a value (NOrec) or an orec version (TL2) in a way that the
    /// recorded relation no longer holds.
    Validation,
    /// A needed ownership record was locked by a concurrent committer
    /// (TL2 family only).
    Locked,
    /// Waited on a locked orec past the configured patience (the paper's
    /// "timeout mechanism to avoid starvation", §4.2).
    Timeout,
    /// Commit-time lock acquisition failed (TL2 family only).
    LockAcquire,
    /// The program itself requested a retry via [`Abort::explicit`].
    Explicit,
    /// The write-ahead commit log refused the transaction's record
    /// (I/O failure or an earlier poisoning). Raised *before* any heap
    /// write-back, so the rollback is clean — but the runtime treats it
    /// as fail-stop rather than retrying against a broken log.
    Durability,
}

impl AbortReason {
    /// Stable display name used in stats tables.
    pub fn name(self) -> &'static str {
        match self {
            AbortReason::Validation => "validation",
            AbortReason::Locked => "locked",
            AbortReason::Timeout => "timeout",
            AbortReason::LockAcquire => "lock-acquire",
            AbortReason::Explicit => "explicit",
            AbortReason::Durability => "durability",
        }
    }
}

/// A request to abort the current transaction attempt.
///
/// `Abort` is a value, not a panic: STM barriers return
/// `Result<_, Abort>` and the `?` operator unwinds the body cleanly.
///
/// Equality compares the [`reason`](Abort::reason) only: the
/// [`Conflict`] attribution is forensic metadata that depends on
/// scheduling, so `Abort::validation().at_addr(a) ==
/// Abort::validation()` — tests can assert on the cause without pinning
/// the (non-deterministic) attribution.
#[derive(Clone, Copy, Debug)]
pub struct Abort {
    /// The cause, recorded in statistics.
    pub reason: AbortReason,
    conflict: Conflict,
}

impl PartialEq for Abort {
    fn eq(&self, other: &Abort) -> bool {
        self.reason == other.reason
    }
}

impl Eq for Abort {}

impl Abort {
    /// Abort due to failed (semantic) validation.
    #[inline]
    pub fn validation() -> Abort {
        Abort {
            reason: AbortReason::Validation,
            conflict: Conflict::NONE,
        }
    }

    /// Abort because a concurrent committer holds a needed orec.
    #[inline]
    pub fn locked() -> Abort {
        Abort {
            reason: AbortReason::Locked,
            conflict: Conflict::NONE,
        }
    }

    /// Abort after exhausting the lock-wait patience.
    #[inline]
    pub fn timeout() -> Abort {
        Abort {
            reason: AbortReason::Timeout,
            conflict: Conflict::NONE,
        }
    }

    /// Abort because commit-time write-lock acquisition failed.
    #[inline]
    pub fn lock_acquire() -> Abort {
        Abort {
            reason: AbortReason::LockAcquire,
            conflict: Conflict::NONE,
        }
    }

    /// Programmer-requested retry (e.g. "queue is full, retry later").
    #[inline]
    pub fn explicit() -> Abort {
        Abort {
            reason: AbortReason::Explicit,
            conflict: Conflict::NONE,
        }
    }

    /// Abort because the commit log could not accept the write record
    /// (see [`crate::wal`]). Not retried: [`crate::Stm::atomic`] treats
    /// it as fail-stop.
    #[inline]
    pub fn durability() -> Abort {
        Abort {
            reason: AbortReason::Durability,
            conflict: Conflict::NONE,
        }
    }

    /// Attach the heap address whose validation failed.
    #[inline]
    pub fn at_addr(mut self, addr: Addr) -> Abort {
        self.conflict.addr = addr.0;
        self
    }

    /// Attach the orec index involved (TL2 family).
    #[inline]
    pub fn at_orec(mut self, orec: usize) -> Abort {
        self.conflict.orec = orec.min(u32::MAX as usize - 1) as u32;
        self
    }

    /// Attach the thread token of the conflicting committer.
    #[inline]
    pub fn by(mut self, token: u64) -> Abort {
        self.conflict.by = token;
        self
    }

    /// The recorded conflict attribution.
    #[inline]
    pub fn conflict(&self) -> Conflict {
        self.conflict
    }
}

impl std::fmt::Display for Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transaction aborted ({})", self.reason.name())?;
        if let Some(a) = self.conflict.addr() {
            write!(f, " at addr {}", a.index())?;
        }
        if let Some(by) = self.conflict.by() {
            write!(f, " by thread {by}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Abort {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_have_distinct_names() {
        let all = [
            AbortReason::Validation,
            AbortReason::Locked,
            AbortReason::Timeout,
            AbortReason::LockAcquire,
            AbortReason::Explicit,
            AbortReason::Durability,
        ];
        let mut names: Vec<_> = all.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn display_mentions_reason() {
        assert!(Abort::timeout().to_string().contains("timeout"));
    }

    #[test]
    fn equality_ignores_attribution() {
        let plain = Abort::validation();
        let attributed = Abort::validation().at_addr(Addr(7)).at_orec(3).by(9);
        assert_eq!(plain, attributed);
        assert_ne!(attributed, Abort::locked());
        assert_eq!(attributed.conflict().addr(), Some(Addr(7)));
        assert_eq!(attributed.conflict().orec(), Some(3));
        assert_eq!(attributed.conflict().by(), Some(9));
        assert!(plain.conflict().is_none());
    }

    #[test]
    fn conflict_sentinels_read_as_none() {
        let c = Conflict::NONE;
        assert_eq!(c.addr(), None);
        assert_eq!(c.orec(), None);
        assert_eq!(c.by(), None);
        assert!(c.is_none());
        assert_eq!(Conflict::default(), Conflict::NONE);
    }

    #[test]
    fn display_includes_attribution_when_present() {
        let a = Abort::validation().at_addr(Addr(42)).by(5);
        let s = a.to_string();
        assert!(s.contains("validation"), "{s}");
        assert!(s.contains("addr 42"), "{s}");
        assert!(s.contains("thread 5"), "{s}");
    }
}
