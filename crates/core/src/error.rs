//! Abort signalling.
//!
//! Transaction bodies return `Result<T, Abort>`; the runtime's retry loop
//! in [`crate::stm::Stm::atomic`] catches `Err(Abort)` from any barrier,
//! rolls the transaction back, applies contention-manager backoff and
//! re-executes the body. The reason is kept for statistics (the paper's
//! abort-rate plots distinguish nothing finer than "aborted", but the
//! breakdown is useful for the ablation benches).

/// Why a transaction attempt must be rolled back and retried.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AbortReason {
    /// Read-set / compare-set validation failed: a concurrent commit
    /// changed a value (NOrec) or an orec version (TL2) in a way that the
    /// recorded relation no longer holds.
    Validation,
    /// A needed ownership record was locked by a concurrent committer
    /// (TL2 family only).
    Locked,
    /// Waited on a locked orec past the configured patience (the paper's
    /// "timeout mechanism to avoid starvation", §4.2).
    Timeout,
    /// Commit-time lock acquisition failed (TL2 family only).
    LockAcquire,
    /// The program itself requested a retry via [`Abort::explicit`].
    Explicit,
}

impl AbortReason {
    /// Stable display name used in stats tables.
    pub fn name(self) -> &'static str {
        match self {
            AbortReason::Validation => "validation",
            AbortReason::Locked => "locked",
            AbortReason::Timeout => "timeout",
            AbortReason::LockAcquire => "lock-acquire",
            AbortReason::Explicit => "explicit",
        }
    }
}

/// A request to abort the current transaction attempt.
///
/// `Abort` is a value, not a panic: STM barriers return
/// `Result<_, Abort>` and the `?` operator unwinds the body cleanly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Abort {
    /// The cause, recorded in statistics.
    pub reason: AbortReason,
}

impl Abort {
    /// Abort due to failed (semantic) validation.
    #[inline]
    pub fn validation() -> Abort {
        Abort {
            reason: AbortReason::Validation,
        }
    }

    /// Abort because a concurrent committer holds a needed orec.
    #[inline]
    pub fn locked() -> Abort {
        Abort {
            reason: AbortReason::Locked,
        }
    }

    /// Abort after exhausting the lock-wait patience.
    #[inline]
    pub fn timeout() -> Abort {
        Abort {
            reason: AbortReason::Timeout,
        }
    }

    /// Abort because commit-time write-lock acquisition failed.
    #[inline]
    pub fn lock_acquire() -> Abort {
        Abort {
            reason: AbortReason::LockAcquire,
        }
    }

    /// Programmer-requested retry (e.g. "queue is full, retry later").
    #[inline]
    pub fn explicit() -> Abort {
        Abort {
            reason: AbortReason::Explicit,
        }
    }
}

impl std::fmt::Display for Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transaction aborted ({})", self.reason.name())
    }
}

impl std::error::Error for Abort {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_have_distinct_names() {
        let all = [
            AbortReason::Validation,
            AbortReason::Locked,
            AbortReason::Timeout,
            AbortReason::LockAcquire,
            AbortReason::Explicit,
        ];
        let mut names: Vec<_> = all.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn display_mentions_reason() {
        assert!(Abort::timeout().to_string().contains("timeout"));
    }
}
