//! Semantic comparison operators (the paper's Table 1, conditional family).
//!
//! A `cmp` records *which relation held*, not *which value was read*. The
//! recorded entry is the operator itself when the comparison was true, or
//! its [inverse](CmpOp::inverse) when it was false, so that validation can
//! simply re-evaluate "does the recorded relation still hold?" (Algorithm 6
//! line 5, Algorithm 7 line 63).

/// The six TM-friendly conditional operators: `TM_EQ`, `TM_NEQ`, `TM_GT`,
/// `TM_GTE`, `TM_LT`, `TM_LTE`.
///
/// Operands are compared with signed 64-bit semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum CmpOp {
    /// `TM_EQ` — equals.
    Eq,
    /// `TM_NEQ` — not equals.
    Neq,
    /// `TM_GT` — strictly greater than.
    Gt,
    /// `TM_GTE` — greater than or equals.
    Gte,
    /// `TM_LT` — strictly less than.
    Lt,
    /// `TM_LTE` — less than or equals.
    Lte,
}

impl CmpOp {
    /// Evaluate `lhs OP rhs`.
    #[inline]
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Neq => lhs != rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Gte => lhs >= rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Lte => lhs <= rhs,
        }
    }

    /// The logical negation of the operator: `!(a OP b) == a OP.inverse() b`.
    ///
    /// Used when recording a comparison whose outcome was `false`
    /// (Algorithm 6 line 34: `reads.append(addr, operand, result ? OP :
    /// Inverse(OP))`).
    #[inline]
    pub fn inverse(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Neq,
            CmpOp::Neq => CmpOp::Eq,
            CmpOp::Gt => CmpOp::Lte,
            CmpOp::Gte => CmpOp::Lt,
            CmpOp::Lt => CmpOp::Gte,
            CmpOp::Lte => CmpOp::Gt,
        }
    }

    /// The mirrored operator: `a OP b == b OP.swap() a`.
    ///
    /// Needed by the address–address form when only the right-hand operand
    /// is pinned by the transaction's own write-set.
    #[inline]
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Neq => CmpOp::Neq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Gte => CmpOp::Lte,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Lte => CmpOp::Gte,
        }
    }

    /// All six operators, for tests and exhaustive sweeps.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Neq,
        CmpOp::Gt,
        CmpOp::Gte,
        CmpOp::Lt,
        CmpOp::Lte,
    ];

    /// Short lowercase mnemonic (`eq`, `neq`, `gt`, `gte`, `lt`, `lte`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Neq => "neq",
            CmpOp::Gt => "gt",
            CmpOp::Gte => "gte",
            CmpOp::Lt => "lt",
            CmpOp::Lte => "lte",
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "==",
            CmpOp::Neq => "!=",
            CmpOp::Gt => ">",
            CmpOp::Gte => ">=",
            CmpOp::Lt => "<",
            CmpOp::Lte => "<=",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: [i64; 7] = [i64::MIN, -7, -1, 0, 1, 42, i64::MAX];

    #[test]
    fn inverse_is_logical_negation() {
        for op in CmpOp::ALL {
            for &a in &SAMPLES {
                for &b in &SAMPLES {
                    assert_eq!(
                        op.eval(a, b),
                        !op.inverse().eval(a, b),
                        "{a} {op} {b} vs inverse"
                    );
                }
            }
        }
    }

    #[test]
    fn inverse_is_involutive() {
        for op in CmpOp::ALL {
            assert_eq!(op.inverse().inverse(), op);
        }
    }

    #[test]
    fn swap_mirrors_operands() {
        for op in CmpOp::ALL {
            for &a in &SAMPLES {
                for &b in &SAMPLES {
                    assert_eq!(op.eval(a, b), op.swap().eval(b, a), "{a} {op} {b} vs swap");
                }
            }
        }
    }

    #[test]
    fn signed_semantics() {
        assert!(CmpOp::Gt.eval(0, -1));
        assert!(CmpOp::Lt.eval(i64::MIN, 0));
        assert!(!CmpOp::Gt.eval(-1, 0));
    }
}
