//! NOrec and S-NOrec (the paper's Algorithm 6).
//!
//! NOrec [Dalessandro et al., PPoPP 2010] keeps **no ownership records**:
//! a single global sequence lock orders writer commits, and readers
//! maintain value-based read-sets validated whenever the global lock
//! changes. S-NOrec generalises value-based validation to **semantic
//! validation**: the read-set stores `(addr, operator, operand)` triples
//! and validation re-evaluates the recorded relation, so a concurrent
//! commit that changes a value *without changing the recorded relation's
//! outcome* no longer aborts the reader. Plain reads degenerate to `EQ`
//! entries, recovering exactly NOrec's value-based validation.
//!
//! The baseline (`Algorithm::NOrec`) uses the same code with the semantic
//! entry points never invoked — the front-end [`crate::stm::Tx`] delegates
//! `cmp`→`read` and `inc`→`read`+`write` for non-semantic algorithms,
//! mirroring how unmodified libitm delegates the new ABI calls.

use crate::error::Abort;
use crate::fault;
use crate::heap::{Addr, Heap};
use crate::ops::CmpOp;
use crate::ring::{filter_bit, FilterRing};
use crate::sched;
use crate::sets::{ReadEntry, WriteEntry, WriteKind, WriteSet};
use crate::stats::OpCounts;
use crate::telemetry::PhaseRecorder;
use crate::util::SpinWait;
use crate::wal::CommitLog;
use std::sync::atomic::{AtomicU64, Ordering};

/// The single global timestamped lock (even = free, odd = a writer is
/// committing). All NOrec-family transactions of one [`crate::Stm`]
/// serialise their write-backs through this word.
#[derive(Default)]
pub struct NorecGlobal {
    lock: AtomicU64,
    /// RingSTM-style per-commit write filters (used only when the
    /// `norec_ring_filters` knob is on; see [`crate::ring`]).
    ring: FilterRing,
    /// Thread token of the most recent committer, stamped under the
    /// sequence lock — and only when the flight recorder is on
    /// (`TelemetryLevel::Spans`), so the default hot path never touches
    /// this word. NOrec has no per-address metadata, so abort
    /// attribution uses this as a "most recent committer" heuristic: it
    /// names the right culprit whenever the invalidating commit is the
    /// latest one, which under the single global lock is the common
    /// case.
    committer: AtomicU64,
}

impl NorecGlobal {
    #[inline]
    fn load(&self) -> u64 {
        self.lock.load(Ordering::SeqCst)
    }

    #[inline]
    fn try_acquire(&self, expected_even: u64) -> bool {
        self.lock
            .compare_exchange(
                expected_even,
                expected_even + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    #[inline]
    fn release(&self, new_even: u64) {
        debug_assert_eq!(new_even & 1, 0);
        self.lock.store(new_even, Ordering::SeqCst);
    }

    /// Current timestamp (for diagnostics/tests).
    pub fn time(&self) -> u64 {
        self.load()
    }

    /// Era bump for an adaptive mode switch ([`crate::adapt`]): advance
    /// the timestamp by one commit's worth while keeping it even (free).
    /// Called only on a quiescent runtime — the drain barrier guarantees
    /// no writer holds the lock — so any snapshot taken before the
    /// switch can never validate as "unchanged" after it.
    pub(crate) fn reseed(&self) {
        self.lock.fetch_add(2, Ordering::SeqCst);
    }
}

/// One NOrec / S-NOrec transaction attempt.
///
/// Not a public API — used through [`crate::stm::Tx`].
pub struct NorecTx<'a> {
    heap: &'a Heap,
    global: &'a NorecGlobal,
    dedup_reads: bool,
    use_ring: bool,
    snapshot: u64,
    /// Bloom filter over the read-set's addresses (ring fast path).
    read_filter: u64,
    reads: Vec<ReadEntry>,
    writes: WriteSet,
    /// Flight-recorder phase marks; inert (its enabled check is the
    /// materialised `level >= Spans` guard) unless
    /// [`NorecTx::enable_spans`] installed a live recorder.
    phases: PhaseRecorder,
    /// Stamp/read the global committer word for abort attribution.
    /// Only true at `TelemetryLevel::Spans`.
    record_committer: bool,
    /// The write-ahead commit log, when the owning [`crate::Stm`] is
    /// durable (see [`NorecTx::enable_wal`]).
    wal: Option<&'a CommitLog>,
}

impl<'a> NorecTx<'a> {
    /// Create a transaction context bound to `heap` and the global lock.
    pub(crate) fn new(
        heap: &'a Heap,
        global: &'a NorecGlobal,
        dedup_reads: bool,
        use_ring: bool,
    ) -> Self {
        NorecTx {
            heap,
            global,
            dedup_reads,
            use_ring,
            snapshot: 0,
            read_filter: 0,
            reads: Vec::new(),
            writes: WriteSet::default(),
            phases: PhaseRecorder::disabled(),
            record_committer: false,
            wal: None,
        }
    }

    /// Make writer commits durable: append the resolved write set to
    /// `log` post-validation/pre-write-back and ack only once durable.
    pub(crate) fn enable_wal(&mut self, log: &'a CommitLog) {
        self.wal = Some(log);
    }

    /// Turn the flight recorder on for this context: install a live
    /// phase recorder and enable committer stamping/attribution.
    pub(crate) fn enable_spans(&mut self, recorder: PhaseRecorder) {
        self.phases = recorder;
        self.record_committer = recorder.is_enabled();
    }

    /// Current phase marks (read back by the span recorder).
    pub(crate) fn phases(&self) -> PhaseRecorder {
        self.phases
    }

    /// Begin (or re-begin after an abort): clear metadata and take an even
    /// snapshot of the global lock (Algorithm 6, `Start`).
    pub(crate) fn begin(&mut self) {
        self.reads.clear();
        self.writes.clear();
        self.read_filter = 0;
        self.phases.reset();
        let mut wait = SpinWait::new();
        loop {
            sched::point(sched::PointKind::NorecBegin);
            let s = self.global.load();
            if s & 1 == 0 {
                self.snapshot = s;
                return;
            }
            sched::spin();
            wait.spin();
        }
    }

    /// Algorithm 6 `Validate` (lines 1–9): wait out in-flight commits,
    /// semantically re-check every read-set entry, and return the (even)
    /// time at which the read-set was observed consistent.
    /// Also advances `self.snapshot` to the returned time on success.
    fn validate(&mut self) -> Result<u64, Abort> {
        self.phases.mark_validate();
        let mut wait = SpinWait::new();
        loop {
            sched::point(sched::PointKind::NorecValidate);
            let time = self.global.load();
            if time & 1 != 0 {
                sched::spin();
                wait.spin();
                continue;
            }
            // RingSTM fast path: if none of the missed commits' write
            // filters intersects our read filter, the read-set cannot
            // have been invalidated — skip the per-entry re-check. Any
            // concurrent commit during the union flips the lock word and
            // fails the final time re-check, so overwritten slots can
            // never be trusted by mistake.
            let fast_clear = self.use_ring
                && self
                    .global
                    .ring
                    .union(self.snapshot, time)
                    .map(|missed| missed & self.read_filter == 0)
                    .unwrap_or(false);
            if !fast_clear && !fault::active(fault::SNOREC_SKIP_REVALIDATION) {
                for e in &self.reads {
                    if !e.holds(self.heap) {
                        return Err(self.attributed_validation(e));
                    }
                }
            }
            sched::point(sched::PointKind::NorecValidateRecheck);
            if time == self.global.load() {
                self.snapshot = time;
                return Ok(time);
            }
        }
    }

    /// Algorithm 6 `ReadValid` (lines 10–16): read a word, re-validating
    /// (and moving the snapshot forward) whenever the global lock moved.
    fn read_valid(&mut self, addr: Addr) -> Result<i64, Abort> {
        sched::point(sched::PointKind::NorecRead);
        let mut val = self.heap.tm_load(addr);
        while self.snapshot != self.global.load() {
            self.snapshot = self.validate()?;
            sched::point(sched::PointKind::NorecRead);
            val = self.heap.tm_load(addr);
        }
        Ok(val)
    }

    /// Read-after-write resolution (Algorithm 6 `RAW`, lines 17–23).
    /// Returns the value the transaction would observe for `addr` if it is
    /// buffered, promoting `Increment` entries to reads+stores.
    fn raw(&mut self, addr: Addr, ops: &mut OpCounts) -> Result<Option<i64>, Abort> {
        match self.writes.get(addr) {
            None => Ok(None),
            Some(WriteEntry {
                kind: WriteKind::Store,
                value,
            }) => Ok(Some(value)),
            Some(WriteEntry {
                kind: WriteKind::Increment,
                ..
            }) => {
                // Promote: the increment's read can no longer be deferred.
                let observed = self.read_valid(addr)?;
                self.push_read(ReadEntry::Val {
                    addr,
                    op: CmpOp::Eq,
                    operand: observed,
                });
                ops.promotes += 1;
                Ok(Some(self.writes.promote(addr, observed)))
            }
        }
    }

    fn push_read(&mut self, entry: ReadEntry) {
        let (a, b) = entry.addrs();
        self.read_filter |= filter_bit(a.index());
        if let Some(b) = b {
            self.read_filter |= filter_bit(b.index());
        }
        // §4.1 "read after read": duplicates are appended by default; the
        // dedup variant exists as an ablation knob (A2 in DESIGN.md).
        if self.dedup_reads && self.reads.contains(&entry) {
            return;
        }
        self.reads.push(entry);
    }

    /// `TM_READ` (Algorithm 6, lines 37–43).
    pub(crate) fn read(&mut self, addr: Addr, ops: &mut OpCounts) -> Result<i64, Abort> {
        if let Some(v) = self.raw(addr, ops)? {
            return Ok(v);
        }
        let val = self.read_valid(addr)?;
        self.push_read(ReadEntry::Val {
            addr,
            op: CmpOp::Eq,
            operand: val,
        });
        Ok(val)
    }

    /// `TM_WRITE` (Algorithm 6, lines 50–52).
    pub(crate) fn write(&mut self, addr: Addr, value: i64) {
        self.writes.write(addr, value);
    }

    /// Semantic compare, address–value form (Algorithm 6 `Compare`,
    /// lines 29–36).
    pub(crate) fn cmp(
        &mut self,
        addr: Addr,
        op: CmpOp,
        operand: i64,
        ops: &mut OpCounts,
    ) -> Result<bool, Abort> {
        if let Some(v) = self.raw(addr, ops)? {
            return Ok(op.eval(v, operand));
        }
        let val = self.read_valid(addr)?;
        let result = op.eval(val, operand);
        self.push_read(ReadEntry::Val {
            addr,
            op: if result { op } else { op.inverse() },
            operand,
        });
        Ok(result)
    }

    /// Semantic compare, address–address form (`_ITM_S2R`). Sides pinned
    /// by the write-set collapse to the address–value form; when both
    /// operands are live memory the whole relation is recorded as one
    /// `Pair` entry validated semantically.
    pub(crate) fn cmp_addr(
        &mut self,
        a: Addr,
        op: CmpOp,
        b: Addr,
        ops: &mut OpCounts,
    ) -> Result<bool, Abort> {
        let wa = self.raw(a, ops)?;
        let wb = self.raw(b, ops)?;
        match (wa, wb) {
            (Some(va), Some(vb)) => Ok(op.eval(va, vb)),
            (Some(va), None) => self.cmp(b, op.swap(), va, ops),
            (None, Some(vb)) => self.cmp(a, op, vb, ops),
            (None, None) => {
                // Read both sides under one snapshot so the recorded
                // relation reflects a consistent memory state.
                let (va, vb) = loop {
                    let s = self.snapshot;
                    let va = self.read_valid(a)?;
                    let vb = self.read_valid(b)?;
                    if self.snapshot == s {
                        break (va, vb);
                    }
                };
                let result = op.eval(va, vb);
                self.push_read(ReadEntry::Pair {
                    a,
                    op: if result { op } else { op.inverse() },
                    b,
                });
                Ok(result)
            }
        }
    }

    /// Semantic increment/decrement (Algorithm 6 `Increment`,
    /// lines 44–49): pure write-set bookkeeping; the read happens at
    /// commit time under the global lock.
    pub(crate) fn inc(&mut self, addr: Addr, delta: i64) {
        self.writes.inc(addr, delta);
    }

    /// The failing entry's address plus, when the flight recorder is
    /// on, the most-recent-committer heuristic (see
    /// [`NorecGlobal::committer`]).
    fn attributed_validation(&self, entry: &ReadEntry) -> Abort {
        let mut abort = Abort::validation().at_addr(entry.addrs().0);
        if self.record_committer {
            // 0 (never stamped) is `Conflict`'s "unknown" sentinel.
            abort = abort.by(self.global.committer.load(Ordering::Relaxed));
        }
        abort
    }

    /// Commit. Read-only transactions commit immediately (their last
    /// validation is their serialisation point); writers grab the global
    /// sequence lock, re-validating until the CAS lands, then write back
    /// (applying deferred increments against live memory) and release.
    pub(crate) fn commit(&mut self) -> Result<(), Abort> {
        if self.writes.is_empty() {
            return Ok(());
        }
        self.phases.mark_lock();
        let mut snap = self.snapshot;
        loop {
            sched::point(sched::PointKind::NorecCommitAcquire);
            if self.global.try_acquire(snap) {
                break;
            }
            snap = self.validate()?;
        }
        if self.record_committer {
            // Under the lock: a reader that observes the released time
            // also observes (at least) this committer token.
            self.global
                .committer
                .store(crate::util::thread_token(), Ordering::Relaxed);
        }
        // Lock held: resolve deferred increments against live memory
        // into absolute values. The WAL record must hold the resolved
        // values (replay cannot re-run increments), so resolution moves
        // ahead of the log append; without a log it fuses back into the
        // write-back loop below via the same `resolve` values.
        let ticket = if let Some(log) = self.wal {
            let resolved: Vec<(Addr, i64)> = self
                .writes
                .iter()
                .map(|(addr, e)| (addr, self.resolve(addr, &e)))
                .collect();
            sched::point(sched::PointKind::WalAppend);
            match log.append(&resolved) {
                Ok(t) => Some(t),
                Err(_) => {
                    // Nothing written back yet: restore the pre-acquire
                    // even time and abort cleanly.
                    self.global.release(snap);
                    return Err(Abort::durability());
                }
            }
        } else {
            None
        };
        // From here through `release` the write-back is one atomic step
        // of the virtual schedule (no further sched points).
        sched::point(sched::PointKind::NorecWriteback);
        self.phases.mark_writeback();
        let mut write_filter = 0u64;
        for (addr, e) in self.writes.iter() {
            let v = self.resolve(addr, &e);
            self.heap.tm_store(addr, v);
            write_filter |= filter_bit(addr.index());
        }
        if self.use_ring {
            // Publish before release so any reader that observes the new
            // time also observes this commit's filter.
            self.global.ring.publish(snap, write_filter);
        }
        self.global.release(snap + 2);
        if let (Some(log), Some(t)) = (self.wal, ticket) {
            // Ack only once durable. A flush failure here is fail-stop:
            // the in-memory commit is already visible and cannot be
            // retried (increments would double-apply).
            if let Err(e) = log.wait_durable(t) {
                panic!(
                    "commit {} is applied but cannot be made durable: {e}",
                    t.seq()
                );
            }
        }
        Ok(())
    }

    /// The absolute value a write entry stores: deferred increments are
    /// materialised against live memory (valid only under the commit
    /// lock, after validation).
    #[inline]
    fn resolve(&self, addr: Addr, e: &WriteEntry) -> i64 {
        match e.kind {
            WriteKind::Store => e.value,
            WriteKind::Increment => self.heap.tm_load(addr).wrapping_add(e.value),
        }
    }

    /// Number of read-set entries (diagnostics/tests).
    pub(crate) fn read_set_len(&self) -> usize {
        self.reads.len()
    }

    /// Number of write-set entries (flight-recorder spans).
    pub(crate) fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    /// Whether the transaction has buffered writes.
    pub(crate) fn is_writer(&self) -> bool {
        !self.writes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Heap, NorecGlobal) {
        (Heap::new(64), NorecGlobal::default())
    }

    fn commit_write(heap: &Heap, global: &NorecGlobal, addr: Addr, v: i64) {
        // A complete concurrent writer transaction, run inline.
        let mut tx = NorecTx::new(heap, global, false, false);
        tx.begin();
        tx.write(addr, v);
        tx.commit().unwrap();
    }

    #[test]
    fn read_write_roundtrip_single_tx() {
        let (heap, global) = setup();
        let a = heap.alloc(1);
        let mut ops = OpCounts::default();
        let mut tx = NorecTx::new(&heap, &global, false, false);
        tx.begin();
        tx.write(a, 41);
        assert_eq!(tx.read(a, &mut ops).unwrap(), 41); // RAW
        tx.inc(a, 1);
        assert_eq!(tx.read(a, &mut ops).unwrap(), 42); // inc onto Store
        tx.commit().unwrap();
        assert_eq!(heap.load(a), 42);
    }

    #[test]
    fn plain_read_conflict_aborts_at_validation() {
        let (heap, global) = setup();
        let a = heap.alloc(1);
        heap.store(a, 5);
        let mut ops = OpCounts::default();
        let mut t1 = NorecTx::new(&heap, &global, false, false);
        t1.begin();
        assert_eq!(t1.read(a, &mut ops).unwrap(), 5);
        commit_write(&heap, &global, a, 6); // concurrent commit
        t1.write(a, 100);
        assert_eq!(t1.commit(), Err(Abort::validation()));
    }

    #[test]
    fn semantic_cmp_survives_value_change_that_preserves_relation() {
        // The paper's Algorithm 1: T1 checks x > 0; T2 increments x; T1
        // must still commit under S-NOrec.
        let (heap, global) = setup();
        let x = heap.alloc(1);
        heap.store(x, 5);
        let y = heap.alloc(1);
        let mut ops = OpCounts::default();
        let mut t1 = NorecTx::new(&heap, &global, false, false);
        t1.begin();
        assert!(t1.cmp(x, CmpOp::Gt, 0, &mut ops).unwrap());
        commit_write(&heap, &global, x, 6); // x++ equivalent: 5 -> 6, still > 0
        t1.write(y, 1);
        t1.commit().expect("semantic validation must pass");
        assert_eq!(heap.load(y), 1);
    }

    #[test]
    fn semantic_cmp_aborts_when_relation_flips() {
        let (heap, global) = setup();
        let x = heap.alloc(1);
        heap.store(x, 1);
        let y = heap.alloc(1);
        let mut ops = OpCounts::default();
        let mut t1 = NorecTx::new(&heap, &global, false, false);
        t1.begin();
        assert!(t1.cmp(x, CmpOp::Gt, 0, &mut ops).unwrap());
        commit_write(&heap, &global, x, -3); // relation x > 0 now false
        t1.write(y, 1);
        assert_eq!(t1.commit(), Err(Abort::validation()));
    }

    #[test]
    fn false_cmp_records_inverse_and_validates_it() {
        let (heap, global) = setup();
        let x = heap.alloc(1);
        heap.store(x, -4);
        let y = heap.alloc(1);
        let mut ops = OpCounts::default();
        let mut t1 = NorecTx::new(&heap, &global, false, false);
        t1.begin();
        // x > 0 is false; the inverse (x <= 0) is recorded.
        assert!(!t1.cmp(x, CmpOp::Gt, 0, &mut ops).unwrap());
        commit_write(&heap, &global, x, -10); // still <= 0: fine
        t1.write(y, 1);
        t1.commit().unwrap();
    }

    #[test]
    fn deferred_inc_applies_against_live_memory() {
        // Two increments racing: one commits between the other's begin and
        // commit; deferred-inc semantics must not lose either update.
        let (heap, global) = setup();
        let x = heap.alloc(1);
        heap.store(x, 10);
        let mut t1 = NorecTx::new(&heap, &global, false, false);
        t1.begin();
        t1.inc(x, 1);
        // Concurrent committed increment.
        let mut t2 = NorecTx::new(&heap, &global, false, false);
        t2.begin();
        t2.inc(x, 5);
        t2.commit().unwrap();
        assert_eq!(heap.load(x), 15);
        t1.commit().expect("pure-inc transaction has no read-set");
        assert_eq!(heap.load(x), 16, "no lost update");
    }

    #[test]
    fn promote_pins_the_observed_value() {
        let (heap, global) = setup();
        let x = heap.alloc(1);
        heap.store(x, 7);
        let mut ops = OpCounts::default();
        let mut t1 = NorecTx::new(&heap, &global, false, false);
        t1.begin();
        t1.inc(x, 2);
        assert_eq!(t1.read(x, &mut ops).unwrap(), 9); // promoted: 7 + 2
        assert_eq!(ops.promotes, 1);
        assert_eq!(t1.read_set_len(), 1, "promotion adds an EQ read entry");
        // After promotion the entry is a Store; a concurrent change must
        // now abort the transaction (value semantics, no longer deferred).
        commit_write(&heap, &global, x, 100);
        assert_eq!(t1.commit(), Err(Abort::validation()));
    }

    #[test]
    fn cmp_addr_pair_semantic_validation() {
        let (heap, global) = setup();
        let h = heap.alloc(1);
        let t = heap.alloc(1);
        heap.store(h, 3);
        heap.store(t, 9);
        let out = heap.alloc(1);
        let mut ops = OpCounts::default();
        let mut t1 = NorecTx::new(&heap, &global, false, false);
        t1.begin();
        // head != tail (queue non-empty check, Algorithm 3)
        assert!(t1.cmp_addr(h, CmpOp::Neq, t, &mut ops).unwrap());
        // Concurrent enqueue bumps tail; relation still holds.
        commit_write(&heap, &global, t, 10);
        t1.write(out, 1);
        t1.commit().expect("pair relation still holds");
        // Now make them equal: relation flips, validation must fail.
        let mut t2 = NorecTx::new(&heap, &global, false, false);
        t2.begin();
        assert!(t2.cmp_addr(h, CmpOp::Neq, t, &mut ops).unwrap());
        commit_write(&heap, &global, h, 10);
        t2.write(out, 2);
        assert_eq!(t2.commit(), Err(Abort::validation()));
    }

    #[test]
    fn read_only_tx_commits_without_touching_global() {
        let (heap, global) = setup();
        let a = heap.alloc(1);
        let mut ops = OpCounts::default();
        let before = global.time();
        let mut tx = NorecTx::new(&heap, &global, false, false);
        tx.begin();
        let _ = tx.read(a, &mut ops).unwrap();
        tx.commit().unwrap();
        assert_eq!(global.time(), before);
    }

    #[test]
    fn duplicate_reads_appended_by_default_deduped_with_knob() {
        let (heap, global) = setup();
        let a = heap.alloc(1);
        let mut ops = OpCounts::default();

        let mut tx = NorecTx::new(&heap, &global, false, false);
        tx.begin();
        let _ = tx.read(a, &mut ops).unwrap();
        let _ = tx.read(a, &mut ops).unwrap();
        assert_eq!(tx.read_set_len(), 2);

        let mut tx = NorecTx::new(&heap, &global, true, false);
        tx.begin();
        let _ = tx.read(a, &mut ops).unwrap();
        let _ = tx.read(a, &mut ops).unwrap();
        assert_eq!(tx.read_set_len(), 1);
    }

    #[test]
    fn ring_filters_preserve_all_outcomes() {
        // Same scenarios as above with the RingSTM fast path on: results
        // must be identical (the filters are an accelerator, not a
        // semantics change).
        let (heap, global) = setup();
        let x = heap.alloc(1);
        let y = heap.alloc(1);
        heap.store(x, 5);
        let mut ops = OpCounts::default();

        // Disjoint concurrent commit: reader revalidation is skippable
        // and the transaction commits.
        let mut t1 = NorecTx::new(&heap, &global, false, true);
        t1.begin();
        assert_eq!(t1.read(x, &mut ops).unwrap(), 5);
        let mut t2 = NorecTx::new(&heap, &global, false, true);
        t2.begin();
        t2.write(y, 9);
        t2.commit().unwrap();
        t1.write(y, 10);
        t1.commit()
            .expect("disjoint commit must not abort the reader");
        assert_eq!(heap.load(y), 10);

        // Overlapping commit: the filter hits, full validation runs, and
        // the stale reader aborts exactly as without filters.
        heap.store(x, 5);
        let mut t3 = NorecTx::new(&heap, &global, false, true);
        t3.begin();
        assert_eq!(t3.read(x, &mut ops).unwrap(), 5);
        let mut t4 = NorecTx::new(&heap, &global, false, true);
        t4.begin();
        t4.write(x, 6);
        t4.commit().unwrap();
        t3.write(y, 11);
        assert_eq!(t3.commit(), Err(Abort::validation()));
    }

    #[test]
    fn ring_filters_with_semantic_cmp() {
        let (heap, global) = setup();
        let x = heap.alloc(1);
        let out = heap.alloc(1);
        heap.store(x, 5);
        let mut ops = OpCounts::default();
        let mut t1 = NorecTx::new(&heap, &global, false, true);
        t1.begin();
        assert!(t1.cmp(x, CmpOp::Gt, 0, &mut ops).unwrap());
        // Same-address commit that preserves the relation: filter hits,
        // semantic validation passes.
        let mut t2 = NorecTx::new(&heap, &global, false, true);
        t2.begin();
        t2.write(x, 7);
        t2.commit().unwrap();
        t1.write(out, 1);
        t1.commit().expect("relation still holds");
    }

    #[test]
    fn validation_abort_attributes_address_and_committer() {
        let (heap, global) = setup();
        let a = heap.alloc(1);
        heap.store(a, 5);
        let mut ops = OpCounts::default();
        let mut t1 = NorecTx::new(&heap, &global, false, false);
        t1.enable_spans(PhaseRecorder::enabled(std::time::Instant::now()));
        t1.begin();
        assert_eq!(t1.read(a, &mut ops).unwrap(), 5);
        // Concurrent commit with the recorder on stamps the committer.
        let mut t2 = NorecTx::new(&heap, &global, false, false);
        t2.enable_spans(PhaseRecorder::enabled(std::time::Instant::now()));
        t2.begin();
        t2.write(a, 6);
        t2.commit().unwrap();
        t1.write(a, 100);
        let err = t1.commit().unwrap_err();
        assert_eq!(err, Abort::validation());
        assert_eq!(err.conflict().addr(), Some(a));
        assert_eq!(err.conflict().by(), Some(crate::util::thread_token()));
    }

    #[test]
    fn attribution_is_absent_without_spans() {
        let (heap, global) = setup();
        let a = heap.alloc(1);
        heap.store(a, 5);
        let mut ops = OpCounts::default();
        let mut t1 = NorecTx::new(&heap, &global, false, false);
        t1.begin();
        assert_eq!(t1.read(a, &mut ops).unwrap(), 5);
        commit_write(&heap, &global, a, 6);
        t1.write(a, 100);
        let err = t1.commit().unwrap_err();
        // Address is free to attribute (no extra atomics), but the
        // committer heuristic needs the gated stamp — absent here.
        assert_eq!(err.conflict().addr(), Some(a));
        assert_eq!(err.conflict().by(), None);
    }

    #[test]
    fn write_after_read_validated_at_commit() {
        let (heap, global) = setup();
        let a = heap.alloc(1);
        heap.store(a, 1);
        let mut ops = OpCounts::default();
        let mut t1 = NorecTx::new(&heap, &global, false, false);
        t1.begin();
        let v = t1.read(a, &mut ops).unwrap();
        t1.write(a, v + 1);
        commit_write(&heap, &global, a, 50);
        assert_eq!(t1.commit(), Err(Abort::validation()));
        assert_eq!(heap.load(a), 50, "failed commit must not write back");
    }
}
