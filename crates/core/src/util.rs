//! Small self-contained utilities: deterministic PRNG, contention-manager
//! backoff, and a fast integer hasher for write-set maps.
//!
//! We deliberately avoid external RNG crates in the runtime and workloads
//! so that experiments are bit-reproducible across runs and machines.

use std::cell::Cell;

/// SplitMix64 — tiny, fast, statistically decent PRNG for workload
/// generation and contention-manager jitter. Deterministic per seed.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection-free approximation is fine for
        // workload generation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli trial with probability `pct / 100`.
    #[inline]
    pub fn chance(&mut self, pct: u32) -> bool {
        self.below(100) < pct as u64
    }
}

/// Spin-wait helper that yields the OS thread periodically — essential
/// on machines with fewer cores than threads, where pure spinning can
/// starve the lock holder for a whole scheduler quantum.
#[derive(Default)]
pub struct SpinWait {
    count: u32,
}

impl SpinWait {
    /// Create a fresh spin-wait state.
    pub fn new() -> SpinWait {
        SpinWait::default()
    }

    /// One wait step: cheap CPU hint at first, a `yield_now` every 64th
    /// step so a preempted writer can run.
    #[inline]
    pub fn spin(&mut self) {
        self.count = self.count.wrapping_add(1);
        if self.count.is_multiple_of(64) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Randomised truncated exponential backoff used between transaction
/// retries — the contention manager of the runtime ("polite" policy).
#[derive(Clone, Debug)]
pub struct Backoff {
    rng: SplitMix64,
    min_spins: u32,
    max_spins: u32,
}

impl Backoff {
    /// Create a backoff helper; `min_spins`/`max_spins` bound the spin work.
    pub fn new(seed: u64, min_spins: u32, max_spins: u32) -> Backoff {
        Backoff {
            rng: SplitMix64::new(seed),
            min_spins: min_spins.max(1),
            max_spins: max_spins.max(2),
        }
    }

    /// Spin for an interval that grows exponentially with `attempt`.
    pub fn pause(&mut self, attempt: u32) {
        let ceiling = self
            .min_spins
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .min(self.max_spins);
        let spins = self.min_spins as u64 + self.rng.below(ceiling.max(2) as u64);
        for _ in 0..spins {
            std::hint::spin_loop();
        }
        // On heavily oversubscribed machines spinning alone can livelock;
        // yield to the scheduler once the backoff gets long.
        if attempt > 4 {
            std::thread::yield_now();
        }
    }
}

thread_local! {
    static THREAD_SEED: Cell<u64> = const { Cell::new(0) };
}

/// A per-thread unique small integer, used to seed contention-manager
/// jitter and as the TL2 lock-owner token.
pub fn thread_token() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    THREAD_SEED.with(|c| {
        let v = c.get();
        if v != 0 {
            v
        } else {
            let v = NEXT.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
}

/// Multiply-based avalanche for word-index keys (FxHash-style), used by
/// the open-addressed write-set map.
#[inline]
pub fn hash_u32(x: u32) -> u64 {
    let mut h = x as u64;
    h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some buckets never hit: {seen:?}");
    }

    #[test]
    fn thread_tokens_are_unique_per_thread() {
        let t0 = thread_token();
        assert_eq!(t0, thread_token(), "stable within a thread");
        let other = std::thread::spawn(thread_token).join().unwrap();
        assert_ne!(t0, other);
    }

    #[test]
    fn hash_spreads_consecutive_keys() {
        let h: Vec<u64> = (0..64u32).map(|i| hash_u32(i) % 64).collect();
        let distinct: std::collections::HashSet<_> = h.iter().collect();
        assert!(distinct.len() > 32, "hash clusters too much: {distinct:?}");
    }
}
