//! Chrome trace-event serialization of flight-recorder spans.
//!
//! Turns the [`SpanEvent`]s recorded at
//! [`TelemetryLevel::Spans`](crate::TelemetryLevel::Spans) into the
//! Trace Event Format JSON accepted by Perfetto (<https://ui.perfetto.dev>)
//! and `chrome://tracing`: one timeline track per worker thread,
//! committed attempts as `commit` slices, aborted attempts as
//! `abort:<reason>` slices colored by reason and annotated with the
//! attributed conflict (`args.addr` / `args.orec` / `args.by`, with
//! `-1` / `0` standing for "unknown" so the fields are always present).
//!
//! The serializer lives in `semtm-core` — not the bench crate — so the
//! schedule-exploration harness (`semtm-check`) can dump a failing
//! schedule's timeline without depending on the bench crate.

use crate::config::Algorithm;
use crate::error::AbortReason;
use crate::telemetry::SpanEvent;
use std::fmt::Write as _;

/// Catapult reserved color name used for a reason's abort slices.
fn reason_color(reason: AbortReason) -> &'static str {
    match reason {
        AbortReason::Validation => "bad",
        AbortReason::Locked => "yellow",
        AbortReason::Timeout => "terrible",
        AbortReason::LockAcquire => "olive",
        AbortReason::Explicit => "grey",
        AbortReason::Durability => "black",
    }
}

/// Nanoseconds → trace-event microseconds (fractional µs are allowed
/// and keep sub-microsecond attempts visible).
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Serialize spans into a complete Chrome trace-event JSON document.
///
/// Emits one `process_name` metadata record naming the algorithm, one
/// `thread_name` metadata record per distinct worker thread, and one
/// complete (`"ph":"X"`) event per span. The output is self-contained:
/// write it to a `.json` file and open it in Perfetto as-is.
pub fn chrome_trace_json(algorithm: Algorithm, spans: &[SpanEvent]) -> String {
    let mut threads: Vec<u64> = spans.iter().map(|s| s.thread).collect();
    threads.sort_unstable();
    threads.dedup();

    let mut events: Vec<String> = Vec::with_capacity(spans.len() + threads.len() + 1);
    events.push(format!(
        "{{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"semtm {}\"}}}}",
        algorithm.name()
    ));
    for &t in &threads {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{t},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"worker-{t}\"}}}}"
        ));
    }

    for s in spans {
        let (name, cat, cname, abort_args) = match s.abort {
            None => ("commit".to_string(), "tx", "good", String::new()),
            Some((reason, conflict)) => {
                let addr = conflict.addr().map_or(-1, |a| a.index() as i64);
                let orec = conflict.orec().map_or(-1, |o| o as i64);
                let by = conflict.by().unwrap_or(0);
                (
                    format!("abort:{}", reason.name()),
                    "abort",
                    reason_color(reason),
                    format!(
                        ",\"reason\":\"{}\",\"addr\":{addr},\"orec\":{orec},\"by\":{by}",
                        reason.name()
                    ),
                )
            }
        };
        let mut phase_args = String::new();
        if let Some(v) = s.validate_ns {
            let _ = write!(phase_args, ",\"validate_us\":{:.3}", us(v));
        }
        if let Some(v) = s.lock_ns {
            let _ = write!(phase_args, ",\"lock_us\":{:.3}", us(v));
        }
        if let Some(v) = s.writeback_ns {
            let _ = write!(phase_args, ",\"writeback_us\":{:.3}", us(v));
        }
        events.push(format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
             \"name\":\"{}\",\"cat\":\"{}\",\"cname\":\"{}\",\
             \"args\":{{\"attempt\":{},\"read_set\":{},\"write_set\":{},\
             \"compare_set\":{}{}{}}}}}",
            s.thread,
            us(s.start_ns),
            us(s.duration_ns().max(1)),
            name,
            cat,
            cname,
            s.attempt,
            s.read_set,
            s.write_set,
            s.compare_set,
            abort_args,
            phase_args,
        ));
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{Abort, Conflict};
    use crate::heap::Addr;

    fn span(
        thread: u64,
        start: u64,
        end: u64,
        abort: Option<(AbortReason, Conflict)>,
    ) -> SpanEvent {
        SpanEvent {
            thread,
            start_ns: start,
            end_ns: end,
            validate_ns: Some(start + 100),
            lock_ns: None,
            writeback_ns: None,
            attempt: 1,
            read_set: 4,
            write_set: 2,
            compare_set: 0,
            abort,
        }
    }

    #[test]
    fn empty_span_list_is_still_a_valid_document() {
        let json = chrome_trace_json(Algorithm::NOrec, &[]);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("process_name"));
    }

    #[test]
    fn commit_and_abort_spans_serialize_with_required_fields() {
        let conflict = Abort::validation()
            .at_addr(Addr::from_index(17))
            .by(3)
            .conflict();
        let spans = [
            span(5, 1_000, 3_000, None),
            span(6, 2_000, 4_000, Some((AbortReason::Validation, conflict))),
        ];
        let json = chrome_trace_json(Algorithm::SNOrec, &spans);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"commit\""));
        assert!(json.contains("\"name\":\"abort:validation\""));
        assert!(json.contains("\"addr\":17"));
        assert!(json.contains("\"by\":3"));
        assert!(json.contains("\"reason\":\"validation\""));
        assert!(json.contains("\"tid\":5") && json.contains("\"tid\":6"));
        assert!(json.contains("worker-5") && json.contains("worker-6"));
        assert!(json.contains("\"cname\":\"bad\""));
        assert!(json.contains("\"validate_us\":1.100"));
    }

    #[test]
    fn unattributed_abort_uses_sentinels() {
        let spans = [span(1, 0, 10, Some((AbortReason::Timeout, Conflict::NONE)))];
        let json = chrome_trace_json(Algorithm::Tl2, &spans);
        assert!(json.contains("\"addr\":-1"));
        assert!(json.contains("\"orec\":-1"));
        assert!(json.contains("\"by\":0"));
        assert!(json.contains("\"cname\":\"terrible\""));
    }

    #[test]
    fn each_reason_has_a_distinct_color() {
        let reasons = [
            AbortReason::Validation,
            AbortReason::Locked,
            AbortReason::Timeout,
            AbortReason::LockAcquire,
            AbortReason::Explicit,
        ];
        let mut colors: Vec<_> = reasons.iter().map(|&r| reason_color(r)).collect();
        colors.sort_unstable();
        colors.dedup();
        assert_eq!(colors.len(), reasons.len());
    }
}
