//! Schedule points for deterministic concurrency testing.
//!
//! The STM algorithms call [`point`] at every place where the outcome of
//! a race is decided — seqlock acquire/release, orec lock CAS, the
//! read-consistency window, snapshot extension, the commit fence — and
//! [`spin`] inside every bounded wait loop. In a normal build both are
//! empty `#[inline]` functions and the algorithms are exactly as before.
//!
//! Under `--features shuttle` (named after the style of tool, not a
//! dependency — this workspace is fully offline), each call consults a
//! thread-local [`SchedHook`]. The `semtm-check` crate installs a hook
//! that parks the calling OS thread and hands control to a coordinator,
//! which resumes exactly one thread at a time: transactions become
//! cooperatively scheduled coroutines and the coordinator can explore
//! interleavings exhaustively (bounded-preemption DFS) or replayably
//! (seeded random walks).
//!
//! Placement invariant relied on by the history checker: **no schedule
//! point sits between a commit's first data write-back and its lock
//! release**. Write-back plus release is one atomic step of the virtual
//! schedule, so the memory states other threads can observe are exactly
//! the prefixes of the commit order.

/// Where in an algorithm a schedule point sits. Carried to the hook for
/// diagnostics; the scheduler treats all kinds identically except that
/// spin points (reported via [`spin`]) force a thread switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum PointKind {
    /// NOrec: before sampling the global sequence lock at begin.
    NorecBegin,
    /// NOrec: head of one validation round (before loading the lock).
    NorecValidate,
    /// NOrec: between per-entry revalidation and the closing time
    /// re-check of a validation round.
    NorecValidateRecheck,
    /// NOrec: before the data load of a consistent read.
    NorecRead,
    /// NOrec: before one commit-time acquire CAS on the sequence lock.
    NorecCommitAcquire,
    /// NOrec: sequence lock held, before write-back begins.
    NorecWriteback,
    /// TL2: before sampling the version clock at begin.
    Tl2Begin,
    /// TL2: before the first orec load of a validated read.
    Tl2Read,
    /// TL2: between the data load and the confirming orec re-load (the
    /// classic TL2 read-consistency window).
    Tl2ReadWindow,
    /// TL2: head of one snapshot-extension round.
    Tl2Extend,
    /// TL2: before attempting to lock one write-set orec at commit.
    Tl2LockCas,
    /// TL2: head of one commit-time clock-advance CAS round.
    Tl2CommitCas,
    /// TL2: locks held and clock advanced, before write-back begins.
    Tl2Writeback,
    /// Sharded-clock NOrec: before the begin-time snapshot of the shard
    /// vector (one point per double-collect round).
    ScNorecBegin,
    /// Sharded-clock NOrec: head of one validation round (before
    /// sampling the shard vector).
    ScNorecValidate,
    /// Sharded-clock NOrec: between moved-shard revalidation and the
    /// closing re-sample of the shard vector.
    ScNorecValidateRecheck,
    /// Sharded-clock NOrec: before the data load of a consistent read.
    ScNorecRead,
    /// Sharded-clock NOrec: before one commit-time acquire pass over the
    /// write-set's shards.
    ScNorecCommitAcquire,
    /// Sharded-clock NOrec: all write-set shards held and the read-set
    /// revalidated, before write-back begins.
    ScNorecWriteback,
    /// WAL: commit locks held and validation passed, before appending
    /// the resolved write record to the commit log (still before the
    /// first data write-back, so the placement invariant holds).
    WalAppend,
    /// WAL flusher: before draining the pending buffer into storage.
    WalFlush,
    /// WAL flusher: batch appended, before the fsync that makes it
    /// durable — the crash window where written ≠ durable.
    WalFsync,
    /// Adaptive switching: before an attempt's load of the mode word
    /// ([`crate::adapt`] enter protocol).
    AdaptEnter,
    /// Adaptive switching: epoch slot incremented, before the confirming
    /// re-load of the mode word (the enter race window).
    AdaptEnterRecheck,
    /// Adaptive switching: before a switcher's acquire CAS on the mode
    /// word (`Running → Draining`).
    AdaptAcquire,
    /// Adaptive switching: `Draining` published, before the first scan
    /// of the epoch slots (drain-loop rounds are reported as spins).
    AdaptDrain,
    /// Adaptive switching: drain complete (no attempt in flight), before
    /// reseeding the engine metadata clocks.
    AdaptReseed,
    /// Adaptive switching: metadata reseeded, before publishing
    /// `Running(next, epoch+1)`.
    AdaptPublish,
}

#[cfg(feature = "shuttle")]
pub use active::{clear_hook, install_hook, point, spin, SchedHook};

#[cfg(feature = "shuttle")]
mod active {
    use super::PointKind;
    use std::cell::RefCell;
    use std::sync::Arc;

    /// Coordinator interface a deterministic scheduler installs on each
    /// worker thread. Both methods are expected to park the calling
    /// thread until the coordinator schedules it again.
    pub trait SchedHook: Send + Sync {
        /// A numbered schedule point; returning resumes the algorithm.
        fn point(&self, kind: PointKind);
        /// One iteration of a bounded wait loop. The scheduler must run
        /// another thread if any is runnable (the waited-on resource can
        /// only change through another thread), and must not treat
        /// "continue spinning" as a branching choice — spin iterations
        /// are side-effect free, so branching on them would make the
        /// schedule tree infinite.
        fn spin(&self);
    }

    thread_local! {
        static HOOK: RefCell<Option<Arc<dyn SchedHook>>> = const { RefCell::new(None) };
    }

    /// Install `hook` for the current OS thread (replacing any previous
    /// one). The `semtm-check` worker wrapper calls this before running
    /// a transaction body under the coordinator.
    pub fn install_hook(hook: Arc<dyn SchedHook>) {
        HOOK.with(|h| *h.borrow_mut() = Some(hook));
    }

    /// Remove the current thread's hook (no-op when none is installed).
    pub fn clear_hook() {
        HOOK.with(|h| *h.borrow_mut() = None);
    }

    /// A schedule point: yields to the coordinator when a hook is
    /// installed, otherwise free.
    #[inline]
    pub fn point(kind: PointKind) {
        // Clone out of the RefCell so the borrow is not held across the
        // (potentially long) park inside the hook.
        let hook = HOOK.with(|h| h.borrow().clone());
        if let Some(hook) = hook {
            hook.point(kind);
        }
    }

    /// A spin-loop iteration: forces a switch to another runnable thread
    /// when a hook is installed, otherwise free.
    #[inline]
    pub fn spin() {
        let hook = HOOK.with(|h| h.borrow().clone());
        if let Some(hook) = hook {
            hook.spin();
        }
    }
}

/// A schedule point (no-op in this build; see the module docs).
#[cfg(not(feature = "shuttle"))]
#[inline(always)]
pub fn point(_kind: PointKind) {}

/// A spin-loop iteration (no-op in this build; see the module docs).
#[cfg(not(feature = "shuttle"))]
#[inline(always)]
pub fn spin() {}

#[cfg(all(test, feature = "shuttle"))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct Counter(AtomicUsize, AtomicUsize);
    impl SchedHook for Counter {
        fn point(&self, _k: PointKind) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
        fn spin(&self) {
            self.1.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn hook_sees_points_only_while_installed() {
        point(PointKind::NorecBegin); // no hook: free
        let c = Arc::new(Counter(AtomicUsize::new(0), AtomicUsize::new(0)));
        install_hook(c.clone());
        point(PointKind::NorecBegin);
        point(PointKind::Tl2Read);
        spin();
        clear_hook();
        point(PointKind::NorecBegin);
        assert_eq!(c.0.load(Ordering::SeqCst), 2);
        assert_eq!(c.1.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn hook_is_per_thread() {
        let c = Arc::new(Counter(AtomicUsize::new(0), AtomicUsize::new(0)));
        install_hook(c.clone());
        std::thread::scope(|s| {
            s.spawn(|| point(PointKind::NorecBegin)); // other thread: no hook
        });
        assert_eq!(c.0.load(Ordering::SeqCst), 0);
        clear_hook();
    }
}
