//! RingSTM-style commit filters (Spear, Michael, von Praun — SPAA 2008,
//! the paper's \[36\]) as a validation fast path for the NOrec family.
//!
//! NOrec/S-NOrec revalidate their whole read-set every time the global
//! sequence lock moves — even when the interfering commit touched
//! completely unrelated data. RingSTM's observation: publish a compact
//! Bloom filter of each commit's write-set in a ring indexed by commit
//! timestamp; a reader whose own read filter does not intersect any of
//! the missed commits' write filters can skip revalidation entirely.
//!
//! This module implements that as an opt-in accelerator
//! ([`crate::StmConfig::norec_ring_filters`]): the semantic read-set is
//! still kept (it remains the slow-path truth), so soundness never rests
//! on the filters — a filter hit merely falls back to full (semantic)
//! validation, and ring wrap-around falls back likewise. Ablation A4
//! measures the effect.
//!
//! The same fixed-capacity-overwrite shape, generalised over the element
//! type, is [`EventRing`] — used by the telemetry subsystem to retain
//! the newest N abort events per thread without unbounded growth.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-capacity ring that keeps the **newest** `capacity` elements:
/// once full, each push evicts the oldest element. Single-owner (wrap it
/// in a lock for sharing); iteration yields oldest → newest.
#[derive(Clone, Debug)]
pub struct EventRing<T> {
    slots: Vec<T>,
    capacity: usize,
    /// Index of the oldest element (only meaningful once full).
    head: usize,
    /// Total elements ever pushed.
    pushed: u64,
}

impl<T> EventRing<T> {
    /// Create a ring retaining at most `capacity` (≥ 1) elements.
    pub fn new(capacity: usize) -> EventRing<T> {
        let capacity = capacity.max(1);
        EventRing {
            slots: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Maximum retained elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently retained elements (≤ capacity).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total elements ever pushed (including evicted ones).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// How many elements were evicted to make room for newer ones.
    pub fn evicted(&self) -> u64 {
        self.pushed - self.slots.len() as u64
    }

    /// Append an element, evicting the oldest if at capacity.
    pub fn push(&mut self, value: T) {
        self.pushed += 1;
        if self.slots.len() < self.capacity {
            self.slots.push(value);
        } else {
            self.slots[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Retained elements, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (newer, older) = self.slots.split_at(self.head);
        older.iter().chain(newer.iter())
    }
}

/// Number of commit filters retained. A validator that has fallen more
/// than `RING_SLOTS` commits behind loses the fast path (never
/// soundness).
pub const RING_SLOTS: usize = 1024;

/// One 64-bit Bloom filter word per commit slot.
pub struct FilterRing {
    slots: Box<[AtomicU64]>,
}

impl Default for FilterRing {
    fn default() -> Self {
        let mut v = Vec::with_capacity(RING_SLOTS);
        v.resize_with(RING_SLOTS, || AtomicU64::new(0));
        FilterRing {
            slots: v.into_boxed_slice(),
        }
    }
}

/// Hash a heap word index into a 64-bit one-bit Bloom filter.
#[inline]
pub fn filter_bit(word_index: usize) -> u64 {
    1u64 << (crate::util::hash_u32(word_index as u32) & 63)
}

impl FilterRing {
    /// Publish the write filter of the commit whose pre-acquire sequence
    /// number was `even_snapshot` (i.e. the `k`-th writer commit with
    /// `k = even_snapshot / 2`). Must be called while still holding the
    /// sequence lock, so the filter is visible before the commit is.
    #[inline]
    pub fn publish(&self, even_snapshot: u64, filter: u64) {
        debug_assert_eq!(even_snapshot & 1, 0);
        let slot = (even_snapshot / 2) as usize % RING_SLOTS;
        self.slots[slot].store(filter, Ordering::SeqCst);
    }

    /// OR together the write filters of commits `from/2 .. to/2`
    /// (pre-acquire sequence numbers `from ≤ s < to`, both even).
    /// Returns `None` when the interval no longer fits in the ring —
    /// the caller must take the slow path.
    #[inline]
    pub fn union(&self, from: u64, to: u64) -> Option<u64> {
        debug_assert_eq!(from & 1, 0);
        debug_assert_eq!(to & 1, 0);
        let missed = (to.saturating_sub(from) / 2) as usize;
        if missed > RING_SLOTS {
            return None;
        }
        let mut acc = 0u64;
        let mut s = from / 2;
        let end = to / 2;
        while s < end {
            acc |= self.slots[s as usize % RING_SLOTS].load(Ordering::SeqCst);
            s += 1;
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_bits_are_single_bits() {
        for i in 0..200 {
            assert_eq!(filter_bit(i).count_ones(), 1);
        }
    }

    #[test]
    fn publish_then_union_sees_filter() {
        let ring = FilterRing::default();
        ring.publish(0, 0b1010);
        ring.publish(2, 0b0100);
        // Reader at snapshot 0 catching up to time 4 must see both.
        assert_eq!(ring.union(0, 4), Some(0b1110));
        // Reader already at 2 sees only the second.
        assert_eq!(ring.union(2, 4), Some(0b0100));
        // Fully caught up: empty union.
        assert_eq!(ring.union(4, 4), Some(0));
    }

    #[test]
    fn overflow_returns_none() {
        let ring = FilterRing::default();
        let far = (RING_SLOTS as u64 + 1) * 2;
        assert_eq!(ring.union(0, far), None);
        assert!(ring.union(2, far).is_some(), "exactly RING_SLOTS fits");
    }

    #[test]
    fn event_ring_below_capacity_keeps_order() {
        let mut r = EventRing::new(4);
        assert!(r.is_empty());
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.evicted(), 0);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn event_ring_wraparound_keeps_newest() {
        let mut r = EventRing::new(3);
        for v in 1..=7 {
            r.push(v);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.pushed(), 7);
        assert_eq!(r.evicted(), 4);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![5, 6, 7]);
    }

    #[test]
    fn event_ring_capacity_one_holds_latest() {
        let mut r = EventRing::new(0); // clamped to 1
        r.push("a");
        r.push("b");
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec!["b"]);
    }

    #[test]
    fn wraparound_slots_alias() {
        let ring = FilterRing::default();
        ring.publish(0, 0b1);
        let aliased = (RING_SLOTS as u64) * 2; // same slot as snapshot 0
        ring.publish(aliased, 0b10);
        assert_eq!(ring.union(aliased, aliased + 2), Some(0b10));
    }
}
