//! # semtm-core — semantic software transactional memory
//!
//! This crate is a from-scratch Rust implementation of the semantic STM
//! runtime described in *"Extending TM Primitives using Low Level
//! Semantics"* (SPAA 2016). It provides:
//!
//! * a word-addressable **transactional heap** ([`Heap`]) shared by all
//!   threads, over which transactions operate;
//! * four STM algorithms behind one front object ([`Stm`]):
//!   **NOrec** and **TL2** (the baselines), and their semantic extensions
//!   **S-NOrec** and **S-TL2** (the paper's Algorithms 6 and 7);
//! * the **TM-friendly semantic API** of the paper's Table 1 — besides the
//!   classical `read`/`write`, transactions can issue
//!   [`cmp`](stm::Tx::cmp) (`TM_GT`/`TM_GTE`/`TM_LT`/`TM_LTE`/`TM_EQ`/`TM_NEQ`,
//!   both address–value and address–address forms) and
//!   [`inc`](stm::Tx::inc) (`TM_INC`/`TM_DEC`);
//! * per-operation **statistics** ([`stats::StatsSnapshot`]) sufficient to
//!   regenerate the paper's Table 3 and every abort-rate figure.
//!
//! ## Quick start
//!
//! ```
//! use semtm_core::{Stm, StmConfig, Algorithm, CmpOp};
//!
//! let stm = Stm::new(StmConfig::new(Algorithm::SNOrec));
//! let x = stm.alloc_cell(5i64);
//! let y = stm.alloc_cell(5i64);
//!
//! // Paper, Algorithm 1: `if x > 0 || y > 0 { .. }` as one semantic step each.
//! let committed: bool = stm.atomic(|tx| {
//!     let either = tx.cmp(x, CmpOp::Gt, 0)? || tx.cmp(y, CmpOp::Gt, 0)?;
//!     if either {
//!         tx.inc(x, 1)?; // TM_INC
//!         tx.inc(y, -1)?; // TM_DEC
//!     }
//!     Ok(either)
//! });
//! assert!(committed);
//! assert_eq!(stm.read_now(x), 6);
//! assert_eq!(stm.read_now(y), 4);
//! ```
//!
//! ## Design notes
//!
//! * Memory is modelled as an array of `u64` words addressed by [`Addr`];
//!   the typed layer ([`TVar`], [`TArray`]) encodes Rust values into words.
//!   Comparisons and increments use **signed (`i64`) semantics**, matching
//!   the integer-typed shared variables of the paper's benchmarks.
//! * Atomic orderings are deliberately conservative (`SeqCst` on all
//!   metadata and data words). This is a reproduction-grade simulator of
//!   the algorithms, not a cycle-tuned runtime; the algorithmic behaviour
//!   (what validates, what aborts) is what we reproduce.
//! * Base algorithms (`NOrec`, `Tl2`) accept the semantic API but delegate
//!   `cmp` to `read` and `inc` to `read`+`write`, exactly like the paper's
//!   unmodified-libitm configuration; this is what makes base-vs-semantic
//!   comparisons API-compatible.

#![forbid(unsafe_code)]
// The crate is 100% safe today (`forbid` above proves it). Should an
// accelerator backend ever force an `unsafe` block in here, each
// operation inside it must carry its own `unsafe { }` with a SAFETY
// comment rather than inheriting the enclosing `unsafe fn`'s blanket —
// deny the implicit inheritance now so that relaxing `forbid` later
// cannot silently grant it.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod adapt;
pub mod chrome;
pub mod cm;
pub mod config;
pub mod error;
pub mod fault;
pub mod heap;
pub mod hotspot;
pub mod norec;
pub mod ops;
pub mod ring;
pub mod sched;
pub mod sclock;
pub mod scnorec;
pub mod sets;
pub mod stats;
pub mod stm;
pub mod telemetry;
pub mod tl2;
pub mod tvar;
pub mod util;
pub mod value;
pub mod wal;

pub use adapt::{AdaptPolicy, Controller, Mode, SwitchError, SwitchReport};
pub use cm::CmPolicy;
pub use config::{Algorithm, StmConfig};
pub use error::{Abort, AbortReason, Conflict};
pub use heap::{Addr, Heap};
pub use hotspot::ConflictEdge;
pub use ops::CmpOp;
pub use stats::StatsSnapshot;
pub use stm::{Stm, Tx};
pub use telemetry::{
    AbortEvent, HistogramSnapshot, PhaseRecorder, RateEwma, SamplePoint, Sampler, SpanEvent,
    Telemetry, TelemetryLevel,
};
pub use tvar::{TArray, TVar};
pub use value::{Fx32, Word};
pub use wal::{
    read_records, replay, CommitLog, DurabilityMode, FileStorage, LogStorage, RecoveryReport,
    SimHandle, SimStorage, StopReason, Ticket, WalError, WalRecord,
};
