//! Runtime statistics: per-transaction operation counters and the
//! point-in-time [`StatsSnapshot`] every reporting layer consumes.
//!
//! Reproduces the measurement infrastructure behind the paper's Table 3
//! ("average number of invocations per operation type per transaction")
//! and the abort-rate series of Figures 1 and 2.
//!
//! Transactions accumulate operation counts locally in [`OpCounts`];
//! counts are flushed into the sharded [`crate::telemetry::Telemetry`]
//! cells when the attempt ends — into the committed counters on commit
//! (so the per-transaction averages are per *committed* transaction, as
//! in the paper's Table 3) and into the `aborted_*` counters on abort,
//! which is what makes wasted work visible.

/// Per-transaction operation counters, accumulated locally while the
/// transaction runs.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct OpCounts {
    /// Plain transactional reads (`TM_READ`).
    pub reads: u64,
    /// Plain transactional writes (`TM_WRITE`).
    pub writes: u64,
    /// Semantic comparisons, address–value form (`_ITM_S1R`).
    pub cmps: u64,
    /// Semantic comparisons, address–address form (`_ITM_S2R`).
    pub cmp_pairs: u64,
    /// Semantic increments/decrements (`_ITM_SW`).
    pub incs: u64,
    /// `inc` entries promoted to read+write by a later read of the same
    /// address (Algorithm 6, lines 18–22).
    pub promotes: u64,
}

impl OpCounts {
    /// Reset all counters to zero (reused across retries).
    pub fn clear(&mut self) {
        *self = OpCounts::default();
    }

    /// Sum over all operation kinds.
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.cmps + self.cmp_pairs + self.incs + self.promotes
    }
}

/// A point-in-time copy of the runtime counters, with derived metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Committed transactions.
    pub commits: u64,
    /// Aborts due to failed (semantic) validation.
    pub aborts_validation: u64,
    /// Aborts due to encountering a locked orec.
    pub aborts_locked: u64,
    /// Aborts after lock-wait timeout.
    pub aborts_timeout: u64,
    /// Aborts during commit-time lock acquisition.
    pub aborts_lock_acquire: u64,
    /// Programmer-requested retries.
    pub aborts_explicit: u64,
    /// Aborts because the commit log refused the write record (WAL I/O
    /// failure; fail-stop, so at most one per thread in practice).
    pub aborts_durability: u64,
    /// Total `TM_READ` calls in committed transactions.
    pub reads: u64,
    /// Total `TM_WRITE` calls in committed transactions.
    pub writes: u64,
    /// Total address–value `cmp` calls in committed transactions.
    pub cmps: u64,
    /// Total address–address `cmp` calls in committed transactions.
    pub cmp_pairs: u64,
    /// Total `inc` calls in committed transactions.
    pub incs: u64,
    /// Total promoted `inc` entries in committed transactions.
    pub promotes: u64,
    /// `TM_READ` calls in attempts that aborted (wasted work).
    pub aborted_reads: u64,
    /// `TM_WRITE` calls in attempts that aborted.
    pub aborted_writes: u64,
    /// Address–value `cmp` calls in attempts that aborted.
    pub aborted_cmps: u64,
    /// Address–address `cmp` calls in attempts that aborted.
    pub aborted_cmp_pairs: u64,
    /// `inc` calls in attempts that aborted.
    pub aborted_incs: u64,
    /// Promoted `inc` entries in attempts that aborted.
    pub aborted_promotes: u64,
}

impl StatsSnapshot {
    /// All aborts, regardless of reason. Explicit retries are excluded:
    /// they are workload logic (e.g. "buffer full"), not concurrency
    /// conflicts, and the paper's abort-rate plots measure conflicts.
    pub fn conflict_aborts(&self) -> u64 {
        self.aborts_validation + self.aborts_locked + self.aborts_timeout + self.aborts_lock_acquire
    }

    /// All aborts including explicit retries and durability failures.
    pub fn total_aborts(&self) -> u64 {
        self.conflict_aborts() + self.aborts_explicit + self.aborts_durability
    }

    /// Total attempts: every attempt either commits or aborts, so
    /// `attempts == commits + total_aborts` — the telemetry invariant
    /// the test suite pins down.
    pub fn attempts(&self) -> u64 {
        self.commits + self.total_aborts()
    }

    /// Abort percentage: conflicts / (commits + conflicts) × 100 — the
    /// y-axis of the paper's abort plots.
    pub fn abort_pct(&self) -> f64 {
        let attempts = self.commits + self.conflict_aborts();
        if attempts == 0 {
            0.0
        } else {
            100.0 * self.conflict_aborts() as f64 / attempts as f64
        }
    }

    /// Operations executed by attempts that went on to commit.
    pub fn committed_ops(&self) -> u64 {
        self.reads + self.writes + self.cmps + self.cmp_pairs + self.incs + self.promotes
    }

    /// Operations executed by attempts that aborted (thrown away).
    pub fn aborted_ops(&self) -> u64 {
        self.aborted_reads
            + self.aborted_writes
            + self.aborted_cmps
            + self.aborted_cmp_pairs
            + self.aborted_incs
            + self.aborted_promotes
    }

    /// Fraction of all transactional operations whose work was thrown
    /// away by an abort: `aborted / (aborted + committed)`. 0.0 when no
    /// operation ran at all.
    pub fn wasted_work_ratio(&self) -> f64 {
        let wasted = self.aborted_ops();
        let total = wasted + self.committed_ops();
        if total == 0 {
            0.0
        } else {
            wasted as f64 / total as f64
        }
    }

    /// Average of `what` per committed transaction.
    fn per_commit(&self, what: u64) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            what as f64 / self.commits as f64
        }
    }

    /// Average plain reads per committed transaction (Table 3 "Read").
    pub fn reads_per_tx(&self) -> f64 {
        self.per_commit(self.reads)
    }
    /// Average plain writes per committed transaction (Table 3 "Write").
    pub fn writes_per_tx(&self) -> f64 {
        self.per_commit(self.writes)
    }
    /// Average comparisons per committed transaction (Table 3 "Compare";
    /// both operand forms).
    pub fn cmps_per_tx(&self) -> f64 {
        self.per_commit(self.cmps + self.cmp_pairs)
    }
    /// Average increments per committed transaction (Table 3 "Increment").
    pub fn incs_per_tx(&self) -> f64 {
        self.per_commit(self.incs)
    }
    /// Average promotions per committed transaction (Table 3 "Promote").
    pub fn promotes_per_tx(&self) -> f64 {
        self.per_commit(self.promotes)
    }

    /// Difference against an earlier snapshot (for measuring an interval).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits - earlier.commits,
            aborts_validation: self.aborts_validation - earlier.aborts_validation,
            aborts_locked: self.aborts_locked - earlier.aborts_locked,
            aborts_timeout: self.aborts_timeout - earlier.aborts_timeout,
            aborts_lock_acquire: self.aborts_lock_acquire - earlier.aborts_lock_acquire,
            aborts_explicit: self.aborts_explicit - earlier.aborts_explicit,
            aborts_durability: self.aborts_durability - earlier.aborts_durability,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            cmps: self.cmps - earlier.cmps,
            cmp_pairs: self.cmp_pairs - earlier.cmp_pairs,
            incs: self.incs - earlier.incs,
            promotes: self.promotes - earlier.promotes,
            aborted_reads: self.aborted_reads - earlier.aborted_reads,
            aborted_writes: self.aborted_writes - earlier.aborted_writes,
            aborted_cmps: self.aborted_cmps - earlier.aborted_cmps,
            aborted_cmp_pairs: self.aborted_cmp_pairs - earlier.aborted_cmp_pairs,
            aborted_incs: self.aborted_incs - earlier.aborted_incs,
            aborted_promotes: self.aborted_promotes - earlier.aborted_promotes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates_per_commit() {
        let snap = StatsSnapshot {
            commits: 2,
            reads: 6,
            writes: 2,
            cmps: 4,
            cmp_pairs: 2,
            incs: 8,
            promotes: 2,
            ..StatsSnapshot::default()
        };
        assert_eq!(snap.reads_per_tx(), 3.0);
        assert_eq!(snap.cmps_per_tx(), 3.0); // (4 + 2 pairs) / 2
        assert_eq!(snap.incs_per_tx(), 4.0);
        assert_eq!(snap.promotes_per_tx(), 1.0);
    }

    #[test]
    fn abort_pct_excludes_explicit() {
        let snap = StatsSnapshot {
            commits: 1,
            aborts_validation: 1,
            aborts_explicit: 1,
            ..StatsSnapshot::default()
        };
        assert_eq!(snap.conflict_aborts(), 1);
        assert_eq!(snap.total_aborts(), 2);
        assert_eq!(snap.attempts(), 3);
        assert!((snap.abort_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn since_computes_interval() {
        let t0 = StatsSnapshot {
            commits: 1,
            ..StatsSnapshot::default()
        };
        let t1 = StatsSnapshot {
            commits: 2,
            reads: 5,
            aborts_locked: 1,
            aborted_reads: 3,
            ..StatsSnapshot::default()
        };
        let d = t1.since(&t0);
        assert_eq!(d.commits, 1);
        assert_eq!(d.reads, 5);
        assert_eq!(d.aborts_locked, 1);
        assert_eq!(d.aborted_reads, 3);
    }

    #[test]
    fn wasted_work_ratio_counts_aborted_ops() {
        let snap = StatsSnapshot {
            commits: 1,
            reads: 6,
            aborted_reads: 2,
            aborted_incs: 2,
            ..StatsSnapshot::default()
        };
        assert_eq!(snap.aborted_ops(), 4);
        assert_eq!(snap.committed_ops(), 6);
        assert!((snap.wasted_work_ratio() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_has_zero_rates() {
        let snap = StatsSnapshot::default();
        assert_eq!(snap.abort_pct(), 0.0);
        assert_eq!(snap.reads_per_tx(), 0.0);
        assert_eq!(snap.wasted_work_ratio(), 0.0);
    }
}
