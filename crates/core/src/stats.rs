//! Runtime statistics.
//!
//! Reproduces the measurement infrastructure behind the paper's Table 3
//! ("average number of invocations per operation type per transaction")
//! and the abort-rate series of Figures 1 and 2.
//!
//! Transactions accumulate operation counts locally; counts are flushed to
//! the shared [`Stats`] only when the transaction **commits** (so the
//! per-transaction averages are per *committed* transaction, as in the
//! paper's Table 3). Aborts are counted per attempt, by reason.

use crate::error::AbortReason;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-transaction operation counters, accumulated locally while the
/// transaction runs.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct OpCounts {
    /// Plain transactional reads (`TM_READ`).
    pub reads: u64,
    /// Plain transactional writes (`TM_WRITE`).
    pub writes: u64,
    /// Semantic comparisons, address–value form (`_ITM_S1R`).
    pub cmps: u64,
    /// Semantic comparisons, address–address form (`_ITM_S2R`).
    pub cmp_pairs: u64,
    /// Semantic increments/decrements (`_ITM_SW`).
    pub incs: u64,
    /// `inc` entries promoted to read+write by a later read of the same
    /// address (Algorithm 6, lines 18–22).
    pub promotes: u64,
}

impl OpCounts {
    /// Reset all counters to zero (reused across retries).
    pub fn clear(&mut self) {
        *self = OpCounts::default();
    }
}

/// Shared, thread-safe statistics for one [`crate::Stm`] instance.
#[derive(Default)]
pub struct Stats {
    commits: AtomicU64,
    aborts_validation: AtomicU64,
    aborts_locked: AtomicU64,
    aborts_timeout: AtomicU64,
    aborts_lock_acquire: AtomicU64,
    aborts_explicit: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    cmps: AtomicU64,
    cmp_pairs: AtomicU64,
    incs: AtomicU64,
    promotes: AtomicU64,
}

impl Stats {
    /// Record a committed transaction together with its operation counts.
    pub fn record_commit(&self, ops: &OpCounts) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.reads.fetch_add(ops.reads, Ordering::Relaxed);
        self.writes.fetch_add(ops.writes, Ordering::Relaxed);
        self.cmps.fetch_add(ops.cmps, Ordering::Relaxed);
        self.cmp_pairs.fetch_add(ops.cmp_pairs, Ordering::Relaxed);
        self.incs.fetch_add(ops.incs, Ordering::Relaxed);
        self.promotes.fetch_add(ops.promotes, Ordering::Relaxed);
    }

    /// Record an aborted attempt.
    pub fn record_abort(&self, reason: AbortReason) {
        let ctr = match reason {
            AbortReason::Validation => &self.aborts_validation,
            AbortReason::Locked => &self.aborts_locked,
            AbortReason::Timeout => &self.aborts_timeout,
            AbortReason::LockAcquire => &self.aborts_lock_acquire,
            AbortReason::Explicit => &self.aborts_explicit,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }

    /// Take a consistent-enough snapshot (counters are independently
    /// relaxed; exact cross-counter consistency is not needed for
    /// reporting).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            aborts_validation: self.aborts_validation.load(Ordering::Relaxed),
            aborts_locked: self.aborts_locked.load(Ordering::Relaxed),
            aborts_timeout: self.aborts_timeout.load(Ordering::Relaxed),
            aborts_lock_acquire: self.aborts_lock_acquire.load(Ordering::Relaxed),
            aborts_explicit: self.aborts_explicit.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            cmps: self.cmps.load(Ordering::Relaxed),
            cmp_pairs: self.cmp_pairs.load(Ordering::Relaxed),
            incs: self.incs.load(Ordering::Relaxed),
            promotes: self.promotes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`Stats`], with derived metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Committed transactions.
    pub commits: u64,
    /// Aborts due to failed (semantic) validation.
    pub aborts_validation: u64,
    /// Aborts due to encountering a locked orec.
    pub aborts_locked: u64,
    /// Aborts after lock-wait timeout.
    pub aborts_timeout: u64,
    /// Aborts during commit-time lock acquisition.
    pub aborts_lock_acquire: u64,
    /// Programmer-requested retries.
    pub aborts_explicit: u64,
    /// Total `TM_READ` calls in committed transactions.
    pub reads: u64,
    /// Total `TM_WRITE` calls in committed transactions.
    pub writes: u64,
    /// Total address–value `cmp` calls in committed transactions.
    pub cmps: u64,
    /// Total address–address `cmp` calls in committed transactions.
    pub cmp_pairs: u64,
    /// Total `inc` calls in committed transactions.
    pub incs: u64,
    /// Total promoted `inc` entries in committed transactions.
    pub promotes: u64,
}

impl StatsSnapshot {
    /// All aborts, regardless of reason. Explicit retries are excluded:
    /// they are workload logic (e.g. "buffer full"), not concurrency
    /// conflicts, and the paper's abort-rate plots measure conflicts.
    pub fn conflict_aborts(&self) -> u64 {
        self.aborts_validation + self.aborts_locked + self.aborts_timeout + self.aborts_lock_acquire
    }

    /// Abort percentage: conflicts / (commits + conflicts) × 100 — the
    /// y-axis of the paper's abort plots.
    pub fn abort_pct(&self) -> f64 {
        let attempts = self.commits + self.conflict_aborts();
        if attempts == 0 {
            0.0
        } else {
            100.0 * self.conflict_aborts() as f64 / attempts as f64
        }
    }

    /// Average of `what` per committed transaction.
    fn per_commit(&self, what: u64) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            what as f64 / self.commits as f64
        }
    }

    /// Average plain reads per committed transaction (Table 3 "Read").
    pub fn reads_per_tx(&self) -> f64 {
        self.per_commit(self.reads)
    }
    /// Average plain writes per committed transaction (Table 3 "Write").
    pub fn writes_per_tx(&self) -> f64 {
        self.per_commit(self.writes)
    }
    /// Average comparisons per committed transaction (Table 3 "Compare";
    /// both operand forms).
    pub fn cmps_per_tx(&self) -> f64 {
        self.per_commit(self.cmps + self.cmp_pairs)
    }
    /// Average increments per committed transaction (Table 3 "Increment").
    pub fn incs_per_tx(&self) -> f64 {
        self.per_commit(self.incs)
    }
    /// Average promotions per committed transaction (Table 3 "Promote").
    pub fn promotes_per_tx(&self) -> f64 {
        self.per_commit(self.promotes)
    }

    /// Difference against an earlier snapshot (for measuring an interval).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits - earlier.commits,
            aborts_validation: self.aborts_validation - earlier.aborts_validation,
            aborts_locked: self.aborts_locked - earlier.aborts_locked,
            aborts_timeout: self.aborts_timeout - earlier.aborts_timeout,
            aborts_lock_acquire: self.aborts_lock_acquire - earlier.aborts_lock_acquire,
            aborts_explicit: self.aborts_explicit - earlier.aborts_explicit,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            cmps: self.cmps - earlier.cmps,
            cmp_pairs: self.cmp_pairs - earlier.cmp_pairs,
            incs: self.incs - earlier.incs,
            promotes: self.promotes - earlier.promotes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_flushes_op_counts() {
        let s = Stats::default();
        let ops = OpCounts {
            reads: 3,
            writes: 1,
            cmps: 2,
            cmp_pairs: 1,
            incs: 4,
            promotes: 1,
        };
        s.record_commit(&ops);
        s.record_commit(&ops);
        let snap = s.snapshot();
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.reads_per_tx(), 3.0);
        assert_eq!(snap.cmps_per_tx(), 3.0); // 2 + 1 pair
        assert_eq!(snap.incs_per_tx(), 4.0);
        assert_eq!(snap.promotes_per_tx(), 1.0);
    }

    #[test]
    fn abort_pct_excludes_explicit() {
        let s = Stats::default();
        s.record_commit(&OpCounts::default());
        s.record_abort(AbortReason::Validation);
        s.record_abort(AbortReason::Explicit);
        let snap = s.snapshot();
        assert_eq!(snap.conflict_aborts(), 1);
        assert!((snap.abort_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn since_computes_interval() {
        let s = Stats::default();
        s.record_commit(&OpCounts::default());
        let t0 = s.snapshot();
        s.record_commit(&OpCounts {
            reads: 5,
            ..OpCounts::default()
        });
        s.record_abort(AbortReason::Locked);
        let d = s.snapshot().since(&t0);
        assert_eq!(d.commits, 1);
        assert_eq!(d.reads, 5);
        assert_eq!(d.aborts_locked, 1);
    }

    #[test]
    fn empty_snapshot_has_zero_rates() {
        let snap = Stats::default().snapshot();
        assert_eq!(snap.abort_pct(), 0.0);
        assert_eq!(snap.reads_per_tx(), 0.0);
    }
}
