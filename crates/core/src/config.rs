//! Runtime configuration: algorithm selection and tuning knobs.

use crate::adapt::AdaptPolicy;
use crate::cm::CmPolicy;
use crate::telemetry::TelemetryLevel;
use crate::wal::DurabilityMode;

/// Which STM algorithm a [`crate::Stm`] instance runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Algorithm {
    /// Baseline NOrec (value-based validation, single global sequence
    /// lock). Semantic API calls are delegated to plain reads/writes.
    NOrec,
    /// S-NOrec — the paper's Algorithm 6: NOrec with semantic validation
    /// of the read-set and deferred `inc` entries in the write-set.
    SNOrec,
    /// Baseline TL2 (version-based validation over an ownership-record
    /// table). Semantic API calls are delegated to plain reads/writes.
    Tl2,
    /// S-TL2 — the paper's Algorithm 7: TL2 with a compare-set, three-phase
    /// execution with snapshot extension, and a CAS-based commit timestamp.
    STl2,
}

impl Algorithm {
    /// Whether this algorithm handles `cmp`/`inc` semantically (rather
    /// than delegating them to plain read/write barriers).
    #[inline]
    pub fn is_semantic(self) -> bool {
        matches!(self, Algorithm::SNOrec | Algorithm::STl2)
    }

    /// The non-semantic baseline this algorithm extends (identity for the
    /// baselines themselves).
    pub fn baseline(self) -> Algorithm {
        match self {
            Algorithm::NOrec | Algorithm::SNOrec => Algorithm::NOrec,
            Algorithm::Tl2 | Algorithm::STl2 => Algorithm::Tl2,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::NOrec => "NOrec",
            Algorithm::SNOrec => "S-NOrec",
            Algorithm::Tl2 => "TL2",
            Algorithm::STl2 => "S-TL2",
        }
    }

    /// All four algorithms, in the paper's legend order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::NOrec,
        Algorithm::SNOrec,
        Algorithm::Tl2,
        Algorithm::STl2,
    ];
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Construction-time configuration for an [`crate::Stm`].
#[derive(Clone, Debug)]
pub struct StmConfig {
    /// The algorithm to run.
    pub algorithm: Algorithm,
    /// Transactional heap capacity in 64-bit words.
    pub heap_words: usize,
    /// Number of ownership records (TL2 family). Rounded up to a power of
    /// two; addresses map to orecs by masking.
    pub orec_count: usize,
    /// Spins to wait on a locked orec before aborting with `Timeout`
    /// (the paper's starvation-avoidance timeout, §4.2).
    pub lock_wait_spins: u32,
    /// Minimum contention-manager backoff spins.
    pub backoff_min_spins: u32,
    /// Maximum contention-manager backoff spins.
    pub backoff_max_spins: u32,
    /// Retry-pacing policy applied between attempts.
    pub cm_policy: CmPolicy,
    /// S-TL2 ablation knob: disable the phase-1 snapshot-extension
    /// optimisation (Algorithm 7 lines 19–25). With extension disabled,
    /// phase-1 `cmp`s validate like phase-2 ones. Default `true`.
    pub stl2_snapshot_extension: bool,
    /// NOrec-family accelerator: publish RingSTM-style per-commit write
    /// filters and skip read-set revalidation when no missed commit's
    /// filter intersects the transaction's read filter ([`crate::ring`];
    /// ablation A4). Default `false` — plain NOrec/S-NOrec.
    pub norec_ring_filters: bool,
    /// S-NOrec ablation knob: deduplicate read-set entries for repeated
    /// reads of the same address instead of appending duplicates (§4.1
    /// "read after read" discussion). Default `false` — the paper appends
    /// duplicates, judging the dedup lookup cost not worth it.
    pub snorec_dedup_reads: bool,
    /// Number of commit-clock shards for the NOrec family (rounded up to
    /// a power of two). The default `1` keeps the classical single global
    /// sequence lock; values above 1 switch NOrec/S-NOrec to the sharded
    /// commit clock ([`crate::sclock`]): per-cache-line sequence locks,
    /// per-shard read-set revalidation, and multi-shard commit
    /// acquisition. The TL2 family keeps its global version clock
    /// regardless — sharding TL2's version numbers safely is out of
    /// scope (versions order *all* commits, not just per-line ones).
    pub clock_shards: usize,
    /// Route [`crate::Stm::alloc`] / `alloc_cell` / `alloc_array` through
    /// [`crate::heap::Heap::alloc_padded`], placing every allocation on
    /// its own cache line (or run of lines). Default `false` — flat
    /// packing. Padding trades arena slack for the absence of false
    /// sharing between independently allocated nodes, and at
    /// `clock_shards > 1` additionally gives each node its own clock
    /// shard word (the shard map is line-granular).
    pub padded_alloc: bool,
    /// How much the runtime records about itself. The default,
    /// [`TelemetryLevel::Counters`], costs nothing beyond the counter
    /// increments the runtime always did; higher levels add latency
    /// histograms, the abort-event trace, and (at
    /// [`TelemetryLevel::Spans`]) the per-attempt flight recorder.
    pub telemetry: TelemetryLevel,
    /// Flush discipline of the write-ahead commit log, when one is
    /// attached via [`crate::Stm::with_wal`]. Ignored by [`crate::Stm::new`]
    /// (no log, no durability — the classical in-memory STM). Default
    /// [`DurabilityMode::Group`]: a dedicated thread batches fsyncs off
    /// the commit path.
    pub durability: DurabilityMode,
    /// Telemetry-driven adaptive engine switching ([`crate::adapt`]):
    /// `Some(policy)` equips the runtime with a [`crate::adapt::Controller`]
    /// that [`crate::Stm::adapt_tick`] consults to hot-swap engines under
    /// load. `None` (the default) means no controller — manual
    /// [`crate::Stm::switch_to`] still works, and adaptation costs
    /// nothing beyond the always-on mode-word epoch protocol.
    pub adaptive: Option<AdaptPolicy>,
    /// Per-shard event-ring capacity (newest events retained). Governs
    /// the abort-event rings (allocated at [`TelemetryLevel::Trace`] and
    /// above) *and* the flight-recorder span rings (allocated at
    /// [`TelemetryLevel::Spans`]).
    ///
    /// Memory cost: there are 64 ring shards (one per telemetry counter
    /// shard). Each abort event is ~48 bytes and each span ~112 bytes,
    /// so at `Trace` a capacity of `c` costs about `64 × 48 × c` bytes
    /// (≈ 3 MiB at the default 1024) and at `Spans` about
    /// `64 × 160 × c` bytes (≈ 10 MiB at the default). Below `Trace`
    /// the rings collapse to capacity 1 and cost a few kilobytes total.
    pub trace_capacity: usize,
}

impl StmConfig {
    /// Reasonable defaults for the given algorithm (16 Mi-word heap,
    /// 2^16 orecs).
    pub fn new(algorithm: Algorithm) -> StmConfig {
        StmConfig {
            algorithm,
            heap_words: 1 << 24,
            orec_count: 1 << 16,
            lock_wait_spins: 4096,
            backoff_min_spins: 16,
            backoff_max_spins: 8192,
            cm_policy: CmPolicy::Backoff,
            norec_ring_filters: false,
            stl2_snapshot_extension: true,
            snorec_dedup_reads: false,
            clock_shards: 1,
            padded_alloc: false,
            telemetry: TelemetryLevel::Counters,
            durability: DurabilityMode::Group,
            adaptive: None,
            trace_capacity: 1024,
        }
    }

    /// Builder-style heap-size override (in words).
    pub fn heap_words(mut self, words: usize) -> StmConfig {
        self.heap_words = words;
        self
    }

    /// Builder-style orec-count override.
    pub fn orec_count(mut self, count: usize) -> StmConfig {
        self.orec_count = count;
        self
    }

    /// Builder-style lock-wait patience override.
    pub fn lock_wait_spins(mut self, spins: u32) -> StmConfig {
        self.lock_wait_spins = spins;
        self
    }

    /// Builder-style contention-manager policy override.
    pub fn cm_policy(mut self, policy: CmPolicy) -> StmConfig {
        self.cm_policy = policy;
        self
    }

    /// Builder-style toggle for the S-TL2 snapshot-extension optimisation.
    pub fn stl2_snapshot_extension(mut self, on: bool) -> StmConfig {
        self.stl2_snapshot_extension = on;
        self
    }

    /// Builder-style toggle for the RingSTM-filter validation fast path.
    pub fn norec_ring_filters(mut self, on: bool) -> StmConfig {
        self.norec_ring_filters = on;
        self
    }

    /// Builder-style toggle for S-NOrec read-set deduplication.
    pub fn snorec_dedup_reads(mut self, on: bool) -> StmConfig {
        self.snorec_dedup_reads = on;
        self
    }

    /// Builder-style commit-clock shard-count override (NOrec family;
    /// `1` = the classical global sequence lock).
    pub fn clock_shards(mut self, shards: usize) -> StmConfig {
        self.clock_shards = shards;
        self
    }

    /// Builder-style toggle for padded (cache-line-per-allocation) heap
    /// allocation.
    pub fn padded_alloc(mut self, on: bool) -> StmConfig {
        self.padded_alloc = on;
        self
    }

    /// Builder-style telemetry-level override.
    pub fn telemetry(mut self, level: TelemetryLevel) -> StmConfig {
        self.telemetry = level;
        self
    }

    /// Builder-style WAL flush-discipline override (takes effect only
    /// with [`crate::Stm::with_wal`]).
    pub fn durability(mut self, mode: DurabilityMode) -> StmConfig {
        self.durability = mode;
        self
    }

    /// Builder-style adaptive-switching knob: attach a controller with
    /// `policy` (see [`crate::adapt`]; drive it via
    /// [`crate::Stm::adapt_tick`]).
    pub fn adaptive(mut self, policy: AdaptPolicy) -> StmConfig {
        self.adaptive = Some(policy);
        self
    }

    /// Builder-style event-ring capacity override (per shard; applies
    /// to both the abort trace and the span rings — see the field docs
    /// for the memory cost).
    pub fn trace_capacity(mut self, events: usize) -> StmConfig {
        self.trace_capacity = events;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantic_flags() {
        assert!(!Algorithm::NOrec.is_semantic());
        assert!(Algorithm::SNOrec.is_semantic());
        assert!(!Algorithm::Tl2.is_semantic());
        assert!(Algorithm::STl2.is_semantic());
    }

    #[test]
    fn baselines() {
        assert_eq!(Algorithm::SNOrec.baseline(), Algorithm::NOrec);
        assert_eq!(Algorithm::STl2.baseline(), Algorithm::Tl2);
        assert_eq!(Algorithm::NOrec.baseline(), Algorithm::NOrec);
    }

    #[test]
    fn builder_overrides() {
        let c = StmConfig::new(Algorithm::STl2)
            .cm_policy(CmPolicy::Yield)
            .heap_words(128)
            .orec_count(32)
            .lock_wait_spins(7)
            .stl2_snapshot_extension(false)
            .snorec_dedup_reads(true)
            .clock_shards(8)
            .padded_alloc(true)
            .telemetry(TelemetryLevel::Trace)
            .trace_capacity(64);
        assert_eq!(c.heap_words, 128);
        assert_eq!(c.orec_count, 32);
        assert_eq!(c.lock_wait_spins, 7);
        assert!(!c.stl2_snapshot_extension);
        assert!(c.snorec_dedup_reads);
        assert_eq!(c.clock_shards, 8);
        assert!(c.padded_alloc);
        assert_eq!(c.cm_policy, CmPolicy::Yield);
        assert_eq!(c.telemetry, TelemetryLevel::Trace);
        assert_eq!(c.trace_capacity, 64);
    }

    #[test]
    fn clock_defaults_to_single_global_lock() {
        let c = StmConfig::new(Algorithm::NOrec);
        assert_eq!(c.clock_shards, 1);
        assert!(!c.padded_alloc);
    }
}
