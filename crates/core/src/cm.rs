//! Contention management.
//!
//! When a transaction aborts, *how* it retries shapes throughput under
//! contention (Scherer & Scott, PODC 2005 — the paper's \[22\]). The
//! algorithms in this crate resolve conflicts by aborting the reader /
//! later committer, so the contention manager's job reduces to pacing
//! retries. Four classic policies are provided; the default is
//! randomised exponential backoff ("Polite"), which is what the
//! evaluation uses.

use crate::error::AbortReason;
use crate::util::SplitMix64;

/// Retry-pacing policy applied between transaction attempts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmPolicy {
    /// Retry immediately. Maximises wasted work under contention but
    /// has the lowest latency when conflicts are rare.
    Aggressive,
    /// Randomised exponential backoff (default; the "Polite" manager).
    Backoff,
    /// Linear backoff: attempt `n` spins `O(n)` — gentler ramp for
    /// short transactions.
    Linear,
    /// Yield the OS thread every retry — the right choice on
    /// oversubscribed machines (more runnable threads than cores).
    Yield,
}

impl CmPolicy {
    /// All policies (for sweeps and tests).
    pub const ALL: [CmPolicy; 4] = [
        CmPolicy::Aggressive,
        CmPolicy::Backoff,
        CmPolicy::Linear,
        CmPolicy::Yield,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CmPolicy::Aggressive => "aggressive",
            CmPolicy::Backoff => "backoff",
            CmPolicy::Linear => "linear",
            CmPolicy::Yield => "yield",
        }
    }
}

/// Per-transaction-context contention manager state.
#[derive(Clone, Debug)]
pub struct ContentionManager {
    policy: CmPolicy,
    rng: SplitMix64,
    min_spins: u32,
    max_spins: u32,
}

impl ContentionManager {
    /// Create a manager for one executing context.
    pub fn new(policy: CmPolicy, seed: u64, min_spins: u32, max_spins: u32) -> ContentionManager {
        ContentionManager {
            policy,
            rng: SplitMix64::new(seed),
            min_spins: min_spins.max(1),
            max_spins: max_spins.max(2),
        }
    }

    /// Pace before retry number `attempt` (0-based) after an abort for
    /// `reason`. Explicit (workload-logic) retries always just yield:
    /// spinning cannot make the awaited state change on this core.
    ///
    /// Returns the number of spin iterations executed (0 for pure
    /// yields), which the telemetry layer feeds into the backoff
    /// histogram — making time lost to pacing, not just time lost to
    /// re-execution, observable.
    pub fn pause(&mut self, attempt: u32, reason: AbortReason) -> u64 {
        if reason == AbortReason::Explicit {
            std::thread::yield_now();
            return 0;
        }
        match self.policy {
            CmPolicy::Aggressive => 0,
            CmPolicy::Backoff => {
                let ceiling = self
                    .min_spins
                    .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
                    .min(self.max_spins);
                let spins = self.min_spins as u64 + self.rng.below(ceiling.max(2) as u64);
                for _ in 0..spins {
                    std::hint::spin_loop();
                }
                if attempt > 4 {
                    std::thread::yield_now();
                }
                spins
            }
            CmPolicy::Linear => {
                let spins = (self.min_spins as u64)
                    .saturating_mul(attempt as u64 + 1)
                    .min(self.max_spins as u64);
                for _ in 0..spins {
                    std::hint::spin_loop();
                }
                if attempt > 16 {
                    std::thread::yield_now();
                }
                spins
            }
            CmPolicy::Yield => {
                std::thread::yield_now();
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = CmPolicy::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CmPolicy::ALL.len());
    }

    #[test]
    fn every_policy_pauses_without_panicking() {
        for policy in CmPolicy::ALL {
            let mut cm = ContentionManager::new(policy, 7, 4, 64);
            for attempt in 0..40 {
                let spins = cm.pause(attempt, AbortReason::Validation);
                assert!(
                    spins <= 64 + 4,
                    "{}: spins {spins} exceed bounds",
                    policy.name()
                );
                assert_eq!(cm.pause(attempt, AbortReason::Explicit), 0);
            }
        }
    }

    #[test]
    fn spinning_policies_report_spins() {
        let mut cm = ContentionManager::new(CmPolicy::Backoff, 7, 4, 64);
        assert!(cm.pause(3, AbortReason::Validation) >= 4);
        let mut cm = ContentionManager::new(CmPolicy::Linear, 7, 4, 64);
        assert_eq!(cm.pause(2, AbortReason::Validation), 12);
        let mut cm = ContentionManager::new(CmPolicy::Aggressive, 7, 4, 64);
        assert_eq!(cm.pause(2, AbortReason::Validation), 0);
        let mut cm = ContentionManager::new(CmPolicy::Yield, 7, 4, 64);
        assert_eq!(cm.pause(2, AbortReason::Validation), 0);
    }

    #[test]
    fn backoff_huge_attempt_saturates() {
        let mut cm = ContentionManager::new(CmPolicy::Backoff, 1, 1, 16);
        cm.pause(u32::MAX, AbortReason::Locked); // must not overflow
    }
}
