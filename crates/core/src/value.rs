//! Encoding Rust values into heap words.
//!
//! The STM operates on raw `i64` words; this module defines the [`Word`]
//! codec used by the typed layer ([`crate::tvar`]) and the [`Fx32`]
//! fixed-point type used by the Kmeans port (so that centroid updates are
//! exact `TM_INC` word operations — see DESIGN.md §7).

/// Types that can be stored in a single transactional heap word.
///
/// The encoding must be a bijection on the values the program uses, so
/// that value-based (and semantic) validation of the encoded word is
/// equivalent to validation of the logical value.
pub trait Word: Copy {
    /// Encode into a word.
    fn to_word(self) -> i64;
    /// Decode from a word.
    fn from_word(w: i64) -> Self;
}

impl Word for i64 {
    #[inline]
    fn to_word(self) -> i64 {
        self
    }
    #[inline]
    fn from_word(w: i64) -> Self {
        w
    }
}

impl Word for u64 {
    #[inline]
    fn to_word(self) -> i64 {
        self as i64
    }
    #[inline]
    fn from_word(w: i64) -> Self {
        w as u64
    }
}

impl Word for i32 {
    #[inline]
    fn to_word(self) -> i64 {
        self as i64
    }
    #[inline]
    fn from_word(w: i64) -> Self {
        w as i32
    }
}

impl Word for u32 {
    #[inline]
    fn to_word(self) -> i64 {
        self as i64
    }
    #[inline]
    fn from_word(w: i64) -> Self {
        w as u32
    }
}

impl Word for usize {
    #[inline]
    fn to_word(self) -> i64 {
        self as i64
    }
    #[inline]
    fn from_word(w: i64) -> Self {
        w as usize
    }
}

impl Word for bool {
    #[inline]
    fn to_word(self) -> i64 {
        self as i64
    }
    #[inline]
    fn from_word(w: i64) -> Self {
        w != 0
    }
}

/// Signed 48.16 fixed-point number stored in one heap word.
///
/// Addition of `Fx32` values is exact integer addition of the underlying
/// words, which is what makes `TM_INC` applicable to Kmeans' centroid
/// accumulation (paper, Algorithm 5) without floating-point commutativity
/// caveats.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default, Hash)]
pub struct Fx32(pub i64);

impl Fx32 {
    /// Number of fractional bits.
    pub const FRAC_BITS: u32 = 16;
    /// The representation of 1.0.
    pub const ONE: Fx32 = Fx32(1 << Self::FRAC_BITS);
    /// The representation of 0.0.
    pub const ZERO: Fx32 = Fx32(0);

    /// Convert from `f64`, rounding to the nearest representable value.
    #[inline]
    pub fn from_f64(v: f64) -> Fx32 {
        Fx32((v * (1i64 << Self::FRAC_BITS) as f64).round() as i64)
    }

    /// Convert to `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1i64 << Self::FRAC_BITS) as f64
    }

    /// Construct from an integer.
    #[inline]
    pub fn from_int(v: i64) -> Fx32 {
        Fx32(v << Self::FRAC_BITS)
    }

    /// Fixed-point division by a plain integer.
    #[inline]
    pub fn div_int(self, d: i64) -> Fx32 {
        Fx32(self.0 / d)
    }
}

impl std::ops::Mul for Fx32 {
    type Output = Fx32;
    /// Fixed-point multiplication (used by the Kmeans distance kernel).
    #[inline]
    fn mul(self, other: Fx32) -> Fx32 {
        Fx32(((self.0 as i128 * other.0 as i128) >> Self::FRAC_BITS) as i64)
    }
}

impl std::ops::Add for Fx32 {
    type Output = Fx32;
    #[inline]
    fn add(self, rhs: Fx32) -> Fx32 {
        Fx32(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Fx32 {
    type Output = Fx32;
    #[inline]
    fn sub(self, rhs: Fx32) -> Fx32 {
        Fx32(self.0 - rhs.0)
    }
}

impl Word for Fx32 {
    #[inline]
    fn to_word(self) -> i64 {
        self.0
    }
    #[inline]
    fn from_word(w: i64) -> Self {
        Fx32(w)
    }
}

impl std::fmt::Display for Fx32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(i64::from_word((-5i64).to_word()), -5);
        assert_eq!(u64::from_word(u64::MAX.to_word()), u64::MAX);
        assert!(bool::from_word(true.to_word()));
        assert!(!bool::from_word(false.to_word()));
        assert_eq!(i32::from_word((-7i32).to_word()), -7);
        assert_eq!(usize::from_word(12usize.to_word()), 12);
    }

    #[test]
    fn fx32_arithmetic() {
        let a = Fx32::from_f64(1.5);
        let b = Fx32::from_f64(2.25);
        assert!((Fx32::to_f64(a + b) - 3.75).abs() < 1e-4);
        assert!(((a * b).to_f64() - 3.375).abs() < 1e-3);
        assert_eq!(Fx32::from_int(4).div_int(2), Fx32::from_int(2));
        assert!((Fx32::from_f64(-0.5).to_f64() + 0.5).abs() < 1e-4);
    }

    #[test]
    fn fx32_add_is_word_add() {
        // This is the property that makes TM_INC exact for Kmeans.
        let a = Fx32::from_f64(3.125);
        let b = Fx32::from_f64(-1.0625);
        assert_eq!((a + b).to_word(), a.to_word() + b.to_word());
    }

    #[test]
    fn fx32_ordering_matches_f64() {
        let vals = [-2.5, -0.25, 0.0, 0.125, 7.75];
        for &x in &vals {
            for &y in &vals {
                assert_eq!(Fx32::from_f64(x) < Fx32::from_f64(y), x < y, "{x} vs {y}");
            }
        }
    }
}
