//! Write-ahead commit log, group commit, and recovery (DESIGN.md §9).
//!
//! Durability for the STM: a committing writer appends one CRC-framed
//! record of its **resolved** write set (absolute `(addr, value)` pairs —
//! deferred increments are materialised under the commit locks) to a
//! [`CommitLog`] *after* validation and *before* the first data
//! write-back. Because the append happens while the commit locks are
//! held, the log's sequence order is consistent with the conflict
//! serialisation order: two records that touch a common address appear
//! in the order their commits serialised, and records of disjoint
//! commits commute under replay. Recovery ([`replay`]) therefore
//! reconstructs, from any durable log prefix, the exact memory state of
//! a causally-closed prefix of the commit history — transactions are
//! recovered whole or not at all.
//!
//! Three flush disciplines ([`DurabilityMode`]):
//!
//! * **Sync** — the committer flushes (append + fsync) its own record
//!   inline in [`CommitLog::wait_durable`], after releasing its commit
//!   locks. One fsync per commit: the honest upper bound on commit-side
//!   cost.
//! * **Group** — a dedicated flush thread drains the pending buffer and
//!   issues one fsync per *batch*; committers block in `wait_durable`
//!   only until their record's batch is durable. The hot path (locks
//!   held) never waits on I/O.
//! * **Manual** — nobody flushes implicitly; a test harness drives
//!   [`CommitLog::flush_step`] explicitly (the crash-schedule sweeps in
//!   `semtm-check` run the flusher as a scheduled virtual thread).
//!
//! The privatization-safety framing (Khyzha/Attiya/Gotsman, PAPERS.md):
//! the flush thread reads committed state non-transactionally. That is
//! sound here because it never reads the heap at all — committers hand
//! it fully-resolved byte records through the pending buffer *before*
//! publishing the corresponding heap state, so the flusher observes a
//! private, immutable copy and no transactional data races with it.
//!
//! I/O errors **poison** the log (fail-stop, fsyncgate-style): an append
//! that finds the log poisoned aborts the transaction cleanly (nothing
//! was written back); a flush failure after a transaction's in-memory
//! write-back cannot be rolled back — `wait_durable` surfaces the error
//! and the runtime panics rather than silently acking a commit it
//! cannot make durable (retrying would double-apply increments).

use crate::error::Abort;
use crate::fault;
use crate::heap::{Addr, Heap};
use crate::sched;
use std::io::{self, Write as _};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

// --- CRC32 ----------------------------------------------------------------

/// IEEE CRC-32 table (reflected, polynomial 0xEDB88320), built at
/// compile time — the workspace is offline, so no crc crate.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `bytes` (the checksum framing every log record).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// --- record codec ---------------------------------------------------------

/// Fixed per-record overhead: `seq:u64 + count:u32 + crc:u32` (the
/// `len:u32` prefix is not counted by `len` itself).
const RECORD_FIXED: usize = 8 + 4 + 4;
/// Bytes per `(addr:u32, value:i64)` write entry.
const ENTRY_BYTES: usize = 4 + 8;
/// Sanity bound on entries per record — a `len` implying more than this
/// is treated as corruption, not as a 48-GiB allocation request.
const MAX_ENTRIES: usize = 1 << 24;

/// One decoded log record: a committed transaction's resolved writes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Commit sequence number (contiguous from 1).
    pub seq: u64,
    /// Absolute `(address, value)` stores, in write-set order.
    pub writes: Vec<(u32, i64)>,
}

/// Append one encoded record to `out`.
///
/// Layout (all little-endian):
/// `len:u32 | seq:u64 | count:u32 | (addr:u32, value:i64)* | crc:u32`
/// where `len` counts everything after itself and `crc` covers
/// `seq..entries` (everything between `len` and `crc`).
pub fn encode_record(out: &mut Vec<u8>, seq: u64, writes: &[(Addr, i64)]) {
    assert!(writes.len() <= MAX_ENTRIES, "write set too large for WAL");
    let len = RECORD_FIXED + writes.len() * ENTRY_BYTES;
    out.reserve(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    let body_start = out.len();
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(writes.len() as u32).to_le_bytes());
    for &(addr, value) in writes {
        out.extend_from_slice(&(addr.index() as u32).to_le_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
    let crc = crc32(&out[body_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Why the log reader stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The byte stream ended exactly at a record boundary.
    CleanEnd,
    /// Fewer than 4 trailing bytes: a torn `len` prefix.
    TornHeader,
    /// The final record's body is shorter than its `len` promised.
    TornRecord,
    /// A `len` outside the representable record sizes (corruption).
    BadLength,
    /// A record failed its CRC check.
    BadCrc,
    /// A CRC-valid record carried a non-contiguous sequence number.
    BadSequence,
}

impl StopReason {
    /// Whether this stop is an expected end-of-log (clean or torn tail)
    /// rather than mid-stream corruption. Recovery accepts both — a
    /// crash can tear the tail — but diagnostics distinguish them.
    pub fn is_tail(self) -> bool {
        matches!(
            self,
            StopReason::CleanEnd | StopReason::TornHeader | StopReason::TornRecord
        )
    }
}

/// Decode the longest valid record prefix of `bytes`.
///
/// Returns the decoded records, the number of bytes consumed (always a
/// record boundary) and why decoding stopped. Never panics on arbitrary
/// input: a torn or corrupt tail simply truncates the result at the
/// last fully-valid record.
pub fn read_records(bytes: &[u8]) -> (Vec<WalRecord>, usize, StopReason) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut expected_seq = 1u64;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return (records, pos, StopReason::CleanEnd);
        }
        if rest.len() < 4 {
            return (records, pos, StopReason::TornHeader);
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if len < RECORD_FIXED
            || !(len - RECORD_FIXED).is_multiple_of(ENTRY_BYTES)
            || (len - RECORD_FIXED) / ENTRY_BYTES > MAX_ENTRIES
        {
            return (records, pos, StopReason::BadLength);
        }
        if rest.len() - 4 < len {
            return (records, pos, StopReason::TornRecord);
        }
        let body = &rest[4..4 + len - 4];
        let crc_stored = u32::from_le_bytes(rest[4 + len - 4..4 + len].try_into().unwrap());
        if crc32(body) != crc_stored {
            return (records, pos, StopReason::BadCrc);
        }
        let seq = u64::from_le_bytes(body[..8].try_into().unwrap());
        let count = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
        if count * ENTRY_BYTES != body.len() - 12 {
            // `count` disagrees with `len`; CRC matched, so the record
            // was written this way — treat as corruption all the same.
            return (records, pos, StopReason::BadLength);
        }
        if seq != expected_seq {
            return (records, pos, StopReason::BadSequence);
        }
        let mut writes = Vec::with_capacity(count);
        for i in 0..count {
            let off = 12 + i * ENTRY_BYTES;
            let addr = u32::from_le_bytes(body[off..off + 4].try_into().unwrap());
            let value = i64::from_le_bytes(body[off + 4..off + 12].try_into().unwrap());
            writes.push((addr, value));
        }
        records.push(WalRecord { seq, writes });
        expected_seq += 1;
        pos += 4 + len;
    }
}

/// What [`replay`] reconstructed.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// Number of whole records replayed.
    pub records: u64,
    /// Sequence number of the last replayed record (0 if none).
    pub last_seq: u64,
    /// Bytes of the input consumed (always a record boundary).
    pub bytes_consumed: usize,
    /// Why the reader stopped.
    pub stopped: StopReason,
}

/// Replay the valid prefix of a log byte stream into `heap`.
///
/// Records hold absolute resolved values, so replay is **idempotent**:
/// replaying the same prefix any number of times yields the same heap.
///
/// # Panics
/// Panics if a CRC-valid record addresses a word outside `heap` — that
/// is a configuration error (recovering into a smaller heap than the
/// one that wrote the log), not log corruption.
pub fn replay(bytes: &[u8], heap: &Heap) -> RecoveryReport {
    let (records, consumed, stopped) = read_records(bytes);
    let mut last_seq = 0;
    for r in &records {
        for &(addr, value) in &r.writes {
            assert!(
                (addr as usize) < heap.capacity(),
                "WAL record {} addresses word {} beyond heap capacity {}",
                r.seq,
                addr,
                heap.capacity()
            );
            heap.store(Addr::from_index(addr as usize), value);
        }
        last_seq = r.seq;
    }
    RecoveryReport {
        records: records.len() as u64,
        last_seq,
        bytes_consumed: consumed,
        stopped,
    }
}

// --- storage backends -----------------------------------------------------

/// Byte-level log storage: append and make-durable. Implementations
/// must be append-only — recovery assumes the byte stream only grows.
pub trait LogStorage: Send {
    /// Append `bytes` at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Make every appended byte durable (fsync or simulated watermark).
    fn sync(&mut self) -> io::Result<()>;
}

/// File-backed storage: real `write_all` + `sync_data`.
pub struct FileStorage {
    file: std::fs::File,
}

impl FileStorage {
    /// Create (truncating) the log file at `path`.
    pub fn create(path: &std::path::Path) -> io::Result<FileStorage> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStorage { file })
    }
}

impl LogStorage for FileStorage {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

struct SimState {
    bytes: Vec<u8>,
    durable: usize,
}

/// In-memory storage that models the two crash-relevant watermarks:
/// bytes **written** (handed to the OS) and bytes **durable** (fsynced).
/// A process kill preserves everything written; a power loss preserves
/// only the durable prefix, with the written-but-unsynced tail possibly
/// torn. The crash harness reconstructs both images from one run.
///
/// Honours the [`fault::WAL_APPEND_IO_ERROR`] /
/// [`fault::WAL_FSYNC_IO_ERROR`] bits when the `fault-injection`
/// feature is compiled in.
pub struct SimStorage {
    state: Arc<Mutex<SimState>>,
}

/// Observer handle onto a [`SimStorage`]'s byte stream (cloneable;
/// usable while the storage itself is owned by a [`CommitLog`]).
#[derive(Clone)]
pub struct SimHandle {
    state: Arc<Mutex<SimState>>,
}

impl SimStorage {
    /// A fresh empty simulated log plus its observer handle.
    pub fn new() -> (SimStorage, SimHandle) {
        let state = Arc::new(Mutex::new(SimState {
            bytes: Vec::new(),
            durable: 0,
        }));
        (
            SimStorage {
                state: state.clone(),
            },
            SimHandle { state },
        )
    }
}

impl LogStorage for SimStorage {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        if fault::active(fault::WAL_APPEND_IO_ERROR) {
            return Err(io::Error::other("injected WAL append failure"));
        }
        self.state.lock().unwrap().bytes.extend_from_slice(bytes);
        Ok(())
    }
    fn sync(&mut self) -> io::Result<()> {
        if fault::active(fault::WAL_FSYNC_IO_ERROR) {
            return Err(io::Error::other("injected WAL fsync failure"));
        }
        let mut st = self.state.lock().unwrap();
        st.durable = st.bytes.len();
        Ok(())
    }
}

impl SimHandle {
    /// `(written, durable)` byte watermarks at this instant.
    pub fn watermarks(&self) -> (usize, usize) {
        let st = self.state.lock().unwrap();
        (st.bytes.len(), st.durable)
    }

    /// A copy of the full written byte stream.
    pub fn bytes(&self) -> Vec<u8> {
        self.state.lock().unwrap().bytes.clone()
    }
}

// --- the commit log -------------------------------------------------------

/// Who performs the flush (append + fsync) of buffered records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DurabilityMode {
    /// Committers flush their own record inline in `wait_durable`
    /// (one fsync per commit — the ablation's honest baseline).
    Sync,
    /// A dedicated group-commit thread batches appends and fsyncs; a
    /// commit is acked when its batch is durable.
    Group,
    /// No implicit flushing: a harness drives [`CommitLog::flush_step`]
    /// (the deterministic crash sweeps schedule the flusher explicitly).
    Manual,
}

/// A durability failure surfaced to a committer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WalError {
    /// The storage backend rejected an append.
    Append(io::ErrorKind),
    /// The storage backend rejected a sync.
    Sync(io::ErrorKind),
    /// The log was already poisoned by an earlier I/O failure.
    Poisoned,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Append(k) => write!(f, "WAL append failed: {k}"),
            WalError::Sync(k) => write!(f, "WAL fsync failed: {k}"),
            WalError::Poisoned => write!(f, "WAL poisoned by an earlier I/O failure"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<WalError> for Abort {
    fn from(_: WalError) -> Abort {
        Abort::durability()
    }
}

/// A committer's claim on one appended record: redeemed by
/// [`CommitLog::wait_durable`].
#[derive(Clone, Copy, Debug)]
pub struct Ticket {
    seq: u64,
}

impl Ticket {
    /// The record's commit sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

struct LogState {
    /// Encoded records not yet handed to storage. Appends happen under
    /// the engines' commit locks, so buffer order == sequence order ==
    /// conflict serialisation order.
    pending: Vec<u8>,
    /// Last sequence number sitting in `pending` (0 when empty).
    pending_end_seq: u64,
    /// Next sequence number to assign (starts at 1).
    next_seq: u64,
    /// First I/O failure; once set, the log accepts no more appends.
    poison: Option<WalError>,
    /// Acked sequence numbers in ack order (only when tracking is on).
    acks: Vec<u64>,
    track_acks: bool,
}

struct LogShared {
    state: Mutex<LogState>,
    cv: Condvar,
    /// Held for the full duration of one flush step, serialising flushes
    /// so batches reach storage in buffer (= sequence) order. Separate
    /// from `state` so committers can keep appending during an fsync.
    storage: Mutex<Box<dyn LogStorage>>,
    /// Highest sequence number known durable.
    durable_seq: AtomicU64,
    poisoned: AtomicBool,
    shutdown: AtomicBool,
}

impl LogShared {
    fn poison(&self, e: WalError) -> WalError {
        let mut st = self.state.lock().unwrap();
        let first = *st.poison.get_or_insert(e);
        self.poisoned.store(true, Ordering::SeqCst);
        self.cv.notify_all();
        first
    }

    /// One flush step: drain the pending buffer, append it, fsync it,
    /// publish the new durable watermark. Returns whether any work was
    /// done. An I/O error poisons the log and is returned.
    fn flush_step(&self) -> Result<bool, WalError> {
        // A poisoned log never flushes again: the storage suffix past
        // the last durable record is untrustworthy. Report the original
        // I/O error, like `append` does.
        if self.poisoned.load(Ordering::SeqCst) {
            let st = self.state.lock().unwrap();
            return Err(st.poison.unwrap_or(WalError::Poisoned));
        }
        let mut storage = self.storage.lock().unwrap();
        sched::point(sched::PointKind::WalFlush);
        let (batch, end_seq) = {
            let mut st = self.state.lock().unwrap();
            if st.pending.is_empty() {
                return Ok(false);
            }
            (std::mem::take(&mut st.pending), st.pending_end_seq)
        };
        if let Err(e) = storage.append(&batch) {
            // The batch left the pending buffer and may be partially
            // written: the log is no longer trustworthy past the last
            // durable record. Fail stop.
            return Err(self.poison(WalError::Append(e.kind())));
        }
        sched::point(sched::PointKind::WalFsync);
        if let Err(e) = storage.sync() {
            return Err(self.poison(WalError::Sync(e.kind())));
        }
        self.durable_seq.fetch_max(end_seq, Ordering::SeqCst);
        drop(storage);
        // Wake committers parked in `wait_durable`.
        let _st = self.state.lock().unwrap();
        self.cv.notify_all();
        Ok(true)
    }
}

/// The write-ahead commit log shared by all transactions of one
/// [`crate::Stm`]. See the module docs for the protocol.
pub struct CommitLog {
    shared: Arc<LogShared>,
    mode: DurabilityMode,
    flusher: Option<std::thread::JoinHandle<()>>,
}

impl CommitLog {
    /// A commit log over `storage`, flushing per `mode` (spawns the
    /// group-commit thread when `mode` is [`DurabilityMode::Group`]).
    pub fn new(storage: Box<dyn LogStorage>, mode: DurabilityMode) -> CommitLog {
        let shared = Arc::new(LogShared {
            state: Mutex::new(LogState {
                pending: Vec::new(),
                pending_end_seq: 0,
                next_seq: 1,
                poison: None,
                acks: Vec::new(),
                track_acks: false,
            }),
            cv: Condvar::new(),
            storage: Mutex::new(storage),
            durable_seq: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let flusher = if mode == DurabilityMode::Group {
            let s = shared.clone();
            Some(
                std::thread::Builder::new()
                    .name("semtm-wal-flush".into())
                    .spawn(move || flusher_loop(&s))
                    .expect("spawning the WAL flush thread"),
            )
        } else {
            None
        };
        CommitLog {
            shared,
            mode,
            flusher,
        }
    }

    /// The flush discipline this log runs.
    pub fn mode(&self) -> DurabilityMode {
        self.mode
    }

    /// Record acked sequence numbers (crash-harness bookkeeping; off by
    /// default — it is one `Vec` push per commit under the state lock).
    pub fn track_acks(&self, on: bool) {
        self.shared.state.lock().unwrap().track_acks = on;
    }

    /// Append a committed transaction's resolved writes. **Must** be
    /// called with the transaction's commit locks held and before its
    /// first heap write-back — that lock context is what makes sequence
    /// order consistent with conflict order. Fails (cleanly — nothing
    /// was written back yet) if the log is poisoned.
    pub fn append(&self, writes: &[(Addr, i64)]) -> Result<Ticket, WalError> {
        let mut st = self.shared.state.lock().unwrap();
        if let Some(e) = st.poison {
            return Err(e);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let mut pending = std::mem::take(&mut st.pending);
        encode_record(&mut pending, seq, writes);
        st.pending = pending;
        st.pending_end_seq = seq;
        self.shared.cv.notify_all();
        Ok(Ticket { seq })
    }

    /// One explicit flush step (Manual mode and tests); see
    /// [`LogShared::flush_step`].
    pub fn flush_step(&self) -> Result<bool, WalError> {
        self.shared.flush_step()
    }

    /// Highest sequence number known durable.
    pub fn durable_seq(&self) -> u64 {
        self.shared.durable_seq.load(Ordering::SeqCst)
    }

    /// Whether an I/O failure has poisoned the log.
    pub fn is_poisoned(&self) -> bool {
        self.shared.poisoned.load(Ordering::SeqCst)
    }

    /// Number of commits acked so far (requires [`CommitLog::track_acks`]).
    pub fn acked_count(&self) -> usize {
        self.shared.state.lock().unwrap().acks.len()
    }

    /// Acked sequence numbers in ack order (requires
    /// [`CommitLog::track_acks`]).
    pub fn acked_seqs(&self) -> Vec<u64> {
        self.shared.state.lock().unwrap().acks.clone()
    }

    /// Block until the ticket's record is durable (the commit ack), or
    /// surface the I/O failure that prevents it. Call only **after**
    /// releasing the commit locks — waiting under them would hold up
    /// every other committer for the fsync latency this design exists
    /// to amortise.
    pub fn wait_durable(&self, ticket: Ticket) -> Result<(), WalError> {
        loop {
            if self.shared.durable_seq.load(Ordering::SeqCst) >= ticket.seq {
                let mut st = self.shared.state.lock().unwrap();
                if st.track_acks {
                    st.acks.push(ticket.seq);
                }
                return Ok(());
            }
            if self.shared.poisoned.load(Ordering::SeqCst) {
                let st = self.shared.state.lock().unwrap();
                return Err(st.poison.unwrap_or(WalError::Poisoned));
            }
            match self.mode {
                DurabilityMode::Sync => {
                    // Flush our own record (and anything batched with it).
                    self.shared.flush_step()?;
                }
                DurabilityMode::Group | DurabilityMode::Manual => {
                    // Under the deterministic scheduler this is a futile
                    // wait: only the (scheduled) flusher can advance the
                    // durable watermark, so report a spin point. In a
                    // plain shuttle-less build it parks on the condvar.
                    #[cfg(feature = "shuttle")]
                    {
                        sched::spin();
                        std::thread::yield_now();
                    }
                    #[cfg(not(feature = "shuttle"))]
                    {
                        let st = self.shared.state.lock().unwrap();
                        let _unused = self
                            .shared
                            .cv
                            .wait_timeout(st, Duration::from_millis(1))
                            .unwrap();
                    }
                }
            }
        }
    }
}

impl Drop for CommitLog {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        } else if !self.is_poisoned() {
            // Best-effort final flush so a cleanly dropped Sync/Manual
            // log leaves no buffered records behind.
            let _ = self.shared.flush_step();
        }
    }
}

/// Group-commit thread: drain-and-fsync whole batches until shutdown
/// (flushing any remainder first) or poisoning.
fn flusher_loop(shared: &LogShared) {
    loop {
        {
            let mut st = shared.state.lock().unwrap();
            while st.pending.is_empty()
                && !shared.shutdown.load(Ordering::SeqCst)
                && st.poison.is_none()
            {
                let (guard, _timeout) = shared
                    .cv
                    .wait_timeout(st, Duration::from_millis(10))
                    .unwrap();
                st = guard;
            }
            if st.poison.is_some() {
                return;
            }
            if st.pending.is_empty() && shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
        }
        if shared.flush_step().is_err() {
            // Poisoned: committers have been woken with the error;
            // nothing further can be made durable.
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, writes: &[(u32, i64)]) -> Vec<u8> {
        let mut out = Vec::new();
        let addrs: Vec<(Addr, i64)> = writes
            .iter()
            .map(|&(a, v)| (Addr::from_index(a as usize), v))
            .collect();
        encode_record(&mut out, seq, &addrs);
        out
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut bytes = rec(1, &[(3, -7), (9, i64::MAX)]);
        bytes.extend(rec(2, &[]));
        bytes.extend(rec(3, &[(0, i64::MIN)]));
        let (records, consumed, stop) = read_records(&bytes);
        assert_eq!(stop, StopReason::CleanEnd);
        assert_eq!(consumed, bytes.len());
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].writes, vec![(3, -7), (9, i64::MAX)]);
        assert_eq!(records[1].writes, vec![]);
        assert_eq!(records[2].seq, 3);
    }

    #[test]
    fn truncated_tail_stops_cleanly() {
        let bytes = rec(1, &[(1, 10), (2, 20)]);
        for cut in 0..bytes.len() {
            let (records, consumed, stop) = read_records(&bytes[..cut]);
            assert!(records.is_empty(), "cut {cut}");
            assert_eq!(consumed, 0);
            assert!(stop.is_tail(), "cut {cut}: {stop:?}");
        }
    }

    #[test]
    fn non_contiguous_sequence_rejected() {
        let mut bytes = rec(1, &[(1, 1)]);
        bytes.extend(rec(3, &[(2, 2)]));
        let (records, _, stop) = read_records(&bytes);
        assert_eq!(records.len(), 1);
        assert_eq!(stop, StopReason::BadSequence);
    }

    #[test]
    fn sim_storage_tracks_watermarks() {
        let (mut sim, handle) = SimStorage::new();
        sim.append(b"abcd").unwrap();
        assert_eq!(handle.watermarks(), (4, 0));
        sim.sync().unwrap();
        assert_eq!(handle.watermarks(), (4, 4));
        sim.append(b"ef").unwrap();
        assert_eq!(handle.watermarks(), (6, 4));
        assert_eq!(handle.bytes(), b"abcdef");
    }

    #[test]
    fn commit_log_sync_mode_acks_after_fsync() {
        let (sim, handle) = SimStorage::new();
        let log = CommitLog::new(Box::new(sim), DurabilityMode::Sync);
        log.track_acks(true);
        let t = log.append(&[(Addr::from_index(5), 42)]).unwrap();
        assert_eq!(log.durable_seq(), 0, "append alone is not durable");
        log.wait_durable(t).unwrap();
        assert_eq!(log.durable_seq(), 1);
        assert_eq!(log.acked_seqs(), vec![1]);
        let (written, durable) = handle.watermarks();
        assert_eq!(written, durable);
        let (records, _, stop) = read_records(&handle.bytes());
        assert_eq!(stop, StopReason::CleanEnd);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].writes, vec![(5, 42)]);
    }

    #[test]
    fn group_mode_flushes_in_background() {
        let (sim, handle) = SimStorage::new();
        let log = CommitLog::new(Box::new(sim), DurabilityMode::Group);
        let mut tickets = Vec::new();
        for i in 0..10 {
            tickets.push(log.append(&[(Addr::from_index(i), i as i64)]).unwrap());
        }
        for t in tickets {
            log.wait_durable(t).unwrap();
        }
        drop(log);
        let (records, _, stop) = read_records(&handle.bytes());
        assert_eq!(stop, StopReason::CleanEnd);
        assert_eq!(records.len(), 10);
    }

    #[test]
    fn manual_mode_needs_explicit_flush() {
        let (sim, handle) = SimStorage::new();
        let log = CommitLog::new(Box::new(sim), DurabilityMode::Manual);
        let t = log.append(&[(Addr::from_index(1), 7)]).unwrap();
        assert_eq!(handle.watermarks(), (0, 0));
        assert!(log.flush_step().unwrap());
        assert!(!log.flush_step().unwrap(), "nothing left to flush");
        log.wait_durable(t).unwrap();
        assert_eq!(log.durable_seq(), 1);
    }

    #[test]
    fn replay_is_idempotent() {
        let mut bytes = rec(1, &[(0, 5), (1, 6)]);
        bytes.extend(rec(2, &[(1, 60)]));
        let heap = Heap::new(8);
        let r1 = replay(&bytes, &heap);
        assert_eq!(r1.records, 2);
        assert_eq!(r1.last_seq, 2);
        let snap1: Vec<i64> = (0..8).map(|i| heap.load(Addr::from_index(i))).collect();
        let r2 = replay(&bytes, &heap);
        assert_eq!(r2.records, 2);
        let snap2: Vec<i64> = (0..8).map(|i| heap.load(Addr::from_index(i))).collect();
        assert_eq!(snap1, snap2);
        assert_eq!(heap.load(Addr::from_index(0)), 5);
        assert_eq!(heap.load(Addr::from_index(1)), 60, "later record wins");
    }

    #[test]
    #[should_panic(expected = "beyond heap capacity")]
    fn replay_into_too_small_heap_panics() {
        let bytes = rec(1, &[(100, 1)]);
        let heap = Heap::new(4);
        let _ = replay(&bytes, &heap);
    }
}
