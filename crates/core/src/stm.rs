//! The runtime front object: [`Stm`] owns the heap, the algorithm's global
//! state and the statistics; [`Stm::atomic`] runs a closure as a
//! transaction with automatic retry; [`Tx`] exposes the extended TM API of
//! the paper's Table 1 (`read`, `write`, `cmp`, `cmp_addr`, `inc`).
//!
//! For non-semantic algorithms (`NOrec`, `Tl2`) the semantic entry points
//! **delegate**: `cmp` becomes a plain read plus a local comparison and
//! `inc` becomes read + write — exactly how the unmodified TM algorithms
//! in libitm implement the new ABI calls (paper §6). This keeps every
//! workload source-identical across all four algorithms, which is what
//! makes the base-vs-semantic columns of Table 3 and the figure legends
//! directly comparable.

use crate::adapt::{self, Controller, Mode, ModeMachine, SwitchError, SwitchReport};
use crate::cm::ContentionManager;
use crate::config::{Algorithm, StmConfig};
use crate::error::{Abort, AbortReason, Conflict};
use crate::heap::{Addr, Heap};
use crate::norec::{NorecGlobal, NorecTx};
use crate::ops::CmpOp;
use crate::sclock::ShardedClock;
use crate::scnorec::ScNorecTx;
use crate::stats::{OpCounts, StatsSnapshot};
use crate::telemetry::{PhaseRecorder, SpanEvent, Telemetry, TelemetryLevel};
use crate::tl2::{Tl2Global, Tl2Tx};
use crate::util::thread_token;
use crate::value::Word;
use crate::wal::{CommitLog, LogStorage};
use std::sync::Mutex;
use std::time::Instant;

/// A shared software-transactional-memory instance.
///
/// Create one per experiment; share it across threads by reference (it is
/// `Sync`). All transactional data must be allocated from this instance's
/// heap.
pub struct Stm {
    config: StmConfig,
    heap: Heap,
    norec: NorecGlobal,
    sclock: ShardedClock,
    tl2: Tl2Global,
    telemetry: Telemetry,
    wal: Option<CommitLog>,
    /// The adaptive mode word + epoch slots ([`crate::adapt`]): which
    /// engine attempts dispatch on, and the quiesce protocol that lets
    /// [`Stm::switch_to`] change it on a live runtime.
    machine: ModeMachine,
    /// The telemetry-driven controller, when [`StmConfig::adaptive`]
    /// attached one. Locked only inside [`Stm::adapt_tick`].
    controller: Option<Mutex<Controller>>,
}

impl Stm {
    /// Create a runtime from a configuration.
    pub fn new(config: StmConfig) -> Stm {
        Stm {
            heap: Heap::new(config.heap_words),
            norec: NorecGlobal::default(),
            sclock: ShardedClock::new(config.clock_shards),
            tl2: Tl2Global::new(config.orec_count),
            telemetry: Telemetry::new(config.telemetry, config.algorithm, config.trace_capacity),
            wal: None,
            machine: ModeMachine::new(Mode::initial(&config)),
            controller: config.adaptive.map(|p| Mutex::new(Controller::new(p))),
            config,
        }
    }

    /// Create a **durable** runtime: every commit's resolved write set
    /// is appended to a write-ahead log over `storage` (flushed per
    /// [`StmConfig::durability`]) before the commit is acknowledged, and
    /// [`crate::wal::replay`] can rebuild the heap from the log prefix
    /// after a crash. See [`crate::wal`] for the protocol and the
    /// fail-stop policy on I/O errors.
    pub fn with_wal(config: StmConfig, storage: Box<dyn LogStorage>) -> Stm {
        let mode = config.durability;
        let mut stm = Stm::new(config);
        stm.wal = Some(CommitLog::new(storage, mode));
        stm
    }

    /// The attached commit log, if this runtime is durable.
    #[inline]
    pub fn wal(&self) -> Option<&CommitLog> {
        self.wal.as_ref()
    }

    /// The algorithm this instance runs.
    #[inline]
    pub fn algorithm(&self) -> Algorithm {
        self.config.algorithm
    }

    /// The underlying heap (for allocation and non-transactional setup).
    #[inline]
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Allocate `n` contiguous words. With the
    /// [`padded_alloc`](StmConfig::padded_alloc) knob on, the block is
    /// placed on its own cache line(s) — see
    /// [`Heap::alloc_padded`](crate::heap::Heap::alloc_padded).
    pub fn alloc(&self, n: usize) -> Addr {
        if self.config.padded_alloc {
            self.heap.alloc_padded(n)
        } else {
            self.heap.alloc(n)
        }
    }

    /// Allocate `n` contiguous words on their own cache line(s),
    /// regardless of the `padded_alloc` knob (per-pool opt-in).
    pub fn alloc_padded(&self, n: usize) -> Addr {
        self.heap.alloc_padded(n)
    }

    /// Allocate one word holding `init` (non-transactionally).
    pub fn alloc_cell<T: Word>(&self, init: T) -> Addr {
        let a = self.alloc(1);
        self.heap.store(a, init.to_word());
        a
    }

    /// Allocate an array of `n` words, all holding `init`.
    pub fn alloc_array<T: Word>(&self, n: usize, init: T) -> Addr {
        let a = self.alloc(n);
        for i in 0..n {
            self.heap.store(a.offset(i), init.to_word());
        }
        a
    }

    /// Non-transactional read (setup / teardown / assertions only).
    pub fn read_now(&self, a: Addr) -> i64 {
        self.heap.load(a)
    }

    /// Non-transactional write (setup / teardown only).
    pub fn write_now(&self, a: Addr, v: i64) {
        self.heap.store(a, v);
    }

    /// Statistics snapshot (merged across all telemetry shards).
    pub fn stats(&self) -> StatsSnapshot {
        self.telemetry.snapshot()
    }

    /// The full telemetry state: histograms, abort traces, shard access.
    #[inline]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The engine mode attempts currently dispatch on. During a switch's
    /// drain window this still reports the old mode (the one in-flight
    /// attempts run).
    pub fn mode(&self) -> Mode {
        self.machine.mode()
    }

    /// Completed mode switches over this runtime's lifetime.
    pub fn switch_count(&self) -> u64 {
        self.machine.switch_count()
    }

    /// Hot-swap the runtime to `target`: publish `Draining`, wait for
    /// in-flight attempts to retire (at most one quiesce epoch — an
    /// attempt, including its WAL durability ack), reseed the engine
    /// metadata clocks, publish the new mode. Concurrent transactions
    /// keep running: attempts that began before the switch complete
    /// under the old mode; attempts that begin during the drain wait for
    /// the handoff and run the new one.
    ///
    /// Returns the drain/latency report (a no-op report when `target`
    /// is already running). Must not be called from inside a transaction
    /// body on this runtime — the drain would wait for the caller's own
    /// attempt, deadlocking.
    ///
    /// Fails with [`SwitchError::Unavailable`] if `target` needs the
    /// sharded clock and this runtime was built with `clock_shards = 1`
    /// (or a sharded TL2 mode was requested — that variant does not
    /// exist).
    pub fn switch_to(&self, target: Mode) -> Result<SwitchReport, SwitchError> {
        if !target.available_under(&self.config) {
            return Err(SwitchError::Unavailable(target));
        }
        Ok(self.machine.switch(target, || {
            // Quiescent: no commit lock held, no write-back in flight.
            // Bump every engine's clock one era forward (never rewound)
            // so no snapshot taken before the switch can validate as
            // current after it — the new engine starts from a heap that
            // is just initial state to it. See DESIGN.md §10.
            self.norec.reseed();
            self.sclock.reseed();
            self.tl2.reseed();
        }))
    }

    /// One controller tick: fold the newest telemetry window into the
    /// rate EWMAs, ask the [`Controller`] for a mode proposal, and apply
    /// it via [`Stm::switch_to`]. Returns the switch report when a
    /// switch happened. No-op (and free) without
    /// [`StmConfig::adaptive`]; call from a sampler/ticker thread, never
    /// from inside a transaction body.
    pub fn adapt_tick(&self) -> Option<SwitchReport> {
        let controller = self.controller.as_ref()?;
        let mut ctl = controller.lock().expect("controller poisoned");
        let rates = self.telemetry.rates(ctl.policy().sample_alpha);
        let target = ctl.decide(self.mode(), &rates, self.config.clock_shards)?;
        match self.switch_to(target) {
            Ok(report) if report.changed() => {
                ctl.note_switched();
                Some(report)
            }
            _ => None,
        }
    }

    /// Run `body` as a transaction, retrying on aborts with randomised
    /// exponential backoff until it commits. Returns the body's value.
    ///
    /// The body must route **every** shared access through the provided
    /// [`Tx`] and must be safe to re-execute (it runs once per attempt).
    pub fn atomic<T>(&self, mut body: impl FnMut(&mut Tx<'_>) -> Result<T, Abort>) -> T {
        let mut cm = ContentionManager::new(
            self.config.cm_policy,
            thread_token().wrapping_mul(0x9E37_79B9),
            self.config.backoff_min_spins,
            self.config.backoff_max_spins,
        );
        // Enter the adaptive epoch before building the attempt context:
        // the entered word pins the engine this attempt dispatches on,
        // and the matching exit() (after commit, or after an abort's
        // rollback) is what a switch's drain barrier waits for. The
        // common case — no switch between attempts — keeps one Tx (and
        // its buffers) alive across the whole retry loop.
        let mut entered = self.machine.enter();
        let mut mode = adapt::word_mode(entered);
        let mut tx = Tx::new(self, mode);
        // One TLS lookup per transaction, not per event: the shard
        // reference stays hot in a register across retries.
        let shard = self.telemetry.shard();
        let histograms = self.telemetry.level() >= TelemetryLevel::Histograms;
        let trace = self.telemetry.level() >= TelemetryLevel::Trace;
        let spans = self.telemetry.level() >= TelemetryLevel::Spans;
        let started = if histograms {
            Some(Instant::now())
        } else {
            None
        };
        let mut attempt: u32 = 0;
        let mut attempts_total: u64 = 1;
        loop {
            // Every per-attempt flight-recorder cost sits behind the
            // `spans` guard; at lower levels this loop is unchanged.
            let attempt_start = if spans {
                self.telemetry.elapsed_ns()
            } else {
                0
            };
            tx.begin();
            let outcome = body(&mut tx).and_then(|v| tx.commit().map(|()| v));
            match outcome {
                Ok(v) => {
                    // Retire from the epoch first: commit (including its
                    // WAL durability ack) is done, so a draining switch
                    // need not wait out the telemetry recording below.
                    self.machine.exit();
                    shard.record_commit(&tx.ops);
                    if let Some(t0) = started {
                        self.telemetry.record_commit_profile(
                            t0.elapsed().as_nanos() as u64,
                            attempts_total,
                            tx.read_set_len(),
                            tx.compare_set_len(),
                        );
                    }
                    if spans {
                        let end = self.telemetry.elapsed_ns();
                        self.telemetry.record_span(tx.span(
                            attempt_start,
                            end,
                            attempts_total as u32,
                            None,
                        ));
                    }
                    return v;
                }
                Err(abort) => {
                    // Capture the span (set sizes and all) before rollback
                    // releases the metadata.
                    let span = if spans {
                        Some(tx.span(
                            attempt_start,
                            self.telemetry.elapsed_ns(),
                            attempts_total as u32,
                            Some((abort.reason, abort.conflict())),
                        ))
                    } else {
                        None
                    };
                    let (rs, cs) = if trace {
                        (tx.read_set_len(), tx.compare_set_len())
                    } else {
                        (0, 0)
                    };
                    tx.rollback();
                    // Rollback released any engine metadata (TL2 orec
                    // locks), so this attempt is fully retired: leave
                    // the epoch before backing off — a draining switch
                    // must not wait out our backoff pause.
                    self.machine.exit();
                    shard.record_abort(abort.reason, &tx.ops);
                    if trace {
                        self.telemetry.record_abort_event(
                            abort.reason,
                            abort.conflict(),
                            attempts_total as u32,
                            rs,
                            cs,
                        );
                    }
                    if let Some(span) = span {
                        let victim = span.thread;
                        self.telemetry.record_span(span);
                        self.telemetry.record_conflict(victim, abort.conflict());
                    }
                    // Fail stop on durability failures: the rollback was
                    // clean (the append is refused before any heap
                    // write-back), but retrying against a poisoned log
                    // can never succeed and pretending to commit without
                    // durability would break the ack contract. Surface
                    // loudly; `try_atomic` is the non-panicking probe.
                    if abort.reason == AbortReason::Durability {
                        panic!("commit log I/O failure: {abort} — aborting (fail-stop durability)");
                    }
                    let spins = cm.pause(attempt, abort.reason);
                    if histograms {
                        self.telemetry.record_backoff(spins);
                    }
                    // Under the deterministic scheduler, retrying after an
                    // abort is a futile-wait iteration (the conflicting
                    // transaction must be scheduled for the retry to fare
                    // better), so report it as a spin — otherwise a
                    // default-continue explorer replays the aborting
                    // thread forever.
                    crate::sched::spin();
                    if abort.reason != AbortReason::Explicit {
                        attempt = attempt.saturating_add(1);
                    }
                    attempts_total += 1;
                    // Re-enter for the retry. A switch may have landed
                    // while we were out (backoff): rebuild the attempt
                    // context only when the engine actually changed —
                    // an epoch bump alone keeps the hot buffers.
                    let word = self.machine.enter();
                    if word != entered {
                        let next = adapt::word_mode(word);
                        if next != mode {
                            tx = Tx::new(self, next);
                            mode = next;
                        }
                        entered = word;
                    }
                }
            }
        }
    }

    /// Run `body` as a transaction **once**, returning the abort instead
    /// of retrying. Useful for tests that assert on specific conflicts.
    pub fn try_atomic<T>(
        &self,
        body: impl FnOnce(&mut Tx<'_>) -> Result<T, Abort>,
    ) -> Result<T, Abort> {
        let entered = self.machine.enter();
        let mut tx = Tx::new(self, adapt::word_mode(entered));
        let shard = self.telemetry.shard();
        tx.begin();
        let outcome = body(&mut tx).and_then(|v| tx.commit().map(|()| v));
        match &outcome {
            Ok(_) => {
                self.machine.exit();
                shard.record_commit(&tx.ops);
            }
            Err(abort) => {
                tx.rollback();
                self.machine.exit();
                shard.record_abort(abort.reason, &tx.ops);
            }
        }
        outcome
    }
}

enum TxInner<'a> {
    Norec(NorecTx<'a>),
    ScNorec(ScNorecTx<'a>),
    Tl2(Tl2Tx<'a>),
}

/// An in-flight transaction. Obtained through [`Stm::atomic`] /
/// [`Stm::try_atomic`]; all barriers return `Result<_, Abort>` and the
/// body should propagate aborts with `?`.
pub struct Tx<'a> {
    inner: TxInner<'a>,
    semantic: bool,
    ops: OpCounts,
}

impl<'a> Tx<'a> {
    fn new(stm: &'a Stm, mode: Mode) -> Tx<'a> {
        // Dispatch on the *mode*, not the construction-time algorithm:
        // all engine globals coexist in the Stm, so an adaptive switch
        // is just a different arm here on the next attempt. (Before
        // adaptive switching this matched on the config; `Mode::initial`
        // preserves the old rule, including `clock_shards > 1` selecting
        // the sharded engine only after its DFS + fuzz gates pass —
        // crates/check/tests/sharded_clock.rs.)
        let inner = match (mode.algorithm.baseline(), mode.sharded) {
            (Algorithm::NOrec, true) => TxInner::ScNorec(ScNorecTx::new(
                &stm.heap,
                &stm.sclock,
                stm.config.snorec_dedup_reads,
                stm.config.lock_wait_spins,
            )),
            (Algorithm::NOrec, false) => TxInner::Norec(NorecTx::new(
                &stm.heap,
                &stm.norec,
                stm.config.snorec_dedup_reads,
                stm.config.norec_ring_filters,
            )),
            (Algorithm::Tl2, _) => TxInner::Tl2(Tl2Tx::new(
                &stm.heap,
                &stm.tl2,
                stm.config.lock_wait_spins,
                stm.config.stl2_snapshot_extension,
            )),
            _ => unreachable!("baseline() returns a baseline"),
        };
        let mut tx = Tx {
            inner,
            semantic: mode.algorithm.is_semantic(),
            ops: OpCounts::default(),
        };
        // At Spans the recorder is live (its epoch is the telemetry
        // clock); below, this installs the inert recorder — the no-op
        // marks inside the algorithms stay behind its `None` check.
        let recorder = stm.telemetry.phase_recorder();
        if recorder.is_enabled() {
            match &mut tx.inner {
                TxInner::Norec(t) => t.enable_spans(recorder),
                TxInner::ScNorec(t) => t.enable_spans(recorder),
                TxInner::Tl2(t) => t.enable_spans(recorder),
            }
        }
        if let Some(log) = &stm.wal {
            match &mut tx.inner {
                TxInner::Norec(t) => t.enable_wal(log),
                TxInner::ScNorec(t) => t.enable_wal(log),
                TxInner::Tl2(t) => t.enable_wal(log),
            }
        }
        tx
    }

    fn begin(&mut self) {
        self.ops.clear();
        match &mut self.inner {
            TxInner::Norec(t) => t.begin(),
            TxInner::ScNorec(t) => t.begin(),
            TxInner::Tl2(t) => t.begin(),
        }
    }

    fn commit(&mut self) -> Result<(), Abort> {
        match &mut self.inner {
            TxInner::Norec(t) => t.commit(),
            TxInner::ScNorec(t) => t.commit(),
            TxInner::Tl2(t) => t.commit(),
        }
    }

    fn rollback(&mut self) {
        if let TxInner::Tl2(t) = &mut self.inner {
            t.on_abort();
        }
    }

    /// `TM_READ` — transactional read of one word (as `i64`).
    pub fn read(&mut self, addr: Addr) -> Result<i64, Abort> {
        self.ops.reads += 1;
        match &mut self.inner {
            TxInner::Norec(t) => t.read(addr, &mut self.ops),
            TxInner::ScNorec(t) => t.read(addr, &mut self.ops),
            TxInner::Tl2(t) => t.read(addr, &mut self.ops),
        }
    }

    /// `TM_WRITE` — transactional (buffered) write of one word.
    pub fn write(&mut self, addr: Addr, value: i64) -> Result<(), Abort> {
        self.ops.writes += 1;
        match &mut self.inner {
            TxInner::Norec(t) => t.write(addr, value),
            TxInner::ScNorec(t) => t.write(addr, value),
            TxInner::Tl2(t) => t.write(addr, value),
        }
        Ok(())
    }

    /// Semantic comparison against a constant — the paper's
    /// `TM_GT/GTE/LT/LTE/EQ/NEQ(address, value)` (ABI `_ITM_S1R`).
    ///
    /// Under a semantic algorithm, records the boolean outcome for
    /// semantic validation; under a baseline, delegates to [`Tx::read`].
    pub fn cmp(&mut self, addr: Addr, op: CmpOp, operand: i64) -> Result<bool, Abort> {
        if !self.semantic {
            let v = self.read(addr)?;
            return Ok(op.eval(v, operand));
        }
        self.ops.cmps += 1;
        match &mut self.inner {
            TxInner::Norec(t) => t.cmp(addr, op, operand, &mut self.ops),
            TxInner::ScNorec(t) => t.cmp(addr, op, operand, &mut self.ops),
            TxInner::Tl2(t) => t.cmp(addr, op, operand, &mut self.ops),
        }
    }

    /// Semantic comparison between two addresses — the paper's
    /// `TM_*(address, address)` form (ABI `_ITM_S2R`).
    pub fn cmp_addr(&mut self, a: Addr, op: CmpOp, b: Addr) -> Result<bool, Abort> {
        if !self.semantic {
            let va = self.read(a)?;
            let vb = self.read(b)?;
            return Ok(op.eval(va, vb));
        }
        self.ops.cmp_pairs += 1;
        match &mut self.inner {
            TxInner::Norec(t) => t.cmp_addr(a, op, b, &mut self.ops),
            TxInner::ScNorec(t) => t.cmp_addr(a, op, b, &mut self.ops),
            TxInner::Tl2(t) => t.cmp_addr(a, op, b, &mut self.ops),
        }
    }

    /// Semantic increment — the paper's `TM_INC(address, delta)`
    /// (`TM_DEC` is a negative delta; ABI `_ITM_SW`).
    ///
    /// Under a semantic algorithm the read half is deferred to commit
    /// time; under a baseline, delegates to read + write.
    pub fn inc(&mut self, addr: Addr, delta: i64) -> Result<(), Abort> {
        if !self.semantic {
            let v = self.read(addr)?;
            return self.write(addr, v.wrapping_add(delta));
        }
        self.ops.incs += 1;
        match &mut self.inner {
            TxInner::Norec(t) => t.inc(addr, delta),
            TxInner::ScNorec(t) => t.inc(addr, delta),
            TxInner::Tl2(t) => t.inc(addr, delta),
        }
        Ok(())
    }

    // --- convenience shorthands matching Table 1 ---

    /// `TM_GT(addr, value)`.
    pub fn gt(&mut self, addr: Addr, v: i64) -> Result<bool, Abort> {
        self.cmp(addr, CmpOp::Gt, v)
    }
    /// `TM_GTE(addr, value)`.
    pub fn gte(&mut self, addr: Addr, v: i64) -> Result<bool, Abort> {
        self.cmp(addr, CmpOp::Gte, v)
    }
    /// `TM_LT(addr, value)`.
    pub fn lt(&mut self, addr: Addr, v: i64) -> Result<bool, Abort> {
        self.cmp(addr, CmpOp::Lt, v)
    }
    /// `TM_LTE(addr, value)`.
    pub fn lte(&mut self, addr: Addr, v: i64) -> Result<bool, Abort> {
        self.cmp(addr, CmpOp::Lte, v)
    }
    /// `TM_EQ(addr, value)`.
    pub fn eq(&mut self, addr: Addr, v: i64) -> Result<bool, Abort> {
        self.cmp(addr, CmpOp::Eq, v)
    }
    /// `TM_NEQ(addr, value)`.
    pub fn neq(&mut self, addr: Addr, v: i64) -> Result<bool, Abort> {
        self.cmp(addr, CmpOp::Neq, v)
    }
    /// `TM_DEC(addr, delta)`.
    pub fn dec(&mut self, addr: Addr, delta: i64) -> Result<(), Abort> {
        self.inc(addr, -delta)
    }

    /// Diagnostics: size of the semantic metadata (read-set entries for
    /// NOrec-family; read-set + compare-set for TL2-family).
    pub fn metadata_len(&self) -> usize {
        self.read_set_len() + self.compare_set_len()
    }

    /// Diagnostics: read-set entries buffered so far.
    pub fn read_set_len(&self) -> usize {
        match &self.inner {
            TxInner::Norec(t) => t.read_set_len(),
            TxInner::ScNorec(t) => t.read_set_len(),
            TxInner::Tl2(t) => t.read_set_len(),
        }
    }

    /// Diagnostics: compare-set entries buffered so far (always 0 for
    /// the NOrec family, whose cmp outcomes live in the read-set).
    pub fn compare_set_len(&self) -> usize {
        match &self.inner {
            TxInner::Norec(_) | TxInner::ScNorec(_) => 0,
            TxInner::Tl2(t) => t.compare_set_len(),
        }
    }

    /// Diagnostics: whether the transaction buffered any write.
    pub fn is_writer(&self) -> bool {
        match &self.inner {
            TxInner::Norec(t) => t.is_writer(),
            TxInner::ScNorec(t) => t.is_writer(),
            TxInner::Tl2(t) => t.is_writer(),
        }
    }

    fn write_set_len(&self) -> usize {
        match &self.inner {
            TxInner::Norec(t) => t.write_set_len(),
            TxInner::ScNorec(t) => t.write_set_len(),
            TxInner::Tl2(t) => t.write_set_len(),
        }
    }

    fn phases(&self) -> PhaseRecorder {
        match &self.inner {
            TxInner::Norec(t) => t.phases(),
            TxInner::ScNorec(t) => t.phases(),
            TxInner::Tl2(t) => t.phases(),
        }
    }

    /// Snapshot this attempt as a flight-recorder span. Must run before
    /// rollback (the set sizes are still live) — `Stm::atomic` is the
    /// only caller.
    fn span(
        &self,
        start_ns: u64,
        end_ns: u64,
        attempt: u32,
        abort: Option<(AbortReason, Conflict)>,
    ) -> SpanEvent {
        let phases = self.phases();
        SpanEvent {
            thread: thread_token(),
            start_ns,
            end_ns,
            validate_ns: phases.validate_ns(),
            lock_ns: phases.lock_ns(),
            writeback_ns: phases.writeback_ns(),
            attempt,
            read_set: self.read_set_len(),
            write_set: self.write_set_len(),
            compare_set: self.compare_set_len(),
            abort,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_algorithms() -> impl Iterator<Item = Stm> {
        Algorithm::ALL
            .into_iter()
            .map(|a| Stm::new(StmConfig::new(a).heap_words(1 << 12).orec_count(1 << 8)))
    }

    #[test]
    fn atomic_commits_and_returns_value() {
        for stm in all_algorithms() {
            let a = stm.alloc_cell(1i64);
            let got = stm.atomic(|tx| {
                let v = tx.read(a)?;
                tx.write(a, v * 10)?;
                Ok(v)
            });
            assert_eq!(got, 1);
            assert_eq!(stm.read_now(a), 10, "{}", stm.algorithm());
            assert_eq!(stm.stats().commits, 1);
        }
    }

    #[test]
    fn semantic_api_works_on_all_algorithms() {
        for stm in all_algorithms() {
            let x = stm.alloc_cell(5i64);
            let y = stm.alloc_cell(5i64);
            let ok = stm.atomic(|tx| {
                let c = tx.gt(x, 0)? || tx.gt(y, 0)?;
                if c {
                    tx.inc(x, 1)?;
                    tx.dec(y, 1)?;
                }
                Ok(c)
            });
            assert!(ok);
            assert_eq!(stm.read_now(x), 6, "{}", stm.algorithm());
            assert_eq!(stm.read_now(y), 4, "{}", stm.algorithm());
        }
    }

    #[test]
    fn delegation_counts_reads_writes_on_baselines() {
        let stm = Stm::new(StmConfig::new(Algorithm::NOrec).heap_words(64));
        let x = stm.alloc_cell(5i64);
        stm.atomic(|tx| {
            let _ = tx.gt(x, 0)?;
            tx.inc(x, 1)
        });
        let s = stm.stats();
        assert_eq!(s.reads, 2, "cmp and inc each delegate to a read");
        assert_eq!(s.writes, 1, "inc delegates to a write");
        assert_eq!(s.cmps, 0);
        assert_eq!(s.incs, 0);
    }

    #[test]
    fn semantic_counts_cmps_incs_on_extensions() {
        for alg in [Algorithm::SNOrec, Algorithm::STl2] {
            let stm = Stm::new(StmConfig::new(alg).heap_words(64));
            let x = stm.alloc_cell(5i64);
            let y = stm.alloc_cell(3i64);
            stm.atomic(|tx| {
                let _ = tx.gt(x, 0)?;
                let _ = tx.cmp_addr(x, CmpOp::Gt, y)?;
                tx.inc(x, 1)
            });
            let s = stm.stats();
            assert_eq!(s.reads, 0, "{alg}");
            assert_eq!(s.writes, 0, "{alg}");
            assert_eq!(s.cmps, 1, "{alg}");
            assert_eq!(s.cmp_pairs, 1, "{alg}");
            assert_eq!(s.incs, 1, "{alg}");
        }
    }

    #[test]
    fn try_atomic_surfaces_explicit_abort() {
        let stm = Stm::new(StmConfig::new(Algorithm::SNOrec).heap_words(64));
        let r = stm.try_atomic(|_tx| -> Result<(), Abort> { Err(Abort::explicit()) });
        assert_eq!(r, Err(Abort::explicit()));
        assert_eq!(stm.stats().aborts_explicit, 1);
        assert_eq!(stm.stats().commits, 0);
    }

    #[test]
    fn spans_level_records_a_span_per_attempt() {
        for alg in Algorithm::ALL {
            let stm = Stm::new(
                StmConfig::new(alg)
                    .heap_words(64)
                    .orec_count(16)
                    .telemetry(TelemetryLevel::Spans),
            );
            let a = stm.alloc_cell(1i64);
            stm.atomic(|tx| {
                let v = tx.read(a)?;
                tx.write(a, v + 1)
            });
            let spans = stm.telemetry().span_events();
            assert_eq!(spans.len(), 1, "{alg}");
            let s = &spans[0];
            assert!(s.committed(), "{alg}");
            assert!(s.end_ns >= s.start_ns, "{alg}");
            assert_eq!(s.attempt, 1, "{alg}");
            assert_eq!(s.write_set, 1, "{alg}");
            assert!(s.lock_ns.is_some(), "{alg}: writer must mark lock phase");
            assert!(
                s.writeback_ns.is_some(),
                "{alg}: writer must mark writeback"
            );
        }
    }

    #[test]
    fn aborted_attempts_record_abort_spans() {
        let stm = Stm::new(
            StmConfig::new(Algorithm::SNOrec)
                .heap_words(64)
                .telemetry(TelemetryLevel::Spans),
        );
        let a = stm.alloc_cell(0i64);
        let mut first = true;
        stm.atomic(|tx| {
            tx.inc(a, 1)?;
            if first {
                first = false;
                return Err(Abort::explicit());
            }
            Ok(())
        });
        let spans = stm.telemetry().span_events();
        assert_eq!(spans.len(), 2, "one span per attempt");
        let aborted = spans.iter().find(|s| !s.committed()).unwrap();
        assert_eq!(aborted.abort.unwrap().0, AbortReason::Explicit);
        assert_eq!(aborted.attempt, 1);
        let committed = spans.iter().find(|s| s.committed()).unwrap();
        assert_eq!(committed.attempt, 2);
    }

    #[test]
    fn below_spans_no_span_is_recorded() {
        for level in [
            TelemetryLevel::Counters,
            TelemetryLevel::Histograms,
            TelemetryLevel::Trace,
        ] {
            let stm = Stm::new(
                StmConfig::new(Algorithm::STl2)
                    .heap_words(64)
                    .orec_count(16)
                    .telemetry(level),
            );
            let a = stm.alloc_cell(1i64);
            stm.atomic(|tx| tx.inc(a, 1));
            assert!(stm.telemetry().span_events().is_empty());
            assert!(stm.telemetry().hot_addresses().is_empty());
        }
    }

    #[test]
    fn sharded_clock_runs_the_full_api() {
        for alg in Algorithm::ALL {
            let stm = Stm::new(
                StmConfig::new(alg)
                    .heap_words(1 << 12)
                    .orec_count(1 << 8)
                    .clock_shards(4)
                    .padded_alloc(true),
            );
            let x = stm.alloc_cell(5i64);
            let y = stm.alloc_cell(5i64);
            let ok = stm.atomic(|tx| {
                let c = tx.gt(x, 0)? || tx.cmp_addr(x, CmpOp::Gt, y)?;
                if c {
                    tx.inc(x, 1)?;
                    tx.dec(y, 1)?;
                }
                Ok(c)
            });
            assert!(ok);
            assert_eq!(stm.read_now(x), 6, "{alg}");
            assert_eq!(stm.read_now(y), 4, "{alg}");
            assert_eq!(stm.stats().commits, 1, "{alg}");
        }
    }

    #[test]
    fn padded_alloc_knob_spreads_allocations_over_lines() {
        use crate::heap::LINE_WORDS;
        let stm = Stm::new(
            StmConfig::new(Algorithm::NOrec)
                .heap_words(1 << 12)
                .padded_alloc(true),
        );
        let a = stm.alloc_cell(1i64);
        let b = stm.alloc_cell(2i64);
        assert_eq!(a.index() % LINE_WORDS, 0);
        assert_eq!(b.index() % LINE_WORDS, 0);
        assert_ne!(a.index() / LINE_WORDS, b.index() / LINE_WORDS);
        assert_eq!(stm.read_now(a), 1);
        assert_eq!(stm.read_now(b), 2);
    }

    #[test]
    fn sharded_concurrent_increments_preserve_sum() {
        for shards in [2, 8] {
            let stm = std::sync::Arc::new(Stm::new(
                StmConfig::new(Algorithm::SNOrec)
                    .heap_words(1 << 12)
                    .clock_shards(shards)
                    .padded_alloc(true),
            ));
            let a = stm.alloc_cell(0i64);
            let b = stm.alloc_cell(0i64);
            let threads = 4i64;
            let per = 200i64;
            let mut joins = Vec::new();
            for t in 0..threads {
                let stm = stm.clone();
                joins.push(std::thread::spawn(move || {
                    for i in 0..per {
                        // Mix single- and cross-shard commits.
                        if (t + i) % 2 == 0 {
                            stm.atomic(|tx| tx.inc(a, 1));
                        } else {
                            stm.atomic(|tx| {
                                tx.inc(a, 1)?;
                                tx.inc(b, 1)
                            });
                        }
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            assert_eq!(stm.read_now(a), threads * per, "{shards} shards");
            assert_eq!(stm.read_now(b), threads * per / 2, "{shards} shards");
        }
    }

    #[test]
    fn concurrent_increments_preserve_sum() {
        for alg in Algorithm::ALL {
            let stm =
                std::sync::Arc::new(Stm::new(StmConfig::new(alg).heap_words(64).orec_count(64)));
            let a = stm.alloc_cell(0i64);
            let threads = 4i64;
            let per = 200i64;
            let mut joins = Vec::new();
            for _ in 0..threads {
                let stm = stm.clone();
                joins.push(std::thread::spawn(move || {
                    for _ in 0..per {
                        stm.atomic(|tx| tx.inc(a, 1));
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            assert_eq!(stm.read_now(a), threads * per, "{alg}");
            assert_eq!(stm.stats().commits, (threads * per) as u64, "{alg}");
        }
    }

    #[test]
    fn hot_swap_mid_run_preserves_sum() {
        // Worker threads increment two cells while a switcher thread
        // cycles the runtime through every engine family. Every commit
        // must land in exactly one engine era; the final sum proves no
        // increment was lost or double-applied across a handoff.
        let stm = std::sync::Arc::new(Stm::new(
            StmConfig::new(Algorithm::SNOrec)
                .heap_words(64)
                .orec_count(64)
                .clock_shards(4),
        ));
        let a = stm.alloc_cell(0i64);
        let b = stm.alloc_cell(0i64);
        let threads = 4i64;
        let per = 300i64;
        let mut joins = Vec::new();
        for _ in 0..threads {
            let stm = stm.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..per {
                    stm.atomic(|tx| {
                        tx.inc(a, 1)?;
                        if i % 2 == 0 {
                            let v = tx.read(b)?;
                            tx.write(b, v + 1)?;
                        }
                        Ok(())
                    });
                }
            }));
        }
        // Starts sharded S-NOrec (clock_shards > 1); every hop below
        // changes mode, including the wrap-around, so each of the 18
        // switch_to calls drains and republishes.
        let cycle = [
            Mode::new(Algorithm::STl2),
            Mode::sharded(Algorithm::SNOrec),
            Mode::new(Algorithm::NOrec),
            Mode::sharded(Algorithm::NOrec),
            Mode::new(Algorithm::Tl2),
            Mode::new(Algorithm::SNOrec),
        ];
        let switcher = {
            let stm = stm.clone();
            std::thread::spawn(move || {
                for target in cycle.into_iter().cycle().take(18) {
                    stm.switch_to(target).unwrap();
                    std::thread::yield_now();
                }
            })
        };
        for j in joins {
            j.join().unwrap();
        }
        switcher.join().unwrap();
        assert_eq!(stm.read_now(a), threads * per);
        assert_eq!(stm.read_now(b), threads * per / 2);
        assert_eq!(stm.stats().commits, (threads * per) as u64);
        assert_eq!(stm.switch_count(), 18);
    }

    #[test]
    fn switch_to_rejects_unavailable_mode() {
        let stm = Stm::new(StmConfig::new(Algorithm::SNOrec).heap_words(64));
        let err = stm.switch_to(Mode::sharded(Algorithm::SNOrec)).unwrap_err();
        assert_eq!(
            err,
            SwitchError::Unavailable(Mode::sharded(Algorithm::SNOrec))
        );
        // The runtime is untouched by a rejected switch.
        assert_eq!(stm.mode(), Mode::new(Algorithm::SNOrec));
        assert_eq!(stm.switch_count(), 0);
        // A no-op switch to the current mode succeeds without draining.
        let report = stm.switch_to(Mode::new(Algorithm::SNOrec)).unwrap();
        assert!(!report.changed());
        assert_eq!(stm.switch_count(), 0);
    }

    #[test]
    fn adapt_tick_switches_under_write_wide_profile() {
        // A multi-shard runtime starts on the sharded clock. A
        // write-wide profile (Bank-like: every commit touches many
        // words, so a sharded commit pays the multi-shard acquisition
        // on each one) makes the global clock cheaper; one controller
        // tick over the observed window should move the runtime there.
        let policy = crate::adapt::AdaptPolicy {
            min_commits: 32,
            dwell_ticks: 0,
            ..crate::adapt::AdaptPolicy::default()
        };
        let stm = Stm::new(
            StmConfig::new(Algorithm::SNOrec)
                .heap_words(256)
                .clock_shards(8)
                .adaptive(policy),
        );
        assert_eq!(stm.mode(), Mode::sharded(Algorithm::SNOrec));
        let arr: Vec<_> = (0..16).map(|_| stm.alloc_cell(1i64)).collect();
        for _ in 0..200 {
            stm.atomic(|tx| {
                for &c in &arr {
                    let v = tx.read(c)?;
                    tx.write(c, v + 1)?;
                }
                Ok(())
            });
        }
        let report = stm.adapt_tick();
        assert!(report.is_some_and(|r| r.changed()), "expected a switch");
        assert_eq!(stm.mode(), Mode::new(Algorithm::SNOrec));
        assert_eq!(stm.switch_count(), 1);
        // Semanticity is preserved by adaptation: still the S-family.
        assert!(stm.mode().algorithm.is_semantic());
        // A second tick right after: the window is near-empty, stay put.
        assert!(stm.adapt_tick().is_none());
    }
}
