//! `semlint`: semantic-misuse diagnostics for IR programs.
//!
//! The paper's semantic builtins shift work from the STM runtime to the
//! compiler — and with that shift comes a new class of *static* misuse
//! that a runtime can no longer catch. This module checks for them on
//! whole functions, using the [`crate::analysis`] framework:
//!
//! | rule | severity | meaning |
//! |-------|---------|---------|
//! | SL000 | error   | the strict IR verifier rejected the function |
//! | SL001 | error   | transactional read of an address after `_ITM_SW` in the same region (the deferred semantic increment is not forwarded to reads) |
//! | SL002 | warning | non-transactional access to an address also accessed inside an atomic region (privatization hazard) |
//! | SL003 | info    | a `cmp`/`inc` pattern was *almost* promotable; reports why the matcher declined |
//! | SL004 | warning | duplicate transactional load of the same address with no intervening write (pays a second validation for the same value) |
//! | SL005 | warning | a register definition whose value is never used (dead store) |
//!
//! Diagnostics carry the instruction position and, when the function
//! came from [`crate::parser::parse_function_spanned`], the source
//! line/column. Only `error`-severity findings should fail a build;
//! `warning`s describe performance or robustness smells the `tm_mark` /
//! `tm_optimize` pipeline usually removes.

use crate::analysis::{verify, Cfg, CmpMatch, Decline, Liveness, PatternCtx, Pos, ReachingDefs};
use crate::ir::{Function, Inst, Operand};
use crate::parser::{SourceMap, Span};

/// How bad a finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Definitely wrong; `semlint` exits nonzero.
    Error,
    /// Suspicious or wasteful, but executable.
    Warning,
    /// An observation (e.g. a missed-promotion explanation).
    Info,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`SL000`..`SL005`).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Function the finding is in.
    pub func: String,
    /// Instruction position, when attributable.
    pub pos: Option<Pos>,
    /// Source span, when the function carries a [`SourceMap`].
    pub span: Option<Span>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Render as `file:line:col: severity[RULE] message` (falling back
    /// to block/instruction coordinates without a span).
    pub fn render(&self, file: &str) -> String {
        match (self.span, self.pos) {
            (Some(s), _) => format!(
                "{file}:{}:{}: {}[{}] {}",
                s.line, s.col, self.severity, self.rule, self.message
            ),
            (None, Some((b, i))) => format!(
                "{file}: {} (block {b}, inst {i}): {}[{}] {}",
                self.func, self.severity, self.rule, self.message
            ),
            (None, None) => format!(
                "{file}: {}: {}[{}] {}",
                self.func, self.severity, self.rule, self.message
            ),
        }
    }
}

/// Rule catalogue: `(id, severity, summary)` — also printed by
/// `semlint --rules`.
pub const RULES: &[(&str, Severity, &str)] = &[
    (
        "SL000",
        Severity::Error,
        "function rejected by the strict IR verifier",
    ),
    (
        "SL001",
        Severity::Error,
        "transactional read of an address after _ITM_SW in the same atomic region",
    ),
    (
        "SL002",
        Severity::Warning,
        "non-transactional access to an address also accessed inside an atomic region",
    ),
    (
        "SL003",
        Severity::Info,
        "cmp/inc pattern close to promotable; explains why the matcher declined",
    ),
    (
        "SL004",
        Severity::Warning,
        "duplicate transactional load of the same address with no intervening write",
    ),
    (
        "SL005",
        Severity::Warning,
        "register definition whose value is never used (dead store)",
    ),
];

/// The address operands a barrier instruction dereferences.
fn addresses(inst: &Inst) -> Vec<Operand> {
    match *inst {
        Inst::TmLoad { addr, .. }
        | Inst::TmStore { addr, .. }
        | Inst::TmCmpVal { addr, .. }
        | Inst::TmInc { addr, .. } => vec![addr],
        Inst::TmCmpAddr { a, b, .. } => vec![a, b],
        _ => vec![],
    }
}

fn is_mem_read(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::TmLoad { .. } | Inst::TmCmpVal { .. } | Inst::TmCmpAddr { .. }
    )
}

/// Lint one function. Pass the [`SourceMap`] from
/// [`crate::parser::parse_function_spanned`] to get `line:col` spans on
/// the diagnostics; `None` falls back to block/instruction coordinates.
pub fn lint_function(func: &Function, map: Option<&SourceMap>) -> Vec<Diagnostic> {
    let spanned =
        |pos: Option<Pos>, rule: &'static str, severity: Severity, message: String| Diagnostic {
            rule,
            severity,
            func: func.name.clone(),
            pos,
            span: pos.and_then(|(b, i)| map.and_then(|m| m.span(b, i))),
            message,
        };

    // SL000: everything below assumes a verified function.
    if let Err(e) = verify(func) {
        let pos = e.block.map(|b| (b, e.inst.unwrap_or(0)));
        return vec![spanned(
            pos,
            "SL000",
            Severity::Error,
            format!("verifier: {}", e.message),
        )];
    }

    let cfg = Cfg::new(func);
    let rd = ReachingDefs::compute(func, &cfg);
    let live = Liveness::compute(func, &cfg);
    let cx = PatternCtx::new(func, &cfg, &rd);
    let depth = region_depths(func, &cfg);
    let mut out: Vec<Diagnostic> = Vec::new();

    // Block-level may-reachability through at least one edge.
    let n = func.blocks.len();
    let mut reach = vec![vec![false; n]; n];
    for (b, row) in reach.iter_mut().enumerate() {
        let mut stack = cfg.succs[b].clone();
        while let Some(s) = stack.pop() {
            if !row[s] {
                row[s] = true;
                stack.extend(cfg.succs[s].iter());
            }
        }
    }
    let may_follow = |p: Pos, q: Pos| (p.0 == q.0 && q.1 > p.1) || reach[p.0][q.0];

    // Every memory access: (position, instruction).
    let accesses: Vec<Pos> = func
        .blocks
        .iter()
        .enumerate()
        .flat_map(|(b, blk)| {
            blk.insts
                .iter()
                .enumerate()
                .filter(|(_, inst)| !addresses(inst).is_empty())
                .map(move |(i, _)| (b, i))
        })
        .collect();
    let inst_at = |p: Pos| &func.blocks[p.0].insts[p.1];
    let same_addr = |p: Pos, q: Pos| {
        addresses(inst_at(p)).iter().any(|&ap| {
            addresses(inst_at(q))
                .iter()
                .any(|&aq| rd.operand_identical(ap, p, aq, q))
        })
    };

    // SL001: a deferred semantic increment followed by a transactional
    // read of the same address in the same region. `_ITM_SW` adds the
    // delta to the *semantic write set*; a later read is served from
    // memory and silently misses the increment.
    for &p in &accesses {
        if !matches!(inst_at(p), Inst::TmInc { .. }) || depth[p.0][p.1] == 0 {
            continue;
        }
        for &q in &accesses {
            if q != p
                && is_mem_read(inst_at(q))
                && depth[q.0][q.1] > 0
                && may_follow(p, q)
                && same_addr(p, q)
            {
                out.push(spanned(
                    Some(q),
                    "SL001",
                    Severity::Error,
                    format!(
                        "transactional read of an address incremented by _ITM_SW at \
                         ({}, {}) in the same atomic region; the deferred increment \
                         is not visible to reads",
                        p.0, p.1
                    ),
                ));
            }
        }
    }

    // SL002: the same address is touched both inside an atomic region
    // and outside one — the outside access races with other
    // transactions (privatization hazard).
    for &q in &accesses {
        if depth[q.0][q.1] != 0 {
            continue;
        }
        if let Some(&p) = accesses
            .iter()
            .find(|&&p| depth[p.0][p.1] > 0 && same_addr(p, q))
        {
            out.push(spanned(
                Some(q),
                "SL002",
                Severity::Warning,
                format!(
                    "non-transactional access to an address also accessed inside an \
                     atomic region (at ({}, {})); concurrent transactions may race \
                     with it",
                    p.0, p.1
                ),
            ));
        }
    }

    // SL003: almost-promotable patterns, with the matcher's reason.
    // `NotALoad` sides are ordinary arithmetic, not missed opportunities.
    let interesting = |d: Decline| !matches!(d, Decline::NotALoad);
    for (b, blk) in func.blocks.iter().enumerate() {
        for (i, inst) in blk.insts.iter().enumerate() {
            match inst {
                Inst::Cmp { .. } => {
                    if let CmpMatch::No { a, b: rb } = cx.match_cmp((b, i)) {
                        for d in [a, rb].into_iter().filter(|&d| interesting(d)) {
                            out.push(spanned(
                                Some((b, i)),
                                "SL003",
                                Severity::Info,
                                format!(
                                    "comparison not promoted to a semantic builtin: {}",
                                    d.reason()
                                ),
                            ));
                        }
                    }
                }
                Inst::TmStore { .. } => {
                    if let Err(d) = cx.match_inc((b, i)) {
                        if interesting(d) {
                            out.push(spanned(
                                Some((b, i)),
                                "SL003",
                                Severity::Info,
                                format!("store not promoted to _ITM_SW: {}", d.reason()),
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // SL004: two loads of the identical address with nothing in between
    // that could change the value — the second pays a second barrier
    // (and, on NOrec, a second validation) for the same word.
    for &p in &accesses {
        let Inst::TmLoad { addr: ap, .. } = *inst_at(p) else {
            continue;
        };
        for &q in &accesses {
            let Inst::TmLoad { addr: aq, .. } = *inst_at(q) else {
                continue;
            };
            if q == p || !may_follow(p, q) || !rd.operand_identical(ap, p, aq, q) {
                continue;
            }
            let protect: Vec<_> = ap.reg().into_iter().collect();
            if cx.clean_path(p, q, &protect).is_ok() {
                out.push(spanned(
                    Some(q),
                    "SL004",
                    Severity::Warning,
                    format!(
                        "duplicate transactional load of the same address (first \
                         loaded at ({}, {})); tm_mark/tm_optimize would fold this",
                        p.0, p.1
                    ),
                ));
            }
        }
    }

    // SL005: definitions whose value is never used. Mirrors what
    // tm_optimize removes, but also covers side-effect-free ALU results.
    for (b, blk) in func.blocks.iter().enumerate() {
        let mut live_after = live.live_out[b].clone();
        let mut uses = Vec::new();
        let mut dead: Vec<(usize, u32)> = Vec::new();
        for (i, inst) in blk.insts.iter().enumerate().rev() {
            if let Some(d) = inst.def() {
                let pure = matches!(
                    inst,
                    Inst::Mov { .. }
                        | Inst::Bin { .. }
                        | Inst::Cmp { .. }
                        | Inst::Not { .. }
                        | Inst::TmLoad { .. }
                );
                if pure && !live_after[d as usize] {
                    dead.push((i, d));
                }
                live_after[d as usize] = false;
            }
            uses.clear();
            inst.uses(&mut uses);
            for &r in &uses {
                live_after[r as usize] = true;
            }
        }
        for (i, d) in dead.into_iter().rev() {
            out.push(spanned(
                Some((b, i)),
                "SL005",
                Severity::Warning,
                format!("result r{d} is never used (dead store)"),
            ));
        }
    }

    out.sort_by(|x, y| (x.pos, x.rule).cmp(&(y.pos, y.rule)));
    out.dedup();
    out
}

/// Atomic-region depth before each instruction (the function is already
/// verified, so per-block entry depths are consistent).
fn region_depths(func: &Function, cfg: &Cfg) -> Vec<Vec<u32>> {
    let n = func.blocks.len();
    let mut depth_in: Vec<Option<u32>> = vec![None; n];
    depth_in[0] = Some(0);
    let mut work = vec![0usize];
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    while let Some(b) = work.pop() {
        let mut depth = depth_in[b].expect("queued blocks have a depth");
        let mut per_inst = Vec::with_capacity(func.blocks[b].insts.len());
        for inst in &func.blocks[b].insts {
            per_inst.push(depth);
            match inst {
                Inst::TmBegin => depth += 1,
                Inst::TmEnd => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        out[b] = per_inst;
        for &s in &cfg.succs[b] {
            if depth_in[s].is_none() {
                depth_in[s] = Some(depth);
                work.push(s);
            }
        }
    }
    // Unreachable blocks: treat as depth 0.
    for (b, blk) in func.blocks.iter().enumerate() {
        if out[b].is_empty() && !blk.insts.is_empty() {
            out[b] = vec![0; blk.insts.len()];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_function, parse_function_spanned};

    fn lint_src(src: &str) -> Vec<Diagnostic> {
        lint_function(&parse_function(src).unwrap(), None)
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn read_after_sw_is_an_error() {
        let d = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  tminc r0, 1
  r1 = tmload r0
  tmend
  ret r1
}
",
        );
        assert!(rules_of(&d).contains(&"SL001"), "{d:?}");
        let sl1 = d.iter().find(|d| d.rule == "SL001").unwrap();
        assert_eq!(sl1.severity, Severity::Error);
        assert_eq!(sl1.pos, Some((0, 2)));
    }

    #[test]
    fn read_of_other_address_after_sw_is_fine() {
        let d = lint_src(
            r"
func f(2) {
entry:
  tmbegin
  tminc r0, 1
  r2 = tmload r1
  tmend
  ret r2
}
",
        );
        assert!(!rules_of(&d).contains(&"SL001"), "{d:?}");
    }

    #[test]
    fn nontransactional_access_warns() {
        // The tail re-reads r0 outside the region (classic privatization
        // shape).
        let d = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  tmstore r0, 1
  tmend
  r2 = tmload r0
  ret r2
}
",
        );
        let sl2: Vec<_> = d.iter().filter(|d| d.rule == "SL002").collect();
        assert_eq!(sl2.len(), 1, "{d:?}");
        assert_eq!(sl2[0].pos, Some((0, 4)));
        assert_eq!(sl2[0].severity, Severity::Warning);
    }

    #[test]
    fn missed_promotion_reports_reason() {
        // Intervening store blocks the cmp promotion; SL003 explains.
        let d = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  tmstore r0, 99
  r2 = cmp.gt r1, 0
  tmend
  ret r2
}
",
        );
        let sl3: Vec<_> = d.iter().filter(|d| d.rule == "SL003").collect();
        assert_eq!(sl3.len(), 1, "{d:?}");
        assert!(sl3[0].message.contains("write may execute"), "{sl3:?}");
        assert_eq!(sl3[0].severity, Severity::Info);
    }

    #[test]
    fn duplicate_load_warns_and_intervening_store_suppresses() {
        let dup = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  r2 = tmload r0
  r3 = add r1, r2
  tmend
  ret r3
}
",
        );
        let sl4: Vec<_> = dup.iter().filter(|d| d.rule == "SL004").collect();
        assert_eq!(sl4.len(), 1, "{dup:?}");
        assert_eq!(sl4[0].pos, Some((0, 2)));

        let stored = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  tmstore r0, 7
  r2 = tmload r0
  r3 = add r1, r2
  tmend
  ret r3
}
",
        );
        assert!(!rules_of(&stored).contains(&"SL004"), "{stored:?}");
    }

    #[test]
    fn dead_definition_warns() {
        let d = lint_src(
            r"
func f(1) {
entry:
  r1 = add r0, 1
  ret r0
}
",
        );
        let sl5: Vec<_> = d.iter().filter(|d| d.rule == "SL005").collect();
        assert_eq!(sl5.len(), 1, "{d:?}");
        assert!(sl5[0].message.contains("r1"), "{sl5:?}");
    }

    #[test]
    fn invalid_function_reports_verifier_error_only() {
        let d = lint_src("func f(0) {\nentry:\n  tmbegin\n  ret\n}\n");
        assert_eq!(rules_of(&d), vec!["SL000"], "{d:?}");
        assert_eq!(d[0].severity, Severity::Error);
    }

    #[test]
    fn diagnostics_carry_source_spans() {
        let src = "func f(1) {\nentry:\n  tmbegin\n  tminc r0, 1\n  r1 = tmload r0\n  tmend\n  ret r1\n}\n";
        let (f, map) = parse_function_spanned(src).unwrap();
        let d = lint_function(&f, Some(&map));
        let sl1 = d.iter().find(|d| d.rule == "SL001").unwrap();
        let span = sl1.span.expect("span present");
        assert_eq!(span.line, 5);
        let rendered = sl1.render("x.ir");
        assert!(rendered.starts_with("x.ir:5:3: error[SL001]"), "{rendered}");
    }

    #[test]
    fn builtin_programs_have_no_errors() {
        for (path, f) in crate::programs::all() {
            let diags = lint_function(&f, None);
            assert!(
                diags.iter().all(|d| d.severity != Severity::Error),
                "{path}: {diags:?}"
            );
        }
    }

    #[test]
    fn cross_block_guard_lints_clean() {
        let d = lint_function(&crate::programs::cross_block_guard(), None);
        assert!(d.is_empty(), "{d:?}");
    }
}
