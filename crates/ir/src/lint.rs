//! `semlint`: semantic-misuse diagnostics for IR programs.
//!
//! The paper's semantic builtins shift work from the STM runtime to the
//! compiler — and with that shift comes a new class of *static* misuse
//! that a runtime can no longer catch. This module checks for them on
//! whole functions, using the [`crate::analysis`] framework:
//!
//! Each rule has a one-defect seed fixture under `programs/lintcases/`
//! (the example column; asserted exact by `tests/lintcases.rs`):
//!
//! | rule | severity | meaning | example |
//! |-------|---------|---------|---------|
//! | SL000 | error   | the strict IR verifier rejected the function | `programs/lintcases/sl000.ir:8:3` |
//! | SL001 | error   | transactional read of an address after `_ITM_SW` in the same region (the deferred semantic increment is not forwarded to reads) | `programs/lintcases/sl001.ir:10:3` |
//! | SL002 | warning | non-transactional access to an address also accessed inside an atomic region (privatization hazard) | `programs/lintcases/sl002.ir:12:3` |
//! | SL003 | info    | a `cmp`/`inc` pattern was *almost* promotable; reports why the matcher declined | `programs/lintcases/sl003.ir:10:3` |
//! | SL004 | warning | duplicate transactional load of the same address with no intervening write (downgraded to info when the pass pipeline folds it) | `programs/lintcases/sl004.ir:10:3` |
//! | SL005 | warning | a register definition whose value is never used (dead store) | `programs/lintcases/sl005.ir:11:3` |
//! | SL006 | warning | two distinct atomic regions statically guaranteed to collide on a raw, non-reducible access | `programs/lintcases/sl006.ir:12:3` |
//! | SL007 | warning | a comparison whose outcome value-range analysis decides at compile time | `programs/lintcases/sl007.ir:12:3` |
//! | SL008 | info    | a range-widened `tmcmp` promotion is provable but declined: the right-hand side is a register with a provably constant value, not an immediate | `programs/lintcases/sl008.ir:16:3` |
//! | SL009 | info    | an atomic region that provably never writes (read-only fast-path candidate) | `programs/lintcases/sl009.ir:7:3` |
//! | SL010 | warning | an address loaded inside an atomic region dereferenced after the region ended (escaped-pointer hazard) | `programs/lintcases/sl010.ir:12:3` |
//! | SL011 | error   | a semantic builtin (`tmcmp`/`tmcmp2`/`tminc`) outside any atomic region | `programs/lintcases/sl011.ir:7:3` |
//!
//! Rules SL006–SL009 drive off the [`crate::analysis::absint`]
//! abstract interpreter: the conflict matrix (SL006, SL009), interval
//! queries (SL007) and the range-widening candidate scan (SL008).
//!
//! Diagnostics carry the instruction position and, when the function
//! came from [`crate::parser::parse_function_spanned`], the source
//! line/column. Only `error`-severity findings should fail a build;
//! `warning`s describe performance or robustness smells the `tm_mark` /
//! `tm_optimize` pipeline usually removes.

use crate::analysis::absint::Overlap;
use crate::analysis::absint::{widen_candidates, WidenCandidate};
use crate::analysis::{
    verify, AbsInt, Cfg, CmpMatch, ConflictAnalysis, Decline, Interval, Liveness, PatternCtx, Pos,
    ReachingDefs, Regions, ValueOrigin,
};
use crate::ir::{Function, Inst, Operand};
use crate::parser::{SourceMap, Span};

/// How bad a finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Definitely wrong; `semlint` exits nonzero.
    Error,
    /// Suspicious or wasteful, but executable.
    Warning,
    /// An observation (e.g. a missed-promotion explanation).
    Info,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`SL000`..`SL011`).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Function the finding is in.
    pub func: String,
    /// Instruction position, when attributable.
    pub pos: Option<Pos>,
    /// Source span, when the function carries a [`SourceMap`].
    pub span: Option<Span>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Render as `file:line:col: severity[RULE] message` (falling back
    /// to block/instruction coordinates without a span).
    pub fn render(&self, file: &str) -> String {
        match (self.span, self.pos) {
            (Some(s), _) => format!(
                "{file}:{}:{}: {}[{}] {}",
                s.line, s.col, self.severity, self.rule, self.message
            ),
            (None, Some((b, i))) => format!(
                "{file}: {} (block {b}, inst {i}): {}[{}] {}",
                self.func, self.severity, self.rule, self.message
            ),
            (None, None) => format!(
                "{file}: {}: {}[{}] {}",
                self.func, self.severity, self.rule, self.message
            ),
        }
    }
}

/// Rule catalogue: `(id, severity, summary)` — also printed by
/// `semlint --rules`.
pub const RULES: &[(&str, Severity, &str)] = &[
    (
        "SL000",
        Severity::Error,
        "function rejected by the strict IR verifier",
    ),
    (
        "SL001",
        Severity::Error,
        "transactional read of an address after _ITM_SW in the same atomic region",
    ),
    (
        "SL002",
        Severity::Warning,
        "non-transactional access to an address also accessed inside an atomic region",
    ),
    (
        "SL003",
        Severity::Info,
        "cmp/inc pattern close to promotable; explains why the matcher declined",
    ),
    (
        "SL004",
        Severity::Warning,
        "duplicate transactional load of the same address with no intervening write",
    ),
    (
        "SL005",
        Severity::Warning,
        "register definition whose value is never used (dead store)",
    ),
    (
        "SL006",
        Severity::Warning,
        "two distinct atomic regions statically guaranteed to collide on a raw access",
    ),
    (
        "SL007",
        Severity::Warning,
        "comparison whose outcome value-range analysis decides at compile time",
    ),
    (
        "SL008",
        Severity::Info,
        "provable range-widened tmcmp promotion declined: rhs is a constant-valued register, not an immediate",
    ),
    (
        "SL009",
        Severity::Info,
        "atomic region that provably never writes (read-only fast-path candidate)",
    ),
    (
        "SL010",
        Severity::Warning,
        "address loaded inside an atomic region dereferenced after the region ended",
    ),
    (
        "SL011",
        Severity::Error,
        "semantic builtin (tmcmp/tmcmp2/tminc) outside any atomic region",
    ),
];

/// The address operands a barrier instruction dereferences.
fn addresses(inst: &Inst) -> Vec<Operand> {
    match *inst {
        Inst::TmLoad { addr, .. }
        | Inst::TmStore { addr, .. }
        | Inst::TmCmpVal { addr, .. }
        | Inst::TmInc { addr, .. } => vec![addr],
        Inst::TmCmpAddr { a, b, .. } => vec![a, b],
        _ => vec![],
    }
}

fn is_mem_read(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::TmLoad { .. } | Inst::TmCmpVal { .. } | Inst::TmCmpAddr { .. }
    )
}

/// Lint one function. Pass the [`SourceMap`] from
/// [`crate::parser::parse_function_spanned`] to get `line:col` spans on
/// the diagnostics; `None` falls back to block/instruction coordinates.
pub fn lint_function(func: &Function, map: Option<&SourceMap>) -> Vec<Diagnostic> {
    let spanned =
        |pos: Option<Pos>, rule: &'static str, severity: Severity, message: String| Diagnostic {
            rule,
            severity,
            func: func.name.clone(),
            pos,
            span: pos.and_then(|(b, i)| map.and_then(|m| m.span(b, i))),
            message,
        };

    // SL000: everything below assumes a verified function.
    if let Err(e) = verify(func) {
        let pos = e.block.map(|b| (b, e.inst.unwrap_or(0)));
        return vec![spanned(
            pos,
            "SL000",
            Severity::Error,
            format!("verifier: {}", e.message),
        )];
    }

    let cfg = Cfg::new(func);
    let rd = ReachingDefs::compute(func, &cfg);
    let live = Liveness::compute(func, &cfg);
    let cx = PatternCtx::new(func, &cfg, &rd);
    let absint = AbsInt::compute(func, &cfg);
    let regions = Regions::compute(func, &cfg);
    let conflicts = ConflictAnalysis::compute(func, &cfg, &absint, &regions);
    let depth = |p: Pos| regions.depth(p);
    let mut out: Vec<Diagnostic> = Vec::new();

    // Block-level may-reachability through at least one edge.
    let n = func.blocks.len();
    let mut reach = vec![vec![false; n]; n];
    for (b, row) in reach.iter_mut().enumerate() {
        let mut stack = cfg.succs[b].clone();
        while let Some(s) = stack.pop() {
            if !row[s] {
                row[s] = true;
                stack.extend(cfg.succs[s].iter());
            }
        }
    }
    let may_follow = |p: Pos, q: Pos| (p.0 == q.0 && q.1 > p.1) || reach[p.0][q.0];

    // Every memory access: (position, instruction).
    let accesses: Vec<Pos> = func
        .blocks
        .iter()
        .enumerate()
        .flat_map(|(b, blk)| {
            blk.insts
                .iter()
                .enumerate()
                .filter(|(_, inst)| !addresses(inst).is_empty())
                .map(move |(i, _)| (b, i))
        })
        .collect();
    let inst_at = |p: Pos| &func.blocks[p.0].insts[p.1];
    // Address identity: same register with identical reaching sets, OR
    // the same resolved value origin — the latter sees through `mov`
    // copy chains, which register-name identity cannot.
    let same_addr = |p: Pos, q: Pos| {
        addresses(inst_at(p)).iter().any(|&ap| {
            addresses(inst_at(q)).iter().any(|&aq| {
                rd.operand_identical(ap, p, aq, q) || {
                    let oa = rd.operand_origin(func, ap, p);
                    oa != ValueOrigin::Unknown && oa == rd.operand_origin(func, aq, q)
                }
            })
        })
    };

    // SL001: a deferred semantic increment followed by a transactional
    // read of the same address in the same region. `_ITM_SW` adds the
    // delta to the *semantic write set*; a later read is served from
    // memory and silently misses the increment.
    for &p in &accesses {
        if !matches!(inst_at(p), Inst::TmInc { .. }) || depth(p) == 0 {
            continue;
        }
        for &q in &accesses {
            if q != p
                && is_mem_read(inst_at(q))
                && depth(q) > 0
                && may_follow(p, q)
                && same_addr(p, q)
            {
                out.push(spanned(
                    Some(q),
                    "SL001",
                    Severity::Error,
                    format!(
                        "transactional read of an address incremented by _ITM_SW at \
                         ({}, {}) in the same atomic region; the deferred increment \
                         is not visible to reads",
                        p.0, p.1
                    ),
                ));
            }
        }
    }

    // SL002: the same address is touched both inside an atomic region
    // and outside one — the outside access races with other
    // transactions (privatization hazard).
    for &q in &accesses {
        if depth(q) != 0 {
            continue;
        }
        if let Some(&p) = accesses.iter().find(|&&p| depth(p) > 0 && same_addr(p, q)) {
            out.push(spanned(
                Some(q),
                "SL002",
                Severity::Warning,
                format!(
                    "non-transactional access to an address also accessed inside an \
                     atomic region (at ({}, {})); concurrent transactions may race \
                     with it",
                    p.0, p.1
                ),
            ));
        }
    }

    // SL003: almost-promotable patterns, with the matcher's reason.
    // `NotALoad` sides are ordinary arithmetic, not missed opportunities.
    let interesting = |d: Decline| !matches!(d, Decline::NotALoad);
    for (b, blk) in func.blocks.iter().enumerate() {
        for (i, inst) in blk.insts.iter().enumerate() {
            match inst {
                Inst::Cmp { .. } => {
                    if let CmpMatch::No { a, b: rb } = cx.match_cmp((b, i)) {
                        for d in [a, rb].into_iter().filter(|&d| interesting(d)) {
                            out.push(spanned(
                                Some((b, i)),
                                "SL003",
                                Severity::Info,
                                format!(
                                    "comparison not promoted to a semantic builtin: {}",
                                    d.reason()
                                ),
                            ));
                        }
                    }
                }
                Inst::TmStore { .. } => {
                    if let Err(d) = cx.match_inc((b, i)) {
                        if interesting(d) {
                            out.push(spanned(
                                Some((b, i)),
                                "SL003",
                                Severity::Info,
                                format!("store not promoted to _ITM_SW: {}", d.reason()),
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // SL004: two loads of the identical address with nothing in between
    // that could change the value — the second pays a second barrier
    // (and, on NOrec, a second validation) for the same word. A finding
    // the pass pipeline provably folds away is only informational; one
    // that *survives* the pipeline is a real extra validation and stays
    // a warning.
    let dups = duplicate_load_pairs(func, &cfg, &rd, &cx);
    if !dups.is_empty() {
        let folded = {
            let mut opt = func.clone();
            let _ = crate::passes::run_tm_passes(&mut opt);
            let ocfg = Cfg::new(&opt);
            let ord = ReachingDefs::compute(&opt, &ocfg);
            let ocx = PatternCtx::new(&opt, &ocfg, &ord);
            duplicate_load_pairs(&opt, &ocfg, &ord, &ocx).is_empty()
        };
        for (p, q) in dups {
            let (severity, verdict) = if folded {
                (
                    Severity::Info,
                    "the tm_mark/tm_optimize pipeline folds this",
                )
            } else {
                (Severity::Warning, "the pass pipeline cannot fold this")
            };
            out.push(spanned(
                Some(q),
                "SL004",
                severity,
                format!(
                    "duplicate transactional load of the same address (first \
                     loaded at ({}, {})); {verdict}",
                    p.0, p.1
                ),
            ));
        }
    }

    // SL005: definitions whose value is never used. Mirrors what
    // tm_optimize removes, but also covers side-effect-free ALU results.
    for (b, blk) in func.blocks.iter().enumerate() {
        let mut live_after = live.live_out[b].clone();
        let mut uses = Vec::new();
        let mut dead: Vec<(usize, u32)> = Vec::new();
        for (i, inst) in blk.insts.iter().enumerate().rev() {
            if let Some(d) = inst.def() {
                let pure = matches!(
                    inst,
                    Inst::Mov { .. }
                        | Inst::Bin { .. }
                        | Inst::Cmp { .. }
                        | Inst::Not { .. }
                        | Inst::TmLoad { .. }
                );
                if pure && !live_after[d as usize] {
                    dead.push((i, d));
                }
                live_after[d as usize] = false;
            }
            uses.clear();
            inst.uses(&mut uses);
            for &r in &uses {
                live_after[r as usize] = true;
            }
        }
        for (i, d) in dead.into_iter().rev() {
            out.push(spanned(
                Some((b, i)),
                "SL005",
                Severity::Warning,
                format!("result r{d} is never used (dead store)"),
            ));
        }
    }

    // SL006: two distinct regions in this function statically
    // guaranteed to collide on a raw access when two threads run them
    // concurrently — neither byte nor semantic validation can ride
    // through it, so one side always aborts.
    for i in 0..conflicts.summaries.len() {
        for j in i + 1..conflicts.summaries.len() {
            let Some(c) = conflicts.conflict(i, j) else {
                continue;
            };
            if c.overlap == Overlap::Must && !c.reducible {
                out.push(spanned(
                    Some(c.witness.1),
                    "SL006",
                    Severity::Warning,
                    format!(
                        "atomic regions R{i} and R{j} are statically guaranteed \
                         to conflict: this access collides with ({}, {}) on the \
                         same word and is not semantically reducible",
                        c.witness.0 .0, c.witness.0 .1
                    ),
                ));
            }
        }
    }

    // SL007: a comparison whose outcome the value ranges already
    // decide — the check is dead weight, and a guard that can never
    // fire usually hides a logic error.
    let show = |iv: Interval| {
        if iv == Interval::TOP {
            "(-inf..inf)".to_string()
        } else {
            format!("[{}..{}]", iv.lo, iv.hi)
        }
    };
    for (b, blk) in func.blocks.iter().enumerate() {
        for (i, inst) in blk.insts.iter().enumerate() {
            let Inst::Cmp { op, a, b: rb, .. } = *inst else {
                continue;
            };
            if !absint.state_reachable((b, i)) {
                continue;
            }
            let va = absint.operand((b, i), a).range;
            let vb = absint.operand((b, i), rb).range;
            if let Some(outcome) = Interval::cmp_always(op, va, vb) {
                out.push(spanned(
                    Some((b, i)),
                    "SL007",
                    Severity::Warning,
                    format!(
                        "comparison is always {outcome} by value-range analysis \
                         (lhs in {}, rhs in {})",
                        show(va),
                        show(vb)
                    ),
                ));
            }
        }
    }

    // SL008: every proof obligation of the range-widened promotion
    // holds, but the compared-against side is a register — tm_widen
    // only bakes manifest immediates into the rewritten tmcmp.
    for cand in widen_candidates(func, &cfg, &rd, &absint, &regions) {
        let WidenCandidate::DeclinedSingleton {
            pos,
            load_at,
            c,
            witness,
        } = cand
        else {
            continue;
        };
        let k = witness.singleton().unwrap_or(witness.lo);
        out.push(spanned(
            Some(pos),
            "SL008",
            Severity::Info,
            format!(
                "range analysis proves this compare of load({}, {})+{c} is \
                 tmcmp-promotable (the right-hand register always holds {k}), \
                 but the rewrite needs an immediate; use {k} directly",
                load_at.0, load_at.1
            ),
        ));
    }

    // SL009: a region that provably never writes can take a read-only
    // fast path — no write-set bookkeeping, no deferred increments.
    for s in &conflicts.summaries {
        if s.is_read_only() {
            out.push(spanned(
                regions.begins(s.region).first().copied(),
                "SL009",
                Severity::Info,
                format!(
                    "atomic region R{} only reads and compares; eligible for a \
                     read-only fast path",
                    s.region
                ),
            ));
        }
    }

    // SL010: an address computed from a value loaded inside an atomic
    // region, dereferenced after the region ended — once the
    // transaction commits, nothing keeps the pointed-to word stable
    // (escaped-pointer hazard).
    for &q in &accesses {
        if depth(q) != 0 {
            continue;
        }
        for aq in addresses(inst_at(q)) {
            let ValueOrigin::Def(p) = rd.operand_origin(func, aq, q) else {
                continue;
            };
            if matches!(inst_at(p), Inst::TmLoad { .. }) && regions.region(p).is_some() {
                out.push(spanned(
                    Some(q),
                    "SL010",
                    Severity::Warning,
                    format!(
                        "dereferences an address loaded inside an atomic region \
                         (at ({}, {})) after that region ended; the pointed-to \
                         word is unprotected here",
                        p.0, p.1
                    ),
                ));
            }
        }
    }

    // SL011: a semantic builtin with no enclosing region. The verifier
    // allows plain loads/stores outside regions (they are ordinary
    // accesses), but tmcmp/tmcmp2/tminc have no transaction to attach
    // their deferred semantics to.
    for &q in &accesses {
        if depth(q) == 0
            && matches!(
                inst_at(q),
                Inst::TmInc { .. } | Inst::TmCmpVal { .. } | Inst::TmCmpAddr { .. }
            )
        {
            out.push(spanned(
                Some(q),
                "SL011",
                Severity::Error,
                "semantic builtin outside any atomic region; there is no \
                 transaction to defer the operation into"
                    .to_string(),
            ));
        }
    }

    out.sort_by(|x, y| (x.pos, x.rule).cmp(&(y.pos, y.rule)));
    out.dedup();
    out
}

/// All `(first, second)` pairs of transactional loads of the identical
/// address with a provably clean path between them (the SL004 shape).
fn duplicate_load_pairs(
    func: &Function,
    cfg: &Cfg,
    rd: &ReachingDefs,
    cx: &PatternCtx,
) -> Vec<(Pos, Pos)> {
    let n = func.blocks.len();
    let mut reach = vec![vec![false; n]; n];
    for (b, row) in reach.iter_mut().enumerate() {
        let mut stack = cfg.succs[b].clone();
        while let Some(s) = stack.pop() {
            if !row[s] {
                row[s] = true;
                stack.extend(cfg.succs[s].iter());
            }
        }
    }
    let may_follow = |p: Pos, q: Pos| (p.0 == q.0 && q.1 > p.1) || reach[p.0][q.0];
    let mut out = Vec::new();
    for (bp, blkp) in func.blocks.iter().enumerate() {
        for (ip, instp) in blkp.insts.iter().enumerate() {
            let Inst::TmLoad { addr: ap, .. } = *instp else {
                continue;
            };
            let p = (bp, ip);
            for (bq, blkq) in func.blocks.iter().enumerate() {
                for (iq, instq) in blkq.insts.iter().enumerate() {
                    let Inst::TmLoad { addr: aq, .. } = *instq else {
                        continue;
                    };
                    let q = (bq, iq);
                    if q == p || !may_follow(p, q) || !rd.operand_identical(ap, p, aq, q) {
                        continue;
                    }
                    let protect: Vec<_> = ap.reg().into_iter().collect();
                    if cx.clean_path(p, q, &protect).is_ok() {
                        out.push((p, q));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_function, parse_function_spanned};

    fn lint_src(src: &str) -> Vec<Diagnostic> {
        lint_function(&parse_function(src).unwrap(), None)
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn read_after_sw_is_an_error() {
        let d = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  tminc r0, 1
  r1 = tmload r0
  tmend
  ret r1
}
",
        );
        assert!(rules_of(&d).contains(&"SL001"), "{d:?}");
        let sl1 = d.iter().find(|d| d.rule == "SL001").unwrap();
        assert_eq!(sl1.severity, Severity::Error);
        assert_eq!(sl1.pos, Some((0, 2)));
    }

    #[test]
    fn read_of_other_address_after_sw_is_fine() {
        let d = lint_src(
            r"
func f(2) {
entry:
  tmbegin
  tminc r0, 1
  r2 = tmload r1
  tmend
  ret r2
}
",
        );
        assert!(!rules_of(&d).contains(&"SL001"), "{d:?}");
    }

    #[test]
    fn nontransactional_access_warns() {
        // The tail re-reads r0 outside the region (classic privatization
        // shape).
        let d = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  tmstore r0, 1
  tmend
  r2 = tmload r0
  ret r2
}
",
        );
        let sl2: Vec<_> = d.iter().filter(|d| d.rule == "SL002").collect();
        assert_eq!(sl2.len(), 1, "{d:?}");
        assert_eq!(sl2[0].pos, Some((0, 4)));
        assert_eq!(sl2[0].severity, Severity::Warning);
    }

    #[test]
    fn missed_promotion_reports_reason() {
        // Intervening store blocks the cmp promotion; SL003 explains.
        let d = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  tmstore r0, 99
  r2 = cmp.gt r1, 0
  tmend
  ret r2
}
",
        );
        let sl3: Vec<_> = d.iter().filter(|d| d.rule == "SL003").collect();
        assert_eq!(sl3.len(), 1, "{d:?}");
        assert!(sl3[0].message.contains("write may execute"), "{sl3:?}");
        assert_eq!(sl3[0].severity, Severity::Info);
    }

    #[test]
    fn duplicate_load_warns_and_intervening_store_suppresses() {
        let dup = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  r2 = tmload r0
  r3 = add r1, r2
  tmend
  ret r3
}
",
        );
        let sl4: Vec<_> = dup.iter().filter(|d| d.rule == "SL004").collect();
        assert_eq!(sl4.len(), 1, "{dup:?}");
        assert_eq!(sl4[0].pos, Some((0, 2)));

        let stored = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  tmstore r0, 7
  r2 = tmload r0
  r3 = add r1, r2
  tmend
  ret r3
}
",
        );
        assert!(!rules_of(&stored).contains(&"SL004"), "{stored:?}");
    }

    #[test]
    fn dead_definition_warns() {
        let d = lint_src(
            r"
func f(1) {
entry:
  r1 = add r0, 1
  ret r0
}
",
        );
        let sl5: Vec<_> = d.iter().filter(|d| d.rule == "SL005").collect();
        assert_eq!(sl5.len(), 1, "{d:?}");
        assert!(sl5[0].message.contains("r1"), "{sl5:?}");
    }

    #[test]
    fn invalid_function_reports_verifier_error_only() {
        let d = lint_src("func f(0) {\nentry:\n  tmbegin\n  ret\n}\n");
        assert_eq!(rules_of(&d), vec!["SL000"], "{d:?}");
        assert_eq!(d[0].severity, Severity::Error);
    }

    #[test]
    fn diagnostics_carry_source_spans() {
        let src = "func f(1) {\nentry:\n  tmbegin\n  tminc r0, 1\n  r1 = tmload r0\n  tmend\n  ret r1\n}\n";
        let (f, map) = parse_function_spanned(src).unwrap();
        let d = lint_function(&f, Some(&map));
        let sl1 = d.iter().find(|d| d.rule == "SL001").unwrap();
        let span = sl1.span.expect("span present");
        assert_eq!(span.line, 5);
        let rendered = sl1.render("x.ir");
        assert!(rendered.starts_with("x.ir:5:3: error[SL001]"), "{rendered}");
    }

    #[test]
    fn copied_address_still_trips_privatization_warning() {
        // The depth-0 access goes through a `mov` of the region's
        // address register: register-name identity misses it, the
        // copy-chain origin does not.
        let d = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  tmstore r0, 1
  tmend
  r1 = mov r0
  r2 = tmload r1
  ret r2
}
",
        );
        let sl2: Vec<_> = d.iter().filter(|d| d.rule == "SL002").collect();
        assert_eq!(sl2.len(), 1, "{d:?}");
        assert_eq!(sl2[0].pos, Some((0, 4)));
    }

    #[test]
    fn foldable_duplicate_load_is_downgraded_to_info() {
        // The first load only feeds a promotable compare: tm_mark turns
        // the compare into a tmcmp, tm_optimize removes the orphaned
        // load, and the duplicate is gone — info, not warning.
        let d = lint_src(
            r"
func f(2) {
entry:
  tmbegin
  r2 = tmload r0
  r3 = cmp.gt r2, 0
  r4 = tmload r0
  r5 = add r4, r3
  tminc r1, 1
  tmend
  ret r5
}
",
        );
        assert_eq!(rules_of(&d), vec!["SL004"], "{d:?}");
        assert_eq!(d[0].severity, Severity::Info);
        assert!(d[0].message.contains("folds this"), "{d:?}");
    }

    #[test]
    fn guaranteed_region_conflict_warns() {
        let d = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  tmstore r0, 1
  tmend
  tmbegin
  tmstore r0, 2
  tmend
  ret
}
",
        );
        assert_eq!(rules_of(&d), vec!["SL006"], "{d:?}");
        assert_eq!(d[0].pos, Some((0, 4)));
        assert!(d[0].message.contains("R0 and R1"), "{d:?}");
    }

    #[test]
    fn range_decided_comparison_warns() {
        // r1 >= 10 on the then-edge makes `r1 > 5` always true.
        let d = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  r2 = cmp.gte r1, 10
  condbr r2, big, out
big:
  r3 = cmp.gt r1, 5
  tmstore r0, r3
  tmend
  ret r3
out:
  tmend
  ret 0
}
",
        );
        assert_eq!(rules_of(&d), vec!["SL007"], "{d:?}");
        assert_eq!(d[0].pos, Some((1, 0)));
        assert!(d[0].message.contains("always true"), "{d:?}");
    }

    #[test]
    fn declined_singleton_promotion_reports_info() {
        let d = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  r2 = cmp.lte r1, 100
  condbr r2, ok, out
ok:
  r3 = add r1, 27
  r5 = const 77
  r4 = cmp.gt r3, r5
  tmstore r0, 1
  tmend
  ret r4
out:
  tmend
  ret 0
}
",
        );
        assert_eq!(rules_of(&d), vec!["SL008"], "{d:?}");
        assert_eq!(d[0].severity, Severity::Info);
        assert!(d[0].message.contains("use 77 directly"), "{d:?}");
    }

    #[test]
    fn read_only_region_reports_fast_path_candidate() {
        let d = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmcmp.gt r0, 10
  tmend
  ret r1
}
",
        );
        assert_eq!(rules_of(&d), vec!["SL009"], "{d:?}");
        assert_eq!(d[0].pos, Some((0, 0)), "anchored at the tmbegin");
        assert_eq!(d[0].severity, Severity::Info);
    }

    #[test]
    fn escaped_pointer_dereference_warns() {
        let d = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  tmstore r0, 5
  tmend
  r2 = tmload r1
  ret r2
}
",
        );
        assert_eq!(rules_of(&d), vec!["SL010"], "{d:?}");
        assert_eq!(d[0].pos, Some((0, 4)));
        let deref_in_region = lint_src(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  r2 = tmload r1
  tmend
  ret r2
}
",
        );
        assert!(
            !rules_of(&deref_in_region).contains(&"SL010"),
            "in-region deref is protected: {deref_in_region:?}"
        );
    }

    #[test]
    fn semantic_builtin_outside_region_is_an_error() {
        let d = lint_src(
            r"
func f(1) {
entry:
  tminc r0, 1
  ret
}
",
        );
        assert_eq!(rules_of(&d), vec!["SL011"], "{d:?}");
        assert_eq!(d[0].severity, Severity::Error);
        assert_eq!(d[0].pos, Some((0, 0)));
    }

    #[test]
    fn builtin_programs_have_no_errors() {
        for (path, f) in crate::programs::all() {
            let diags = lint_function(&f, None);
            assert!(
                diags.iter().all(|d| d.severity != Severity::Error),
                "{path}: {diags:?}"
            );
        }
    }

    #[test]
    fn cross_block_guard_lints_clean() {
        let d = lint_function(&crate::programs::cross_block_guard(), None);
        assert!(d.is_empty(), "{d:?}");
    }
}
