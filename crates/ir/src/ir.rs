//! The GIMPLE-like intermediate representation.
//!
//! GCC's `tm_mark` pass (paper §6) works on GIMPLE: a language- and
//! target-independent, three-operand, basic-block representation in
//! which transactional statements appear as explicit barrier calls. This
//! module models the slice of GIMPLE the paper's passes touch:
//!
//! * register-based three-operand instructions grouped into labelled
//!   basic blocks;
//! * explicit transactional barriers `TmLoad`/`TmStore` inside
//!   `TmBegin`/`TmEnd` regions (the `_transaction_atomic` lowering);
//! * the three semantic builtins of the paper's Table 2 —
//!   [`Inst::TmCmpVal`] (`_ITM_S1R`), [`Inst::TmCmpAddr`] (`_ITM_S2R`)
//!   and [`Inst::TmInc`] (`_ITM_SW`) — which only the passes introduce.
//!
//! Unlike real GIMPLE we use mutable registers rather than SSA; the
//! pattern matcher compensates by tracking whole-function *reaching
//! definitions* (see [`crate::analysis`]), so the paper's patterns are
//! found even when the load and its use straddle basic blocks.

use semtm_core::CmpOp;

/// A virtual register index.
pub type Reg = u32;

/// A basic-block index within a [`Function`].
pub type BlockId = usize;

/// An instruction operand: register or immediate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// Register value.
    Reg(Reg),
    /// Immediate constant.
    Imm(i64),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

/// Three-operand arithmetic/logic operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (0 divisor yields 0, keeping the interpreter total).
    Div,
    /// Remainder (0 divisor yields 0).
    Mod,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

impl BinOp {
    /// Evaluate the operator.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Mod => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
        }
    }
}

/// One IR instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Inst {
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = a <op> b`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = (a <relation> b)` as 0/1.
    Cmp {
        /// Relation.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = !src` (logical, 0/1).
    Not {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Transactional load: `dst = *addr`. Outside an atomic region this
    /// degrades to a direct heap load.
    TmLoad {
        /// Destination register.
        dst: Reg,
        /// Heap word index.
        addr: Operand,
    },
    /// Transactional store `*addr = val`.
    TmStore {
        /// Heap word index.
        addr: Operand,
        /// Stored value.
        val: Operand,
    },
    /// Semantic builtin `_ITM_S1R`: `dst = (*addr <relation> val)`.
    TmCmpVal {
        /// Relation.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Heap word index (left side).
        addr: Operand,
        /// Constant/local right side.
        val: Operand,
    },
    /// Semantic builtin `_ITM_S2R`: `dst = (*a <relation> *b)`.
    TmCmpAddr {
        /// Relation.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Left heap word index.
        a: Operand,
        /// Right heap word index.
        b: Operand,
    },
    /// Semantic builtin `_ITM_SW`: `*addr += delta` (or `-=` when
    /// `negate`).
    TmInc {
        /// Heap word index.
        addr: Operand,
        /// Delta operand.
        delta: Operand,
        /// Subtract instead of add.
        negate: bool,
    },
    /// Unconditional branch.
    Br {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch on `cond != 0`.
    CondBr {
        /// Condition operand.
        cond: Operand,
        /// Block when nonzero.
        then_to: BlockId,
        /// Block when zero.
        else_to: BlockId,
    },
    /// Return from the function.
    Ret {
        /// Optional return value.
        val: Option<Operand>,
    },
    /// Open an atomic region (`_transaction_atomic {`).
    TmBegin,
    /// Close the innermost atomic region.
    TmEnd,
}

impl Inst {
    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Inst::Mov { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Not { dst, .. }
            | Inst::TmLoad { dst, .. }
            | Inst::TmCmpVal { dst, .. }
            | Inst::TmCmpAddr { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Registers this instruction uses.
    pub fn uses(&self, out: &mut Vec<Reg>) {
        let push = |o: Operand, out: &mut Vec<Reg>| {
            if let Operand::Reg(r) = o {
                out.push(r);
            }
        };
        match *self {
            Inst::Mov { src, .. } | Inst::Not { src, .. } => push(src, out),
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                push(a, out);
                push(b, out);
            }
            Inst::TmLoad { addr, .. } => push(addr, out),
            Inst::TmStore { addr, val } => {
                push(addr, out);
                push(val, out);
            }
            Inst::TmCmpVal { addr, val, .. } => {
                push(addr, out);
                push(val, out);
            }
            Inst::TmCmpAddr { a, b, .. } => {
                push(a, out);
                push(b, out);
            }
            Inst::TmInc { addr, delta, .. } => {
                push(addr, out);
                push(delta, out);
            }
            Inst::CondBr { cond, .. } => push(cond, out),
            Inst::Ret { val: Some(v) } => push(v, out),
            Inst::Br { .. } | Inst::Ret { val: None } | Inst::TmBegin | Inst::TmEnd => {}
        }
    }

    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret { .. }
        )
    }
}

/// A labelled basic block.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Human-readable label (used by the parser and printer).
    pub label: String,
    /// Straight-line instructions; the last one should be a terminator.
    pub insts: Vec<Inst>,
}

impl Block {
    /// Successor block ids of this block's terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self.insts.last() {
            Some(Inst::Br { target }) => vec![*target],
            Some(Inst::CondBr {
                then_to, else_to, ..
            }) => vec![*then_to, *else_to],
            _ => vec![],
        }
    }
}

/// A function: arguments land in registers `0..num_args`.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Number of arguments (pre-loaded into the low registers).
    pub num_args: u32,
    /// Total registers used.
    pub num_regs: u32,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Structural sanity checks: branch targets exist, every block ends
    /// in a terminator (and terminators appear nowhere else), registers
    /// are within bounds, and the argument count fits the register
    /// count. Path-sensitive properties — definite assignment and
    /// atomic-region balance — are the strict verifier's job
    /// ([`crate::analysis::verify`]), which also runs these checks.
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err(format!("{}: no blocks", self.name));
        }
        if self.num_args > self.num_regs {
            return Err(format!(
                "{}: {} arguments do not fit in {} registers",
                self.name, self.num_args, self.num_regs
            ));
        }
        for (bi, b) in self.blocks.iter().enumerate() {
            match b.insts.last() {
                Some(t) if t.is_terminator() => {}
                _ => return Err(format!("{}: block {bi} lacks a terminator", self.name)),
            }
            for (ii, inst) in b.insts.iter().enumerate() {
                if inst.is_terminator() && ii + 1 != b.insts.len() {
                    return Err(format!(
                        "{}: block {bi} has a terminator mid-block at {ii}",
                        self.name
                    ));
                }
                if let Some(d) = inst.def() {
                    if d >= self.num_regs {
                        return Err(format!("{}: register r{d} out of bounds", self.name));
                    }
                }
                let mut used = Vec::new();
                inst.uses(&mut used);
                for r in used {
                    if r >= self.num_regs {
                        return Err(format!("{}: register r{r} out of bounds", self.name));
                    }
                }
            }
            for s in b.successors() {
                if s >= self.blocks.len() {
                    return Err(format!("{}: branch to missing block {s}", self.name));
                }
            }
        }
        Ok(())
    }

    /// Count instructions matching `pred` (used by tests and the
    /// pass-effect reports).
    pub fn count_insts(&self, pred: impl Fn(&Inst) -> bool) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| pred(i))
            .count()
    }

    /// Total number of *transactional barrier calls* the function would
    /// issue per straight-line execution of each instruction once: the
    /// metric behind the paper's "reduce the number of TM calls from two
    /// to one" argument.
    pub fn barrier_count(&self) -> usize {
        self.count_insts(|i| {
            matches!(
                i,
                Inst::TmLoad { .. }
                    | Inst::TmStore { .. }
                    | Inst::TmCmpVal { .. }
                    | Inst::TmCmpAddr { .. }
                    | Inst::TmInc { .. }
            )
        })
    }
}

impl std::fmt::Display for Function {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "func {}({}) {{", self.name, self.num_args)?;
        for b in &self.blocks {
            writeln!(f, "{}:", b.label)?;
            for i in &b.insts {
                writeln!(f, "  {}", display_inst(i, self))?;
            }
        }
        writeln!(f, "}}")
    }
}

fn display_operand(o: Operand) -> String {
    match o {
        Operand::Reg(r) => format!("r{r}"),
        Operand::Imm(v) => v.to_string(),
    }
}

fn display_inst(i: &Inst, func: &Function) -> String {
    let lbl = |b: BlockId| func.blocks[b].label.clone();
    match i {
        Inst::Mov { dst, src } => format!("r{dst} = mov {}", display_operand(*src)),
        Inst::Bin { op, dst, a, b } => format!(
            "r{dst} = {} {}, {}",
            format!("{op:?}").to_lowercase(),
            display_operand(*a),
            display_operand(*b)
        ),
        Inst::Cmp { op, dst, a, b } => format!(
            "r{dst} = cmp.{} {}, {}",
            op.mnemonic(),
            display_operand(*a),
            display_operand(*b)
        ),
        Inst::Not { dst, src } => format!("r{dst} = not {}", display_operand(*src)),
        Inst::TmLoad { dst, addr } => format!("r{dst} = tmload {}", display_operand(*addr)),
        Inst::TmStore { addr, val } => format!(
            "tmstore {}, {}",
            display_operand(*addr),
            display_operand(*val)
        ),
        Inst::TmCmpVal { op, dst, addr, val } => format!(
            "r{dst} = tmcmp.{} {}, {}    ; _ITM_S1R",
            op.mnemonic(),
            display_operand(*addr),
            display_operand(*val)
        ),
        Inst::TmCmpAddr { op, dst, a, b } => format!(
            "r{dst} = tmcmp2.{} {}, {}    ; _ITM_S2R",
            op.mnemonic(),
            display_operand(*a),
            display_operand(*b)
        ),
        Inst::TmInc {
            addr,
            delta,
            negate,
        } => format!(
            "{} {}, {}    ; _ITM_SW",
            if *negate { "tmdec" } else { "tminc" },
            display_operand(*addr),
            display_operand(*delta)
        ),
        Inst::Br { target } => format!("br {}", lbl(*target)),
        Inst::CondBr {
            cond,
            then_to,
            else_to,
        } => format!(
            "condbr {}, {}, {}",
            display_operand(*cond),
            lbl(*then_to),
            lbl(*else_to)
        ),
        Inst::Ret { val } => match val {
            Some(v) => format!("ret {}", display_operand(*v)),
            None => "ret".to_string(),
        },
        Inst::TmBegin => "tmbegin".to_string(),
        Inst::TmEnd => "tmend".to_string(),
    }
}

/// Convenience builder for constructing functions in Rust code.
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
}

impl FunctionBuilder {
    /// Start building `name` with `num_args` arguments; creates the
    /// entry block.
    pub fn new(name: &str, num_args: u32) -> FunctionBuilder {
        FunctionBuilder {
            func: Function {
                name: name.to_string(),
                num_args,
                num_regs: num_args,
                blocks: vec![Block {
                    label: "entry".into(),
                    insts: Vec::new(),
                }],
            },
            current: 0,
        }
    }

    /// Allocate a fresh register.
    pub fn reg(&mut self) -> Reg {
        let r = self.func.num_regs;
        self.func.num_regs += 1;
        r
    }

    /// Create a new (empty) block and return its id.
    pub fn block(&mut self, label: &str) -> BlockId {
        self.func.blocks.push(Block {
            label: label.to_string(),
            insts: Vec::new(),
        });
        self.func.blocks.len() - 1
    }

    /// Switch the insertion point.
    pub fn switch_to(&mut self, b: BlockId) {
        self.current = b;
    }

    /// Append an instruction to the current block.
    pub fn push(&mut self, inst: Inst) {
        self.func.blocks[self.current].insts.push(inst);
    }

    /// Finish building. In debug builds the function is validated and an
    /// invalid one panics; release builds skip the check (the strict
    /// verifier still runs around every pass).
    pub fn build(self) -> Function {
        #[cfg(debug_assertions)]
        self.func
            .validate()
            .unwrap_or_else(|e| panic!("invalid IR: {e}"));
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial() -> Function {
        let mut b = FunctionBuilder::new("t", 1);
        let r = b.reg();
        b.push(Inst::Mov {
            dst: r,
            src: Operand::Imm(7),
        });
        b.push(Inst::Ret {
            val: Some(Operand::Reg(r)),
        });
        b.build()
    }

    #[test]
    fn builder_produces_valid_function() {
        let f = trivial();
        assert_eq!(f.num_regs, 2);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn def_use_extraction() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: 3,
            a: Operand::Reg(1),
            b: Operand::Imm(4),
        };
        assert_eq!(i.def(), Some(3));
        let mut u = Vec::new();
        i.uses(&mut u);
        assert_eq!(u, vec![1]);
    }

    #[test]
    fn validation_rejects_missing_terminator() {
        let f = Function {
            name: "bad".into(),
            num_args: 0,
            num_regs: 1,
            blocks: vec![Block {
                label: "entry".into(),
                insts: vec![Inst::Mov {
                    dst: 0,
                    src: Operand::Imm(1),
                }],
            }],
        };
        assert!(f.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_branch_target() {
        let f = Function {
            name: "bad".into(),
            num_args: 0,
            num_regs: 0,
            blocks: vec![Block {
                label: "entry".into(),
                insts: vec![Inst::Br { target: 9 }],
            }],
        };
        assert!(f.validate().is_err());
    }

    #[test]
    fn validation_rejects_args_exceeding_registers() {
        let f = Function {
            name: "bad".into(),
            num_args: 3,
            num_regs: 1,
            blocks: vec![Block {
                label: "entry".into(),
                insts: vec![Inst::Ret { val: None }],
            }],
        };
        let e = f.validate().unwrap_err();
        assert!(e.contains("do not fit"), "{e}");
    }

    #[test]
    fn binop_eval_total_on_zero_divisor() {
        assert_eq!(BinOp::Div.eval(5, 0), 0);
        assert_eq!(BinOp::Mod.eval(5, 0), 0);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
    }

    #[test]
    fn display_roundtrips_mnemonics() {
        let f = trivial();
        let s = f.to_string();
        assert!(s.contains("func t(1)"));
        assert!(s.contains("ret r1"));
    }
}
