//! `semlint` — lint IR programs for semantic-TM misuse.
//!
//! ```text
//! semlint [OPTIONS] [FILE.ir ...]
//!
//! Options:
//!   --builtin          lint the kernels embedded in the crate (programs/*.ir)
//!   --oracle           run the differential pass-equivalence oracle and print
//!                      the per-kernel barrier reduction
//!   --conflicts        print the static region-conflict matrix per function
//!   --deny warnings    treat warning-severity diagnostics as failures
//!   --format FMT       diagnostic output format: text (default) or sarif
//!   --output FILE      write the report to FILE instead of stdout
//!   --rules            print the rule catalogue and exit
//!   -h, --help         print this help
//! ```
//!
//! Exit status is 1 when any `error`-severity diagnostic is emitted (or
//! any `warning` under `--deny warnings`), a file fails to parse, or
//! the oracle finds a divergence; 0 otherwise. Text diagnostics print
//! as `file:line:col: severity[RULE] message`; `--format sarif` emits
//! one SARIF 2.1.0 log covering every linted file.

use semtm_ir::analysis::{AbsInt, Cfg, ConflictAnalysis, Regions};
use semtm_ir::lint::{lint_function, Diagnostic, Severity, RULES};
use semtm_ir::oracle::run_differential_oracle;
use semtm_ir::parser::parse_function_spanned;
use semtm_ir::sarif::sarif_report;
use std::process::ExitCode;

const USAGE: &str = "usage: semlint [--builtin] [--oracle] [--conflicts] [--deny warnings] \
                     [--format text|sarif] [--output FILE] [--rules] [FILE.ir ...]";

#[derive(PartialEq)]
enum Format {
    Text,
    Sarif,
}

fn main() -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut builtin = false;
    let mut oracle = false;
    let mut conflicts = false;
    let mut deny_warnings = false;
    let mut format = Format::Text;
    let mut output: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--builtin" => builtin = true,
            "--oracle" => oracle = true,
            "--conflicts" => conflicts = true,
            "--deny" => match args.next().as_deref() {
                Some("warnings") => deny_warnings = true,
                other => {
                    eprintln!("semlint: --deny expects 'warnings', got {other:?}\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!("semlint: --format expects text|sarif, got {other:?}\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--output" => match args.next() {
                Some(f) => output = Some(f),
                None => {
                    eprintln!("semlint: --output expects a file\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--rules" => {
                for (id, sev, summary) in RULES {
                    println!("{id} ({sev}): {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("semlint: unknown option '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() && !builtin && !oracle {
        eprintln!("semlint: nothing to do\n{USAGE}");
        return ExitCode::FAILURE;
    }

    let mut failed = false;

    // Sources to lint: files from disk plus (optionally) the embedded
    // kernels.
    let mut sources: Vec<(String, String)> = Vec::new();
    if builtin {
        for (path, src) in semtm_ir::programs::sources() {
            sources.push((path.to_string(), src.to_string()));
        }
    }
    for file in &files {
        match std::fs::read_to_string(file) {
            Ok(src) => sources.push((file.clone(), src)),
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                failed = true;
            }
        }
    }

    let mut report: Vec<(String, Vec<Diagnostic>)> = Vec::new();
    let mut text = String::new();
    for (file, src) in &sources {
        match parse_function_spanned(src) {
            Ok((func, map)) => {
                let diags = lint_function(&func, Some(&map));
                for d in &diags {
                    text.push_str(&d.render(file));
                    text.push('\n');
                    if d.severity == Severity::Error
                        || (deny_warnings && d.severity == Severity::Warning)
                    {
                        failed = true;
                    }
                }
                if diags.is_empty() {
                    text.push_str(&format!("{file}: {} clean\n", func.name));
                }
                report.push((file.clone(), diags));
                if conflicts {
                    let cfg = Cfg::new(&func);
                    let absint = AbsInt::compute(&func, &cfg);
                    let regions = Regions::compute(&func, &cfg);
                    let ca = ConflictAnalysis::compute(&func, &cfg, &absint, &regions);
                    print!("{}", ca.render(&func));
                }
            }
            Err(e) => {
                text.push_str(&format!(
                    "{file}:{}:{}: error[parse] {}\n",
                    e.line, e.col, e.message
                ));
                failed = true;
            }
        }
    }

    let rendered = match format {
        Format::Text => text,
        Format::Sarif => sarif_report(&report),
    };
    match &output {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("semlint: cannot write {path}: {e}");
                failed = true;
            }
        }
        None => print!("{rendered}"),
    }

    if oracle {
        match run_differential_oracle() {
            Ok(reports) => {
                for r in &reports {
                    println!("oracle: {r}");
                }
            }
            Err(e) => {
                eprintln!("oracle: FAILED: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
