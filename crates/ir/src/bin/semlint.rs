//! `semlint` — lint IR programs for semantic-TM misuse.
//!
//! ```text
//! semlint [OPTIONS] [FILE.ir ...]
//!
//! Options:
//!   --builtin   lint the kernels embedded in the crate (programs/*.ir)
//!   --oracle    run the differential pass-equivalence oracle and print
//!               the per-kernel barrier reduction
//!   --rules     print the rule catalogue and exit
//!   -h, --help  print this help
//! ```
//!
//! Exit status is 1 when any `error`-severity diagnostic is emitted, a
//! file fails to parse, or the oracle finds a divergence; 0 otherwise.
//! Diagnostics print as `file:line:col: severity[RULE] message`.

use semtm_ir::lint::{lint_function, Severity, RULES};
use semtm_ir::oracle::run_differential_oracle;
use semtm_ir::parser::parse_function_spanned;
use std::process::ExitCode;

const USAGE: &str = "usage: semlint [--builtin] [--oracle] [--rules] [FILE.ir ...]";

fn main() -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut builtin = false;
    let mut oracle = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--builtin" => builtin = true,
            "--oracle" => oracle = true,
            "--rules" => {
                for (id, sev, summary) in RULES {
                    println!("{id} ({sev}): {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("semlint: unknown option '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() && !builtin && !oracle {
        eprintln!("semlint: nothing to do\n{USAGE}");
        return ExitCode::FAILURE;
    }

    let mut failed = false;

    // Sources to lint: files from disk plus (optionally) the embedded
    // kernels.
    let mut sources: Vec<(String, String)> = Vec::new();
    if builtin {
        for (path, src) in semtm_ir::programs::sources() {
            sources.push((path.to_string(), src.to_string()));
        }
    }
    for file in &files {
        match std::fs::read_to_string(file) {
            Ok(src) => sources.push((file.clone(), src)),
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                failed = true;
            }
        }
    }

    for (file, src) in &sources {
        match parse_function_spanned(src) {
            Ok((func, map)) => {
                let diags = lint_function(&func, Some(&map));
                for d in &diags {
                    println!("{}", d.render(file));
                    if d.severity == Severity::Error {
                        failed = true;
                    }
                }
                if diags.is_empty() {
                    println!("{file}: {} clean", func.name);
                }
            }
            Err(e) => {
                println!("{file}:{}:{}: error[parse] {}", e.line, e.col, e.message);
                failed = true;
            }
        }
    }

    if oracle {
        match run_differential_oracle() {
            Ok(reports) => {
                for r in &reports {
                    println!("oracle: {r}");
                }
            }
            Err(e) => {
                eprintln!("oracle: FAILED: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
