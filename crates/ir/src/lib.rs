//! # semtm-ir — the compiler-integration substrate
//!
//! The paper's third contribution (§6) integrates the semantic TM API
//! into GCC: a `tm_mark` pass detects `cmp`/`inc` patterns on the GIMPLE
//! representation and rewrites them to three new libitm ABI calls, and a
//! `tm_optimize` pass removes the transactional reads those rewrites
//! leave dead. This crate rebuilds that pipeline over a self-contained
//! GIMPLE-like IR (see DESIGN.md for the substitution argument):
//!
//! * [`ir`] — the three-operand, basic-block IR with explicit
//!   transactional barriers and atomic regions;
//! * [`parser`] — a textual front-end;
//! * [`passes`] — `tm_mark` (pattern detection → `_ITM_S1R`/`_ITM_S2R`/
//!   `_ITM_SW` builtins) and `tm_optimize` (never-live TM-load
//!   elimination via global liveness);
//! * [`abi`] — the Table 2 ABI mapping;
//! * [`interp`] — a transactional interpreter executing IR against a
//!   [`semtm_core::Stm`], with per-barrier dispatch accounting;
//! * [`lower`] — flat threaded-dispatch lowering: block-structured
//!   functions become pc-indexed op arrays so the Figure-2 "GCC mode"
//!   experiments stop paying tree-walking overhead per instruction;
//! * [`programs`] — the Figure-2 kernels (hashtable, vacation, bank,
//!   cross-block guard) written in classical TM style for the passes to
//!   transform, checked in as `programs/*.ir`;
//! * [`analysis`] — the whole-function dataflow framework (CFG +
//!   dominators, worklist solver, reaching definitions, liveness,
//!   cross-block pattern matching, strict IR verifier) the passes and
//!   lints are built on;
//! * [`lint`] — the `semlint` semantic-misuse diagnostics (rules
//!   `SL000`–`SL011`), also available as the `semlint` binary;
//! * [`sarif`] — a SARIF 2.1.0 exporter for the lint findings
//!   (`semlint --format sarif`);
//! * [`oracle`] — the differential-testing oracle asserting the passes
//!   preserve observable behaviour on every backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abi;
pub mod analysis;
pub mod interp;
pub mod ir;
pub mod lint;
pub mod lower;
pub mod oracle;
pub mod parser;
pub mod passes;
pub mod programs;
pub mod sarif;

pub use analysis::{verify, Cfg, Liveness, ReachingDefs, VerifyError};
pub use interp::{ExecError, Interp};
pub use ir::{Block, BlockId, Function, FunctionBuilder, Inst, Operand, Reg};
pub use lint::{lint_function, Diagnostic, Severity};
pub use lower::{lower, LoweredFunction, Op};
pub use oracle::{run_differential_oracle, DiffReport, OracleError};
pub use parser::{parse_function, parse_function_spanned, ParseError, SourceMap, Span};
pub use passes::{run_tm_passes, run_tm_passes_checked, tm_mark, tm_optimize, PassReport};
