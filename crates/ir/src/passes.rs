//! The paper's two GCC middle-end passes, reimplemented over our IR.
//!
//! * [`tm_mark`] — pattern detection (§6): conditional expressions with a
//!   transactional-load origin become `_ITM_S1R`/`_ITM_S2R` builtins;
//!   transactional stores of `load ± local` on the same address become
//!   `_ITM_SW`. Origins are tracked through reaching definitions within
//!   a basic block ("simple expression patterns that usually reside in
//!   the same basic block" — no alias analysis required, exactly as the
//!   paper argues).
//! * [`tm_optimize`] — never-live elimination (§6): a global (whole-
//!   function) liveness analysis removes transactional loads whose
//!   result is never live — in particular the read half of every matched
//!   `inc` — plus the pure ALU instructions orphaned by the rewrite. The
//!   pass is conservative: an instruction is removed only when liveness
//!   *guarantees* the value is dead along every path.

use crate::ir::{Block, BlockId, Function, Inst, Operand, Reg};

/// Statistics reported by a pass run (used by the Figure-2 harness to
/// show the 2→1 TM-call reduction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassReport {
    /// `Cmp` instructions rewritten to `_ITM_S1R`.
    pub s1r: usize,
    /// `Cmp` instructions rewritten to `_ITM_S2R`.
    pub s2r: usize,
    /// `TmStore` instructions rewritten to `_ITM_SW`.
    pub sw: usize,
    /// Transactional loads removed as never-live.
    pub loads_removed: usize,
    /// Pure ALU instructions removed as never-live.
    pub pure_removed: usize,
}

/// Reaching definition (within one block) of each register at each
/// instruction index: `reach[i][r]` = index of the last instruction
/// `< i` defining `r`, if any.
fn block_reaching_defs(block: &Block) -> Vec<std::collections::HashMap<Reg, usize>> {
    let mut cur: std::collections::HashMap<Reg, usize> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(block.insts.len() + 1);
    for inst in &block.insts {
        out.push(cur.clone());
        if let Some(d) = inst.def() {
            cur.insert(d, out.len() - 1);
        }
    }
    out.push(cur);
    out
}

/// Classify an operand's origin at instruction position `pos`: if it is a
/// register whose in-block reaching definition is a `TmLoad`, return that
/// load's index and address operand. Anything else — immediate, argument,
/// value defined in another block, or a non-load definition — counts as
/// "literal or local variable" in the paper's terms.
fn tm_load_origin(
    block: &Block,
    reach: &[std::collections::HashMap<Reg, usize>],
    pos: usize,
    operand: Operand,
) -> Option<(usize, Operand)> {
    let r = operand.reg()?;
    let def_at = *reach[pos].get(&r)?;
    match block.insts[def_at] {
        Inst::TmLoad { dst, addr } if dst == r => Some((def_at, addr)),
        _ => None,
    }
}

/// Are two address operands provably the same address at positions
/// `p1 < p2`? Immediates compare by value; registers must be the same
/// register with the same reaching definition at both points.
fn same_address(
    reach: &[std::collections::HashMap<Reg, usize>],
    a: Operand,
    p1: usize,
    b: Operand,
    p2: usize,
) -> bool {
    match (a, b) {
        (Operand::Imm(x), Operand::Imm(y)) => x == y,
        (Operand::Reg(x), Operand::Reg(y)) => x == y && reach[p1].get(&x) == reach[p2].get(&x),
        _ => false,
    }
}

/// The `tm_mark` extension: detect and rewrite the paper's `cmp` and
/// `inc` patterns. Leaves the feeding loads in place — [`tm_optimize`]
/// removes the ones that became dead.
pub fn tm_mark(func: &mut Function) -> PassReport {
    let mut report = PassReport::default();
    for block in &mut func.blocks {
        let reach = block_reaching_defs(block);
        for i in 0..block.insts.len() {
            match block.insts[i].clone() {
                // --- cmp pattern ---
                Inst::Cmp { op, dst, a, b } => {
                    let oa = tm_load_origin(block, &reach, i, a);
                    let ob = tm_load_origin(block, &reach, i, b);
                    match (oa, ob) {
                        (Some((_, addr_a)), Some((_, addr_b))) => {
                            block.insts[i] = Inst::TmCmpAddr {
                                op,
                                dst,
                                a: addr_a,
                                b: addr_b,
                            };
                            report.s2r += 1;
                        }
                        (Some((_, addr)), None) => {
                            block.insts[i] = Inst::TmCmpVal {
                                op,
                                dst,
                                addr,
                                val: b,
                            };
                            report.s1r += 1;
                        }
                        (None, Some((_, addr))) => {
                            block.insts[i] = Inst::TmCmpVal {
                                op: op.swap(),
                                dst,
                                addr,
                                val: a,
                            };
                            report.s1r += 1;
                        }
                        (None, None) => {}
                    }
                }
                // --- inc pattern ---
                Inst::TmStore { addr, val } => {
                    let Some(vr) = val.reg() else { continue };
                    let Some(&bin_at) = reach[i].get(&vr) else {
                        continue;
                    };
                    let Inst::Bin { op: bop, dst, a, b } = block.insts[bin_at].clone() else {
                        continue;
                    };
                    if dst != vr {
                        continue;
                    }
                    use crate::ir::BinOp;
                    let (load_side, delta, negate) = match bop {
                        BinOp::Add => {
                            // load + delta or delta + load
                            if let Some((lat, laddr)) = tm_load_origin(block, &reach, bin_at, a) {
                                ((lat, laddr), b, false)
                            } else if let Some((lat, laddr)) =
                                tm_load_origin(block, &reach, bin_at, b)
                            {
                                ((lat, laddr), a, false)
                            } else {
                                continue;
                            }
                        }
                        BinOp::Sub => {
                            // Only load - delta is an inc; delta - load is not.
                            if let Some((lat, laddr)) = tm_load_origin(block, &reach, bin_at, a) {
                                ((lat, laddr), b, true)
                            } else {
                                continue;
                            }
                        }
                        _ => continue,
                    };
                    let (load_at, load_addr) = load_side;
                    // The delta side must itself be literal/local.
                    if tm_load_origin(block, &reach, bin_at, delta).is_some() {
                        continue;
                    }
                    // Same address at the load and at the store.
                    if !same_address(&reach, load_addr, load_at, addr, i) {
                        continue;
                    }
                    block.insts[i] = Inst::TmInc {
                        addr,
                        delta,
                        negate,
                    };
                    report.sw += 1;
                }
                _ => {}
            }
        }
    }
    report
}

/// Whole-function backward liveness: `live_in[b]` = registers live on
/// entry to block `b`.
fn liveness(func: &Function) -> Vec<Vec<bool>> {
    let n = func.num_regs as usize;
    let mut live_in: Vec<Vec<bool>> = vec![vec![false; n]; func.blocks.len()];
    let mut changed = true;
    let mut uses = Vec::new();
    while changed {
        changed = false;
        for b in (0..func.blocks.len()).rev() {
            let mut live = live_out(func, b, &live_in);
            for inst in func.blocks[b].insts.iter().rev() {
                if let Some(d) = inst.def() {
                    live[d as usize] = false;
                }
                uses.clear();
                inst.uses(&mut uses);
                for &r in &uses {
                    live[r as usize] = true;
                }
            }
            if live != live_in[b] {
                live_in[b] = live;
                changed = true;
            }
        }
    }
    live_in
}

fn live_out(func: &Function, b: BlockId, live_in: &[Vec<bool>]) -> Vec<bool> {
    let n = func.num_regs as usize;
    let mut out = vec![false; n];
    for s in func.blocks[b].successors() {
        for r in 0..n {
            out[r] = out[r] || live_in[s][r];
        }
    }
    out
}

/// Is this instruction removable when its destination is dead?
/// Transactional loads are — that is the point of the pass (the TM
/// side-effect of a never-live read is pure overhead). Stores, semantic
/// builtins with effects, and control flow are not. `TmCmpVal`/
/// `TmCmpAddr` *do* have the semantic-read-set side effect, but if the
/// boolean result is never consumed the recorded relation constrains
/// nothing the program observes, so they are removable too.
fn removable(inst: &Inst) -> (bool, bool) {
    // (is_tm_load, is_pure_alu)
    match inst {
        Inst::TmLoad { .. } => (true, false),
        Inst::Mov { .. } | Inst::Bin { .. } | Inst::Cmp { .. } | Inst::Not { .. } => (false, true),
        _ => (false, false),
    }
}

/// The `tm_optimize` pass: iteratively remove never-live transactional
/// loads and the pure instructions orphaned by removal, to a fixpoint.
pub fn tm_optimize(func: &mut Function) -> PassReport {
    let mut report = PassReport::default();
    loop {
        let live_in = liveness(func);
        let mut removed_any = false;
        for b in 0..func.blocks.len() {
            let mut live = live_out(func, b, &live_in);
            let mut keep = vec![true; func.blocks[b].insts.len()];
            let mut uses = Vec::new();
            for (ii, inst) in func.blocks[b].insts.iter().enumerate().rev() {
                let dead_def = inst.def().map(|d| !live[d as usize]).unwrap_or(false);
                let (is_load, is_pure) = removable(inst);
                if dead_def && (is_load || is_pure) {
                    keep[ii] = false;
                    if is_load {
                        report.loads_removed += 1;
                    } else {
                        report.pure_removed += 1;
                    }
                    removed_any = true;
                    // A removed instruction contributes neither defs nor
                    // uses to liveness above it.
                    continue;
                }
                if let Some(d) = inst.def() {
                    live[d as usize] = false;
                }
                uses.clear();
                inst.uses(&mut uses);
                for &r in &uses {
                    live[r as usize] = true;
                }
            }
            if keep.iter().any(|k| !k) {
                let mut idx = 0;
                func.blocks[b].insts.retain(|_| {
                    let k = keep[idx];
                    idx += 1;
                    k
                });
            }
        }
        if !removed_any {
            return report;
        }
    }
}

/// Run both passes in order (the "modified GCC" configuration) and merge
/// the reports.
pub fn run_tm_passes(func: &mut Function) -> PassReport {
    let mut r = tm_mark(func);
    let o = tm_optimize(func);
    r.loads_removed = o.loads_removed;
    r.pure_removed = o.pure_removed;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, FunctionBuilder};
    use semtm_core::CmpOp;

    /// `if (*a > 0) ret 1 else ret 0` — the canonical S1R pattern.
    fn cmp_pattern() -> Function {
        let mut fb = FunctionBuilder::new("p", 1); // r0 = addr
        let v = fb.reg();
        let c = fb.reg();
        let t = fb.block("then");
        let e = fb.block("else");
        fb.switch_to(0);
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Cmp {
            op: CmpOp::Gt,
            dst: c,
            a: Operand::Reg(v),
            b: Operand::Imm(0),
        });
        fb.push(Inst::CondBr {
            cond: Operand::Reg(c),
            then_to: t,
            else_to: e,
        });
        fb.switch_to(t);
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret {
            val: Some(Operand::Imm(1)),
        });
        fb.switch_to(e);
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret {
            val: Some(Operand::Imm(0)),
        });
        fb.build()
    }

    /// `*a = *a + 5` — the canonical SW pattern.
    fn inc_pattern(op: BinOp, swapped: bool) -> Function {
        let mut fb = FunctionBuilder::new("i", 1);
        let v = fb.reg();
        let s = fb.reg();
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        let (a, b) = if swapped {
            (Operand::Imm(5), Operand::Reg(v))
        } else {
            (Operand::Reg(v), Operand::Imm(5))
        };
        fb.push(Inst::Bin { op, dst: s, a, b });
        fb.push(Inst::TmStore {
            addr: Operand::Reg(0),
            val: Operand::Reg(s),
        });
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret { val: None });
        fb.build()
    }

    #[test]
    fn cmp_becomes_s1r() {
        let mut f = cmp_pattern();
        assert_eq!(f.barrier_count(), 1, "one load before the passes");
        let r = run_tm_passes(&mut f);
        assert_eq!(r.s1r, 1);
        assert_eq!(r.loads_removed, 1, "the feeding load must die");
        assert_eq!(f.barrier_count(), 1, "exactly one S1R barrier remains");
        assert_eq!(f.count_insts(|i| matches!(i, Inst::TmCmpVal { .. })), 1);
        assert_eq!(f.count_insts(|i| matches!(i, Inst::TmLoad { .. })), 0);
    }

    #[test]
    fn add_and_sub_become_sw() {
        for (op, swapped, negate) in [
            (BinOp::Add, false, false),
            (BinOp::Add, true, false),
            (BinOp::Sub, false, true),
        ] {
            let mut f = inc_pattern(op, swapped);
            let r = run_tm_passes(&mut f);
            assert_eq!(r.sw, 1, "{op:?} swapped={swapped}");
            assert_eq!(r.loads_removed, 1);
            let incs: Vec<bool> = f
                .blocks
                .iter()
                .flat_map(|b| b.insts.iter())
                .filter_map(|i| match i {
                    Inst::TmInc { negate, .. } => Some(*negate),
                    _ => None,
                })
                .collect();
            assert_eq!(incs, vec![negate]);
            assert_eq!(f.barrier_count(), 1, "two TM calls became one");
        }
    }

    #[test]
    fn sub_with_load_on_right_is_not_an_inc() {
        // *a = 5 - *a must NOT become an increment.
        let mut f = inc_pattern(BinOp::Sub, true);
        let r = run_tm_passes(&mut f);
        assert_eq!(r.sw, 0);
        assert_eq!(f.count_insts(|i| matches!(i, Inst::TmStore { .. })), 1);
    }

    #[test]
    fn cmp_of_two_loads_becomes_s2r() {
        let mut fb = FunctionBuilder::new("q", 2);
        let v1 = fb.reg();
        let v2 = fb.reg();
        let c = fb.reg();
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v1,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::TmLoad {
            dst: v2,
            addr: Operand::Reg(1),
        });
        fb.push(Inst::Cmp {
            op: CmpOp::Eq,
            dst: c,
            a: Operand::Reg(v1),
            b: Operand::Reg(v2),
        });
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(c)),
        });
        let mut f = fb.build();
        let r = run_tm_passes(&mut f);
        assert_eq!(r.s2r, 1);
        assert_eq!(r.loads_removed, 2);
        assert_eq!(f.barrier_count(), 1, "three TM calls became one");
    }

    #[test]
    fn live_load_is_kept_after_cmp_rewrite() {
        // The loaded value is also returned — the load must survive.
        let mut fb = FunctionBuilder::new("keep", 1);
        let v = fb.reg();
        let c = fb.reg();
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Cmp {
            op: CmpOp::Gt,
            dst: c,
            a: Operand::Reg(v),
            b: Operand::Imm(0),
        });
        fb.push(Inst::TmStore {
            addr: Operand::Reg(0),
            val: Operand::Reg(v),
        });
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(c)),
        });
        let mut f = fb.build();
        let r = run_tm_passes(&mut f);
        assert_eq!(r.s1r, 1);
        assert_eq!(r.loads_removed, 0, "value is still live");
        assert_eq!(f.count_insts(|i| matches!(i, Inst::TmLoad { .. })), 1);
    }

    #[test]
    fn address_redefinition_blocks_inc_match() {
        // r0 is overwritten between load and store: *different* address.
        let mut fb = FunctionBuilder::new("redef", 1);
        let v = fb.reg();
        let s = fb.reg();
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: s,
            a: Operand::Reg(v),
            b: Operand::Imm(1),
        });
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: 0,
            a: Operand::Reg(0),
            b: Operand::Imm(8),
        });
        fb.push(Inst::TmStore {
            addr: Operand::Reg(0),
            val: Operand::Reg(s),
        });
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret { val: None });
        let mut f = fb.build();
        let r = tm_mark(&mut f);
        assert_eq!(r.sw, 0, "must not match across an address redefinition");
    }

    #[test]
    fn liveness_across_blocks_protects_loads() {
        // Load in block 0, use in block 1 — never-live analysis must see
        // the cross-block use.
        let mut fb = FunctionBuilder::new("x", 1);
        let v = fb.reg();
        let next = fb.block("next");
        fb.switch_to(0);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Br { target: next });
        fb.switch_to(next);
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(v)),
        });
        let mut f = fb.build();
        let r = tm_optimize(&mut f);
        assert_eq!(r.loads_removed, 0);
    }
}
