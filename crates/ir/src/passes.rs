//! The paper's GCC middle-end passes, reimplemented over our IR.
//!
//! * [`tm_widen`] — range-widened promotion: the abstract interpreter
//!   ([`crate::analysis::absint`]) proves that `cmp (load + c), k` is
//!   the relation `cmp load, k - c` (no-wrap certificate from the
//!   interval domain), reaching promotions the syntactic matcher below
//!   structurally cannot see;
//! * [`tm_mark`] — pattern detection (§6): conditional expressions with a
//!   transactional-load origin become `_ITM_S1R`/`_ITM_S2R` builtins;
//!   transactional stores of `load ± local` on the same address become
//!   `_ITM_SW`. Origins are tracked through **whole-function reaching
//!   definitions** ([`crate::analysis::ReachingDefs`]): unlike the
//!   seed's block-local matcher, a comparison whose load sits in a
//!   predecessor block is still promoted, provided no path between the
//!   load and the use writes memory, crosses an atomic-region boundary,
//!   or redefines a register the re-evaluated address depends on (see
//!   [`crate::analysis::patterns`] for the exact conditions).
//! * [`tm_optimize`] — never-live elimination (§6): whole-function
//!   liveness ([`crate::analysis::Liveness`]) removes transactional
//!   loads whose result is never live — in particular the read half of
//!   every matched `inc` — plus the pure ALU instructions orphaned by
//!   the rewrite. The pass is conservative: an instruction is removed
//!   only when liveness *guarantees* the value is dead along every
//!   path. Semantic builtins (`TmCmpVal`/`TmCmpAddr`) are kept even
//!   when their boolean is dead: they record a relation in the semantic
//!   read set, and we preserve the seed's conservative choice.
//!
//! Both passes run under the strict verifier: [`run_tm_passes_checked`]
//! verifies the function before `tm_mark`, between the passes, and
//! after `tm_optimize`, so a pass bug surfaces as a [`VerifyError`]
//! instead of silent miscompilation.

use crate::analysis::absint::{widen_candidates, AbsInt, Regions, WidenCandidate};
use crate::analysis::{verify, Cfg, CmpMatch, Liveness, PatternCtx, ReachingDefs, VerifyError};
use crate::ir::{Function, Inst, Operand};

/// Statistics reported by a pass run (used by the Figure-2 harness to
/// show the 2→1 TM-call reduction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassReport {
    /// `Cmp` instructions rewritten to `_ITM_S1R` by range widening
    /// (abstract interpretation), which the syntactic matcher declined.
    pub widened: usize,
    /// `Cmp` instructions rewritten to `_ITM_S1R`.
    pub s1r: usize,
    /// `Cmp` instructions rewritten to `_ITM_S2R`.
    pub s2r: usize,
    /// `TmStore` instructions rewritten to `_ITM_SW`.
    pub sw: usize,
    /// Transactional loads removed as never-live.
    pub loads_removed: usize,
    /// Pure ALU instructions removed as never-live.
    pub pure_removed: usize,
}

/// The range-widening pass: rewrite `cmp.OP (tmload a) + c, k` into
/// `tmcmp.OP a, k - c` when the abstract interpreter proves the `+ c`
/// cannot wrap (see [`crate::analysis::absint::widen`]). Runs *before*
/// [`tm_mark`] on the original IR, where the guards feeding the
/// interval refinement are still plain `Cmp`s; the `c == 0` cases are
/// deliberately left to the syntactic matcher.
pub fn tm_widen(func: &mut Function) -> PassReport {
    let mut report = PassReport::default();
    let cfg = Cfg::new(func);
    let rd = ReachingDefs::compute(func, &cfg);
    let absint = AbsInt::compute(func, &cfg);
    let regions = Regions::compute(func, &cfg);
    // Like tm_mark: a rewritten Cmp defines the same register at the
    // same position, so collecting first keeps the analyses valid.
    let cands = widen_candidates(func, &cfg, &rd, &absint, &regions);
    for cand in cands {
        if let WidenCandidate::Promote {
            pos,
            dst,
            op,
            addr,
            k_prime,
            ..
        } = cand
        {
            func.blocks[pos.0].insts[pos.1] = Inst::TmCmpVal {
                op,
                dst,
                addr,
                val: Operand::Imm(k_prime),
            };
            report.widened += 1;
        }
    }
    report
}

/// The `tm_mark` extension: detect and rewrite the paper's `cmp` and
/// `inc` patterns across basic blocks. Leaves the feeding loads in
/// place — [`tm_optimize`] removes the ones that became dead.
pub fn tm_mark(func: &mut Function) -> PassReport {
    let mut report = PassReport::default();
    // Rewrites neither add nor remove definitions (a promoted `Cmp`
    // defines the same register at the same position; a promoted
    // `TmStore` still defines nothing), so the analyses stay valid
    // while we collect rewrites; they are applied afterwards.
    let cfg = Cfg::new(func);
    let rd = ReachingDefs::compute(func, &cfg);
    let cx = PatternCtx::new(func, &cfg, &rd);
    let mut rewrites: Vec<((usize, usize), Inst)> = Vec::new();
    for (b, block) in func.blocks.iter().enumerate() {
        for (i, inst) in block.insts.iter().enumerate() {
            match inst {
                Inst::Cmp { .. } => match cx.match_cmp((b, i)) {
                    CmpMatch::S2R { op, dst, a, b: rb } => {
                        rewrites.push(((b, i), Inst::TmCmpAddr { op, dst, a, b: rb }));
                        report.s2r += 1;
                    }
                    CmpMatch::S1R { op, dst, addr, val } => {
                        rewrites.push(((b, i), Inst::TmCmpVal { op, dst, addr, val }));
                        report.s1r += 1;
                    }
                    CmpMatch::No { .. } => {}
                },
                Inst::TmStore { .. } => {
                    if let Ok(m) = cx.match_inc((b, i)) {
                        rewrites.push((
                            (b, i),
                            Inst::TmInc {
                                addr: m.addr,
                                delta: m.delta,
                                negate: m.negate,
                            },
                        ));
                        report.sw += 1;
                    }
                }
                _ => {}
            }
        }
    }
    for ((b, i), inst) in rewrites {
        func.blocks[b].insts[i] = inst;
    }
    report
}

/// Is this instruction removable when its destination is dead?
/// Transactional loads are — that is the point of the pass (the TM
/// side-effect of a never-live read is pure overhead). Stores, semantic
/// builtins, and control flow are not: `TmCmpVal`/`TmCmpAddr` record a
/// relation in the semantic read set, and we conservatively keep them
/// even when the boolean result is dead.
fn removable(inst: &Inst) -> (bool, bool) {
    // (is_tm_load, is_pure_alu)
    match inst {
        Inst::TmLoad { .. } => (true, false),
        Inst::Mov { .. } | Inst::Bin { .. } | Inst::Cmp { .. } | Inst::Not { .. } => (false, true),
        _ => (false, false),
    }
}

/// The `tm_optimize` pass: iteratively remove never-live transactional
/// loads and the pure instructions orphaned by removal, to a fixpoint.
pub fn tm_optimize(func: &mut Function) -> PassReport {
    let mut report = PassReport::default();
    loop {
        let cfg = Cfg::new(func);
        let live = Liveness::compute(func, &cfg);
        let mut removed_any = false;
        for b in 0..func.blocks.len() {
            let mut live = live.live_out[b].clone();
            let mut keep = vec![true; func.blocks[b].insts.len()];
            let mut uses = Vec::new();
            for (ii, inst) in func.blocks[b].insts.iter().enumerate().rev() {
                let dead_def = inst.def().map(|d| !live[d as usize]).unwrap_or(false);
                let (is_load, is_pure) = removable(inst);
                if dead_def && (is_load || is_pure) {
                    keep[ii] = false;
                    if is_load {
                        report.loads_removed += 1;
                    } else {
                        report.pure_removed += 1;
                    }
                    removed_any = true;
                    // A removed instruction contributes neither defs nor
                    // uses to liveness above it.
                    continue;
                }
                if let Some(d) = inst.def() {
                    live[d as usize] = false;
                }
                uses.clear();
                inst.uses(&mut uses);
                for &r in &uses {
                    live[r as usize] = true;
                }
            }
            if keep.iter().any(|k| !k) {
                let mut idx = 0;
                func.blocks[b].insts.retain(|_| {
                    let k = keep[idx];
                    idx += 1;
                    k
                });
            }
        }
        if !removed_any {
            return report;
        }
    }
}

/// Run the full pipeline (the "modified GCC" configuration) —
/// `tm_widen`, `tm_mark`, `tm_optimize` in order — with the strict
/// verifier before, between, and after every pass, and merge the
/// reports.
pub fn run_tm_passes_checked(func: &mut Function) -> Result<PassReport, VerifyError> {
    verify(func)?;
    let w = tm_widen(func);
    verify(func)?;
    let mut r = tm_mark(func);
    verify(func)?;
    let o = tm_optimize(func);
    verify(func)?;
    r.widened = w.widened;
    r.loads_removed = o.loads_removed;
    r.pure_removed = o.pure_removed;
    Ok(r)
}

/// Run both passes in order and merge the reports, panicking if the
/// verifier rejects the function before or after a pass (a verifier
/// failure here is a pass bug or invalid input IR — use
/// [`run_tm_passes_checked`] to handle it as a value).
pub fn run_tm_passes(func: &mut Function) -> PassReport {
    run_tm_passes_checked(func).unwrap_or_else(|e| panic!("IR verifier rejected function: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, FunctionBuilder, Operand};
    use semtm_core::CmpOp;

    /// `if (*a > 0) ret 1 else ret 0` — the canonical S1R pattern.
    fn cmp_pattern() -> Function {
        let mut fb = FunctionBuilder::new("p", 1); // r0 = addr
        let v = fb.reg();
        let c = fb.reg();
        let t = fb.block("then");
        let e = fb.block("else");
        fb.switch_to(0);
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Cmp {
            op: CmpOp::Gt,
            dst: c,
            a: Operand::Reg(v),
            b: Operand::Imm(0),
        });
        fb.push(Inst::CondBr {
            cond: Operand::Reg(c),
            then_to: t,
            else_to: e,
        });
        fb.switch_to(t);
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret {
            val: Some(Operand::Imm(1)),
        });
        fb.switch_to(e);
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret {
            val: Some(Operand::Imm(0)),
        });
        fb.build()
    }

    /// `*a = *a + 5` — the canonical SW pattern.
    fn inc_pattern(op: BinOp, swapped: bool) -> Function {
        let mut fb = FunctionBuilder::new("i", 1);
        let v = fb.reg();
        let s = fb.reg();
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        let (a, b) = if swapped {
            (Operand::Imm(5), Operand::Reg(v))
        } else {
            (Operand::Reg(v), Operand::Imm(5))
        };
        fb.push(Inst::Bin { op, dst: s, a, b });
        fb.push(Inst::TmStore {
            addr: Operand::Reg(0),
            val: Operand::Reg(s),
        });
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret { val: None });
        fb.build()
    }

    #[test]
    fn cmp_becomes_s1r() {
        let mut f = cmp_pattern();
        assert_eq!(f.barrier_count(), 1, "one load before the passes");
        let r = run_tm_passes(&mut f);
        assert_eq!(r.s1r, 1);
        assert_eq!(r.loads_removed, 1, "the feeding load must die");
        assert_eq!(f.barrier_count(), 1, "exactly one S1R barrier remains");
        assert_eq!(f.count_insts(|i| matches!(i, Inst::TmCmpVal { .. })), 1);
        assert_eq!(f.count_insts(|i| matches!(i, Inst::TmLoad { .. })), 0);
    }

    #[test]
    fn add_and_sub_become_sw() {
        for (op, swapped, negate) in [
            (BinOp::Add, false, false),
            (BinOp::Add, true, false),
            (BinOp::Sub, false, true),
        ] {
            let mut f = inc_pattern(op, swapped);
            let r = run_tm_passes(&mut f);
            assert_eq!(r.sw, 1, "{op:?} swapped={swapped}");
            assert_eq!(r.loads_removed, 1);
            let incs: Vec<bool> = f
                .blocks
                .iter()
                .flat_map(|b| b.insts.iter())
                .filter_map(|i| match i {
                    Inst::TmInc { negate, .. } => Some(*negate),
                    _ => None,
                })
                .collect();
            assert_eq!(incs, vec![negate]);
            assert_eq!(f.barrier_count(), 1, "two TM calls became one");
        }
    }

    #[test]
    fn sub_with_load_on_right_is_not_an_inc() {
        // *a = 5 - *a must NOT become an increment.
        let mut f = inc_pattern(BinOp::Sub, true);
        let r = run_tm_passes(&mut f);
        assert_eq!(r.sw, 0);
        assert_eq!(f.count_insts(|i| matches!(i, Inst::TmStore { .. })), 1);
    }

    #[test]
    fn cmp_of_two_loads_becomes_s2r() {
        let mut fb = FunctionBuilder::new("q", 2);
        let v1 = fb.reg();
        let v2 = fb.reg();
        let c = fb.reg();
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v1,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::TmLoad {
            dst: v2,
            addr: Operand::Reg(1),
        });
        fb.push(Inst::Cmp {
            op: CmpOp::Eq,
            dst: c,
            a: Operand::Reg(v1),
            b: Operand::Reg(v2),
        });
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(c)),
        });
        let mut f = fb.build();
        let r = run_tm_passes(&mut f);
        assert_eq!(r.s2r, 1);
        assert_eq!(r.loads_removed, 2);
        assert_eq!(f.barrier_count(), 1, "three TM calls became one");
    }

    #[test]
    fn live_load_is_kept_after_cmp_rewrite() {
        // The loaded value is also stored back — the load must survive.
        let mut fb = FunctionBuilder::new("keep", 1);
        let v = fb.reg();
        let c = fb.reg();
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Cmp {
            op: CmpOp::Gt,
            dst: c,
            a: Operand::Reg(v),
            b: Operand::Imm(0),
        });
        fb.push(Inst::TmStore {
            addr: Operand::Reg(0),
            val: Operand::Reg(v),
        });
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(c)),
        });
        let mut f = fb.build();
        let r = run_tm_passes(&mut f);
        assert_eq!(r.s1r, 1);
        assert_eq!(r.loads_removed, 0, "value is still live");
        assert_eq!(f.count_insts(|i| matches!(i, Inst::TmLoad { .. })), 1);
    }

    #[test]
    fn address_redefinition_blocks_inc_match() {
        // r0 is overwritten between load and store: *different* address.
        let mut fb = FunctionBuilder::new("redef", 1);
        let v = fb.reg();
        let s = fb.reg();
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: s,
            a: Operand::Reg(v),
            b: Operand::Imm(1),
        });
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: 0,
            a: Operand::Reg(0),
            b: Operand::Imm(8),
        });
        fb.push(Inst::TmStore {
            addr: Operand::Reg(0),
            val: Operand::Reg(s),
        });
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret { val: None });
        let mut f = fb.build();
        let r = tm_mark(&mut f);
        assert_eq!(r.sw, 0, "must not match across an address redefinition");
    }

    #[test]
    fn address_redefinition_blocks_cmp_match() {
        // Regression (satellite fix): the address register is redefined
        // between the load and the compare. The seed's syntactic
        // matcher promoted this to `tmcmp r0, 0`, which would re-read
        // the *new* address; reaching-definition identity rejects it.
        let mut fb = FunctionBuilder::new("cmp_redef", 1);
        let v = fb.reg();
        let c = fb.reg();
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: 0,
            a: Operand::Reg(0),
            b: Operand::Imm(8),
        });
        fb.push(Inst::Cmp {
            op: CmpOp::Gt,
            dst: c,
            a: Operand::Reg(v),
            b: Operand::Imm(0),
        });
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(c)),
        });
        let mut f = fb.build();
        let r = run_tm_passes(&mut f);
        assert_eq!(r.s1r, 0, "promotion would compare the wrong address");
        assert_eq!(f.count_insts(|i| matches!(i, Inst::Cmp { .. })), 1);
    }

    #[test]
    fn intervening_store_blocks_cmp_match() {
        // Regression: the transaction writes the compared address
        // between the load and the compare; a promoted `tmcmp` would
        // observe the new value instead of the loaded one.
        let mut fb = FunctionBuilder::new("cmp_wr", 1);
        let v = fb.reg();
        let c = fb.reg();
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::TmStore {
            addr: Operand::Reg(0),
            val: Operand::Imm(99),
        });
        fb.push(Inst::Cmp {
            op: CmpOp::Gt,
            dst: c,
            a: Operand::Reg(v),
            b: Operand::Imm(0),
        });
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(c)),
        });
        let mut f = fb.build();
        let r = run_tm_passes(&mut f);
        assert_eq!(r.s1r, 0, "promotion would observe the stored value");
    }

    #[test]
    fn intervening_store_blocks_inc_match() {
        // Regression: `*a = old(*a) + 1` with a store to `*a` in
        // between is NOT an increment of the current value.
        let mut fb = FunctionBuilder::new("inc_wr", 1);
        let v = fb.reg();
        let s = fb.reg();
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::TmStore {
            addr: Operand::Reg(0),
            val: Operand::Imm(5),
        });
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: s,
            a: Operand::Reg(v),
            b: Operand::Imm(1),
        });
        fb.push(Inst::TmStore {
            addr: Operand::Reg(0),
            val: Operand::Reg(s),
        });
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret { val: None });
        let mut f = fb.build();
        let r = run_tm_passes(&mut f);
        assert_eq!(r.sw, 0, "must not fold across an intervening store");
    }

    #[test]
    fn cross_block_cmp_becomes_s1r() {
        // The acceptance pattern: load in one block, compare in a
        // successor — the seed's block-local matcher always missed it.
        let mut fb = FunctionBuilder::new("xb", 1);
        let v = fb.reg();
        let c = fb.reg();
        let test = fb.block("test");
        let t = fb.block("t");
        let e = fb.block("e");
        fb.switch_to(0);
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Br { target: test });
        fb.switch_to(test);
        fb.push(Inst::Cmp {
            op: CmpOp::Gt,
            dst: c,
            a: Operand::Reg(v),
            b: Operand::Imm(0),
        });
        fb.push(Inst::CondBr {
            cond: Operand::Reg(c),
            then_to: t,
            else_to: e,
        });
        fb.switch_to(t);
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret {
            val: Some(Operand::Imm(1)),
        });
        fb.switch_to(e);
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret {
            val: Some(Operand::Imm(0)),
        });
        let mut f = fb.build();
        let before = f.barrier_count();
        let r = run_tm_passes(&mut f);
        assert_eq!(r.s1r, 1, "cross-block comparison is promoted");
        assert_eq!(r.loads_removed, 1, "the cross-block feeding load dies");
        assert_eq!(f.barrier_count(), before, "load+cmp became one S1R");
        assert_eq!(f.count_insts(|i| matches!(i, Inst::TmLoad { .. })), 0);
    }

    #[test]
    fn liveness_across_blocks_protects_loads() {
        // Load in block 0, use in block 1 — never-live analysis must see
        // the cross-block use.
        let mut fb = FunctionBuilder::new("x", 1);
        let v = fb.reg();
        let next = fb.block("next");
        fb.switch_to(0);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Br { target: next });
        fb.switch_to(next);
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(v)),
        });
        let mut f = fb.build();
        let r = tm_optimize(&mut f);
        assert_eq!(r.loads_removed, 0);
    }

    #[test]
    fn checked_passes_reject_invalid_ir() {
        // A function whose only path returns inside an open region.
        let f = Function {
            name: "openret".into(),
            num_args: 0,
            num_regs: 0,
            blocks: vec![crate::ir::Block {
                label: "entry".into(),
                insts: vec![Inst::TmBegin, Inst::Ret { val: None }],
            }],
        };
        let err = run_tm_passes_checked(&mut f.clone()).unwrap_err();
        assert!(err.message.contains("still open"), "{err}");
    }
}
