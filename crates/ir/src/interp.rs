//! The transactional IR interpreter — our stand-in for GCC's code
//! generation plus libitm dispatch.
//!
//! Executing a [`Function`] models a thread running compiled code:
//!
//! * outside `tmbegin`/`tmend`, barriers degrade to direct heap
//!   accesses;
//! * an atomic region executes under [`Stm::atomic`]: the region body is
//!   re-run from its entry (with the registers captured at `tmbegin`) on
//!   every retry — exactly the abort-and-restart semantics of the GCC TM
//!   runtime;
//! * each barrier instruction performs **one** dispatch into the TM
//!   runtime. This is what makes the pass-driven 2→1 call reduction
//!   (`load`+`store` → `_ITM_SW`, `load`+`cmp` → `_ITM_S1R`) observable
//!   in the interpreter's dispatch counts, mirroring the paper's "GCC
//!   performs three indirect calls per TM call" overhead argument.
//!
//! The three Figure-2 configurations map to (pass?, algorithm):
//! unmodified GCC = no passes + NOrec; "NOrec Modified-GCC" = passes +
//! NOrec (builtins internally delegate to read/write); semantic = passes
//! + S-NOrec.

use crate::ir::{BlockId, Function, Inst, Operand};
use crate::lower::{LoweredFunction, Op};
use semtm_core::{Abort, Addr, Stm, Tx};
use std::sync::atomic::{AtomicU64, Ordering};

/// Why execution failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The per-call instruction budget was exhausted (runaway loop).
    StepLimit,
    /// `tmend` without a matching `tmbegin`.
    UnbalancedEnd,
    /// A block fell through without a terminator (validation should have
    /// caught this).
    FellThrough,
    /// An address operand was negative.
    BadAddress(i64),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::StepLimit => write!(f, "instruction budget exhausted"),
            ExecError::UnbalancedEnd => write!(f, "tmend outside an atomic region"),
            ExecError::FellThrough => write!(f, "block fell through"),
            ExecError::BadAddress(a) => write!(f, "negative heap address {a}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Cumulative dispatch counters (TM runtime calls issued), the
/// interpreter-level metric behind the call-reduction argument.
#[derive(Default)]
pub struct DispatchCounters {
    /// Barrier calls issued inside atomic regions.
    pub tm_calls: AtomicU64,
    /// Atomic regions entered (attempts, including retries).
    pub region_attempts: AtomicU64,
}

impl DispatchCounters {
    /// Barrier calls so far.
    pub fn tm_calls(&self) -> u64 {
        self.tm_calls.load(Ordering::Relaxed)
    }
    /// Region attempts so far.
    pub fn region_attempts(&self) -> u64 {
        self.region_attempts.load(Ordering::Relaxed)
    }
}

/// The interpreter. Cheap to construct; share one per thread or per
/// experiment (counters are atomic).
pub struct Interp<'a> {
    stm: &'a Stm,
    /// Dispatch statistics.
    pub counters: DispatchCounters,
    /// Instruction budget per `execute` call.
    pub step_limit: u64,
}

enum Flow {
    Continue,
    Jump(BlockId),
    Return(Option<i64>),
    RegionEnd,
}

impl<'a> Interp<'a> {
    /// Create an interpreter over `stm`.
    pub fn new(stm: &'a Stm) -> Interp<'a> {
        Interp {
            stm,
            counters: DispatchCounters::default(),
            step_limit: 10_000_000,
        }
    }

    fn addr(v: i64) -> Result<Addr, ExecError> {
        if v < 0 {
            Err(ExecError::BadAddress(v))
        } else {
            Ok(Addr::from_index(v as usize))
        }
    }

    /// Run `func` with `args`; returns the `ret` value.
    pub fn execute(&self, func: &Function, args: &[i64]) -> Result<Option<i64>, ExecError> {
        assert_eq!(args.len(), func.num_args as usize, "arity mismatch");
        let mut regs = vec![0i64; func.num_regs as usize];
        regs[..args.len()].copy_from_slice(args);
        let mut steps = 0u64;
        let mut block: BlockId = 0;
        let mut idx = 0usize;
        loop {
            if idx >= func.blocks[block].insts.len() {
                return Err(ExecError::FellThrough);
            }
            let inst = &func.blocks[block].insts[idx];
            steps += 1;
            if steps > self.step_limit {
                return Err(ExecError::StepLimit);
            }
            if matches!(inst, Inst::TmBegin) {
                // Execute the region atomically; the body re-runs from
                // here on every retry with the captured registers.
                let entry_regs = regs.clone();
                let entry = (block, idx + 1);
                let mut steps_in_region = 0u64;
                // Retry loop with contention-manager backoff. Region-level
                // execution errors (step budget, structural problems) must
                // NOT commit partial effects, so they abort the attempt and
                // surface through `exec_err`.
                let mut backoff =
                    semtm_core::util::Backoff::new(semtm_core::util::thread_token(), 16, 4096);
                let mut attempt = 0u32;
                let (b, i) = loop {
                    let mut exec_err: Option<ExecError> = None;
                    let mut r = entry_regs.clone();
                    let out = self.stm.try_atomic(|tx| {
                        self.counters
                            .region_attempts
                            .fetch_add(1, Ordering::Relaxed);
                        match self.run_region(
                            func,
                            tx,
                            &mut r,
                            entry.0,
                            entry.1,
                            &mut steps_in_region,
                        )? {
                            RegionExit::At(b, i) => Ok((b, i)),
                            RegionExit::Error(e) => {
                                exec_err = Some(e);
                                Err(Abort::explicit())
                            }
                        }
                    });
                    match out {
                        Ok(pos) => {
                            regs = r;
                            break pos;
                        }
                        Err(_) => {
                            if let Some(e) = exec_err {
                                return Err(e);
                            }
                            backoff.pause(attempt);
                            // Under the deterministic scheduler a retry is a
                            // futile wait (the rival must run for it to fare
                            // better) — same convention as `Stm::atomic`.
                            semtm_core::sched::spin();
                            attempt = attempt.saturating_add(1);
                        }
                    }
                };
                steps += steps_in_region;
                if steps > self.step_limit {
                    return Err(ExecError::StepLimit);
                }
                block = b;
                idx = i;
                continue;
            }
            match self.step_nontx(inst, &mut regs)? {
                Flow::Continue => idx += 1,
                Flow::Jump(b) => {
                    block = b;
                    idx = 0;
                }
                Flow::Return(v) => return Ok(v),
                Flow::RegionEnd => return Err(ExecError::UnbalancedEnd),
            }
        }
    }

    /// Execute one atomic region from (block, idx) to its matching
    /// `tmend`, issuing TM barriers through `tx`.
    fn run_region(
        &self,
        func: &Function,
        tx: &mut Tx<'_>,
        regs: &mut [i64],
        mut block: BlockId,
        mut idx: usize,
        steps: &mut u64,
    ) -> Result<RegionExit, Abort> {
        let mut depth = 1u32;
        loop {
            if idx >= func.blocks[block].insts.len() {
                return Ok(RegionExit::Error(ExecError::FellThrough));
            }
            *steps += 1;
            if *steps > self.step_limit {
                return Ok(RegionExit::Error(ExecError::StepLimit));
            }
            let inst = &func.blocks[block].insts[idx];
            match inst {
                Inst::TmBegin => {
                    // Flattened nesting, as in GCC's TM runtime.
                    depth += 1;
                    idx += 1;
                    continue;
                }
                Inst::TmEnd => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(RegionExit::At(block, idx + 1));
                    }
                    idx += 1;
                    continue;
                }
                _ => {}
            }
            match self.step_tx(inst, regs, tx)? {
                Flow::Continue => idx += 1,
                Flow::Jump(b) => {
                    block = b;
                    idx = 0;
                }
                Flow::Return(_) => {
                    return Ok(RegionExit::Error(ExecError::UnbalancedEnd));
                }
                Flow::RegionEnd => unreachable!(),
            }
        }
    }

    fn operand(regs: &[i64], o: Operand) -> i64 {
        match o {
            Operand::Reg(r) => regs[r as usize],
            Operand::Imm(v) => v,
        }
    }

    /// Pure (non-barrier) portion of the step logic shared by both modes.
    fn step_common(inst: &Inst, regs: &mut [i64]) -> Option<Flow> {
        let val = |o: Operand, regs: &[i64]| Self::operand(regs, o);
        match *inst {
            Inst::Mov { dst, src } => {
                regs[dst as usize] = val(src, regs);
            }
            Inst::Bin { op, dst, a, b } => {
                regs[dst as usize] = op.eval(val(a, regs), val(b, regs));
            }
            Inst::Cmp { op, dst, a, b } => {
                regs[dst as usize] = op.eval(val(a, regs), val(b, regs)) as i64;
            }
            Inst::Not { dst, src } => {
                regs[dst as usize] = (val(src, regs) == 0) as i64;
            }
            Inst::Br { target } => return Some(Flow::Jump(target)),
            Inst::CondBr {
                cond,
                then_to,
                else_to,
            } => {
                return Some(Flow::Jump(if val(cond, regs) != 0 {
                    then_to
                } else {
                    else_to
                }))
            }
            Inst::Ret { val: v } => return Some(Flow::Return(v.map(|o| val(o, regs)))),
            _ => return None, // barrier or region marker: caller handles
        }
        Some(Flow::Continue)
    }

    /// Non-transactional step (outside atomic regions): barriers act
    /// directly on the heap.
    fn step_nontx(&self, inst: &Inst, regs: &mut [i64]) -> Result<Flow, ExecError> {
        if let Some(flow) = Self::step_common(inst, regs) {
            return Ok(flow);
        }
        let val = |o: Operand, regs: &[i64]| Self::operand(regs, o);
        match *inst {
            Inst::TmLoad { dst, addr } => {
                regs[dst as usize] = self.stm.read_now(Self::addr(val(addr, regs))?);
            }
            Inst::TmStore { addr, val: v } => {
                self.stm
                    .write_now(Self::addr(val(addr, regs))?, val(v, regs));
            }
            Inst::TmCmpVal {
                op,
                dst,
                addr,
                val: v,
            } => {
                let lhs = self.stm.read_now(Self::addr(val(addr, regs))?);
                regs[dst as usize] = op.eval(lhs, val(v, regs)) as i64;
            }
            Inst::TmCmpAddr { op, dst, a, b } => {
                let lhs = self.stm.read_now(Self::addr(val(a, regs))?);
                let rhs = self.stm.read_now(Self::addr(val(b, regs))?);
                regs[dst as usize] = op.eval(lhs, rhs) as i64;
            }
            Inst::TmInc {
                addr,
                delta,
                negate,
            } => {
                let a = Self::addr(val(addr, regs))?;
                let d = val(delta, regs);
                let d = if negate { -d } else { d };
                self.stm.write_now(a, self.stm.read_now(a).wrapping_add(d));
            }
            Inst::TmEnd => return Ok(Flow::RegionEnd),
            _ => unreachable!("step_common covers the rest"),
        }
        Ok(Flow::Continue)
    }

    /// Transactional step: one TM-runtime dispatch per barrier.
    fn step_tx(&self, inst: &Inst, regs: &mut [i64], tx: &mut Tx<'_>) -> Result<Flow, Abort> {
        if let Some(flow) = Self::step_common(inst, regs) {
            return Ok(flow);
        }
        let val = |o: Operand, regs: &[i64]| Self::operand(regs, o);
        self.counters.tm_calls.fetch_add(1, Ordering::Relaxed);
        let bad = |_v: i64| Abort::explicit(); // negative address: treated as a failed attempt
        match *inst {
            Inst::TmLoad { dst, addr } => {
                let a = val(addr, regs);
                if a < 0 {
                    return Err(bad(a));
                }
                regs[dst as usize] = tx.read(Addr::from_index(a as usize))?;
            }
            Inst::TmStore { addr, val: v } => {
                let a = val(addr, regs);
                if a < 0 {
                    return Err(bad(a));
                }
                tx.write(Addr::from_index(a as usize), val(v, regs))?;
            }
            Inst::TmCmpVal {
                op,
                dst,
                addr,
                val: v,
            } => {
                let a = val(addr, regs);
                if a < 0 {
                    return Err(bad(a));
                }
                regs[dst as usize] = tx.cmp(Addr::from_index(a as usize), op, val(v, regs))? as i64;
            }
            Inst::TmCmpAddr { op, dst, a, b } => {
                let av = val(a, regs);
                let bv = val(b, regs);
                if av < 0 || bv < 0 {
                    return Err(bad(av.min(bv)));
                }
                regs[dst as usize] = tx.cmp_addr(
                    Addr::from_index(av as usize),
                    op,
                    Addr::from_index(bv as usize),
                )? as i64;
            }
            Inst::TmInc {
                addr,
                delta,
                negate,
            } => {
                let a = val(addr, regs);
                if a < 0 {
                    return Err(bad(a));
                }
                let d = val(delta, regs);
                tx.inc(Addr::from_index(a as usize), if negate { -d } else { d })?;
            }
            _ => unreachable!("TmBegin/TmEnd handled by run_region"),
        }
        Ok(Flow::Continue)
    }
}

enum RegionExit {
    At(BlockId, usize),
    Error(ExecError),
}

enum LoweredExit {
    At(usize),
    Error(ExecError),
}

impl<'a> Interp<'a> {
    /// Run a pre-lowered `func` with `args` — the threaded-dispatch
    /// twin of [`Interp::execute`].
    ///
    /// Observationally identical to executing the source function (same
    /// return value, same heap effects, same barrier dispatches — the
    /// differential oracle checks all three on every backend), but each
    /// step is one pc-indexed op fetch and one match: no
    /// `blocks[block].insts[idx]` double indirection, no end-of-block
    /// test, and an atomic-region retry resets a single pc. This is the
    /// execution mode the Figure-2 "GCC" experiments use, so the
    /// interpreter tax they measure is dispatch into the TM runtime,
    /// not tree-walking overhead.
    pub fn execute_lowered(
        &self,
        func: &LoweredFunction,
        args: &[i64],
    ) -> Result<Option<i64>, ExecError> {
        assert_eq!(args.len(), func.num_args as usize, "arity mismatch");
        let mut regs = vec![0i64; func.num_regs as usize];
        regs[..args.len()].copy_from_slice(args);
        let mut steps = 0u64;
        let mut pc = 0usize;
        let val = |o: Operand, regs: &[i64]| Self::operand(regs, o);
        loop {
            let Some(op) = func.ops.get(pc) else {
                return Err(ExecError::FellThrough);
            };
            steps += 1;
            if steps > self.step_limit {
                return Err(ExecError::StepLimit);
            }
            if matches!(op, Op::TmBegin) {
                // Same retry protocol as `execute`: the region re-runs
                // from its entry pc with the registers captured at
                // `tmbegin`, under contention-manager backoff.
                let entry_regs = regs.clone();
                let entry_pc = pc + 1;
                let mut steps_in_region = 0u64;
                let mut backoff =
                    semtm_core::util::Backoff::new(semtm_core::util::thread_token(), 16, 4096);
                let mut attempt = 0u32;
                let next_pc = loop {
                    let mut exec_err: Option<ExecError> = None;
                    let mut r = entry_regs.clone();
                    let out = self.stm.try_atomic(|tx| {
                        self.counters
                            .region_attempts
                            .fetch_add(1, Ordering::Relaxed);
                        match self.run_region_lowered(
                            func,
                            tx,
                            &mut r,
                            entry_pc,
                            &mut steps_in_region,
                        )? {
                            LoweredExit::At(p) => Ok(p),
                            LoweredExit::Error(e) => {
                                exec_err = Some(e);
                                Err(Abort::explicit())
                            }
                        }
                    });
                    match out {
                        Ok(p) => {
                            regs = r;
                            break p;
                        }
                        Err(_) => {
                            if let Some(e) = exec_err {
                                return Err(e);
                            }
                            backoff.pause(attempt);
                            semtm_core::sched::spin();
                            attempt = attempt.saturating_add(1);
                        }
                    }
                };
                steps += steps_in_region;
                if steps > self.step_limit {
                    return Err(ExecError::StepLimit);
                }
                pc = next_pc;
                continue;
            }
            match *op {
                Op::Mov { dst, src } => regs[dst as usize] = val(src, &regs),
                Op::Bin { op, dst, a, b } => {
                    regs[dst as usize] = op.eval(val(a, &regs), val(b, &regs));
                }
                Op::Cmp { op, dst, a, b } => {
                    regs[dst as usize] = op.eval(val(a, &regs), val(b, &regs)) as i64;
                }
                Op::Not { dst, src } => regs[dst as usize] = (val(src, &regs) == 0) as i64,
                Op::TmLoad { dst, addr } => {
                    regs[dst as usize] = self.stm.read_now(Self::addr(val(addr, &regs))?);
                }
                Op::TmStore { addr, val: v } => {
                    self.stm
                        .write_now(Self::addr(val(addr, &regs))?, val(v, &regs));
                }
                Op::TmCmpVal {
                    op,
                    dst,
                    addr,
                    val: v,
                } => {
                    let lhs = self.stm.read_now(Self::addr(val(addr, &regs))?);
                    regs[dst as usize] = op.eval(lhs, val(v, &regs)) as i64;
                }
                Op::TmCmpAddr { op, dst, a, b } => {
                    let lhs = self.stm.read_now(Self::addr(val(a, &regs))?);
                    let rhs = self.stm.read_now(Self::addr(val(b, &regs))?);
                    regs[dst as usize] = op.eval(lhs, rhs) as i64;
                }
                Op::TmInc {
                    addr,
                    delta,
                    negate,
                } => {
                    let a = Self::addr(val(addr, &regs))?;
                    let d = val(delta, &regs);
                    let d = if negate { -d } else { d };
                    self.stm.write_now(a, self.stm.read_now(a).wrapping_add(d));
                }
                Op::Jump { pc: target } => {
                    pc = target;
                    continue;
                }
                Op::JumpIf {
                    cond,
                    then_pc,
                    else_pc,
                } => {
                    pc = if val(cond, &regs) != 0 {
                        then_pc
                    } else {
                        else_pc
                    };
                    continue;
                }
                Op::Ret { val: v } => return Ok(v.map(|o| val(o, &regs))),
                Op::TmEnd => return Err(ExecError::UnbalancedEnd),
                Op::TmBegin => unreachable!("handled above"),
            }
            pc += 1;
        }
    }

    /// Execute one atomic region of a lowered function from `pc` to its
    /// matching `tmend`, issuing TM barriers through `tx`.
    fn run_region_lowered(
        &self,
        func: &LoweredFunction,
        tx: &mut Tx<'_>,
        regs: &mut [i64],
        mut pc: usize,
        steps: &mut u64,
    ) -> Result<LoweredExit, Abort> {
        let mut depth = 1u32;
        let val = |o: Operand, regs: &[i64]| Self::operand(regs, o);
        let addr_of = |v: i64| -> Result<Addr, Abort> {
            if v < 0 {
                // Negative address: treated as a failed attempt, same as
                // the tree-walker's transactional step.
                Err(Abort::explicit())
            } else {
                Ok(Addr::from_index(v as usize))
            }
        };
        loop {
            let Some(op) = func.ops.get(pc) else {
                return Ok(LoweredExit::Error(ExecError::FellThrough));
            };
            *steps += 1;
            if *steps > self.step_limit {
                return Ok(LoweredExit::Error(ExecError::StepLimit));
            }
            match *op {
                Op::TmBegin => {
                    // Flattened nesting, as in GCC's TM runtime.
                    depth += 1;
                }
                Op::TmEnd => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(LoweredExit::At(pc + 1));
                    }
                }
                Op::Mov { dst, src } => regs[dst as usize] = val(src, regs),
                Op::Bin { op, dst, a, b } => {
                    regs[dst as usize] = op.eval(val(a, regs), val(b, regs));
                }
                Op::Cmp { op, dst, a, b } => {
                    regs[dst as usize] = op.eval(val(a, regs), val(b, regs)) as i64;
                }
                Op::Not { dst, src } => regs[dst as usize] = (val(src, regs) == 0) as i64,
                Op::TmLoad { dst, addr } => {
                    self.counters.tm_calls.fetch_add(1, Ordering::Relaxed);
                    regs[dst as usize] = tx.read(addr_of(val(addr, regs))?)?;
                }
                Op::TmStore { addr, val: v } => {
                    self.counters.tm_calls.fetch_add(1, Ordering::Relaxed);
                    tx.write(addr_of(val(addr, regs))?, val(v, regs))?;
                }
                Op::TmCmpVal {
                    op,
                    dst,
                    addr,
                    val: v,
                } => {
                    self.counters.tm_calls.fetch_add(1, Ordering::Relaxed);
                    regs[dst as usize] =
                        tx.cmp(addr_of(val(addr, regs))?, op, val(v, regs))? as i64;
                }
                Op::TmCmpAddr { op, dst, a, b } => {
                    self.counters.tm_calls.fetch_add(1, Ordering::Relaxed);
                    regs[dst as usize] =
                        tx.cmp_addr(addr_of(val(a, regs))?, op, addr_of(val(b, regs))?)? as i64;
                }
                Op::TmInc {
                    addr,
                    delta,
                    negate,
                } => {
                    self.counters.tm_calls.fetch_add(1, Ordering::Relaxed);
                    let d = val(delta, regs);
                    tx.inc(addr_of(val(addr, regs))?, if negate { -d } else { d })?;
                }
                Op::Jump { pc: target } => {
                    pc = target;
                    continue;
                }
                Op::JumpIf {
                    cond,
                    then_pc,
                    else_pc,
                } => {
                    pc = if val(cond, regs) != 0 {
                        then_pc
                    } else {
                        else_pc
                    };
                    continue;
                }
                Op::Ret { .. } => {
                    return Ok(LoweredExit::Error(ExecError::UnbalancedEnd));
                }
            }
            pc += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, FunctionBuilder, Inst, Operand};
    use crate::passes::run_tm_passes;
    use semtm_core::{Algorithm, CmpOp, StmConfig};

    fn stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 12).orec_count(1 << 8))
    }

    /// `fn inc_if_positive(addr) { atomic { if *addr > 0 { *addr = *addr + 1 } } ret *addr }`
    fn inc_if_positive() -> crate::ir::Function {
        let mut fb = FunctionBuilder::new("inc_if_positive", 1);
        let v = fb.reg();
        let c = fb.reg();
        let v2 = fb.reg();
        let s = fb.reg();
        let out = fb.reg();
        let then_b = fb.block("then");
        let join = fb.block("join");
        fb.switch_to(0);
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Cmp {
            op: CmpOp::Gt,
            dst: c,
            a: Operand::Reg(v),
            b: Operand::Imm(0),
        });
        fb.push(Inst::CondBr {
            cond: Operand::Reg(c),
            then_to: then_b,
            else_to: join,
        });
        fb.switch_to(then_b);
        fb.push(Inst::TmLoad {
            dst: v2,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: s,
            a: Operand::Reg(v2),
            b: Operand::Imm(1),
        });
        fb.push(Inst::TmStore {
            addr: Operand::Reg(0),
            val: Operand::Reg(s),
        });
        fb.push(Inst::Br { target: join });
        fb.switch_to(join);
        fb.push(Inst::TmEnd);
        fb.push(Inst::TmLoad {
            dst: out,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(out)),
        });
        fb.build()
    }

    #[test]
    fn executes_region_and_returns() {
        let s = stm(Algorithm::SNOrec);
        let x = s.alloc_cell(5i64);
        let interp = Interp::new(&s);
        let f = inc_if_positive();
        let out = interp.execute(&f, &[x.index() as i64]).unwrap();
        assert_eq!(out, Some(6));
        assert_eq!(s.read_now(x), 6);
    }

    #[test]
    fn negative_guard_skips_increment() {
        let s = stm(Algorithm::SNOrec);
        let x = s.alloc_cell(-3i64);
        let interp = Interp::new(&s);
        let f = inc_if_positive();
        let out = interp.execute(&f, &[x.index() as i64]).unwrap();
        assert_eq!(out, Some(-3));
    }

    #[test]
    fn passes_preserve_program_semantics() {
        for alg in Algorithm::ALL {
            let s = stm(alg);
            let x = s.alloc_cell(5i64);
            let interp = Interp::new(&s);
            let mut f = inc_if_positive();
            let report = run_tm_passes(&mut f);
            assert!(report.s1r >= 1);
            assert_eq!(report.sw, 1);
            let out = interp.execute(&f, &[x.index() as i64]).unwrap();
            assert_eq!(out, Some(6), "{alg}");
            assert_eq!(s.read_now(x), 6, "{alg}");
        }
    }

    #[test]
    fn pass_reduces_tm_dispatches() {
        let s = stm(Algorithm::NOrec);
        let x = s.alloc_cell(5i64);

        let plain = inc_if_positive();
        let interp = Interp::new(&s);
        interp.execute(&plain, &[x.index() as i64]).unwrap();
        let plain_calls = interp.counters.tm_calls();

        s.write_now(x, 5);
        let mut passed = inc_if_positive();
        run_tm_passes(&mut passed);
        let interp2 = Interp::new(&s);
        interp2.execute(&passed, &[x.index() as i64]).unwrap();
        let passed_calls = interp2.counters.tm_calls();

        assert!(
            passed_calls < plain_calls,
            "modified-GCC dispatch count {passed_calls} must undercut {plain_calls}"
        );
    }

    #[test]
    fn step_limit_catches_infinite_loops() {
        let mut fb = FunctionBuilder::new("spin", 0);
        fb.push(Inst::Br { target: 0 });
        let f = fb.build();
        let s = stm(Algorithm::NOrec);
        let mut interp = Interp::new(&s);
        interp.step_limit = 1000;
        assert_eq!(interp.execute(&f, &[]), Err(ExecError::StepLimit));
    }

    #[test]
    fn unbalanced_tmend_reports_error() {
        let mut fb = FunctionBuilder::new("bad", 0);
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret { val: None });
        let f = fb.build();
        let s = stm(Algorithm::NOrec);
        let interp = Interp::new(&s);
        assert_eq!(interp.execute(&f, &[]), Err(ExecError::UnbalancedEnd));
    }

    #[test]
    fn lowered_execution_matches_tree_walker() {
        for alg in Algorithm::ALL {
            for passes in [false, true] {
                let mut f = inc_if_positive();
                if passes {
                    run_tm_passes(&mut f);
                }
                let lowered = crate::lower::lower(&f).unwrap();

                let s_tree = stm(alg);
                let x_tree = s_tree.alloc_cell(5i64);
                let tree = Interp::new(&s_tree);
                let tree_out = tree.execute(&f, &[x_tree.index() as i64]).unwrap();

                let s_flat = stm(alg);
                let x_flat = s_flat.alloc_cell(5i64);
                let flat = Interp::new(&s_flat);
                let flat_out = flat
                    .execute_lowered(&lowered, &[x_flat.index() as i64])
                    .unwrap();

                assert_eq!(tree_out, flat_out, "{alg} passes={passes}");
                assert_eq!(
                    s_tree.read_now(x_tree),
                    s_flat.read_now(x_flat),
                    "{alg} passes={passes}"
                );
                // Dispatch accounting must be identical too: lowering
                // changes how ops are fetched, never how many barriers
                // are issued.
                assert_eq!(
                    tree.counters.tm_calls(),
                    flat.counters.tm_calls(),
                    "{alg} passes={passes}"
                );
                assert_eq!(
                    tree.counters.region_attempts(),
                    flat.counters.region_attempts(),
                    "{alg} passes={passes}"
                );
            }
        }
    }

    #[test]
    fn lowered_step_limit_catches_infinite_loops() {
        let mut fb = FunctionBuilder::new("spin", 0);
        fb.push(Inst::Br { target: 0 });
        let lowered = crate::lower::lower(&fb.build()).unwrap();
        let s = stm(Algorithm::NOrec);
        let mut interp = Interp::new(&s);
        interp.step_limit = 1000;
        assert_eq!(
            interp.execute_lowered(&lowered, &[]),
            Err(ExecError::StepLimit)
        );
    }

    #[test]
    fn lowered_unbalanced_tmend_reports_error() {
        let mut fb = FunctionBuilder::new("bad", 0);
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret { val: None });
        let lowered = crate::lower::lower(&fb.build()).unwrap();
        let s = stm(Algorithm::NOrec);
        let interp = Interp::new(&s);
        assert_eq!(
            interp.execute_lowered(&lowered, &[]),
            Err(ExecError::UnbalancedEnd)
        );
    }

    #[test]
    fn lowered_concurrent_increments_are_atomic() {
        let s = stm(Algorithm::SNOrec);
        let x = s.alloc_cell(1i64);
        let mut f = inc_if_positive();
        run_tm_passes(&mut f);
        let lowered = crate::lower::lower(&f).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = &s;
                let lowered = &lowered;
                scope.spawn(move || {
                    let interp = Interp::new(s);
                    for _ in 0..100 {
                        interp
                            .execute_lowered(lowered, &[x.index() as i64])
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(s.read_now(x), 1 + 400);
    }

    #[test]
    fn concurrent_ir_increments_are_atomic() {
        let s = stm(Algorithm::SNOrec);
        let x = s.alloc_cell(1i64); // positive so every guard passes
        let mut f = inc_if_positive();
        run_tm_passes(&mut f);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = &s;
                let f = &f;
                scope.spawn(move || {
                    let interp = Interp::new(s);
                    for _ in 0..100 {
                        interp.execute(f, &[x.index() as i64]).unwrap();
                    }
                });
            }
        });
        assert_eq!(s.read_now(x), 1 + 400);
    }
}
