//! Flat threaded-dispatch lowering of [`Function`]s.
//!
//! The tree-walking interpreter ([`crate::interp::Interp::execute`])
//! pays a structural tax on every instruction: a nested
//! `blocks[block].insts[idx]` lookup (two bounds checks and a pointer
//! chase), an end-of-block test, and a branch resets both coordinates.
//! GCC-compiled code pays none of that — it is a flat instruction
//! stream with branch targets resolved to absolute addresses. This
//! module closes that fidelity gap for the Figure-2 "GCC mode"
//! experiments:
//!
//! * [`lower`] flattens a validated function into a single pc-indexed
//!   [`Op`] array, concatenating the blocks in order and rewriting every
//!   `Br`/`CondBr` block target into an absolute pc;
//! * [`crate::interp::Interp::execute_lowered`] drives the array with
//!   one op fetch and one match per step — no block indirection, and an
//!   atomic region re-runs from a retry by resetting a single pc.
//!
//! Lowering is purely structural: the op sequence executed, the TM
//! barriers issued, and therefore the dispatch counters are identical
//! to the tree-walker's, which the differential oracle
//! ([`crate::oracle`]) checks on every backend. Lowering requires a
//! function that passes [`Function::validate`]; in a valid function
//! every block ends in a terminator, so flat execution can never fall
//! off the end of one block into the next.

use crate::ir::{BinOp, Function, Inst, Operand, Reg};
use semtm_core::CmpOp;

/// One flat op: the [`Inst`] repertoire with branch targets resolved to
/// absolute pc indices.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = a <op> b`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = (a <relation> b)` as 0/1.
    Cmp {
        /// Relation.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = !src` (logical, 0/1).
    Not {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Transactional load `dst = *addr`.
    TmLoad {
        /// Destination register.
        dst: Reg,
        /// Heap word index.
        addr: Operand,
    },
    /// Transactional store `*addr = val`.
    TmStore {
        /// Heap word index.
        addr: Operand,
        /// Stored value.
        val: Operand,
    },
    /// Semantic builtin `_ITM_S1R`: `dst = (*addr <relation> val)`.
    TmCmpVal {
        /// Relation.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Heap word index (left side).
        addr: Operand,
        /// Constant/local right side.
        val: Operand,
    },
    /// Semantic builtin `_ITM_S2R`: `dst = (*a <relation> *b)`.
    TmCmpAddr {
        /// Relation.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Left heap word index.
        a: Operand,
        /// Right heap word index.
        b: Operand,
    },
    /// Semantic builtin `_ITM_SW`: `*addr += delta` (or `-=` when
    /// `negate`).
    TmInc {
        /// Heap word index.
        addr: Operand,
        /// Delta operand.
        delta: Operand,
        /// Subtract instead of add.
        negate: bool,
    },
    /// Unconditional jump to an absolute pc.
    Jump {
        /// Target pc.
        pc: usize,
    },
    /// Conditional jump on `cond != 0`, both targets absolute pcs.
    JumpIf {
        /// Condition operand.
        cond: Operand,
        /// Pc when nonzero.
        then_pc: usize,
        /// Pc when zero.
        else_pc: usize,
    },
    /// Return from the function.
    Ret {
        /// Optional return value.
        val: Option<Operand>,
    },
    /// Open an atomic region.
    TmBegin,
    /// Close the innermost atomic region.
    TmEnd,
}

/// A function lowered to a flat op array; produced by [`lower`], run by
/// [`crate::interp::Interp::execute_lowered`].
#[derive(Clone, Debug)]
pub struct LoweredFunction {
    /// Source function name.
    pub name: String,
    /// Number of arguments (pre-loaded into the low registers).
    pub num_args: u32,
    /// Total registers used.
    pub num_regs: u32,
    /// The flat op stream; entry is pc 0. Private so that every
    /// `LoweredFunction` went through [`lower`]'s validation.
    pub(crate) ops: Vec<Op>,
}

impl LoweredFunction {
    /// The flat op stream.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops (equals the source function's instruction count).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the op stream is empty (never true for a valid source —
    /// validation requires a terminator in the entry block).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Flatten `func` into a [`LoweredFunction`].
///
/// Runs [`Function::validate`] first and refuses invalid input — the
/// flat representation has no block boundaries left to catch a missing
/// terminator at run time.
pub fn lower(func: &Function) -> Result<LoweredFunction, String> {
    func.validate()?;
    let mut starts = Vec::with_capacity(func.blocks.len());
    let mut pc = 0usize;
    for b in &func.blocks {
        starts.push(pc);
        pc += b.insts.len();
    }
    let mut ops = Vec::with_capacity(pc);
    for b in &func.blocks {
        for inst in &b.insts {
            ops.push(match *inst {
                Inst::Mov { dst, src } => Op::Mov { dst, src },
                Inst::Bin { op, dst, a, b } => Op::Bin { op, dst, a, b },
                Inst::Cmp { op, dst, a, b } => Op::Cmp { op, dst, a, b },
                Inst::Not { dst, src } => Op::Not { dst, src },
                Inst::TmLoad { dst, addr } => Op::TmLoad { dst, addr },
                Inst::TmStore { addr, val } => Op::TmStore { addr, val },
                Inst::TmCmpVal { op, dst, addr, val } => Op::TmCmpVal { op, dst, addr, val },
                Inst::TmCmpAddr { op, dst, a, b } => Op::TmCmpAddr { op, dst, a, b },
                Inst::TmInc {
                    addr,
                    delta,
                    negate,
                } => Op::TmInc {
                    addr,
                    delta,
                    negate,
                },
                Inst::Br { target } => Op::Jump { pc: starts[target] },
                Inst::CondBr {
                    cond,
                    then_to,
                    else_to,
                } => Op::JumpIf {
                    cond,
                    then_pc: starts[then_to],
                    else_pc: starts[else_to],
                },
                Inst::Ret { val } => Op::Ret { val },
                Inst::TmBegin => Op::TmBegin,
                Inst::TmEnd => Op::TmEnd,
            });
        }
    }
    Ok(LoweredFunction {
        name: func.name.clone(),
        num_args: func.num_args,
        num_regs: func.num_regs,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Block, FunctionBuilder};

    fn loopy() -> Function {
        // entry: r1 = 0; br body
        // body:  r1 = r1 + 1; condbr (r1 < r0) body, done
        // done:  ret r1
        let mut fb = FunctionBuilder::new("loopy", 1);
        let i = fb.reg();
        let c = fb.reg();
        let body = fb.block("body");
        let done = fb.block("done");
        fb.switch_to(0);
        fb.push(Inst::Mov {
            dst: i,
            src: Operand::Imm(0),
        });
        fb.push(Inst::Br { target: body });
        fb.switch_to(body);
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: i,
            a: Operand::Reg(i),
            b: Operand::Imm(1),
        });
        fb.push(Inst::Cmp {
            op: CmpOp::Lt,
            dst: c,
            a: Operand::Reg(i),
            b: Operand::Reg(0),
        });
        fb.push(Inst::CondBr {
            cond: Operand::Reg(c),
            then_to: body,
            else_to: done,
        });
        fb.switch_to(done);
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(i)),
        });
        fb.build()
    }

    #[test]
    fn lowering_concatenates_blocks_and_resolves_targets() {
        let f = loopy();
        let l = lower(&f).unwrap();
        assert_eq!(l.len(), 6);
        assert_eq!(l.num_regs, f.num_regs);
        // entry starts at 0, body at 2, done at 5.
        assert_eq!(l.ops()[1], Op::Jump { pc: 2 });
        match l.ops()[4] {
            Op::JumpIf {
                then_pc, else_pc, ..
            } => {
                assert_eq!(then_pc, 2, "back-edge to body");
                assert_eq!(else_pc, 5, "exit to done");
            }
            ref other => panic!("expected JumpIf, got {other:?}"),
        }
        assert!(matches!(l.ops()[5], Op::Ret { .. }));
    }

    #[test]
    fn lowering_preserves_barrier_ops_verbatim() {
        let mut fb = FunctionBuilder::new("b", 1);
        let v = fb.reg();
        fb.push(Inst::TmBegin);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::TmInc {
            addr: Operand::Reg(0),
            delta: Operand::Imm(3),
            negate: true,
        });
        fb.push(Inst::TmEnd);
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(v)),
        });
        let l = lower(&fb.build()).unwrap();
        assert_eq!(
            l.ops()[2],
            Op::TmInc {
                addr: Operand::Reg(0),
                delta: Operand::Imm(3),
                negate: true,
            }
        );
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn lowering_rejects_invalid_functions() {
        let f = Function {
            name: "bad".into(),
            num_args: 0,
            num_regs: 1,
            blocks: vec![Block {
                label: "entry".into(),
                insts: vec![Inst::Mov {
                    dst: 0,
                    src: Operand::Imm(1),
                }],
            }],
        };
        let e = lower(&f).unwrap_err();
        assert!(e.contains("terminator"), "{e}");
    }
}
