//! SARIF 2.1.0 export for `semlint` findings.
//!
//! Hand-rolled JSON in the same spirit as `semtm-bench`'s `jsonin` —
//! the workspace takes no registry dependencies, and the subset of
//! SARIF that GitHub code scanning consumes is small: one `run` with a
//! `tool.driver` carrying the rule catalogue, and one `result` per
//! diagnostic with a `physicalLocation` when the source span is known.
//!
//! Severity maps onto the SARIF `level` vocabulary: `error` → `error`,
//! `warning` → `warning`, `info` → `note`.

use crate::lint::{Diagnostic, Severity, RULES};
use std::fmt::Write;

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "note",
    }
}

/// Render one SARIF 2.1.0 log for the given `(file, diagnostics)`
/// pairs — one `result` per diagnostic, all under a single `semlint`
/// run whose driver carries the full rule catalogue.
pub fn sarif_report(files: &[(String, Vec<Diagnostic>)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"semlint\",\n");
    let _ = writeln!(
        out,
        "          \"version\": \"{}\",",
        env!("CARGO_PKG_VERSION")
    );
    out.push_str("          \"rules\": [\n");
    for (i, (id, sev, summary)) in RULES.iter().enumerate() {
        let _ = write!(
            out,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"defaultConfiguration\": {{\"level\": \"{}\"}}}}",
            esc(id),
            esc(summary),
            level(*sev)
        );
        out.push_str(if i + 1 < RULES.len() { ",\n" } else { "\n" });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let mut first = true;
    for (file, diags) in files {
        for d in diags {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let rule_index = RULES
                .iter()
                .position(|(id, _, _)| *id == d.rule)
                .unwrap_or(0);
            let _ = write!(
                out,
                "        {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"{}\", \
                 \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
                 {{\"artifactLocation\": {{\"uri\": \"{}\"}}",
                esc(d.rule),
                rule_index,
                level(d.severity),
                esc(&d.message),
                esc(file)
            );
            if let Some(s) = d.span {
                let _ = write!(
                    out,
                    ", \"region\": {{\"startLine\": {}, \"startColumn\": {}}}",
                    s.line, s.col
                );
            }
            out.push_str("}}]}");
        }
    }
    if !first {
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lint_function;
    use crate::parser::parse_function_spanned;

    // Full JSON-grammar validation lives in
    // `crates/bench/tests/sarif_schema.rs`, where `jsonin` is in scope
    // without a dependency cycle; these tests pin the structure.

    #[test]
    fn report_carries_rules_results_and_spans() {
        let (f, map) =
            parse_function_spanned("func f(1) {\nentry:\n  tminc r0, 1\n  ret\n}\n").unwrap();
        let files = vec![("x.ir".to_string(), lint_function(&f, Some(&map)))];
        let report = sarif_report(&files);
        assert!(report.contains("\"version\": \"2.1.0\""));
        assert!(report.contains("\"name\": \"semlint\""));
        for (id, _, _) in RULES {
            assert!(report.contains(&format!("\"id\": \"{id}\"")), "{id} listed");
        }
        assert!(report.contains("\"ruleId\": \"SL011\""));
        assert!(report.contains("\"level\": \"error\""));
        assert!(report.contains("\"uri\": \"x.ir\""));
        assert!(
            report.contains("\"startLine\": 3, \"startColumn\": 3"),
            "{report}"
        );
    }

    #[test]
    fn messages_with_quotes_and_newlines_escape_cleanly() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn info_maps_to_note_level() {
        assert_eq!(level(Severity::Info), "note");
        assert_eq!(level(Severity::Warning), "warning");
    }
}
