//! A small textual front-end for the IR, used by tests, examples, and
//! anyone wanting to write benchmark kernels without the Rust builder.
//!
//! Grammar (one instruction per line, `;` starts a comment):
//!
//! ```text
//! func NAME(NUM_ARGS) {
//! label:
//!   rD = const IMM          ; also: mov OPND
//!   rD = add A, B           ; add sub mul div mod and or xor
//!   rD = cmp.OP A, B        ; OP in eq neq gt gte lt lte
//!   rD = not A
//!   rD = tmload A
//!   tmstore A, B
//!   rD = tmcmp.OP A, B      ; builtin _ITM_S1R (addr, value)
//!   rD = tmcmp2.OP A, B     ; builtin _ITM_S2R (addr, addr)
//!   tminc A, B              ; builtin _ITM_SW
//!   tmdec A, B
//!   tmbegin
//!   tmend
//!   br LABEL
//!   condbr C, LABEL, LABEL
//!   ret [A]
//! }
//! ```
//!
//! Operands are `rN` or decimal immediates (possibly negative). Arguments
//! arrive in `r0..rN`.
//!
//! Errors carry the 1-based line *and column* of the offending token;
//! [`parse_function_spanned`] additionally returns a [`SourceMap`]
//! mapping every instruction back to its source position, which the
//! `semlint` diagnostics use to print `file:line:col` locations.

use crate::ir::{BinOp, Block, Function, Inst, Operand, Reg};
use semtm_core::CmpOp;
use std::collections::HashMap;

/// A parse failure, with a 1-based line and column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error was detected on.
    pub line: usize,
    /// Column (1-based, in characters) of the offending token.
    pub col: usize,
    /// Human-readable message, naming the offending token.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A 1-based source position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Source line.
    pub line: usize,
    /// Source column (first character of the instruction or token).
    pub col: usize,
}

/// Side table mapping instruction positions `(block, index)` back to
/// source [`Span`]s. Kept separate from [`Function`] so IR built
/// programmatically (builder or literals) needs no span bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct SourceMap {
    spans: Vec<Vec<Span>>,
}

impl SourceMap {
    /// The span of the instruction at `(block, index)`, if recorded.
    pub fn span(&self, block: usize, index: usize) -> Option<Span> {
        self.spans.get(block).and_then(|b| b.get(index)).copied()
    }
}

/// One source line being parsed; errors anchor to tokens within it.
struct LineCtx<'a> {
    line: usize,
    raw: &'a str,
}

impl LineCtx<'_> {
    /// Column of `token` within the raw line (1-based; character count).
    fn col_of(&self, token: &str) -> usize {
        match self.raw.find(token) {
            Some(byte) => self.raw[..byte].chars().count() + 1,
            None => self.indent_col(),
        }
    }

    /// Column where the code portion of the line starts.
    fn indent_col(&self) -> usize {
        let trimmed = self.raw.trim_start();
        self.raw.chars().count() - trimmed.chars().count() + 1
    }

    /// An error anchored at the start of the line's code.
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line,
            col: self.indent_col(),
            message: message.into(),
        })
    }

    /// An error anchored at `token`, which the message should name.
    fn err_at<T>(&self, token: &str, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line,
            col: self.col_of(token),
            message: message.into(),
        })
    }
}

fn parse_bin_op(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "mod" => BinOp::Mod,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        _ => return None,
    })
}

struct Parser {
    max_reg: u32,
}

impl Parser {
    fn reg(&mut self, s: &str, cx: &LineCtx<'_>) -> Result<Reg, ParseError> {
        let Some(num) = s.strip_prefix('r') else {
            return cx.err_at(s, format!("expected register, got '{s}'"));
        };
        let Ok(r) = num.parse::<u32>() else {
            return cx.err_at(s, format!("bad register '{s}'"));
        };
        self.max_reg = self.max_reg.max(r + 1);
        Ok(r)
    }

    fn operand(&mut self, s: &str, cx: &LineCtx<'_>) -> Result<Operand, ParseError> {
        if s.starts_with('r') {
            Ok(Operand::Reg(self.reg(s, cx)?))
        } else if let Ok(imm) = s.parse::<i64>() {
            Ok(Operand::Imm(imm))
        } else {
            cx.err_at(s, format!("bad operand '{s}'"))
        }
    }

    fn cmp_op(&self, s: &str, cx: &LineCtx<'_>) -> Result<CmpOp, ParseError> {
        CmpOp::ALL
            .into_iter()
            .find(|op| op.mnemonic() == s)
            .map_or_else(|| cx.err_at(s, format!("unknown comparison '{s}'")), Ok)
    }
}

/// Parse one function from `src` (discarding the source map; see
/// [`parse_function_spanned`] to keep it).
pub fn parse_function(src: &str) -> Result<Function, ParseError> {
    parse_function_spanned(src).map(|(f, _)| f)
}

/// Parse one function from `src`, returning it together with the
/// [`SourceMap`] locating every instruction.
pub fn parse_function_spanned(src: &str) -> Result<(Function, SourceMap), ParseError> {
    let mut name = String::new();
    let mut num_args = 0u32;
    let mut blocks: Vec<Block> = Vec::new();
    let mut spans: Vec<Vec<Span>> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut fixups: Vec<Fixup> = Vec::new();
    let mut p = Parser { max_reg: 0 };
    let mut in_body = false;
    let mut done = false;

    for (lineno, raw) in src.lines().enumerate() {
        let cx = LineCtx {
            line: lineno + 1,
            raw,
        };
        let code = raw.split(';').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        if done {
            return cx.err_at(code, format!("content after closing '}}': '{code}'"));
        }
        if !in_body {
            // func NAME(N) {
            let Some(rest) = code.strip_prefix("func") else {
                return cx.err_at(code, format!("expected 'func NAME(N) {{', got '{code}'"));
            };
            let rest = rest.trim();
            let Some(open) = rest.find('(') else {
                return cx.err("missing '(' in function header");
            };
            let Some(close) = rest.find(')') else {
                return cx.err("missing ')' in function header");
            };
            name = rest[..open].trim().to_string();
            let argstr = rest[open + 1..close].trim();
            let Ok(n) = argstr.parse::<u32>() else {
                return cx.err_at(argstr, format!("bad argument count '{argstr}'"));
            };
            num_args = n;
            if !rest[close + 1..].trim().starts_with('{') {
                return cx.err("missing '{' after function header");
            }
            p.max_reg = num_args;
            in_body = true;
            continue;
        }
        if code == "}" {
            done = true;
            continue;
        }
        if let Some(label) = code.strip_suffix(':') {
            let label = label.trim();
            if labels.insert(label.to_string(), blocks.len()).is_some() {
                return cx.err_at(label, format!("duplicate label '{label}'"));
            }
            blocks.push(Block {
                label: label.to_string(),
                insts: Vec::new(),
            });
            spans.push(Vec::new());
            continue;
        }
        if blocks.is_empty() {
            return cx.err_at(
                code,
                format!("instruction before the first label: '{code}'"),
            );
        }
        let bi = blocks.len() - 1;
        let inst = parse_inst(code, &cx, &mut p, bi, blocks[bi].insts.len(), &mut fixups)?;
        blocks[bi].insts.push(inst);
        spans[bi].push(Span {
            line: cx.line,
            col: cx.indent_col(),
        });
    }
    if !done {
        return Err(ParseError {
            line: src.lines().count(),
            col: 1,
            message: "missing closing '}'".into(),
        });
    }

    // Resolve branch labels.
    for (bi, ii, line, targets) in fixups {
        let resolved: Result<Vec<usize>, ParseError> = targets
            .iter()
            .map(|(t, col)| {
                labels.get(t).copied().ok_or(ParseError {
                    line,
                    col: *col,
                    message: format!("unknown label '{t}'"),
                })
            })
            .collect();
        let resolved = resolved?;
        match &mut blocks[bi].insts[ii] {
            Inst::Br { target } => *target = resolved[0],
            Inst::CondBr {
                then_to, else_to, ..
            } => {
                *then_to = resolved[0];
                *else_to = resolved[1];
            }
            _ => unreachable!("only branches get fixups"),
        }
    }

    let f = Function {
        name,
        num_args,
        num_regs: p.max_reg,
        blocks,
    };
    f.validate().map_err(|message| ParseError {
        line: 0,
        col: 0,
        message,
    })?;
    Ok((f, SourceMap { spans }))
}

/// (block, inst index, line, targets-as-(label, col)): a branch whose
/// label operands still need resolving once all blocks are known.
type Fixup = (usize, usize, usize, Vec<(String, usize)>);

fn parse_inst(
    code: &str,
    cx: &LineCtx<'_>,
    p: &mut Parser,
    bi: usize,
    ii: usize,
    fixups: &mut Vec<Fixup>,
) -> Result<Inst, ParseError> {
    // Split on '=' for value-producing forms.
    if let Some((lhs, rhs)) = code.split_once('=') {
        let dst = p.reg(lhs.trim(), cx)?;
        let rhs = rhs.trim();
        let (mnemonic, rest) = rhs.split_once(' ').unwrap_or((rhs, ""));
        let args: Vec<&str> = rest
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let one = |p: &mut Parser| -> Result<Operand, ParseError> {
            if args.len() != 1 {
                return cx.err_at(
                    mnemonic,
                    format!("'{mnemonic}' needs 1 operand, got {}", args.len()),
                );
            }
            p.operand(args[0], cx)
        };
        let two = |p: &mut Parser| -> Result<(Operand, Operand), ParseError> {
            if args.len() != 2 {
                return cx.err_at(
                    mnemonic,
                    format!("'{mnemonic}' needs 2 operands, got {}", args.len()),
                );
            }
            Ok((p.operand(args[0], cx)?, p.operand(args[1], cx)?))
        };
        if mnemonic == "const" || mnemonic == "mov" {
            return Ok(Inst::Mov { dst, src: one(p)? });
        }
        if mnemonic == "not" {
            return Ok(Inst::Not { dst, src: one(p)? });
        }
        if mnemonic == "tmload" {
            return Ok(Inst::TmLoad { dst, addr: one(p)? });
        }
        if mnemonic == "rand" {
            return cx.err_at(
                mnemonic,
                "'rand' is not part of the IR; pass randomness as arguments",
            );
        }
        if let Some(op) = parse_bin_op(mnemonic) {
            let (a, b) = two(p)?;
            return Ok(Inst::Bin { op, dst, a, b });
        }
        if let Some(sfx) = mnemonic.strip_prefix("cmp.") {
            let op = p.cmp_op(sfx, cx)?;
            let (a, b) = two(p)?;
            return Ok(Inst::Cmp { op, dst, a, b });
        }
        if let Some(sfx) = mnemonic.strip_prefix("tmcmp2.") {
            let op = p.cmp_op(sfx, cx)?;
            let (a, b) = two(p)?;
            return Ok(Inst::TmCmpAddr { op, dst, a, b });
        }
        if let Some(sfx) = mnemonic.strip_prefix("tmcmp.") {
            let op = p.cmp_op(sfx, cx)?;
            let (addr, val) = two(p)?;
            return Ok(Inst::TmCmpVal { op, dst, addr, val });
        }
        return cx.err_at(mnemonic, format!("unknown mnemonic '{mnemonic}'"));
    }

    // Statement forms.
    let (mnemonic, rest) = code.split_once(' ').unwrap_or((code, ""));
    let args: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    match mnemonic {
        "tmbegin" => Ok(Inst::TmBegin),
        "tmend" => Ok(Inst::TmEnd),
        "tmstore" => {
            if args.len() != 2 {
                return cx.err_at(
                    mnemonic,
                    format!("'tmstore' needs 2 operands, got {}", args.len()),
                );
            }
            Ok(Inst::TmStore {
                addr: p.operand(args[0], cx)?,
                val: p.operand(args[1], cx)?,
            })
        }
        "tminc" | "tmdec" => {
            if args.len() != 2 {
                return cx.err_at(
                    mnemonic,
                    format!("'{mnemonic}' needs 2 operands, got {}", args.len()),
                );
            }
            Ok(Inst::TmInc {
                addr: p.operand(args[0], cx)?,
                delta: p.operand(args[1], cx)?,
                negate: mnemonic == "tmdec",
            })
        }
        "br" => {
            if args.len() != 1 {
                return cx.err_at(mnemonic, "'br' needs a label");
            }
            fixups.push((
                bi,
                ii,
                cx.line,
                vec![(args[0].to_string(), cx.col_of(args[0]))],
            ));
            Ok(Inst::Br { target: 0 })
        }
        "condbr" => {
            if args.len() != 3 {
                return cx.err_at(mnemonic, "'condbr' needs cond, then, else");
            }
            let cond = p.operand(args[0], cx)?;
            fixups.push((
                bi,
                ii,
                cx.line,
                vec![
                    (args[1].to_string(), cx.col_of(args[1])),
                    (args[2].to_string(), cx.col_of(args[2])),
                ],
            ));
            Ok(Inst::CondBr {
                cond,
                then_to: 0,
                else_to: 0,
            })
        }
        "ret" => {
            if args.is_empty() {
                Ok(Inst::Ret { val: None })
            } else if args.len() == 1 {
                Ok(Inst::Ret {
                    val: Some(p.operand(args[0], cx)?),
                })
            } else {
                cx.err_at(mnemonic, "'ret' takes at most one operand")
            }
        }
        other => cx.err_at(other, format!("unknown statement '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::passes::run_tm_passes;
    use semtm_core::{Algorithm, Stm, StmConfig};

    const GUARDED_INC: &str = r"
; if (*a > 0) *a = *a + 1; return *a
func guarded_inc(1) {
entry:
  tmbegin
  r1 = tmload r0
  r2 = cmp.gt r1, 0
  condbr r2, do_inc, out
do_inc:
  r3 = tmload r0
  r4 = add r3, 1
  tmstore r0, r4
  br out
out:
  tmend
  r5 = tmload r0
  ret r5
}
";

    #[test]
    fn parses_and_prints() {
        let f = parse_function(GUARDED_INC).unwrap();
        assert_eq!(f.name, "guarded_inc");
        assert_eq!(f.num_args, 1);
        assert_eq!(f.blocks.len(), 3);
        let printed = f.to_string();
        assert!(printed.contains("cmp.gt"));
        assert!(printed.contains("tmstore"));
    }

    #[test]
    fn parsed_function_executes() {
        let stm = Stm::new(StmConfig::new(Algorithm::SNOrec).heap_words(64));
        let x = stm.alloc_cell(10i64);
        let f = parse_function(GUARDED_INC).unwrap();
        let interp = Interp::new(&stm);
        assert_eq!(interp.execute(&f, &[x.index() as i64]).unwrap(), Some(11));
    }

    #[test]
    fn parsed_function_survives_passes() {
        let stm = Stm::new(StmConfig::new(Algorithm::SNOrec).heap_words(64));
        let x = stm.alloc_cell(10i64);
        let mut f = parse_function(GUARDED_INC).unwrap();
        let rep = run_tm_passes(&mut f);
        assert_eq!(rep.s1r, 1);
        assert_eq!(rep.sw, 1);
        let interp = Interp::new(&stm);
        assert_eq!(interp.execute(&f, &[x.index() as i64]).unwrap(), Some(11));
    }

    #[test]
    fn builtin_mnemonics_parse() {
        let src = r"
func b(2) {
entry:
  tmbegin
  r2 = tmcmp.gte r0, 5
  r3 = tmcmp2.eq r0, r1
  tminc r0, 3
  tmdec r1, 2
  tmend
  ret r2
}
";
        let f = parse_function(src).unwrap();
        assert_eq!(f.barrier_count(), 4);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "func f(0) {\nentry:\n  bogus r1\n}\n";
        let e = parse_function(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn errors_carry_columns_and_tokens() {
        let src = "func f(0) {\nentry:\n  r1 = const zz\n  ret\n}\n";
        let e = parse_function(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.col, 14, "column of 'zz': {e}");
        assert!(e.message.contains("'zz'"), "{e}");
        assert_eq!(e.to_string(), "line 3:14: bad operand 'zz'");
    }

    #[test]
    fn bad_register_names_token() {
        let src = "func f(1) {\nentry:\n  r1 = add rq, 2\n  ret r1\n}\n";
        let e = parse_function(src).unwrap_err();
        assert_eq!((e.line, e.col), (3, 12), "{e}");
        assert!(e.message.contains("'rq'"), "{e}");
    }

    #[test]
    fn wrong_operand_count_points_at_mnemonic() {
        let src = "func f(1) {\nentry:\n  tmstore r0\n  ret\n}\n";
        let e = parse_function(src).unwrap_err();
        assert_eq!((e.line, e.col), (3, 3), "{e}");
        assert!(e.message.contains("needs 2 operands, got 1"), "{e}");
    }

    #[test]
    fn unknown_comparison_points_at_suffix() {
        let src = "func f(1) {\nentry:\n  r1 = cmp.approx r0, 0\n  ret r1\n}\n";
        let e = parse_function(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("'approx'"), "{e}");
    }

    #[test]
    fn unknown_label_is_rejected() {
        let src = "func f(0) {\nentry:\n  br nowhere\n}\n";
        let e = parse_function(src).unwrap_err();
        assert!(e.message.contains("nowhere"));
        assert_eq!((e.line, e.col), (3, 6), "{e}");
    }

    #[test]
    fn duplicate_label_is_rejected() {
        let src = "func f(0) {\na:\n  ret\na:\n  ret\n}\n";
        let e = parse_function(src).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("duplicate label 'a'"));
    }

    #[test]
    fn missing_brace_and_trailing_content_are_rejected() {
        let e = parse_function("func f(0) {\nentry:\n  ret\n").unwrap_err();
        assert!(e.message.contains("missing closing"), "{e}");
        let e = parse_function("func f(0) {\nentry:\n  ret\n}\nret\n").unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("after closing"), "{e}");
    }

    #[test]
    fn source_map_locates_instructions() {
        let (f, map) = parse_function_spanned(GUARDED_INC).unwrap();
        // Block 0 inst 0 is `tmbegin` on line 5 (1-based, after the
        // leading blank + comment + header + label lines).
        assert_eq!(map.span(0, 0), Some(Span { line: 5, col: 3 }));
        // Block 1 ("do_inc") inst 2 is the tmstore on line 12.
        assert_eq!(map.span(1, 2), Some(Span { line: 12, col: 3 }));
        // Every instruction has a span.
        for (b, block) in f.blocks.iter().enumerate() {
            for i in 0..block.insts.len() {
                assert!(map.span(b, i).is_some(), "missing span for ({b},{i})");
            }
        }
        assert_eq!(map.span(0, 99), None);
    }
}
