//! A small textual front-end for the IR, used by tests, examples, and
//! anyone wanting to write benchmark kernels without the Rust builder.
//!
//! Grammar (one instruction per line, `;` starts a comment):
//!
//! ```text
//! func NAME(NUM_ARGS) {
//! label:
//!   rD = const IMM          ; also: mov OPND
//!   rD = add A, B           ; add sub mul div mod and or xor
//!   rD = cmp.OP A, B        ; OP in eq neq gt gte lt lte
//!   rD = not A
//!   rD = tmload A
//!   tmstore A, B
//!   rD = tmcmp.OP A, B      ; builtin _ITM_S1R (addr, value)
//!   rD = tmcmp2.OP A, B     ; builtin _ITM_S2R (addr, addr)
//!   tminc A, B              ; builtin _ITM_SW
//!   tmdec A, B
//!   tmbegin
//!   tmend
//!   br LABEL
//!   condbr C, LABEL, LABEL
//!   ret [A]
//! }
//! ```
//!
//! Operands are `rN` or decimal immediates (possibly negative). Arguments
//! arrive in `r0..rN`.

use crate::ir::{BinOp, Block, Function, Inst, Operand, Reg};
use semtm_core::CmpOp;
use std::collections::HashMap;

/// A parse failure, with a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error was detected on.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn parse_cmp_op(s: &str, line: usize) -> Result<CmpOp, ParseError> {
    CmpOp::ALL
        .into_iter()
        .find(|op| op.mnemonic() == s)
        .map_or_else(|| err(line, format!("unknown comparison '{s}'")), Ok)
}

fn parse_bin_op(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "mod" => BinOp::Mod,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        _ => return None,
    })
}

struct Parser {
    max_reg: u32,
}

impl Parser {
    fn reg(&mut self, s: &str, line: usize) -> Result<Reg, ParseError> {
        let Some(num) = s.strip_prefix('r') else {
            return err(line, format!("expected register, got '{s}'"));
        };
        let r: u32 = num.parse().map_err(|_| ParseError {
            line,
            message: format!("bad register '{s}'"),
        })?;
        self.max_reg = self.max_reg.max(r + 1);
        Ok(r)
    }

    fn operand(&mut self, s: &str, line: usize) -> Result<Operand, ParseError> {
        if s.starts_with('r') {
            Ok(Operand::Reg(self.reg(s, line)?))
        } else {
            s.parse::<i64>().map(Operand::Imm).map_err(|_| ParseError {
                line,
                message: format!("bad operand '{s}'"),
            })
        }
    }
}

/// Parse one function from `src`.
pub fn parse_function(src: &str) -> Result<Function, ParseError> {
    let mut name = String::new();
    let mut num_args = 0u32;
    let mut blocks: Vec<Block> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    // (block, inst index, line, kind): branch fixups recorded as labels.
    let mut fixups: Vec<(usize, usize, usize, Vec<String>)> = Vec::new();
    let mut p = Parser { max_reg: 0 };
    let mut in_body = false;
    let mut done = false;

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let code = raw.split(';').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        if done {
            return err(line, "content after closing '}'");
        }
        if !in_body {
            // func NAME(N) {
            let rest = code
                .strip_prefix("func")
                .ok_or(ParseError {
                    line,
                    message: "expected 'func NAME(N) {'".into(),
                })?
                .trim();
            let open = rest.find('(').ok_or(ParseError {
                line,
                message: "missing '('".into(),
            })?;
            let close = rest.find(')').ok_or(ParseError {
                line,
                message: "missing ')'".into(),
            })?;
            name = rest[..open].trim().to_string();
            num_args = rest[open + 1..close]
                .trim()
                .parse()
                .map_err(|_| ParseError {
                    line,
                    message: "bad argument count".into(),
                })?;
            if !rest[close + 1..].trim().starts_with('{') {
                return err(line, "missing '{'");
            }
            p.max_reg = num_args;
            in_body = true;
            continue;
        }
        if code == "}" {
            done = true;
            continue;
        }
        if let Some(label) = code.strip_suffix(':') {
            let label = label.trim();
            if labels.insert(label.to_string(), blocks.len()).is_some() {
                return err(line, format!("duplicate label '{label}'"));
            }
            blocks.push(Block {
                label: label.to_string(),
                insts: Vec::new(),
            });
            continue;
        }
        if blocks.is_empty() {
            return err(line, "instruction before the first label");
        }
        let bi = blocks.len() - 1;
        let inst = parse_inst(code, line, &mut p, bi, blocks[bi].insts.len(), &mut fixups)?;
        blocks[bi].insts.push(inst);
    }
    if !done {
        return err(src.lines().count(), "missing closing '}'");
    }

    // Resolve branch labels.
    for (bi, ii, line, targets) in fixups {
        let resolved: Result<Vec<usize>, ParseError> = targets
            .iter()
            .map(|t| {
                labels.get(t).copied().ok_or(ParseError {
                    line,
                    message: format!("unknown label '{t}'"),
                })
            })
            .collect();
        let resolved = resolved?;
        match &mut blocks[bi].insts[ii] {
            Inst::Br { target } => *target = resolved[0],
            Inst::CondBr {
                then_to, else_to, ..
            } => {
                *then_to = resolved[0];
                *else_to = resolved[1];
            }
            _ => unreachable!("only branches get fixups"),
        }
    }

    let f = Function {
        name,
        num_args,
        num_regs: p.max_reg,
        blocks,
    };
    f.validate()
        .map_err(|message| ParseError { line: 0, message })?;
    Ok(f)
}

#[allow(clippy::too_many_arguments)]
fn parse_inst(
    code: &str,
    line: usize,
    p: &mut Parser,
    bi: usize,
    ii: usize,
    fixups: &mut Vec<(usize, usize, usize, Vec<String>)>,
) -> Result<Inst, ParseError> {
    // Split on '=' for value-producing forms.
    if let Some((lhs, rhs)) = code.split_once('=') {
        let dst = p.reg(lhs.trim(), line)?;
        let rhs = rhs.trim();
        let (mnemonic, rest) = rhs.split_once(' ').unwrap_or((rhs, ""));
        let args: Vec<&str> = rest
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let one = |p: &mut Parser| -> Result<Operand, ParseError> {
            if args.len() != 1 {
                return err(line, format!("'{mnemonic}' needs 1 operand"));
            }
            p.operand(args[0], line)
        };
        let two = |p: &mut Parser| -> Result<(Operand, Operand), ParseError> {
            if args.len() != 2 {
                return err(line, format!("'{mnemonic}' needs 2 operands"));
            }
            Ok((p.operand(args[0], line)?, p.operand(args[1], line)?))
        };
        if mnemonic == "const" || mnemonic == "mov" {
            return Ok(Inst::Mov { dst, src: one(p)? });
        }
        if mnemonic == "not" {
            return Ok(Inst::Not { dst, src: one(p)? });
        }
        if mnemonic == "tmload" {
            return Ok(Inst::TmLoad { dst, addr: one(p)? });
        }
        if mnemonic == "rand" {
            return err(
                line,
                "'rand' is not part of the IR; pass randomness as arguments",
            );
        }
        if let Some(op) = parse_bin_op(mnemonic) {
            let (a, b) = two(p)?;
            return Ok(Inst::Bin { op, dst, a, b });
        }
        if let Some(sfx) = mnemonic.strip_prefix("cmp.") {
            let op = parse_cmp_op(sfx, line)?;
            let (a, b) = two(p)?;
            return Ok(Inst::Cmp { op, dst, a, b });
        }
        if let Some(sfx) = mnemonic.strip_prefix("tmcmp2.") {
            let op = parse_cmp_op(sfx, line)?;
            let (a, b) = two(p)?;
            return Ok(Inst::TmCmpAddr { op, dst, a, b });
        }
        if let Some(sfx) = mnemonic.strip_prefix("tmcmp.") {
            let op = parse_cmp_op(sfx, line)?;
            let (addr, val) = two(p)?;
            return Ok(Inst::TmCmpVal { op, dst, addr, val });
        }
        return err(line, format!("unknown mnemonic '{mnemonic}'"));
    }

    // Statement forms.
    let (mnemonic, rest) = code.split_once(' ').unwrap_or((code, ""));
    let args: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    match mnemonic {
        "tmbegin" => Ok(Inst::TmBegin),
        "tmend" => Ok(Inst::TmEnd),
        "tmstore" => {
            if args.len() != 2 {
                return err(line, "'tmstore' needs 2 operands");
            }
            Ok(Inst::TmStore {
                addr: p.operand(args[0], line)?,
                val: p.operand(args[1], line)?,
            })
        }
        "tminc" | "tmdec" => {
            if args.len() != 2 {
                return err(line, format!("'{mnemonic}' needs 2 operands"));
            }
            Ok(Inst::TmInc {
                addr: p.operand(args[0], line)?,
                delta: p.operand(args[1], line)?,
                negate: mnemonic == "tmdec",
            })
        }
        "br" => {
            if args.len() != 1 {
                return err(line, "'br' needs a label");
            }
            fixups.push((bi, ii, line, vec![args[0].to_string()]));
            Ok(Inst::Br { target: 0 })
        }
        "condbr" => {
            if args.len() != 3 {
                return err(line, "'condbr' needs cond, then, else");
            }
            let cond = p.operand(args[0], line)?;
            fixups.push((bi, ii, line, vec![args[1].to_string(), args[2].to_string()]));
            Ok(Inst::CondBr {
                cond,
                then_to: 0,
                else_to: 0,
            })
        }
        "ret" => {
            if args.is_empty() {
                Ok(Inst::Ret { val: None })
            } else if args.len() == 1 {
                Ok(Inst::Ret {
                    val: Some(p.operand(args[0], line)?),
                })
            } else {
                err(line, "'ret' takes at most one operand")
            }
        }
        other => err(line, format!("unknown statement '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::passes::run_tm_passes;
    use semtm_core::{Algorithm, Stm, StmConfig};

    const GUARDED_INC: &str = r"
; if (*a > 0) *a = *a + 1; return *a
func guarded_inc(1) {
entry:
  tmbegin
  r1 = tmload r0
  r2 = cmp.gt r1, 0
  condbr r2, do_inc, out
do_inc:
  r3 = tmload r0
  r4 = add r3, 1
  tmstore r0, r4
  br out
out:
  tmend
  r5 = tmload r0
  ret r5
}
";

    #[test]
    fn parses_and_prints() {
        let f = parse_function(GUARDED_INC).unwrap();
        assert_eq!(f.name, "guarded_inc");
        assert_eq!(f.num_args, 1);
        assert_eq!(f.blocks.len(), 3);
        let printed = f.to_string();
        assert!(printed.contains("cmp.gt"));
        assert!(printed.contains("tmstore"));
    }

    #[test]
    fn parsed_function_executes() {
        let stm = Stm::new(StmConfig::new(Algorithm::SNOrec).heap_words(64));
        let x = stm.alloc_cell(10i64);
        let f = parse_function(GUARDED_INC).unwrap();
        let interp = Interp::new(&stm);
        assert_eq!(interp.execute(&f, &[x.index() as i64]).unwrap(), Some(11));
    }

    #[test]
    fn parsed_function_survives_passes() {
        let stm = Stm::new(StmConfig::new(Algorithm::SNOrec).heap_words(64));
        let x = stm.alloc_cell(10i64);
        let mut f = parse_function(GUARDED_INC).unwrap();
        let rep = run_tm_passes(&mut f);
        assert_eq!(rep.s1r, 1);
        assert_eq!(rep.sw, 1);
        let interp = Interp::new(&stm);
        assert_eq!(interp.execute(&f, &[x.index() as i64]).unwrap(), Some(11));
    }

    #[test]
    fn builtin_mnemonics_parse() {
        let src = r"
func b(2) {
entry:
  tmbegin
  r2 = tmcmp.gte r0, 5
  r3 = tmcmp2.eq r0, r1
  tminc r0, 3
  tmdec r1, 2
  tmend
  ret r2
}
";
        let f = parse_function(src).unwrap();
        assert_eq!(f.barrier_count(), 4);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "func f(0) {\nentry:\n  bogus r1\n}\n";
        let e = parse_function(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn unknown_label_is_rejected() {
        let src = "func f(0) {\nentry:\n  br nowhere\n}\n";
        let e = parse_function(src).unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_rejected() {
        let src = "func f(0) {\na:\n  ret\na:\n  ret\n}\n";
        assert!(parse_function(src).is_err());
    }
}
