//! Whole-function backward liveness, built on the worklist solver.
//!
//! This replaces the hand-rolled fixpoint loop the seed's `tm_optimize`
//! carried inline; the pass now consumes this analysis and the solver
//! guarantees the same fixpoint.

use super::cfg::Cfg;
use super::solver::{solve, DataflowProblem, Direction};
use crate::ir::{BlockId, Function};

/// One liveness bit per register.
pub type LiveSet = Vec<bool>;

struct LiveProblem {
    num_regs: usize,
}

impl DataflowProblem for LiveProblem {
    type Fact = LiveSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary_fact(&self) -> LiveSet {
        vec![false; self.num_regs]
    }

    fn init_fact(&self) -> LiveSet {
        vec![false; self.num_regs]
    }

    fn join(&self, into: &mut LiveSet, from: &LiveSet) -> bool {
        let mut changed = false;
        for (i, f) in into.iter_mut().zip(from) {
            if *f && !*i {
                *i = true;
                changed = true;
            }
        }
        changed
    }

    fn transfer_block(&self, func: &Function, b: BlockId, fact: &mut LiveSet) {
        let mut uses = Vec::new();
        for inst in func.blocks[b].insts.iter().rev() {
            if let Some(d) = inst.def() {
                fact[d as usize] = false;
            }
            uses.clear();
            inst.uses(&mut uses);
            for &r in &uses {
                fact[r as usize] = true;
            }
        }
    }
}

/// The solved liveness analysis.
pub struct Liveness {
    /// `live_in[b]` = registers live on entry to block `b`.
    pub live_in: Vec<LiveSet>,
    /// `live_out[b]` = registers live on exit from block `b`.
    pub live_out: Vec<LiveSet>,
}

impl Liveness {
    /// Solve liveness for `func`.
    pub fn compute(func: &Function, cfg: &Cfg) -> Liveness {
        let sol = solve(
            func,
            cfg,
            &LiveProblem {
                num_regs: func.num_regs as usize,
            },
        );
        Liveness {
            live_in: sol.entry,
            live_out: sol.exit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FunctionBuilder, Inst, Operand};

    #[test]
    fn cross_block_use_keeps_register_live() {
        let mut fb = FunctionBuilder::new("x", 1);
        let v = fb.reg();
        let next = fb.block("next");
        fb.switch_to(0);
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Br { target: next });
        fb.switch_to(next);
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(v)),
        });
        let f = fb.build();
        let cfg = Cfg::new(&f);
        let live = Liveness::compute(&f, &cfg);
        assert!(live.live_out[0][v as usize]);
        assert!(live.live_in[1][v as usize]);
        assert!(live.live_in[0][0], "the address argument is live on entry");
        assert!(!live.live_in[0][v as usize], "v is dead before its def");
    }

    #[test]
    fn loop_carried_liveness_converges() {
        // head: cond on r1; body adds to r1 and loops back.
        let mut fb = FunctionBuilder::new("l", 1);
        let acc = fb.reg();
        let head = fb.block("head");
        let body = fb.block("body");
        let exit = fb.block("exit");
        fb.switch_to(0);
        fb.push(Inst::Mov {
            dst: acc,
            src: Operand::Imm(0),
        });
        fb.push(Inst::Br { target: head });
        fb.switch_to(head);
        fb.push(Inst::CondBr {
            cond: Operand::Reg(0),
            then_to: body,
            else_to: exit,
        });
        fb.switch_to(body);
        fb.push(Inst::Bin {
            op: crate::ir::BinOp::Add,
            dst: acc,
            a: Operand::Reg(acc),
            b: Operand::Imm(1),
        });
        fb.push(Inst::Br { target: head });
        fb.switch_to(exit);
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(acc)),
        });
        let f = fb.build();
        let cfg = Cfg::new(&f);
        let live = Liveness::compute(&f, &cfg);
        assert!(live.live_in[head][acc as usize], "loop-carried accumulator");
        assert!(live.live_out[body][acc as usize]);
    }
}
