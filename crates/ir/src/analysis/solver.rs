//! A generic worklist solver for forward and backward dataflow problems.
//!
//! The solver is deliberately block-granular: a problem supplies a
//! per-block transfer function and a join, and the solver iterates to a
//! fixpoint over a worklist seeded in reverse postorder (forward) or
//! postorder (backward). Position-level facts, when a client needs them,
//! are recovered by replaying the block transfer instruction by
//! instruction from the solved block-entry fact — see
//! [`super::ReachingDefs`] and [`super::Liveness`].
//!
//! All blocks participate, including unreachable ones: the legacy
//! liveness loop in `tm_optimize` visited every block, and keeping that
//! behaviour makes the rewrite on top of this solver a strict
//! refactoring.

use super::cfg::Cfg;
use crate::ir::{BlockId, Function};

/// Direction of a dataflow problem.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Facts flow from the entry towards returns (e.g. reaching
    /// definitions).
    Forward,
    /// Facts flow from returns towards the entry (e.g. liveness).
    Backward,
}

/// A dataflow problem over one function.
pub trait DataflowProblem {
    /// The lattice element propagated between blocks.
    type Fact: Clone + PartialEq;

    /// Which way facts flow.
    fn direction(&self) -> Direction;

    /// The fact at the boundary: the function entry for forward
    /// problems, every exit (return) for backward problems.
    fn boundary_fact(&self) -> Self::Fact;

    /// The optimistic initial fact given to every block before
    /// iteration (the lattice's identity element for [`Self::join`]).
    fn init_fact(&self) -> Self::Fact;

    /// Merge `from` into `into`; return whether `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Apply the whole block `b` to `fact`, in the problem's direction
    /// (first-to-last instruction for forward, last-to-first for
    /// backward).
    fn transfer_block(&self, func: &Function, b: BlockId, fact: &mut Self::Fact);

    /// Does this problem refine facts on CFG edges? When `false` (the
    /// default) the solver skips the per-edge fact clone entirely, so
    /// existing problems pay nothing for the hook.
    fn has_edge_transfer(&self) -> bool {
        false
    }

    /// Refine `fact` as it flows across the edge `from → to` (forward
    /// problems only; called before joining into `to`). The canonical
    /// client is branch refinement in the abstract interpreter: on the
    /// then-edge of `condbr` the guarding comparison is known true, on
    /// the else-edge known false. Only called when
    /// [`Self::has_edge_transfer`] returns `true`.
    fn transfer_edge(
        &self,
        _func: &Function,
        _from: BlockId,
        _to: BlockId,
        _fact: &mut Self::Fact,
    ) {
    }

    /// Join `from` into `into` at the entry of block `block`, returning
    /// whether `into` changed. Defaults to the block-blind
    /// [`Self::join`]; lattices with infinite ascending chains (the
    /// interval domain) override this to apply *widening* once a block
    /// has been joined into often enough, which is what makes the
    /// fixpoint terminate.
    fn join_at(&self, _block: BlockId, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        self.join(into, from)
    }
}

/// The solved facts, indexed by block. `entry`/`exit` are in *program
/// order*: `entry[b]` holds at the start of block `b` and `exit[b]` at
/// its end, for both directions.
#[derive(Clone, Debug)]
pub struct Solution<F> {
    /// Fact at the start of each block.
    pub entry: Vec<F>,
    /// Fact at the end of each block.
    pub exit: Vec<F>,
}

/// Run `problem` to a fixpoint over `func`.
pub fn solve<P: DataflowProblem>(func: &Function, cfg: &Cfg, problem: &P) -> Solution<P::Fact> {
    let n = func.blocks.len();
    let forward = problem.direction() == Direction::Forward;
    // `input[b]` is the fact on the side facts arrive from (block start
    // for forward, block end for backward).
    let mut input: Vec<P::Fact> = vec![problem.init_fact(); n];
    let mut output: Vec<P::Fact> = vec![problem.init_fact(); n];

    if forward {
        problem.join(&mut input[0], &problem.boundary_fact());
    } else {
        // Backward boundary: blocks ending in `Ret` (no successors).
        for (b, block) in func.blocks.iter().enumerate() {
            if block.successors().is_empty() {
                problem.join(&mut input[b], &problem.boundary_fact());
            }
        }
    }

    // Seed the worklist in an order that converges quickly: reverse
    // postorder for forward problems, postorder for backward ones, with
    // unreachable blocks appended so they are processed too.
    let mut order: Vec<BlockId> = if forward {
        cfg.rpo.clone()
    } else {
        cfg.rpo.iter().rev().copied().collect()
    };
    for b in 0..n {
        if !cfg.reachable(b) {
            order.push(b);
        }
    }

    let mut on_list = vec![true; n];
    let mut work: std::collections::VecDeque<BlockId> = order.into_iter().collect();
    while let Some(b) = work.pop_front() {
        on_list[b] = false;
        let mut fact = input[b].clone();
        problem.transfer_block(func, b, &mut fact);
        if fact == output[b] {
            continue;
        }
        output[b] = fact;
        let dependents: &[BlockId] = if forward {
            &cfg.succs[b]
        } else {
            &cfg.preds[b]
        };
        for &d in dependents {
            let changed = if forward && problem.has_edge_transfer() {
                let mut edge_fact = output[b].clone();
                problem.transfer_edge(func, b, d, &mut edge_fact);
                problem.join_at(d, &mut input[d], &edge_fact)
            } else {
                problem.join_at(d, &mut input[d], &output[b])
            };
            if changed && !on_list[d] {
                on_list[d] = true;
                work.push_back(d);
            }
        }
    }

    if forward {
        Solution {
            entry: input,
            exit: output,
        }
    } else {
        Solution {
            entry: output,
            exit: input,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FunctionBuilder, Inst, Operand};

    /// A toy forward problem: "may reach this block" as a bool.
    struct Reachability;
    impl DataflowProblem for Reachability {
        type Fact = bool;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary_fact(&self) -> bool {
            true
        }
        fn init_fact(&self) -> bool {
            false
        }
        fn join(&self, into: &mut bool, from: &bool) -> bool {
            let new = *into || *from;
            let changed = new != *into;
            *into = new;
            changed
        }
        fn transfer_block(&self, _f: &Function, _b: BlockId, _fact: &mut bool) {}
    }

    #[test]
    fn forward_reachability_matches_cfg() {
        let mut fb = FunctionBuilder::new("r", 1);
        let next = fb.block("next");
        let dead = fb.block("dead");
        fb.switch_to(0);
        fb.push(Inst::Br { target: next });
        fb.switch_to(next);
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(0)),
        });
        fb.switch_to(dead);
        fb.push(Inst::Ret { val: None });
        let f = fb.build();
        let cfg = Cfg::new(&f);
        let sol = solve(&f, &cfg, &Reachability);
        assert!(sol.entry[0] && sol.entry[1]);
        assert!(!sol.entry[2], "dead block never becomes reachable");
    }
}
