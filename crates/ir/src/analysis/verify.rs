//! The strict IR verifier.
//!
//! [`verify`] runs before and after every pass (see
//! [`crate::passes::run_tm_passes_checked`]) and enforces what the
//! structural [`Function::validate`] cannot see on its own:
//!
//! * **definite assignment** — along *every* path from the entry, each
//!   register is written before it is read (arguments count as written);
//!   a must-analysis with intersection join over the solver;
//! * **region consistency** — every block is entered at one well-defined
//!   atomic-region depth, `tmend` never underflows, and no path returns
//!   while a region is still open (the interpreter would raise
//!   `UnbalancedEnd` at runtime; the verifier rejects it statically);
//! * the structural checks themselves (terminator placement, branch
//!   targets, register bounds) by delegating to `validate`.

use super::cfg::Cfg;
use super::solver::{solve, DataflowProblem, Direction};
use crate::ir::{BlockId, Function, Inst};

/// A verifier failure, locating the offending instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name.
    pub func: String,
    /// Block containing the problem (when attributable).
    pub block: Option<BlockId>,
    /// Instruction index within the block (when attributable).
    pub inst: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: ", self.func)?;
        if let Some(b) = self.block {
            write!(f, "block {b}")?;
            if let Some(i) = self.inst {
                write!(f, ", inst {i}")?;
            }
            write!(f, ": ")?;
        }
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Definite-assignment facts: one "definitely written" bit per
/// register. Must-analysis ⇒ intersection join, all-true top.
struct DefiniteAssign {
    num_regs: usize,
    num_args: usize,
}

impl DataflowProblem for DefiniteAssign {
    type Fact = Vec<bool>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary_fact(&self) -> Vec<bool> {
        (0..self.num_regs).map(|r| r < self.num_args).collect()
    }

    fn init_fact(&self) -> Vec<bool> {
        vec![true; self.num_regs]
    }

    fn join(&self, into: &mut Vec<bool>, from: &Vec<bool>) -> bool {
        let mut changed = false;
        for (i, f) in into.iter_mut().zip(from) {
            if *i && !*f {
                *i = false;
                changed = true;
            }
        }
        changed
    }

    fn transfer_block(&self, func: &Function, b: BlockId, fact: &mut Vec<bool>) {
        for inst in &func.blocks[b].insts {
            if let Some(d) = inst.def() {
                fact[d as usize] = true;
            }
        }
    }
}

/// Verify `func`; `Ok(())` means the passes and the interpreter can
/// rely on all invariants above.
pub fn verify(func: &Function) -> Result<(), VerifyError> {
    // Structural layer first (terminators, branch targets, bounds).
    func.validate().map_err(|message| VerifyError {
        func: func.name.clone(),
        block: None,
        inst: None,
        message,
    })?;
    let cfg = Cfg::new(func);
    check_definite_assignment(func, &cfg)?;
    check_region_balance(func, &cfg)?;
    Ok(())
}

fn check_definite_assignment(func: &Function, cfg: &Cfg) -> Result<(), VerifyError> {
    let problem = DefiniteAssign {
        num_regs: func.num_regs as usize,
        num_args: func.num_args as usize,
    };
    let sol = solve(func, cfg, &problem);
    let mut uses = Vec::new();
    for &b in &cfg.rpo {
        let mut assigned = sol.entry[b].clone();
        for (i, inst) in func.blocks[b].insts.iter().enumerate() {
            uses.clear();
            inst.uses(&mut uses);
            for &r in &uses {
                if !assigned[r as usize] {
                    return Err(VerifyError {
                        func: func.name.clone(),
                        block: Some(b),
                        inst: Some(i),
                        message: format!(
                            "register r{r} may be read before it is written \
                             (some path from the entry reaches this use without a def)"
                        ),
                    });
                }
            }
            if let Some(d) = inst.def() {
                assigned[d as usize] = true;
            }
        }
    }
    Ok(())
}

/// Propagate atomic-region depth along the CFG; every reachable block
/// must be entered at exactly one depth.
fn check_region_balance(func: &Function, cfg: &Cfg) -> Result<(), VerifyError> {
    let n = func.blocks.len();
    let mut depth_in: Vec<Option<u32>> = vec![None; n];
    depth_in[0] = Some(0);
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        let mut depth = depth_in[b].expect("queued blocks have a depth");
        for (i, inst) in func.blocks[b].insts.iter().enumerate() {
            match inst {
                Inst::TmBegin => depth += 1,
                Inst::TmEnd => {
                    if depth == 0 {
                        return Err(VerifyError {
                            func: func.name.clone(),
                            block: Some(b),
                            inst: Some(i),
                            message: "tmend outside any atomic region".into(),
                        });
                    }
                    depth -= 1;
                }
                Inst::Ret { .. } if depth != 0 => {
                    return Err(VerifyError {
                        func: func.name.clone(),
                        block: Some(b),
                        inst: Some(i),
                        message: format!("return while {depth} atomic region(s) are still open"),
                    });
                }
                _ => {}
            }
        }
        for &s in &cfg.succs[b] {
            match depth_in[s] {
                None => {
                    depth_in[s] = Some(depth);
                    work.push(s);
                }
                Some(d) if d != depth => {
                    return Err(VerifyError {
                        func: func.name.clone(),
                        block: Some(s),
                        inst: None,
                        message: format!(
                            "inconsistent atomic-region depth at join: \
                             entered at depth {d} and at depth {depth}"
                        ),
                    });
                }
                Some(_) => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;

    fn verify_src(src: &str) -> Result<(), VerifyError> {
        verify(&parse_function(src).unwrap())
    }

    #[test]
    fn accepts_all_builtin_programs() {
        for f in [
            crate::programs::hashtable_op(),
            crate::programs::vacation_reserve(),
            crate::programs::bank_transfer(),
            crate::programs::cross_block_guard(),
        ] {
            verify(&f).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn rejects_maybe_uninitialized_use() {
        let e = verify_src(
            r"
func f(1) {
entry:
  condbr r0, set, use
set:
  r1 = const 1
  br use
use:
  ret r1
}
",
        )
        .unwrap_err();
        assert!(e.message.contains("r1"), "{e}");
        assert!(e.message.contains("before it is written"), "{e}");
    }

    #[test]
    fn accepts_all_paths_assigned() {
        verify_src(
            r"
func f(1) {
entry:
  condbr r0, a, b
a:
  r1 = const 1
  br out
b:
  r1 = const 2
  br out
out:
  ret r1
}
",
        )
        .unwrap();
    }

    #[test]
    fn rejects_unbalanced_end() {
        let e = verify_src("func f(0) {\nentry:\n  tmend\n  ret\n}\n").unwrap_err();
        assert!(e.message.contains("outside any atomic region"), "{e}");
    }

    #[test]
    fn rejects_return_inside_region() {
        let e = verify_src("func f(0) {\nentry:\n  tmbegin\n  ret\n}\n").unwrap_err();
        assert!(e.message.contains("still open"), "{e}");
    }

    #[test]
    fn rejects_inconsistent_join_depth() {
        // `open` (depth 1) is the else-target so the DFS walks it first;
        // `plain` then arrives at the join at depth 0 and trips the
        // consistency check. (With the other order the walk reports the
        // join's tmend as an underflow instead — also a rejection, but
        // this test pins the join diagnostic.)
        let e = verify_src(
            r"
func f(1) {
entry:
  condbr r0, plain, open
open:
  tmbegin
  br join
plain:
  br join
join:
  tmend
  ret
}
",
        )
        .unwrap_err();
        assert!(e.message.contains("inconsistent"), "{e}");
    }
}
