//! Whole-function dataflow analysis for the IR.
//!
//! The paper's GCC passes lean on GIMPLE's existing dataflow machinery;
//! the seed reproduction only tracked facts within one basic block.
//! This module is the reusable substrate that lifts everything to whole
//! functions:
//!
//! * [`cfg`] — successor/predecessor maps, reverse postorder, and
//!   dominators;
//! * [`solver`] — a generic worklist solver for forward and backward
//!   problems;
//! * [`reaching`] — whole-function reaching definitions (forward);
//! * [`liveness`] — whole-function liveness (backward);
//! * [`patterns`] — the cross-block `cmp`/`inc` matchers built on
//!   reaching definitions, with explicit decline reasons;
//! * [`absint`] — lattice-based abstract interpretation (value ranges
//!   plus symbolic addresses), feeding range-widened promotion, the
//!   static conflict matrix, and lint rules SL006–SL011;
//! * [`verify`] — the strict IR verifier (definite assignment, region
//!   balance, structure) run around every pass.
//!
//! [`crate::passes`] consumes [`patterns`], [`absint`] and
//! [`liveness`]; [`crate::lint`] consumes everything.

pub mod absint;
pub mod cfg;
pub mod liveness;
pub mod patterns;
pub mod reaching;
pub mod solver;
pub mod verify;

pub use absint::{AbsInt, AbsVal, ConflictAnalysis, Interval, Regions, Sym};
pub use cfg::Cfg;
pub use liveness::Liveness;
pub use patterns::{CmpMatch, Decline, IncMatch, LoadOrigin, PatternCtx};
pub use reaching::{DefId, DefSite, Pos, ReachingDefs, ValueOrigin};
pub use solver::{solve, DataflowProblem, Direction, Solution};
pub use verify::{verify, VerifyError};
