//! Whole-function reaching definitions, built on the worklist solver.
//!
//! Every register is given a pseudo-definition at the function entry
//! (arguments arrive there; all other registers start at zero in the
//! interpreter), so the reaching set of a register at a reachable
//! position is never empty. A position's operand is *load-originated*
//! exactly when its single reaching definition is a `TmLoad` — the
//! cross-block generalisation of the paper's in-block origin tracking.

use super::cfg::Cfg;
use super::solver::{solve, DataflowProblem, Direction};
use crate::ir::{BlockId, Function, Inst, Operand, Reg};

/// Index into [`ReachingDefs::defs`].
pub type DefId = u32;

/// A (block, instruction index) program position.
pub type Pos = (BlockId, usize);

/// Where a definition comes from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DefSite {
    /// The register's value at function entry (argument or implicit
    /// zero).
    Entry(Reg),
    /// The instruction at this position defines the register.
    Inst(BlockId, usize),
}

/// Where an operand's value ultimately comes from, after resolving
/// `mov` copy chains through unique reaching definitions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValueOrigin {
    /// A manifest immediate.
    Imm(i64),
    /// The value an argument (or implicitly-zero) register held at
    /// function entry, untouched by any real definition.
    Entry(Reg),
    /// The non-copy instruction at this position produced the value.
    Def(Pos),
    /// More than one definition reaches, or the chain left the
    /// function (no usable identity).
    Unknown,
}

/// Per-register sets of reaching definitions: `facts[r]` is a sorted
/// `Vec<DefId>`.
type Fact = Vec<Vec<DefId>>;

struct RdProblem<'a> {
    num_regs: usize,
    /// `def_at[b][i]` = the `DefId` of the definition made by
    /// instruction `(b, i)`, if any.
    def_at: &'a [Vec<Option<DefId>>],
    entry_defs: &'a [DefId],
    defs: &'a [DefSite],
}

fn insert_sorted(v: &mut Vec<DefId>, id: DefId) -> bool {
    match v.binary_search(&id) {
        Ok(_) => false,
        Err(i) => {
            v.insert(i, id);
            true
        }
    }
}

impl DataflowProblem for RdProblem<'_> {
    type Fact = Fact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary_fact(&self) -> Fact {
        let mut f = vec![Vec::new(); self.num_regs];
        for &id in self.entry_defs {
            let DefSite::Entry(r) = self.defs[id as usize] else {
                unreachable!("entry_defs holds Entry sites only");
            };
            f[r as usize].push(id);
        }
        f
    }

    fn init_fact(&self) -> Fact {
        vec![Vec::new(); self.num_regs]
    }

    fn join(&self, into: &mut Fact, from: &Fact) -> bool {
        let mut changed = false;
        for (into_r, from_r) in into.iter_mut().zip(from) {
            for &id in from_r {
                changed |= insert_sorted(into_r, id);
            }
        }
        changed
    }

    fn transfer_block(&self, func: &Function, b: BlockId, fact: &mut Fact) {
        for (i, inst) in func.blocks[b].insts.iter().enumerate() {
            if let Some(d) = inst.def() {
                let id = self.def_at[b][i].expect("defining instruction has a DefId");
                fact[d as usize] = vec![id];
            }
        }
    }
}

/// The solved reaching-definitions analysis, with position-level
/// queries.
pub struct ReachingDefs {
    /// All definition sites; index with a [`DefId`].
    pub defs: Vec<DefSite>,
    /// `before[b][i]` = per-register reaching sets immediately before
    /// executing instruction `(b, i)`; `before[b]` has one extra entry
    /// for the block end.
    before: Vec<Vec<Fact>>,
}

impl ReachingDefs {
    /// Solve reaching definitions for `func`.
    pub fn compute(func: &Function, cfg: &Cfg) -> ReachingDefs {
        let num_regs = func.num_regs as usize;
        let mut defs: Vec<DefSite> = Vec::new();
        let mut entry_defs: Vec<DefId> = Vec::new();
        for r in 0..func.num_regs {
            entry_defs.push(defs.len() as DefId);
            defs.push(DefSite::Entry(r));
        }
        let mut def_at: Vec<Vec<Option<DefId>>> = Vec::with_capacity(func.blocks.len());
        for (b, block) in func.blocks.iter().enumerate() {
            let mut ids = Vec::with_capacity(block.insts.len());
            for (i, inst) in block.insts.iter().enumerate() {
                if inst.def().is_some() {
                    ids.push(Some(defs.len() as DefId));
                    defs.push(DefSite::Inst(b, i));
                } else {
                    ids.push(None);
                }
            }
            def_at.push(ids);
        }

        let problem = RdProblem {
            num_regs,
            def_at: &def_at,
            entry_defs: &entry_defs,
            defs: &defs,
        };
        let sol = solve(func, cfg, &problem);

        // Replay each block to recover position-level facts.
        let mut before = Vec::with_capacity(func.blocks.len());
        for (b, block) in func.blocks.iter().enumerate() {
            let mut cur = sol.entry[b].clone();
            let mut per_inst = Vec::with_capacity(block.insts.len() + 1);
            for (i, inst) in block.insts.iter().enumerate() {
                per_inst.push(cur.clone());
                if let Some(d) = inst.def() {
                    cur[d as usize] = vec![def_at[b][i].unwrap()];
                }
            }
            per_inst.push(cur);
            before.push(per_inst);
        }
        ReachingDefs { defs, before }
    }

    /// The definitions of `reg` reaching the point just before
    /// position `pos`.
    pub fn reaching(&self, pos: Pos, reg: Reg) -> &[DefId] {
        &self.before[pos.0][pos.1][reg as usize]
    }

    /// The single definition of `reg` reaching `pos`, if there is
    /// exactly one.
    pub fn unique_def(&self, pos: Pos, reg: Reg) -> Option<DefSite> {
        match self.reaching(pos, reg) {
            [one] => Some(self.defs[*one as usize]),
            _ => None,
        }
    }

    /// Do `a` at `pa` and `b` at `pb` denote the same value by
    /// reaching-definition identity? Immediates compare by value;
    /// registers must be the same register with identical (non-empty)
    /// reaching sets. This replaces the seed's purely syntactic
    /// `same_address` check — a register redefined between the two
    /// positions yields different reaching sets and is rejected.
    ///
    /// Note: set equality alone is not loop-proof (a definition inside
    /// a loop body can reach both positions); pattern matching pairs
    /// this with a [`super::patterns`] path scan that rejects any
    /// intervening redefinition.
    pub fn operand_identical(&self, a: Operand, pa: Pos, b: Operand, pb: Pos) -> bool {
        match (a, b) {
            (Operand::Imm(x), Operand::Imm(y)) => x == y,
            (Operand::Reg(x), Operand::Reg(y)) => {
                x == y && !self.reaching(pa, x).is_empty() && {
                    self.reaching(pa, x) == self.reaching(pb, y)
                }
            }
            _ => false,
        }
    }

    /// Resolve `op` at `pos` to its [`ValueOrigin`], following `mov`
    /// copy chains through unique reaching definitions. Two operands
    /// with the same non-[`ValueOrigin::Unknown`] origin denote the
    /// same value even under different register names — the identity
    /// `operand_identical` cannot see (same loop caveat applies: a
    /// `Def` inside a loop body is one *site*, not one dynamic value).
    pub fn operand_origin(&self, func: &Function, mut op: Operand, mut pos: Pos) -> ValueOrigin {
        // The chain strictly follows unique defs backwards; a fuel
        // bound guards against any pathological aliasing of sites.
        for _ in 0..self.defs.len() + 1 {
            let r = match op {
                Operand::Imm(v) => return ValueOrigin::Imm(v),
                Operand::Reg(r) => r,
            };
            match self.unique_def(pos, r) {
                None => return ValueOrigin::Unknown,
                Some(DefSite::Entry(e)) => return ValueOrigin::Entry(e),
                Some(DefSite::Inst(b, i)) => match func.blocks[b].insts[i] {
                    Inst::Mov { src, .. } => {
                        op = src;
                        pos = (b, i);
                    }
                    _ => return ValueOrigin::Def((b, i)),
                },
            }
        }
        ValueOrigin::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FunctionBuilder, Inst, Operand};

    #[test]
    fn entry_defs_reach_until_killed() {
        let mut fb = FunctionBuilder::new("f", 1);
        let r = fb.reg();
        fb.push(Inst::Mov {
            dst: r,
            src: Operand::Reg(0),
        });
        fb.push(Inst::Mov {
            dst: 0,
            src: Operand::Imm(9),
        });
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(r)),
        });
        let f = fb.build();
        let cfg = Cfg::new(&f);
        let rd = ReachingDefs::compute(&f, &cfg);
        assert_eq!(rd.unique_def((0, 0), 0), Some(DefSite::Entry(0)));
        assert_eq!(rd.unique_def((0, 2), 0), Some(DefSite::Inst(0, 1)));
        assert_eq!(rd.unique_def((0, 2), r), Some(DefSite::Inst(0, 0)));
    }

    #[test]
    fn joins_merge_definitions() {
        // r1 defined differently on two arms; the join sees both.
        let mut fb = FunctionBuilder::new("j", 1);
        let r = fb.reg();
        let t = fb.block("t");
        let e = fb.block("e");
        let j = fb.block("j");
        fb.switch_to(0);
        fb.push(Inst::CondBr {
            cond: Operand::Reg(0),
            then_to: t,
            else_to: e,
        });
        fb.switch_to(t);
        fb.push(Inst::Mov {
            dst: r,
            src: Operand::Imm(1),
        });
        fb.push(Inst::Br { target: j });
        fb.switch_to(e);
        fb.push(Inst::Mov {
            dst: r,
            src: Operand::Imm(2),
        });
        fb.push(Inst::Br { target: j });
        fb.switch_to(j);
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(r)),
        });
        let f = fb.build();
        let cfg = Cfg::new(&f);
        let rd = ReachingDefs::compute(&f, &cfg);
        assert_eq!(rd.reaching((3, 0), r).len(), 2);
        assert_eq!(rd.unique_def((3, 0), r), None);
        assert_eq!(rd.unique_def((1, 1), r), Some(DefSite::Inst(1, 0)));
    }

    #[test]
    fn operand_identity_rejects_redefinition() {
        let mut fb = FunctionBuilder::new("s", 1);
        let v = fb.reg();
        fb.push(Inst::TmLoad {
            dst: v,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Bin {
            op: crate::ir::BinOp::Add,
            dst: 0,
            a: Operand::Reg(0),
            b: Operand::Imm(8),
        });
        fb.push(Inst::TmStore {
            addr: Operand::Reg(0),
            val: Operand::Reg(v),
        });
        fb.push(Inst::Ret { val: None });
        let f = fb.build();
        let cfg = Cfg::new(&f);
        let rd = ReachingDefs::compute(&f, &cfg);
        let r0 = Operand::Reg(0);
        assert!(!rd.operand_identical(r0, (0, 0), r0, (0, 2)));
        assert!(rd.operand_identical(r0, (0, 0), r0, (0, 1)));
        assert!(rd.operand_identical(Operand::Imm(3), (0, 0), Operand::Imm(3), (0, 2)));
    }

    #[test]
    fn origin_resolves_copy_chains() {
        // r1 = load, r2 = mov r1, r3 = mov r2: all three share the
        // load's origin; r0 keeps its entry origin through a copy.
        let mut fb = FunctionBuilder::new("c", 1);
        let (r1, r2, r3, r4) = (fb.reg(), fb.reg(), fb.reg(), fb.reg());
        fb.push(Inst::TmLoad {
            dst: r1,
            addr: Operand::Reg(0),
        });
        fb.push(Inst::Mov {
            dst: r2,
            src: Operand::Reg(r1),
        });
        fb.push(Inst::Mov {
            dst: r3,
            src: Operand::Reg(r2),
        });
        fb.push(Inst::Mov {
            dst: r4,
            src: Operand::Reg(0),
        });
        fb.push(Inst::Ret {
            val: Some(Operand::Reg(r3)),
        });
        let f = fb.build();
        let cfg = Cfg::new(&f);
        let rd = ReachingDefs::compute(&f, &cfg);
        let end = (0, 4);
        let load = ValueOrigin::Def((0, 0));
        assert_eq!(rd.operand_origin(&f, Operand::Reg(r1), end), load);
        assert_eq!(rd.operand_origin(&f, Operand::Reg(r3), end), load);
        assert_eq!(
            rd.operand_origin(&f, Operand::Reg(r4), end),
            ValueOrigin::Entry(0)
        );
        assert_eq!(
            rd.operand_origin(&f, Operand::Imm(9), end),
            ValueOrigin::Imm(9)
        );
    }
}
