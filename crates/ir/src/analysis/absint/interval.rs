//! The interval (value-range) lattice over `i64`.
//!
//! Bounds are plain `i64`s: every runtime value is an `i64`, so
//! `i64::MIN`/`i64::MAX` double as "unbounded" without a separate ±∞
//! representation. The empty interval (`lo > hi`) is the lattice
//! bottom; `[MIN, MAX]` is top. Arithmetic is computed in `i128` and
//! collapses to top whenever the mathematical result could leave the
//! `i64` range — the IR's operators wrap, so outside that window the
//! mathematical interval no longer describes the machine result.
//!
//! The lattice has (very long) infinite-looking ascending chains — a
//! loop counter climbs one join at a time — so the fixpoint in
//! [`super::AbsInt`] pairs `join` with [`Interval::widen`] after a
//! fixed delay, which jumps unstable bounds straight to ±∞.

use semtm_core::CmpOp;

/// A closed interval of `i64` values; `lo > hi` means empty.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: i64,
    /// Largest possible value.
    pub hi: i64,
}

const MIN: i128 = i64::MIN as i128;
const MAX: i128 = i64::MAX as i128;

fn clamp(lo: i128, hi: i128) -> Interval {
    // A mathematical bound outside i64 means the machine value may have
    // wrapped; the whole interval collapses to top on that side only if
    // wrapping actually reaches it — conservatively, collapse entirely.
    if lo < MIN || hi > MAX {
        Interval::TOP
    } else {
        Interval {
            lo: lo as i64,
            hi: hi as i64,
        }
    }
}

// `add`/`sub`/`mul` here are lattice transfer functions (empty maps to
// empty, wrap maps to TOP), not ring operations — keeping them inherent
// avoids implying the `std::ops` algebraic laws.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// The full `i64` range (no information).
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };
    /// The empty interval (unreachable value).
    pub const EMPTY: Interval = Interval {
        lo: i64::MAX,
        hi: i64::MIN,
    };

    /// The singleton `[v, v]`.
    pub fn constant(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// Is this the empty interval?
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// The single value, if the interval is a singleton.
    pub fn singleton(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Least upper bound (union hull).
    pub fn join(self, other: Interval) -> Interval {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Greatest lower bound (intersection).
    pub fn meet(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Standard interval widening: any bound still moving after the
    /// widening delay jumps straight to ±∞, capping the chain length at
    /// two steps per bound.
    pub fn widen(self, next: Interval) -> Interval {
        if self.is_empty() {
            return next;
        }
        if next.is_empty() {
            return self;
        }
        Interval {
            lo: if next.lo < self.lo { i64::MIN } else { self.lo },
            hi: if next.hi > self.hi { i64::MAX } else { self.hi },
        }
    }

    /// Mathematical sum; top if any sum can leave `i64` (the machine
    /// add would wrap there).
    pub fn add(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        clamp(
            self.lo as i128 + other.lo as i128,
            self.hi as i128 + other.hi as i128,
        )
    }

    /// Mathematical difference; top on possible wrap.
    pub fn sub(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        clamp(
            self.lo as i128 - other.hi as i128,
            self.hi as i128 - other.lo as i128,
        )
    }

    /// Mathematical product; top on possible wrap.
    pub fn mul(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        let products = [
            self.lo as i128 * other.lo as i128,
            self.lo as i128 * other.hi as i128,
            self.hi as i128 * other.lo as i128,
            self.hi as i128 * other.hi as i128,
        ];
        clamp(
            *products.iter().min().unwrap(),
            *products.iter().max().unwrap(),
        )
    }

    /// Does the machine addition `self + other` provably not wrap?
    /// True exactly when the mathematical sum interval stays within
    /// `i64` — the precondition for treating `+` as mathematical `+`
    /// in the range-widening rewrite.
    pub fn add_cannot_wrap(self, other: Interval) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.lo as i128 + other.lo as i128 >= MIN
            && self.hi as i128 + other.hi as i128 <= MAX
    }

    /// Does the machine subtraction `self - other` provably not wrap?
    pub fn sub_cannot_wrap(self, other: Interval) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.lo as i128 - other.hi as i128 >= MIN
            && self.hi as i128 - other.lo as i128 <= MAX
    }

    /// Refine `self` under the assumption `self OP k` (comparison
    /// against a known constant). The result is empty when the
    /// assumption is unsatisfiable.
    pub fn refine(self, op: CmpOp, k: i64) -> Interval {
        if self.is_empty() {
            return self;
        }
        match op {
            CmpOp::Eq => self.meet(Interval::constant(k)),
            CmpOp::Neq => {
                // Only shaves the interval when k is an endpoint.
                if self.singleton() == Some(k) {
                    Interval::EMPTY
                } else if self.lo == k {
                    Interval {
                        lo: k.saturating_add(1),
                        hi: self.hi,
                    }
                } else if self.hi == k {
                    Interval {
                        lo: self.lo,
                        hi: k.saturating_sub(1),
                    }
                } else {
                    self
                }
            }
            CmpOp::Gt => {
                if k == i64::MAX {
                    Interval::EMPTY
                } else {
                    self.meet(Interval {
                        lo: k + 1,
                        hi: i64::MAX,
                    })
                }
            }
            CmpOp::Gte => self.meet(Interval {
                lo: k,
                hi: i64::MAX,
            }),
            CmpOp::Lt => {
                if k == i64::MIN {
                    Interval::EMPTY
                } else {
                    self.meet(Interval {
                        lo: i64::MIN,
                        hi: k - 1,
                    })
                }
            }
            CmpOp::Lte => self.meet(Interval {
                lo: i64::MIN,
                hi: k,
            }),
        }
    }

    /// Decide `a OP b` when the intervals allow only one outcome:
    /// `Some(true)` / `Some(false)` when every pair of values agrees,
    /// `None` when both outcomes are possible.
    pub fn cmp_always(op: CmpOp, a: Interval, b: Interval) -> Option<bool> {
        if a.is_empty() || b.is_empty() {
            return None;
        }
        let always = |op: CmpOp, a: Interval, b: Interval| match op {
            CmpOp::Eq => a.singleton().is_some() && a.singleton() == b.singleton(),
            CmpOp::Neq => a.hi < b.lo || b.hi < a.lo,
            CmpOp::Gt => a.lo > b.hi,
            CmpOp::Gte => a.lo >= b.hi,
            CmpOp::Lt => a.hi < b.lo,
            CmpOp::Lte => a.hi <= b.lo,
        };
        if always(op, a, b) {
            Some(true)
        } else if always(op.inverse(), a, b) {
            Some(false)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_meet_widen_basics() {
        let a = Interval { lo: 0, hi: 10 };
        let b = Interval { lo: 5, hi: 20 };
        assert_eq!(a.join(b), Interval { lo: 0, hi: 20 });
        assert_eq!(a.meet(b), Interval { lo: 5, hi: 10 });
        assert!(Interval::EMPTY.join(a) == a && a.meet(Interval::EMPTY).is_empty());
        // Widening: the moving bound jumps to the extreme, the stable
        // bound stays.
        let w = a.widen(Interval { lo: 0, hi: 11 });
        assert_eq!(
            w,
            Interval {
                lo: 0,
                hi: i64::MAX
            }
        );
        assert_eq!(a.widen(a), a);
    }

    #[test]
    fn arithmetic_collapses_on_possible_wrap() {
        let big = Interval {
            lo: i64::MAX - 5,
            hi: i64::MAX,
        };
        assert_eq!(big.add(Interval::constant(10)), Interval::TOP);
        assert!(!big.add_cannot_wrap(Interval::constant(10)));
        let small = Interval { lo: 0, hi: 100 };
        assert_eq!(
            small.add(Interval::constant(27)),
            Interval { lo: 27, hi: 127 }
        );
        assert!(small.add_cannot_wrap(Interval::constant(27)));
        // Unbounded below + positive constant still cannot overflow.
        let half = Interval {
            lo: i64::MIN,
            hi: 100,
        };
        assert!(half.add_cannot_wrap(Interval::constant(27)));
        assert_eq!(
            half.add(Interval::constant(27)),
            Interval {
                lo: i64::MIN + 27,
                hi: 127
            }
        );
    }

    #[test]
    fn refinement_matches_relations() {
        let x = Interval { lo: 0, hi: 100 };
        assert_eq!(x.refine(CmpOp::Gt, 50), Interval { lo: 51, hi: 100 });
        assert_eq!(x.refine(CmpOp::Lte, 10), Interval { lo: 0, hi: 10 });
        assert!(x.refine(CmpOp::Gt, 100).is_empty());
        assert_eq!(x.refine(CmpOp::Eq, 7), Interval::constant(7));
        assert_eq!(x.refine(CmpOp::Neq, 0), Interval { lo: 1, hi: 100 });
        assert_eq!(Interval::TOP.refine(CmpOp::Gt, i64::MAX), Interval::EMPTY);
    }

    #[test]
    fn cmp_always_decides_only_forced_outcomes() {
        let small = Interval { lo: 0, hi: 10 };
        let large = Interval { lo: 20, hi: 30 };
        assert_eq!(Interval::cmp_always(CmpOp::Lt, small, large), Some(true));
        assert_eq!(Interval::cmp_always(CmpOp::Gte, small, large), Some(false));
        assert_eq!(Interval::cmp_always(CmpOp::Lt, small, small), None);
        assert_eq!(
            Interval::cmp_always(CmpOp::Eq, Interval::constant(4), Interval::constant(4)),
            Some(true)
        );
        assert_eq!(
            Interval::cmp_always(CmpOp::Neq, Interval::constant(4), Interval::constant(4)),
            Some(false)
        );
    }
}
