//! Atomic-region identification.
//!
//! The conflict analysis and several lint rules need to talk about
//! *regions* — the dynamic extent of one `tmbegin`..`tmend` pair — not
//! just region *depth*. A region is keyed by the `TmBegin` that raises
//! the depth from 0 (nested begins under the flattened-nesting model do
//! not open a new transaction). Where two distinct begins' extents meet
//! at a join point (both arms of a diamond open a region, say), the
//! regions are merged with a union-find: they denote the same dynamic
//! transaction at the join and must be analysed as one.

use super::super::cfg::Cfg;
use super::super::reaching::Pos;
use crate::ir::{Function, Inst};

/// Region membership and depth for every instruction of one function.
pub struct Regions {
    /// `depth[b][i]` = region depth before executing `(b, i)`;
    /// unreachable blocks are depth 0.
    depth: Vec<Vec<u32>>,
    /// `region_of[b][i]` = dense region index, for instructions at
    /// depth > 0.
    region_of: Vec<Vec<Option<usize>>>,
    /// Per region, the `TmBegin` positions that open it (more than one
    /// only for merged regions).
    begins: Vec<Vec<Pos>>,
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new() -> UnionFind {
        UnionFind { parent: Vec::new() }
    }
    fn make(&mut self) -> usize {
        self.parent.push(self.parent.len());
        self.parent.len() - 1
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra.max(rb)] = ra.min(rb);
        true
    }
}

impl Regions {
    /// Compute regions for a (verified) function.
    pub fn compute(func: &Function, cfg: &Cfg) -> Regions {
        let n = func.blocks.len();
        let mut uf = UnionFind::new();
        // One raw region id per depth-raising TmBegin position.
        let mut begin_ids: std::collections::HashMap<Pos, usize> = std::collections::HashMap::new();
        // Block-entry state: (depth, innermost-transaction raw id).
        let mut entry: Vec<Option<(u32, Option<usize>)>> = vec![None; n];
        entry[0] = Some((0, None));

        // Propagate to a fixpoint; unions can only merge, so this
        // terminates (each pass either changes nothing or shrinks the
        // number of region classes / fills in an entry state).
        loop {
            let mut changed = false;
            for b in cfg.rpo.clone() {
                let Some((mut depth, mut region)) = entry[b] else {
                    continue;
                };
                if let Some(r) = region {
                    region = Some(uf.find(r));
                }
                for (i, inst) in func.blocks[b].insts.iter().enumerate() {
                    match inst {
                        Inst::TmBegin => {
                            if depth == 0 {
                                let id = *begin_ids.entry((b, i)).or_insert_with(|| uf.make());
                                region = Some(uf.find(id));
                            }
                            depth += 1;
                        }
                        Inst::TmEnd => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                region = None;
                            }
                        }
                        _ => {}
                    }
                }
                for &s in &cfg.succs[b] {
                    match entry[s] {
                        None => {
                            entry[s] = Some((depth, region));
                            changed = true;
                        }
                        Some((_, other)) => {
                            if let (Some(a), Some(bb)) = (region, other) {
                                changed |= uf.union(a, bb);
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Dense re-index of the surviving region roots, ordered by
        // their first begin position.
        let mut root_begins: std::collections::BTreeMap<usize, Vec<Pos>> =
            std::collections::BTreeMap::new();
        for (&pos, &raw) in &begin_ids {
            let root = uf.find(raw);
            root_begins.entry(root).or_default().push(pos);
        }
        let mut roots: Vec<(Pos, usize)> = root_begins
            .iter_mut()
            .map(|(&root, begins)| {
                begins.sort_unstable();
                (begins[0], root)
            })
            .collect();
        roots.sort_unstable();
        let dense: std::collections::HashMap<usize, usize> = roots
            .iter()
            .enumerate()
            .map(|(d, &(_, root))| (root, d))
            .collect();
        let begins: Vec<Vec<Pos>> = roots
            .iter()
            .map(|&(_, root)| root_begins[&root].clone())
            .collect();

        // Final sweep: per-instruction depth and dense region index.
        let mut depth_of = vec![Vec::new(); n];
        let mut region_of = vec![Vec::new(); n];
        for b in 0..n {
            let insts = &func.blocks[b].insts;
            let (mut depth, mut region) = match entry[b] {
                Some((d, r)) => (d, r.map(|r| dense[&uf.find(r)])),
                None => (0, None),
            };
            let mut depths = Vec::with_capacity(insts.len());
            let mut regs = Vec::with_capacity(insts.len());
            for (i, inst) in insts.iter().enumerate() {
                depths.push(depth);
                regs.push(if depth > 0 { region } else { None });
                match inst {
                    Inst::TmBegin => {
                        if depth == 0 {
                            region = Some(dense[&uf.find(begin_ids[&(b, i)])]);
                        }
                        depth += 1;
                    }
                    Inst::TmEnd => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            region = None;
                        }
                    }
                    _ => {}
                }
            }
            depth_of[b] = depths;
            region_of[b] = regs;
        }
        Regions {
            depth: depth_of,
            region_of,
            begins,
        }
    }

    /// Region depth before executing the instruction at `pos`.
    pub fn depth(&self, pos: Pos) -> u32 {
        self.depth[pos.0][pos.1]
    }

    /// Dense region index of the transaction `pos` executes inside, if
    /// any. The `TmBegin` itself is *outside* (depth-before is 0); the
    /// matching `TmEnd` is inside.
    pub fn region(&self, pos: Pos) -> Option<usize> {
        self.region_of[pos.0][pos.1]
    }

    /// Number of distinct atomic regions.
    pub fn count(&self) -> usize {
        self.begins.len()
    }

    /// The `TmBegin` positions opening region `r`.
    pub fn begins(&self, r: usize) -> &[Pos] {
        &self.begins[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Cfg;
    use crate::parser::parse_function;

    fn regions_for(src: &str) -> Regions {
        let f = parse_function(src).unwrap();
        let cfg = Cfg::new(&f);
        Regions::compute(&f, &cfg)
    }

    #[test]
    fn sequential_regions_are_distinct() {
        let r = regions_for(
            r"
func f(1) {
entry:
  tmbegin
  tmstore r0, 1
  tmend
  tmbegin
  tmstore r0, 2
  tmend
  ret
}
",
        );
        assert_eq!(r.count(), 2);
        assert_eq!(r.region((0, 1)), Some(0));
        assert_eq!(r.region((0, 4)), Some(1));
        assert_eq!(r.region((0, 6)), None, "ret is outside both");
        assert_eq!(r.depth((0, 1)), 1);
    }

    #[test]
    fn diamond_opening_on_both_arms_merges() {
        let r = regions_for(
            r"
func f(1) {
entry:
  condbr r0, a, b
a:
  tmbegin
  br join
b:
  tmbegin
  br join
join:
  tmstore r0, 1
  tmend
  ret
}
",
        );
        assert_eq!(r.count(), 1, "both begins denote the same transaction");
        assert_eq!(r.region((3, 0)), Some(0));
        assert_eq!(r.begins(0).len(), 2);
    }
}
