//! Static conflict analysis: per-region abstract access sets and the
//! region×region conflict matrix.
//!
//! This is the static twin of the runtime flight recorder: where
//! `semtm_core::Telemetry::hot_addresses()` *observes* which words two
//! transactions fought over, this module *predicts* the fight from the
//! abstract addresses the interpreter computed. The matrix is exported
//! by `semlint --conflicts` and backs rules `SL006` (a region pair that
//! must conflict on a raw access) and `SL009` (a provably read-only
//! region).
//!
//! Like-instance convention: two regions are compared as if both run
//! with the *same* argument values (two threads executing the same
//! kernel on the same object). Under that convention two `Arg`-based
//! addresses with the same base register and equal singleton offsets
//! denote the same word (`Must`); same base with disjoint offset sets
//! provably differ (`No`) — wrapping addition is injective in the
//! offset, so this holds even if the address arithmetic wrapped.

use super::super::cfg::Cfg;
use super::super::reaching::Pos;
use super::regions::Regions;
use super::{AbsInt, AbsVal, Interval, Sym};
use crate::ir::{Function, Inst, Operand, Reg};

/// An abstract heap address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbsAddr {
    /// A compile-time constant word index.
    Const(i64),
    /// `entry(arg r) + offset`, offset drawn from the interval.
    Arg(Reg, Interval),
    /// No usable identity.
    Unknown,
}

impl AbsAddr {
    /// Project an abstract value to an address.
    pub fn from_value(v: AbsVal) -> AbsAddr {
        match v.sym {
            Sym::Arg(r, off) => AbsAddr::Arg(r, off),
            _ => match v.range.singleton() {
                Some(k) => AbsAddr::Const(k),
                None => AbsAddr::Unknown,
            },
        }
    }

    /// May/must overlap under the like-instance convention.
    pub fn overlap(self, other: AbsAddr) -> Overlap {
        match (self, other) {
            (AbsAddr::Const(a), AbsAddr::Const(b)) => {
                if a == b {
                    Overlap::Must
                } else {
                    Overlap::No
                }
            }
            (AbsAddr::Arg(r1, o1), AbsAddr::Arg(r2, o2)) if r1 == r2 => {
                match (o1.singleton(), o2.singleton()) {
                    (Some(a), Some(b)) if a == b => Overlap::Must,
                    _ if o1.meet(o2).is_empty() => Overlap::No,
                    _ => Overlap::May,
                }
            }
            // Different bases (or a base vs a raw constant) may alias:
            // nothing relates the argument values.
            _ => Overlap::May,
        }
    }
}

impl std::fmt::Display for AbsAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbsAddr::Const(k) => write!(f, "{k}"),
            AbsAddr::Arg(r, off) => {
                if let Some(k) = off.singleton() {
                    if k == 0 {
                        write!(f, "arg{r}")
                    } else {
                        write!(f, "arg{r}+{k}")
                    }
                } else if *off == Interval::TOP {
                    write!(f, "arg{r}+?")
                } else {
                    write!(f, "arg{r}+[{}..{}]", off.lo, off.hi)
                }
            }
            AbsAddr::Unknown => write!(f, "?"),
        }
    }
}

/// How strongly two abstract addresses can denote the same word.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Overlap {
    /// Provably distinct.
    No,
    /// Possibly the same word.
    May,
    /// Provably the same word.
    Must,
}

/// What an access does to its word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// `tmload` — a value read.
    Read,
    /// `tmstore` — a value write.
    Write,
    /// `tmcmp`/`tmcmp2` — a semantic read that only observes a
    /// relation.
    Compare,
    /// `tminc`/`tmdec` — a semantic, commutative read-modify-write.
    Inc,
}

impl AccessKind {
    fn label(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Compare => "cmp",
            AccessKind::Inc => "inc",
        }
    }
}

/// One transactional memory access inside a region.
#[derive(Clone, Copy, Debug)]
pub struct Access {
    /// Where the instruction sits.
    pub pos: Pos,
    /// Read / write / compare / inc.
    pub kind: AccessKind,
    /// The abstract address it touches.
    pub addr: AbsAddr,
}

/// The abstract read/write/compare set of one atomic region.
pub struct RegionSummary {
    /// Dense region index (matches [`Regions`]).
    pub region: usize,
    /// Every transactional access in the region, program order.
    pub accesses: Vec<Access>,
}

impl RegionSummary {
    /// True when the region performs no write and no increment — a
    /// candidate for a read-only fast path (`SL009`).
    pub fn is_read_only(&self) -> bool {
        !self.accesses.is_empty()
            && self
                .accesses
                .iter()
                .all(|a| matches!(a.kind, AccessKind::Read | AccessKind::Compare))
    }
}

/// One cell of the conflict matrix: the strongest way regions `i` and
/// `j` can collide.
#[derive(Clone, Copy, Debug)]
pub struct Conflict {
    /// How certain the address overlap is.
    pub overlap: Overlap,
    /// True when every colliding pair is semantically reducible —
    /// compare-vs-write and inc-vs-inc collisions that semantic
    /// validation can ride through (the paper's point), as opposed to
    /// raw read/write collisions byte validation must abort on.
    pub reducible: bool,
    /// A witness pair of positions, one per region.
    pub witness: (Pos, Pos),
}

/// Whole-function conflict analysis result.
pub struct ConflictAnalysis {
    /// Per-region access summaries.
    pub summaries: Vec<RegionSummary>,
    /// `matrix[i][j]` (i ≤ j): the conflict between regions i and j,
    /// if any pair of their accesses can overlap.
    matrix: Vec<Vec<Option<Conflict>>>,
}

/// Does a `k1` access colliding with a `k2` access conflict at all,
/// and if so, can semantic validation reduce it?
/// Returns `None` for non-conflicting pairs (read/read and anything
/// involving only observations), `Some(reducible)` otherwise.
fn classify(k1: AccessKind, k2: AccessKind) -> Option<bool> {
    use AccessKind::*;
    match (k1, k2) {
        // Pure observations never conflict with each other.
        (Read | Compare, Read | Compare) => None,
        // A compare against a concurrent writer/incrementer is the
        // paper's semantic win: validation re-checks the relation.
        (Compare, Write | Inc) | (Write | Inc, Compare) => Some(true),
        // Increments commute with each other.
        (Inc, Inc) => Some(true),
        // Everything else is a raw data conflict.
        _ => Some(false),
    }
}

impl ConflictAnalysis {
    /// Summarise every region of `func` and fold the pairwise matrix.
    pub fn compute(
        func: &Function,
        _cfg: &Cfg,
        absint: &AbsInt,
        regions: &Regions,
    ) -> ConflictAnalysis {
        let mut summaries: Vec<RegionSummary> = (0..regions.count())
            .map(|region| RegionSummary {
                region,
                accesses: Vec::new(),
            })
            .collect();
        for (b, block) in func.blocks.iter().enumerate() {
            for (i, inst) in block.insts.iter().enumerate() {
                let pos = (b, i);
                let Some(region) = regions.region(pos) else {
                    continue;
                };
                if !absint.state_reachable(pos) {
                    continue;
                }
                let addr_of = |a: Operand| AbsAddr::from_value(absint.operand(pos, a));
                let mut push = |kind, addr| {
                    summaries[region].accesses.push(Access { pos, kind, addr });
                };
                match *inst {
                    Inst::TmLoad { addr, .. } => push(AccessKind::Read, addr_of(addr)),
                    Inst::TmStore { addr, .. } => push(AccessKind::Write, addr_of(addr)),
                    Inst::TmCmpVal { addr, .. } => push(AccessKind::Compare, addr_of(addr)),
                    Inst::TmCmpAddr { a, b: rb, .. } => {
                        push(AccessKind::Compare, addr_of(a));
                        push(AccessKind::Compare, addr_of(rb));
                    }
                    Inst::TmInc { addr, .. } => push(AccessKind::Inc, addr_of(addr)),
                    _ => {}
                }
            }
        }

        let n = summaries.len();
        let mut matrix = vec![vec![None; n]; n];
        for i in 0..n {
            for j in i..n {
                matrix[i][j] = cell(&summaries[i], &summaries[j]);
            }
        }
        ConflictAnalysis { summaries, matrix }
    }

    /// The conflict between regions `i` and `j`, if any (symmetric).
    pub fn conflict(&self, i: usize, j: usize) -> Option<Conflict> {
        let (i, j) = (i.min(j), i.max(j));
        self.matrix[i][j]
    }

    /// Render the matrix as the `--conflicts` report for one function.
    pub fn render(&self, func: &Function) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{}: {} region(s)", func.name, self.summaries.len());
        for s in &self.summaries {
            let _ = writeln!(
                out,
                "  region R{}{}:",
                s.region,
                if s.is_read_only() { " (read-only)" } else { "" }
            );
            for a in &s.accesses {
                let _ = writeln!(
                    out,
                    "    {:>5} {}  at ({},{})",
                    a.kind.label(),
                    a.addr,
                    a.pos.0,
                    a.pos.1
                );
            }
        }
        let mut any = false;
        for i in 0..self.summaries.len() {
            for j in i..self.summaries.len() {
                if let Some(c) = self.matrix[i][j] {
                    any = true;
                    let _ = writeln!(
                        out,
                        "  R{} x R{}: {} conflict{} — ({},{}) vs ({},{})",
                        i,
                        j,
                        match c.overlap {
                            Overlap::Must => "MUST",
                            Overlap::May => "may",
                            Overlap::No => unreachable!("No-overlap cells are None"),
                        },
                        if c.reducible {
                            " (semantically reducible)"
                        } else {
                            ""
                        },
                        c.witness.0 .0,
                        c.witness.0 .1,
                        c.witness.1 .0,
                        c.witness.1 .1,
                    );
                }
            }
        }
        if !any {
            let _ = writeln!(out, "  no region pair can conflict");
        }
        out
    }
}

/// Fold all access pairs of two regions into the strongest conflict.
/// Raw beats reducible, Must beats May; the witness tracks the
/// strongest pair seen.
fn cell(a: &RegionSummary, b: &RegionSummary) -> Option<Conflict> {
    let mut best: Option<Conflict> = None;
    for x in &a.accesses {
        for y in &b.accesses {
            // Within one region (self-pairing under the like-instance
            // convention) every pair still counts: two instances of the
            // same region racing each other.
            let Some(reducible) = classify(x.kind, y.kind) else {
                continue;
            };
            let overlap = x.addr.overlap(y.addr);
            if overlap == Overlap::No {
                continue;
            }
            let cand = Conflict {
                overlap,
                reducible,
                witness: (x.pos, y.pos),
            };
            best = Some(match best {
                None => cand,
                Some(cur) => {
                    // Order: raw-Must > reducible-Must > raw-May >
                    // reducible-May (a certain raw collision is the
                    // headline; reducibility only claims *all* pairs
                    // are reducible).
                    let rank = |c: &Conflict| (if c.reducible { 0 } else { 1 }, c.overlap);
                    if rank(&cand) > rank(&cur) {
                        cand
                    } else {
                        cur
                    }
                }
            });
        }
    }
    // `reducible` must mean "every colliding pair is reducible";
    // recompute it as a conjunction rather than trusting the max.
    if let Some(ref mut c) = best {
        c.reducible = a.accesses.iter().all(|x| {
            b.accesses.iter().all(|y| match classify(x.kind, y.kind) {
                Some(false) => x.addr.overlap(y.addr) == Overlap::No,
                _ => true,
            })
        });
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Cfg;
    use crate::parser::parse_function;

    fn analyse(src: &str) -> ConflictAnalysis {
        let f = parse_function(src).unwrap();
        let cfg = Cfg::new(&f);
        let ai = AbsInt::compute(&f, &cfg);
        let regions = Regions::compute(&f, &cfg);
        ConflictAnalysis::compute(&f, &cfg, &ai, &regions)
    }

    #[test]
    fn same_base_disjoint_offsets_cannot_conflict() {
        let ca = analyse(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  tmstore r0, r1
  tmend
  r2 = add r0, 1
  tmbegin
  r3 = tmload r2
  tmstore r2, r3
  tmend
  ret
}
",
        );
        assert_eq!(ca.summaries.len(), 2);
        assert!(
            ca.conflict(0, 1).is_none(),
            "arg0+0 and arg0+1 are provably distinct words"
        );
        // But each region must conflict with its own twin instance.
        let self_c = ca.conflict(0, 0).unwrap();
        assert_eq!(self_c.overlap, Overlap::Must);
        assert!(!self_c.reducible, "load/store is a raw conflict");
    }

    #[test]
    fn write_write_on_same_word_is_must_raw() {
        let ca = analyse(
            r"
func f(1) {
entry:
  tmbegin
  tmstore r0, 1
  tmend
  tmbegin
  tmstore r0, 2
  tmend
  ret
}
",
        );
        let c = ca.conflict(0, 1).unwrap();
        assert_eq!(c.overlap, Overlap::Must);
        assert!(!c.reducible);
    }

    #[test]
    fn compare_vs_inc_is_reducible() {
        let ca = analyse(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmcmp.gt r0, 10
  tmend
  tmbegin
  tminc r0, 1
  tmend
  ret r1
}
",
        );
        let c = ca.conflict(0, 1).unwrap();
        assert_eq!(c.overlap, Overlap::Must);
        assert!(c.reducible, "semantic validation rides through this");
        assert!(ca.summaries[0].is_read_only());
        assert!(!ca.summaries[1].is_read_only());
    }

    #[test]
    fn distinct_bases_only_may_conflict() {
        let ca = analyse(
            r"
func f(2) {
entry:
  tmbegin
  tmstore r0, 1
  tmend
  tmbegin
  r2 = tmload r1
  tmend
  ret r2
}
",
        );
        // Distinct arg bases: store(arg0) vs load(arg1) may alias, but
        // nothing proves they must.
        let c = ca.conflict(0, 1).unwrap();
        assert_eq!(c.overlap, Overlap::May);
        assert!(!c.reducible);
    }
}
