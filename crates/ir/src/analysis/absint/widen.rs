//! Range-widened `TM_CMP` promotion candidates.
//!
//! The syntactic matcher (`patterns::match_cmp`) promotes
//! `cmp.OP (tmload a), k` — the compared register must *be* the load.
//! This module widens the reach: `cmp.OP (tmload a) + c, k` is the same
//! relation as `cmp.OP (tmload a), k - c` whenever the `+ c` provably
//! cannot wrap, and the abstract interpreter's [`Sym::LoadPlus`]
//! identity carries exactly that proof (it only survives arithmetic
//! with a no-wrap certificate, through copies and across blocks). The
//! rewrite itself lives in `passes::tm_widen`; this module only finds
//! and justifies candidates, and reports the near-misses that lint rule
//! `SL008` surfaces (provably promotable by the intervals, declined
//! because the right-hand side is not a syntactic immediate).

use super::super::cfg::Cfg;
use super::super::patterns::PatternCtx;
use super::super::reaching::{Pos, ReachingDefs};
use super::regions::Regions;
use super::{AbsInt, Interval, Sym};
use crate::ir::{Function, Inst, Operand, Reg};
use semtm_core::CmpOp;

/// One widening opportunity found by the abstract interpreter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WidenCandidate {
    /// `cmp.OP load+c, k` rewritable to `tmcmp.OP addr, k-c`.
    Promote {
        /// Position of the `Cmp` to rewrite.
        pos: Pos,
        /// The compare's destination register.
        dst: Reg,
        /// Relation with the load on the left (swapped if it was on
        /// the right).
        op: CmpOp,
        /// Address operand of the originating load, still valid at
        /// `pos` (its registers are protected on the whole path).
        addr: Operand,
        /// Position of the originating `TmLoad`.
        load_at: Pos,
        /// The no-wrap constant folded onto the loaded value.
        c: i64,
        /// The rewritten immediate `k - c`.
        k_prime: i64,
    },
    /// Every proof obligation holds, but the compared-against side is a
    /// register (whose interval is a provable singleton), not a
    /// syntactic immediate — the rewriter only bakes in manifest
    /// constants. Lint rule `SL008` reports this with the witness.
    DeclinedSingleton {
        /// Position of the `Cmp`.
        pos: Pos,
        /// Position of the originating `TmLoad`.
        load_at: Pos,
        /// The folded constant on the load side.
        c: i64,
        /// The interval of the right-hand register — a singleton, which
        /// is exactly why the promotion is provable.
        witness: Interval,
    },
}

/// Scan every reachable `Cmp` of `func` for range-widening candidates.
pub fn widen_candidates(
    func: &Function,
    cfg: &Cfg,
    rd: &ReachingDefs,
    absint: &AbsInt,
    regions: &Regions,
) -> Vec<WidenCandidate> {
    let cx = PatternCtx::new(func, cfg, rd);
    let mut out = Vec::new();
    for (b, block) in func.blocks.iter().enumerate() {
        for (i, inst) in block.insts.iter().enumerate() {
            let pos = (b, i);
            let Inst::Cmp { op, dst, a, b: rb } = *inst else {
                continue;
            };
            if !absint.state_reachable(pos) || regions.depth(pos) == 0 {
                // Outside a transaction there is nothing to widen into.
                continue;
            }
            // Exactly one side must carry a LoadPlus identity with a
            // nonzero fold; c == 0 is the syntactic matcher's case.
            let va = absint.operand(pos, a);
            let vb = absint.operand(pos, rb);
            let (load_side, other, other_val, op) = match (va.sym, vb.sym) {
                // Two distinct loads: tmcmp2 territory, not handled.
                (Sym::LoadPlus(p, c), Sym::LoadPlus(q, d)) if (p, c) != (q, d) => continue,
                (Sym::LoadPlus(p, c), _) if c != 0 => ((p, c), rb, vb, op),
                (_, Sym::LoadPlus(p, c)) if c != 0 => ((p, c), a, va, op.swap()),
                _ => continue,
            };
            let (load_at, c) = load_side;
            let Inst::TmLoad { addr, .. } = func.blocks[load_at.0].insts[load_at.1] else {
                continue;
            };
            // The rewrite re-evaluates `addr` at the compare: the path
            // from the load must leave the address registers, memory,
            // and the region untouched.
            let mut protect = Vec::new();
            if let Some(r) = addr.reg() {
                protect.push(r);
            }
            if cx.clean_path(load_at, pos, &protect).is_err() {
                continue;
            }
            match other {
                Operand::Imm(k) => {
                    // k - c must be representable; checked_sub refuses
                    // the rewrite rather than wrapping the immediate.
                    let Some(k_prime) = k.checked_sub(c) else {
                        continue;
                    };
                    out.push(WidenCandidate::Promote {
                        pos,
                        dst,
                        op,
                        addr,
                        load_at,
                        c,
                        k_prime,
                    });
                }
                Operand::Reg(_) => {
                    if other_val.range.singleton().is_some() {
                        out.push(WidenCandidate::DeclinedSingleton {
                            pos,
                            load_at,
                            c,
                            witness: other_val.range,
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Cfg;
    use crate::parser::parse_function;

    fn candidates(src: &str) -> Vec<WidenCandidate> {
        let f = parse_function(src).unwrap();
        let cfg = Cfg::new(&f);
        let rd = ReachingDefs::compute(&f, &cfg);
        let ai = AbsInt::compute(&f, &cfg);
        let regions = Regions::compute(&f, &cfg);
        widen_candidates(&f, &cfg, &rd, &ai, &regions)
    }

    const GUARDED: &str = r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  r2 = cmp.lte r1, 100
  condbr r2, ok, out
ok:
  r3 = add r1, 27
  r4 = cmp.gt r3, 77
  tmend
  ret r4
out:
  tmend
  ret 0
}
";

    #[test]
    fn guarded_offset_compare_promotes() {
        let cands = candidates(GUARDED);
        assert_eq!(
            cands,
            vec![WidenCandidate::Promote {
                pos: (1, 1),
                dst: 4,
                op: CmpOp::Gt,
                addr: Operand::Reg(0),
                load_at: (0, 1),
                c: 27,
                k_prime: 50,
            }]
        );
    }

    #[test]
    fn unguarded_offset_compare_cannot_prove_no_wrap() {
        // Without the `<= 100` guard the add may wrap at i64::MAX, so
        // `cmp (v+27), 77` is NOT equivalent to `cmp v, 50`.
        let cands = candidates(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  r3 = add r1, 27
  r4 = cmp.gt r3, 77
  tmend
  ret r4
}
",
        );
        assert!(cands.is_empty(), "{cands:?}");
    }

    #[test]
    fn singleton_register_rhs_is_declined_with_witness() {
        let cands = candidates(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  r2 = cmp.lte r1, 100
  condbr r2, ok, out
ok:
  r3 = add r1, 27
  r5 = const 77
  r4 = cmp.gt r3, r5
  tmend
  ret r4
out:
  tmend
  ret 0
}
",
        );
        assert_eq!(
            cands,
            vec![WidenCandidate::DeclinedSingleton {
                pos: (1, 2),
                load_at: (0, 1),
                c: 27,
                witness: Interval::constant(77),
            }]
        );
    }

    #[test]
    fn intervening_write_blocks_widening() {
        let cands = candidates(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  r2 = cmp.lte r1, 100
  condbr r2, ok, out
ok:
  tmstore r0, 5
  r3 = add r1, 27
  r4 = cmp.gt r3, 77
  tmend
  ret r4
out:
  tmend
  ret 0
}
",
        );
        assert!(cands.is_empty(), "{cands:?}");
    }

    #[test]
    fn outside_region_compare_is_ignored() {
        let cands = candidates(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  r2 = cmp.lte r1, 100
  tmend
  condbr r2, ok, out
ok:
  r3 = add r1, 27
  r4 = cmp.gt r3, 77
  ret r4
out:
  ret 0
}
",
        );
        assert!(cands.is_empty(), "{cands:?}");
    }
}
