//! Lattice-based abstract interpretation over the worklist solver.
//!
//! Two domains run in one fixpoint (paper §6 made concrete: knowing
//! *why* a value was read lets the compiler widen reads into semantic
//! relations):
//!
//! * an **interval / value-range domain** over registers
//!   ([`Interval`]), with branch refinement on `condbr` edges (the
//!   guarding comparison is known true on the then-edge and false on
//!   the else-edge) and delayed widening at join points so loop
//!   back-edges converge;
//! * a **symbolic domain** ([`Sym`]) tracking two identities through
//!   copies and arithmetic: `Arg(r) ⊞ offsets` — the function-entry
//!   value of an argument register plus a bounded offset interval
//!   (heap *addresses* are arguments plus offsets in every kernel) —
//!   and `LoadPlus(pos, c)` — the value produced by the transactional
//!   load at `pos` plus an exact constant, kept only while the
//!   arithmetic provably cannot wrap.
//!
//! Three consumers drive off the result:
//!
//! * [`widen`] — range-widened `TM_CMP` promotion: a compare of
//!   `load + c` against an immediate `k` becomes the semantic
//!   `tmcmp` of the load's address against `k - c` (used by
//!   `passes::tm_widen`, reported by lint rule `SL008` when it is
//!   provable but not rewritable);
//! * [`conflict`] — per-region abstract read/write/compare sets and
//!   the region×region conflict matrix (`semlint --conflicts`, rules
//!   `SL006`/`SL009`);
//! * interval queries for `SL007` (compares decided by ranges alone).
//!
//! The solver's [`DataflowProblem::transfer_edge`]/
//! [`DataflowProblem::join_at`] hooks were added for this module:
//! refinement happens on edges, widening inside the join once a block
//! has been joined more than [`WIDEN_DELAY`] times.

pub mod conflict;
pub mod interval;
pub mod regions;
pub mod widen;

pub use conflict::{AbsAddr, AccessKind, ConflictAnalysis, Overlap, RegionSummary};
pub use interval::Interval;
pub use regions::Regions;
pub use widen::{widen_candidates, WidenCandidate};

use super::cfg::Cfg;
use super::reaching::Pos;
use super::solver::{solve, DataflowProblem, Direction};
use crate::ir::{BinOp, BlockId, Function, Inst, Operand, Reg};
use semtm_core::CmpOp;
use std::cell::RefCell;

/// Joins into one block before widening kicks in. Small enough that
/// pathological loop nests converge fast, large enough that short
/// chains of guards keep full precision.
pub const WIDEN_DELAY: u32 = 16;

/// Symbolic identity of a register value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sym {
    /// No symbolic identity.
    Top,
    /// `entry(r) +wrap o` for some `o` in the interval: the value the
    /// argument register `r` held at function entry, plus a wrapped
    /// offset. Wrapping addition is injective in the offset, so two
    /// `Arg` addresses with the same base and disjoint offset
    /// intervals are provably distinct even if the add wrapped.
    Arg(Reg, Interval),
    /// The value loaded by the `TmLoad` at this position plus an exact
    /// constant, with the addition *proven not to wrap* — the
    /// mathematical identity the range-widening rewrite relies on.
    LoadPlus(Pos, i64),
}

impl Sym {
    fn join(self, other: Sym) -> Sym {
        match (self, other) {
            (Sym::Arg(r1, i1), Sym::Arg(r2, i2)) if r1 == r2 => Sym::Arg(r1, i1.join(i2)),
            (Sym::LoadPlus(p1, c1), Sym::LoadPlus(p2, c2)) if p1 == p2 && c1 == c2 => self,
            _ if self == other => self,
            _ => Sym::Top,
        }
    }

    fn widen(self, next: Sym) -> Sym {
        match (self, next) {
            (Sym::Arg(r1, i1), Sym::Arg(r2, i2)) if r1 == r2 => Sym::Arg(r1, i1.widen(i2)),
            _ => self.join(next),
        }
    }
}

/// The abstract value of one register: a value range plus a symbolic
/// identity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AbsVal {
    /// Possible runtime values.
    pub range: Interval,
    /// Symbolic identity, when one survives the dataflow.
    pub sym: Sym,
}

impl AbsVal {
    /// No information at all.
    pub const TOP: AbsVal = AbsVal {
        range: Interval::TOP,
        sym: Sym::Top,
    };

    fn constant(v: i64) -> AbsVal {
        AbsVal {
            range: Interval::constant(v),
            sym: Sym::Top,
        }
    }

    fn join(self, other: AbsVal) -> AbsVal {
        AbsVal {
            range: self.range.join(other.range),
            sym: self.sym.join(other.sym),
        }
    }

    fn widen(self, next: AbsVal) -> AbsVal {
        AbsVal {
            range: self.range.widen(next.range),
            sym: self.sym.widen(next.sym),
        }
    }
}

/// Per-block fact: one [`AbsVal`] per register. The empty vector is
/// the lattice bottom ("this point not yet proven reachable") — it is
/// the solver's init fact, and an infeasible refined edge collapses
/// back to it.
type Fact = Vec<AbsVal>;

/// The compare feeding a block's `condbr`, precomputed per block:
/// `(operand a, op, operand b, then_to, else_to)`.
type EdgeGuard = (Operand, CmpOp, Operand, BlockId, BlockId);

struct AbsIntProblem<'a> {
    func: &'a Function,
    /// `guards[b]` = the refinable comparison controlling block `b`'s
    /// terminator, when one exists.
    guards: Vec<Option<EdgeGuard>>,
    /// Blocks targeted by a retreating edge (loop heads). Widening
    /// *only* there is what makes it terminate without eating the
    /// branch refinement: a refined fact flowing into a non-head block
    /// must never be widened past its refinement.
    widen_at: Vec<bool>,
    join_counts: RefCell<Vec<u32>>,
}

fn operand_value(fact: &Fact, op: Operand) -> AbsVal {
    match op {
        Operand::Imm(v) => AbsVal::constant(v),
        Operand::Reg(r) => fact[r as usize],
    }
}

/// The abstract transfer function of one instruction.
fn transfer_inst(fact: &mut Fact, inst: &Inst, pos: Pos) {
    let new = match *inst {
        Inst::Mov { src, .. } => operand_value(fact, src),
        Inst::Bin { op, a, b, .. } => {
            let va = operand_value(fact, a);
            let vb = operand_value(fact, b);
            bin_value(op, va, vb)
        }
        Inst::Cmp { .. } | Inst::Not { .. } | Inst::TmCmpVal { .. } | Inst::TmCmpAddr { .. } => {
            AbsVal {
                range: Interval { lo: 0, hi: 1 },
                sym: Sym::Top,
            }
        }
        Inst::TmLoad { .. } => AbsVal {
            range: Interval::TOP,
            sym: Sym::LoadPlus(pos, 0),
        },
        _ => return,
    };
    if let Some(d) = inst.def() {
        fact[d as usize] = new;
    }
}

fn bin_value(op: BinOp, va: AbsVal, vb: AbsVal) -> AbsVal {
    // Singleton operands evaluate exactly, with the machine's wrapping
    // semantics — no interval approximation needed.
    if let (Some(x), Some(y)) = (va.range.singleton(), vb.range.singleton()) {
        return AbsVal::constant(op.eval(x, y));
    }
    let range = match op {
        BinOp::Add => va.range.add(vb.range),
        BinOp::Sub => va.range.sub(vb.range),
        BinOp::Mul => va.range.mul(vb.range),
        // `x & mask` with both sides non-negative stays within the
        // smaller operand (this is what bounds hash-probe indices).
        BinOp::And if va.range.lo >= 0 && vb.range.lo >= 0 => Interval {
            lo: 0,
            hi: va.range.hi.min(vb.range.hi),
        },
        // Non-negative `|`/`^` are bounded by the sum (a|b ≤ a+b,
        // a^b ≤ a+b for a,b ≥ 0).
        BinOp::Or | BinOp::Xor if va.range.lo >= 0 && vb.range.lo >= 0 => Interval {
            lo: 0,
            hi: va.range.hi.saturating_add(vb.range.hi),
        },
        _ => Interval::TOP,
    };
    let sym = match op {
        BinOp::Add => match (va.sym, vb.sym) {
            // Address arithmetic: base + offset, wrapping-safe.
            (Sym::Arg(r, off), Sym::Top) => Sym::Arg(r, offset_add(off, vb.range)),
            (Sym::Top, Sym::Arg(r, off)) => Sym::Arg(r, offset_add(off, va.range)),
            // Value arithmetic: only with a no-wrap proof.
            (Sym::LoadPlus(p, c), _) => load_plus(p, c, va.range, vb.range, false),
            (_, Sym::LoadPlus(p, c)) => load_plus(p, c, vb.range, va.range, false),
            _ => Sym::Top,
        },
        BinOp::Sub => match (va.sym, vb.sym) {
            (Sym::Arg(r, off), Sym::Top) => Sym::Arg(r, offset_sub(off, vb.range)),
            (Sym::LoadPlus(p, c), _) => load_plus(p, c, va.range, vb.range, true),
            _ => Sym::Top,
        },
        _ => Sym::Top,
    };
    AbsVal { range, sym }
}

/// Wrapped offset accumulation for `Arg` bases: the base identity
/// survives wrapping, but an offset interval that overflows `i64`
/// loses its bounds.
fn offset_add(off: Interval, delta: Interval) -> Interval {
    let sum = off.add(delta);
    if sum == Interval::TOP && !(off == Interval::TOP || delta == Interval::TOP) {
        Interval::TOP
    } else {
        sum
    }
}

fn offset_sub(off: Interval, delta: Interval) -> Interval {
    off.sub(delta)
}

/// `LoadPlus` accumulation: `(v + c) ± delta` stays `LoadPlus(p, c ±
/// k)` only when delta is the single constant `k`, the machine op
/// provably cannot wrap at this site, and the folded constant is
/// representable. Anything weaker destroys the mathematical identity
/// the widening rewrite needs.
fn load_plus(p: Pos, c: i64, cur: Interval, delta: Interval, negate: bool) -> Sym {
    let Some(k) = delta.singleton() else {
        return Sym::Top;
    };
    let no_wrap = if negate {
        cur.sub_cannot_wrap(delta)
    } else {
        cur.add_cannot_wrap(delta)
    };
    let folded = if negate {
        c.checked_sub(k)
    } else {
        c.checked_add(k)
    };
    match (no_wrap, folded) {
        (true, Some(total)) => Sym::LoadPlus(p, total),
        _ => Sym::Top,
    }
}

impl AbsIntProblem<'_> {
    /// Apply the relation `a OP b` (known true) to `fact`, when one
    /// side is a register and the other a compile-time constant.
    /// Refining only against *constants* keeps the meet bounds drawn
    /// from a finite set, which keeps widening + refinement
    /// terminating.
    fn assume(fact: &mut Fact, a: Operand, op: CmpOp, b: Operand) {
        let (reg, op, k) = match (a, b) {
            (Operand::Reg(r), Operand::Imm(k)) => (r, op, k),
            (Operand::Imm(k), Operand::Reg(r)) => (r, op.swap(), k),
            _ => return,
        };
        let refined = fact[reg as usize].range.refine(op, k);
        if refined.is_empty() {
            // The guard is unsatisfiable on this edge: the edge target
            // is unreachable along it. Bottom out the whole fact.
            fact.clear();
        } else {
            fact[reg as usize].range = refined;
        }
    }
}

impl DataflowProblem for AbsIntProblem<'_> {
    type Fact = Fact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary_fact(&self) -> Fact {
        let mut f = vec![AbsVal::TOP; self.func.num_regs as usize];
        for (r, v) in f.iter_mut().enumerate() {
            if (r as u32) < self.func.num_args {
                // Arguments: unknown value, but a usable base identity.
                v.sym = Sym::Arg(r as Reg, Interval::constant(0));
            } else {
                // The interpreter zero-initialises every non-argument
                // register, so [0,0] is exact (and the verifier's
                // definite-assignment check means it is never *read*
                // before a real definition anyway).
                *v = AbsVal::constant(0);
            }
        }
        f
    }

    fn init_fact(&self) -> Fact {
        Vec::new() // bottom
    }

    fn join(&self, into: &mut Fact, from: &Fact) -> bool {
        join_facts(into, from, false)
    }

    fn join_at(&self, block: BlockId, into: &mut Fact, from: &Fact) -> bool {
        if !self.widen_at[block] {
            return join_facts(into, from, false);
        }
        let mut counts = self.join_counts.borrow_mut();
        counts[block] += 1;
        join_facts(into, from, counts[block] > WIDEN_DELAY)
    }

    fn has_edge_transfer(&self) -> bool {
        true
    }

    fn transfer_edge(&self, _func: &Function, from: BlockId, to: BlockId, fact: &mut Fact) {
        if fact.is_empty() {
            return; // bottom stays bottom
        }
        let Some((a, op, b, then_to, else_to)) = self.guards[from] else {
            return;
        };
        if then_to == else_to {
            return; // both outcomes reach `to`; nothing is known
        }
        if to == then_to {
            Self::assume(fact, a, op, b);
        } else if to == else_to {
            Self::assume(fact, a, op.inverse(), b);
        }
    }

    fn transfer_block(&self, func: &Function, b: BlockId, fact: &mut Fact) {
        if fact.is_empty() {
            return; // bottom: block not (yet) reachable
        }
        for (i, inst) in func.blocks[b].insts.iter().enumerate() {
            transfer_inst(fact, inst, (b, i));
        }
    }
}

fn join_facts(into: &mut Fact, from: &Fact, widen: bool) -> bool {
    if from.is_empty() {
        return false;
    }
    if into.is_empty() {
        *into = from.clone();
        return true;
    }
    let mut changed = false;
    for (i, f) in into.iter_mut().zip(from) {
        let new = if widen { i.widen(*f) } else { i.join(*f) };
        if new != *i {
            *i = new;
            changed = true;
        }
    }
    changed
}

/// Find the comparison that controls block `b`'s `condbr`, if the
/// condition register's last in-block definition is a `Cmp` and no
/// instruction after it redefines an operand register.
fn block_guard(func: &Function, b: BlockId) -> Option<EdgeGuard> {
    let insts = &func.blocks[b].insts;
    let Inst::CondBr {
        cond: Operand::Reg(c),
        then_to,
        else_to,
    } = *insts.last()?
    else {
        return None;
    };
    let def_idx = insts[..insts.len() - 1]
        .iter()
        .rposition(|i| i.def() == Some(c))?;
    let Inst::Cmp { op, a, b: rb, .. } = insts[def_idx] else {
        return None;
    };
    let operand_intact = |o: Operand| match o.reg() {
        Some(r) => insts[def_idx + 1..].iter().all(|i| i.def() != Some(r)),
        None => true,
    };
    (operand_intact(a) && operand_intact(rb)).then_some((a, op, rb, then_to, else_to))
}

/// The solved abstract interpretation of one function, with
/// position-level queries.
pub struct AbsInt {
    /// `before[b][i]` = per-register abstract state immediately before
    /// instruction `(b, i)`; one extra entry per block for the block
    /// end. An empty inner state means the position was never proven
    /// reachable (bottom).
    before: Vec<Vec<Fact>>,
}

impl AbsInt {
    /// Run the abstract interpreter to fixpoint.
    pub fn compute(func: &Function, cfg: &Cfg) -> AbsInt {
        let guards = (0..func.blocks.len())
            .map(|b| block_guard(func, b))
            .collect();
        // Retreating edges under the RPO numbering mark the loop heads.
        let mut rpo_pos = vec![usize::MAX; func.blocks.len()];
        for (i, &b) in cfg.rpo.iter().enumerate() {
            rpo_pos[b] = i;
        }
        let mut widen_at = vec![false; func.blocks.len()];
        for (p, succs) in cfg.succs.iter().enumerate() {
            for &s in succs {
                if rpo_pos[s] <= rpo_pos[p] {
                    widen_at[s] = true;
                }
            }
        }
        let problem = AbsIntProblem {
            func,
            guards,
            widen_at,
            join_counts: RefCell::new(vec![0; func.blocks.len()]),
        };
        let sol = solve(func, cfg, &problem);
        // Replay each block to recover position-level states.
        let mut before = Vec::with_capacity(func.blocks.len());
        for (b, block) in func.blocks.iter().enumerate() {
            let mut cur = sol.entry[b].clone();
            let mut per_inst = Vec::with_capacity(block.insts.len() + 1);
            for (i, inst) in block.insts.iter().enumerate() {
                per_inst.push(cur.clone());
                if !cur.is_empty() {
                    transfer_inst(&mut cur, inst, (b, i));
                }
            }
            per_inst.push(cur);
            before.push(per_inst);
        }
        AbsInt { before }
    }

    /// The abstract value of `reg` just before `pos`. Returns
    /// [`AbsVal::TOP`] at positions never proven reachable — callers
    /// that care use [`AbsInt::state_reachable`] first.
    pub fn value(&self, pos: Pos, reg: Reg) -> AbsVal {
        self.before[pos.0][pos.1]
            .get(reg as usize)
            .copied()
            .unwrap_or(AbsVal::TOP)
    }

    /// The abstract value of an operand just before `pos`.
    pub fn operand(&self, pos: Pos, op: Operand) -> AbsVal {
        match op {
            Operand::Imm(v) => AbsVal::constant(v),
            Operand::Reg(r) => self.value(pos, r),
        }
    }

    /// Was an abstract state ever propagated to `pos`? `false` for
    /// unreachable blocks and for edges the refiner proved infeasible.
    pub fn state_reachable(&self, pos: Pos) -> bool {
        !self.before[pos.0][pos.1].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Cfg;
    use crate::parser::parse_function;

    fn absint_for(src: &str) -> (crate::ir::Function, AbsInt) {
        let f = parse_function(src).unwrap();
        let cfg = Cfg::new(&f);
        let ai = AbsInt::compute(&f, &cfg);
        (f, ai)
    }

    #[test]
    fn branch_refinement_bounds_the_then_edge() {
        let (_, ai) = absint_for(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  r2 = cmp.lte r1, 100
  condbr r2, small, big
small:
  r3 = add r1, 27
  tmend
  ret r3
big:
  tmend
  ret 0
}
",
        );
        // On the then-edge r1 <= 100; on the else-edge r1 > 100.
        let small = ai.value((1, 0), 1).range;
        assert_eq!(small.hi, 100);
        assert_eq!(small.lo, i64::MIN);
        let big = ai.value((2, 0), 1).range;
        assert_eq!(big.lo, 101);
        // r3 = r1 + 27 under r1 <= 100 cannot wrap: LoadPlus survives
        // and the range follows.
        let r3 = ai.value((1, 1), 3);
        assert_eq!(r3.range.hi, 127);
        assert_eq!(r3.sym, Sym::LoadPlus((0, 1), 27));
    }

    #[test]
    fn loop_counter_widens_and_exit_edge_refines() {
        // while (i < 1000000) i++  — the back-edge join must converge
        // (widening), and the exit edge knows i >= 1000000.
        let (_, ai) = absint_for(
            r"
func f(0) {
entry:
  r0 = const 0
  br head
head:
  r1 = cmp.lt r0, 1000000
  condbr r1, body, out
body:
  r0 = add r0, 1
  br head
out:
  ret r0
}
",
        );
        let body = ai.value((2, 0), 0).range;
        assert_eq!(body.lo, 0, "counter never negative");
        assert!(body.hi <= 999999, "then-edge bound survives widening");
        let out = ai.value((3, 0), 0).range;
        assert_eq!(out.lo, 1000000, "exit edge refines the else relation");
    }

    #[test]
    fn unreachable_blocks_have_no_state() {
        let (_, ai) = absint_for(
            r"
func f(1) {
entry:
  ret r0
dead:
  r1 = const 7
  ret r1
}
",
        );
        assert!(ai.state_reachable((0, 0)));
        assert!(!ai.state_reachable((1, 0)), "dead block stays bottom");
        assert_eq!(ai.value((1, 0), 1), AbsVal::TOP, "queries stay safe");
    }

    #[test]
    fn single_block_self_loop_converges() {
        // A block that is its own predecessor: the join at `spin` sees
        // the entry edge and its own back-edge. Termination plus a
        // sound (widened) bound is the contract.
        let (_, ai) = absint_for(
            r"
func f(1) {
entry:
  r1 = const 0
  br spin
spin:
  r1 = add r1, 2
  r2 = cmp.lt r1, r0
  condbr r2, spin, out
out:
  ret r1
}
",
        );
        // The reg-vs-reg guard cannot bound the counter, widening sends
        // the upper bound to MAX, and from there the add may wrap — the
        // sound fixpoint is full top.
        let spin = ai.value((1, 0), 1).range;
        assert_eq!(spin, Interval::TOP);
        assert!(ai.state_reachable((2, 0)));
    }

    #[test]
    fn widening_threshold_converges_quickly() {
        // The convergence proof for the widening delay: a counter
        // compared against a huge constant must reach the fixpoint in
        // a bounded number of joins, not one join per increment. If
        // widening were broken, solve() would iterate ~1e15 times and
        // this test would hang rather than fail.
        let src = r"
func f(0) {
entry:
  r0 = const 0
  br head
head:
  r1 = cmp.lt r0, 1000000000000000
  condbr r1, body, out
body:
  r0 = add r0, 7
  br head
out:
  ret r0
}
";
        let f = parse_function(src).unwrap();
        let cfg = Cfg::new(&f);
        let ai = AbsInt::compute(&f, &cfg);
        assert_eq!(ai.value((3, 0), 0).range.lo, 1000000000000000);
    }

    #[test]
    fn arg_offsets_track_address_arithmetic() {
        let (_, ai) = absint_for(
            r"
func f(2) {
entry:
  tmbegin
  r2 = add r0, 2
  r3 = tmload r2
  r4 = mov r3
  tmend
  ret r4
}
",
        );
        let addr = ai.value((0, 2), 2);
        assert_eq!(addr.sym, Sym::Arg(0, Interval::constant(2)));
        // A copy preserves the load identity.
        assert_eq!(ai.value((0, 4), 4).sym, Sym::LoadPlus((0, 2), 0));
    }

    #[test]
    fn infeasible_edge_goes_bottom() {
        let (_, ai) = absint_for(
            r"
func f(0) {
entry:
  r0 = const 5
  r1 = cmp.gt r0, 3
  condbr r1, yes, no
yes:
  ret 1
no:
  ret 0
}
",
        );
        assert!(ai.state_reachable((1, 0)));
        assert!(
            !ai.state_reachable((2, 0)),
            "5 > 3 always holds; else-edge is infeasible"
        );
    }
}
