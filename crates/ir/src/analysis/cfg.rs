//! Control-flow graph: successor/predecessor maps, reverse postorder,
//! and dominators.
//!
//! Every whole-function analysis starts here. The CFG is computed once
//! per function and shared by the dataflow solver, the pattern matcher,
//! the verifier, and the lint passes; blocks unreachable from the entry
//! are retained in the maps (some passes still iterate them) but carry
//! no reverse-postorder index and are dominated by nothing.

use crate::ir::{BlockId, Function};

/// The control-flow graph of one [`Function`].
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Successors of each block (terminator targets, in branch order).
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors of each block.
    pub preds: Vec<Vec<BlockId>>,
    /// Reachable blocks in reverse postorder (entry first).
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo`; `None` for unreachable blocks.
    pub rpo_index: Vec<Option<usize>>,
    /// Immediate dominator of each reachable block; the entry block is
    /// its own idom, unreachable blocks have `None`.
    pub idom: Vec<Option<BlockId>>,
}

impl Cfg {
    /// Build the CFG (edges, reverse postorder, dominator tree) of
    /// `func`.
    pub fn new(func: &Function) -> Cfg {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (b, block) in func.blocks.iter().enumerate() {
            for s in block.successors() {
                succs[b].push(s);
                preds[s].push(b);
            }
        }

        // Iterative postorder DFS from the entry block.
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        // Stack of (block, next successor index to visit).
        let mut stack: Vec<(BlockId, usize)> = vec![(0, 0)];
        seen[0] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b].len() {
                let s = succs[b][*i];
                *i += 1;
                if !seen[s] {
                    seen[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![None; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = Some(i);
        }

        let idom = compute_idoms(&rpo, &rpo_index, &preds, n);
        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
            idom,
        }
    }

    /// Whether `b` is reachable from the entry block.
    pub fn reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b].is_some()
    }

    /// Whether block `a` dominates block `b` (reflexive). Unreachable
    /// blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.reachable(a) || !self.reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let Some(parent) = self.idom[cur] else {
                return false;
            };
            if parent == cur {
                return false; // reached the entry without meeting `a`
            }
            cur = parent;
        }
    }
}

/// Cooper–Harvey–Kennedy iterative dominator computation over the
/// reverse postorder.
fn compute_idoms(
    rpo: &[BlockId],
    rpo_index: &[Option<usize>],
    preds: &[Vec<BlockId>],
    n: usize,
) -> Vec<Option<BlockId>> {
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    if rpo.is_empty() {
        return idom;
    }
    let entry = rpo[0];
    idom[entry] = Some(entry);
    let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
        while a != b {
            while rpo_index[a].unwrap() > rpo_index[b].unwrap() {
                a = idom[a].unwrap();
            }
            while rpo_index[b].unwrap() > rpo_index[a].unwrap() {
                b = idom[b].unwrap();
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b] {
                if idom[p].is_none() {
                    continue; // unprocessed or unreachable predecessor
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if new_idom.is_some() && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FunctionBuilder, Inst, Operand};

    /// entry -> (then | else) -> join, plus an unreachable block.
    fn diamond() -> Function {
        let mut fb = FunctionBuilder::new("d", 1);
        let t = fb.block("then");
        let e = fb.block("else");
        let j = fb.block("join");
        let dead = fb.block("dead");
        fb.switch_to(0);
        fb.push(Inst::CondBr {
            cond: Operand::Reg(0),
            then_to: t,
            else_to: e,
        });
        fb.switch_to(t);
        fb.push(Inst::Br { target: j });
        fb.switch_to(e);
        fb.push(Inst::Br { target: j });
        fb.switch_to(j);
        fb.push(Inst::Ret { val: None });
        fb.switch_to(dead);
        fb.push(Inst::Ret { val: None });
        fb.build()
    }

    #[test]
    fn edges_and_reachability() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs[0], vec![1, 2]);
        assert_eq!(cfg.preds[3], vec![1, 2]);
        assert!(cfg.reachable(0) && cfg.reachable(3));
        assert!(!cfg.reachable(4), "dead block is unreachable");
        assert_eq!(cfg.rpo[0], 0, "entry leads the reverse postorder");
    }

    #[test]
    fn dominators_of_a_diamond() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert!(cfg.dominates(0, 3), "entry dominates the join");
        assert!(!cfg.dominates(1, 3), "one arm does not dominate the join");
        assert!(cfg.dominates(3, 3), "dominance is reflexive");
        assert!(!cfg.dominates(0, 4), "nothing dominates unreachable code");
        assert_eq!(cfg.idom[3], Some(0));
    }

    #[test]
    fn loop_dominators() {
        // entry -> head; head -> (body | exit); body -> head.
        let mut fb = FunctionBuilder::new("l", 1);
        let head = fb.block("head");
        let body = fb.block("body");
        let exit = fb.block("exit");
        fb.switch_to(0);
        fb.push(Inst::Br { target: head });
        fb.switch_to(head);
        fb.push(Inst::CondBr {
            cond: Operand::Reg(0),
            then_to: body,
            else_to: exit,
        });
        fb.switch_to(body);
        fb.push(Inst::Br { target: head });
        fb.switch_to(exit);
        fb.push(Inst::Ret { val: None });
        let f = fb.build();
        let cfg = Cfg::new(&f);
        assert!(cfg.dominates(head, body));
        assert!(cfg.dominates(head, exit));
        assert!(!cfg.dominates(body, exit));
        assert_eq!(cfg.idom[exit], Some(head));
    }
}
