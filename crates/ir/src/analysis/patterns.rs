//! Cross-block `cmp`/`inc` pattern matching over reaching definitions.
//!
//! The seed's matcher only tracked origins *within* a basic block, so a
//! comparison split across blocks (load in one block, `cmp` in a
//! successor) was never promoted. This module generalises the origin
//! query to whole-function reaching definitions and adds the path
//! conditions that make the cross-block rewrite sound:
//!
//! * the operand has **exactly one** reaching definition and it is a
//!   `TmLoad` (single-reaching-def plus the entry pseudo-defs imply the
//!   load dominates the use);
//! * **no instruction on any def→use path** redefines a register the
//!   re-evaluated address (or increment delta) depends on;
//! * **no memory write** (`TmStore`/`TmInc`) and **no region boundary**
//!   (`TmBegin`/`TmEnd`) lies on any def→use path — a promoted builtin
//!   re-reads memory at the use site, which is only equivalent while
//!   the transaction's own view of the address is unchanged and both
//!   sites share one atomic region.
//!
//! The same conditions, reported instead of silently declined, drive
//! the `semlint` missed-promotion diagnostics (rule `SL003`).

use super::cfg::Cfg;
use super::reaching::{DefSite, Pos, ReachingDefs};
use crate::ir::{BinOp, Function, Inst, Operand, Reg};
use semtm_core::CmpOp;

/// Why an operand failed to qualify as a promotable load origin.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decline {
    /// The operand is an immediate, an argument, or a non-load value —
    /// a "literal or local variable" in the paper's terms. Not a missed
    /// opportunity.
    NotALoad,
    /// Several definitions reach the use and at least one is a
    /// transactional load.
    AmbiguousLoad,
    /// A register feeding the re-evaluated address (or delta) is
    /// redefined on a def→use path.
    AddrRedefined,
    /// A `TmStore`/`TmInc` may execute between the load and the use.
    InterveningWrite,
    /// A `TmBegin`/`TmEnd` lies between the load and the use.
    RegionBoundary,
}

impl Decline {
    /// Human-readable reason, used by the lint diagnostics.
    pub fn reason(self) -> &'static str {
        match self {
            Decline::NotALoad => "operand is a literal or local value",
            Decline::AmbiguousLoad => "several definitions reach the use (one is a tmload)",
            Decline::AddrRedefined => "an address/delta register is redefined between load and use",
            Decline::InterveningWrite => "a transactional write may execute between load and use",
            Decline::RegionBoundary => "load and use are separated by an atomic-region boundary",
        }
    }
}

/// A matched load origin: the load's position and its address operand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LoadOrigin {
    /// Position of the originating `TmLoad`.
    pub load_at: Pos,
    /// The load's address operand.
    pub addr: Operand,
}

/// Outcome of matching one `Cmp` instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpMatch {
    /// Both sides originate in loads → `_ITM_S2R`.
    S2R {
        /// Relation.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Left address.
        a: Operand,
        /// Right address.
        b: Operand,
    },
    /// One side is a load, the other literal/local → `_ITM_S1R`. `op`
    /// is already swapped when the load was on the right.
    S1R {
        /// Relation (possibly swapped).
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Address side.
        addr: Operand,
        /// Value side.
        val: Operand,
    },
    /// No promotion; the per-side declines explain why (for `SL003`).
    No {
        /// Why the left side failed.
        a: Decline,
        /// Why the right side failed.
        b: Decline,
    },
}

/// A matched `inc` pattern: `*addr = *addr ± delta` → `_ITM_SW`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IncMatch {
    /// Address operand (as written at the store).
    pub addr: Operand,
    /// Delta operand.
    pub delta: Operand,
    /// Subtract instead of add.
    pub negate: bool,
}

/// Shared context for pattern queries over one function.
pub struct PatternCtx<'a> {
    /// The function under analysis.
    pub func: &'a Function,
    /// Its CFG.
    pub cfg: &'a Cfg,
    /// Its reaching definitions.
    pub rd: &'a ReachingDefs,
}

impl<'a> PatternCtx<'a> {
    /// Build the context (computes nothing; analyses are passed in).
    pub fn new(func: &'a Function, cfg: &'a Cfg, rd: &'a ReachingDefs) -> PatternCtx<'a> {
        PatternCtx { func, cfg, rd }
    }

    /// Every position that may execute strictly between an execution of
    /// the definition at `from` and a subsequent execution of the use at
    /// `to` with **no re-execution of the definition in between**
    /// (exclusive of both endpoints). Paths that re-pass `from` are
    /// irrelevant to the matchers: the value at the use then originates
    /// in the *last* execution of the def, so only the def-free suffix
    /// matters. Blocks are straight-line, so revisiting `from.0` always
    /// re-executes the def — reachability is therefore computed in the
    /// CFG with the def block removed as an intermediate node.
    pub fn positions_between(&self, from: Pos, to: Pos) -> Vec<Pos> {
        let n = self.func.blocks.len();
        // Same block, def before use: the straight-line span is the only
        // def-free path (re-entering the block from the top passes the
        // def again before reaching the use).
        if from.0 == to.0 && from.1 < to.1 {
            return (from.1 + 1..to.1).map(|i| (from.0, i)).collect();
        }
        // Blocks reachable from the def block's exits without passing
        // through the def block again.
        let mut fwd = vec![false; n];
        let mut stack: Vec<usize> = self.cfg.succs[from.0].clone();
        while let Some(b) = stack.pop() {
            if b != from.0 && !fwd[b] {
                fwd[b] = true;
                stack.extend(self.cfg.succs[b].iter());
            }
        }
        // Blocks that can reach the use block without passing through
        // the def block.
        let mut bwd = vec![false; n];
        let mut stack: Vec<usize> = self.cfg.preds[to.0].clone();
        while let Some(b) = stack.pop() {
            if b != from.0 && !bwd[b] {
                bwd[b] = true;
                stack.extend(self.cfg.preds[b].iter());
            }
        }
        let reaches_use = |b: usize| b == to.0 || bwd[b];

        let mut out: Vec<Pos> = Vec::new();
        // Tail of the def block, when control can leave it and still
        // reach the use.
        if self.cfg.succs[from.0].iter().any(|&s| reaches_use(s)) {
            let len = self.func.blocks[from.0].insts.len();
            out.extend((from.1 + 1..len).map(|i| (from.0, i)));
        }
        // Head of the use block (the wrap-around same-block case lands
        // here too: `to.0 == from.0` with `to.1 <= from.1`).
        out.extend((0..to.1).map(|i| (to.0, i)));
        // Tail of the use block, when it sits on a cycle avoiding the
        // def block: control may pass the use and come back, so a later
        // use execution sees the tail "between" as well.
        if to.0 != from.0
            && self.cfg.succs[to.0]
                .iter()
                .any(|&s| s != from.0 && (s == to.0 || bwd[s]))
        {
            let len = self.func.blocks[to.0].insts.len();
            out.extend((to.1 + 1..len).map(|i| (to.0, i)));
        }
        // Whole intermediate blocks.
        for b in (0..n).filter(|&b| b != from.0 && b != to.0) {
            if fwd[b] && bwd[b] {
                out.extend((0..self.func.blocks[b].insts.len()).map(|i| (b, i)));
            }
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&p| p != from && p != to);
        out
    }

    /// Check that no position between `from` and `to` redefines a
    /// register in `protect`, writes memory, or crosses a region
    /// boundary.
    pub fn clean_path(&self, from: Pos, to: Pos, protect: &[Reg]) -> Result<(), Decline> {
        for (b, i) in self.positions_between(from, to) {
            let inst = &self.func.blocks[b].insts[i];
            match inst {
                Inst::TmStore { .. } | Inst::TmInc { .. } => return Err(Decline::InterveningWrite),
                Inst::TmBegin | Inst::TmEnd => return Err(Decline::RegionBoundary),
                _ => {}
            }
            if let Some(d) = inst.def() {
                if protect.contains(&d) {
                    return Err(Decline::AddrRedefined);
                }
            }
        }
        Ok(())
    }

    /// Classify `operand` at `use_pos`: a promotable load origin, or
    /// the reason it is not. The address registers of the originating
    /// load are protected along the whole def→use path, so re-reading
    /// the address at the use site is equivalent.
    pub fn load_origin(&self, operand: Operand, use_pos: Pos) -> Result<LoadOrigin, Decline> {
        let Some(r) = operand.reg() else {
            return Err(Decline::NotALoad);
        };
        let reaching = self.rd.reaching(use_pos, r);
        let is_load = |id: &u32| {
            matches!(
                self.rd.defs[*id as usize],
                DefSite::Inst(b, i)
                    if matches!(self.func.blocks[b].insts[i], Inst::TmLoad { .. })
            )
        };
        let [single] = reaching else {
            return if reaching.iter().any(is_load) {
                Err(Decline::AmbiguousLoad)
            } else {
                Err(Decline::NotALoad)
            };
        };
        let DefSite::Inst(db, di) = self.rd.defs[*single as usize] else {
            return Err(Decline::NotALoad);
        };
        let Inst::TmLoad { dst, addr } = self.func.blocks[db].insts[di] else {
            return Err(Decline::NotALoad);
        };
        debug_assert_eq!(dst, r);
        let load_at = (db, di);
        debug_assert!(
            load_at.0 == use_pos.0 || self.cfg.dominates(load_at.0, use_pos.0),
            "a unique non-entry reaching def must dominate its use"
        );
        let mut protect = Vec::new();
        if let Some(ar) = addr.reg() {
            protect.push(ar);
        }
        self.clean_path(load_at, use_pos, &protect)?;
        Ok(LoadOrigin { load_at, addr })
    }

    /// Match one `Cmp` instruction against the paper's comparison
    /// patterns. `pos` must point at a `Cmp`.
    pub fn match_cmp(&self, pos: Pos) -> CmpMatch {
        let Inst::Cmp { op, dst, a, b } = self.func.blocks[pos.0].insts[pos.1] else {
            panic!("match_cmp called on a non-Cmp instruction");
        };
        let oa = self.load_origin(a, pos);
        let ob = self.load_origin(b, pos);
        match (oa, ob) {
            (Ok(la), Ok(lb)) => CmpMatch::S2R {
                op,
                dst,
                a: la.addr,
                b: lb.addr,
            },
            (Ok(la), Err(_)) => CmpMatch::S1R {
                op,
                dst,
                addr: la.addr,
                val: b,
            },
            (Err(_), Ok(lb)) => CmpMatch::S1R {
                op: op.swap(),
                dst,
                addr: lb.addr,
                val: a,
            },
            (Err(ea), Err(eb)) => CmpMatch::No { a: ea, b: eb },
        }
    }

    /// Match one `TmStore` against the increment pattern
    /// `*addr = *addr ± delta`. `pos` must point at a `TmStore`.
    pub fn match_inc(&self, pos: Pos) -> Result<IncMatch, Decline> {
        let Inst::TmStore { addr, val } = self.func.blocks[pos.0].insts[pos.1] else {
            panic!("match_inc called on a non-TmStore instruction");
        };
        let Some(vr) = val.reg() else {
            return Err(Decline::NotALoad);
        };
        let Some(DefSite::Inst(bb, bi)) = self.rd.unique_def(pos, vr) else {
            return Err(Decline::NotALoad);
        };
        let Inst::Bin { op, dst, a, b } = self.func.blocks[bb].insts[bi] else {
            return Err(Decline::NotALoad);
        };
        debug_assert_eq!(dst, vr);
        let bin_at = (bb, bi);
        let (origin, delta, negate) = match op {
            BinOp::Add => {
                // load + delta or delta + load.
                if let Ok(o) = self.load_origin(a, bin_at) {
                    (o, b, false)
                } else {
                    (self.load_origin(b, bin_at)?, a, false)
                }
            }
            // Only load - delta is an increment; delta - load is not.
            BinOp::Sub => (self.load_origin(a, bin_at)?, b, true),
            _ => return Err(Decline::NotALoad),
        };
        // The delta side must itself be literal/local at the bin.
        if self.load_origin(delta, bin_at).is_ok() {
            return Err(Decline::NotALoad);
        }
        // Same address at the load and at the store, by
        // reaching-definition identity...
        if !self
            .rd
            .operand_identical(origin.addr, origin.load_at, addr, pos)
        {
            return Err(Decline::AddrRedefined);
        }
        // ...and nothing on the load→store path may disturb the
        // address, the delta, or memory (the store itself is `pos`,
        // which the path scan excludes).
        let mut protect = Vec::new();
        if let Some(r) = addr.reg() {
            protect.push(r);
        }
        if let Some(r) = delta.reg() {
            protect.push(r);
        }
        self.clean_path(origin.load_at, pos, &protect)?;
        Ok(IncMatch {
            addr,
            delta,
            negate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ReachingDefs;
    use crate::parser::parse_function;

    fn ctx_for(src: &str, f: impl FnOnce(&PatternCtx<'_>)) {
        let func = parse_function(src).unwrap();
        let cfg = Cfg::new(&func);
        let rd = ReachingDefs::compute(&func, &cfg);
        f(&PatternCtx::new(&func, &cfg, &rd));
    }

    #[test]
    fn cross_block_cmp_matches() {
        ctx_for(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  br test
test:
  r2 = cmp.gt r1, 0
  condbr r2, a, b
a:
  tmend
  ret 1
b:
  tmend
  ret 0
}
",
            |cx| {
                // cmp is at block 1 ("test"), index 0.
                match cx.match_cmp((1, 0)) {
                    CmpMatch::S1R { addr, .. } => assert_eq!(addr, Operand::Reg(0)),
                    other => panic!("expected S1R, got {other:?}"),
                }
            },
        );
    }

    #[test]
    fn intervening_store_declines_cmp() {
        ctx_for(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  tmstore r0, 99
  r2 = cmp.gt r1, 0
  tmend
  ret r2
}
",
            |cx| {
                assert_eq!(
                    cx.match_cmp((0, 3)),
                    CmpMatch::No {
                        a: Decline::InterveningWrite,
                        b: Decline::NotALoad,
                    }
                );
            },
        );
    }

    #[test]
    fn region_boundary_declines_cmp() {
        ctx_for(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  tmend
  r2 = cmp.gt r1, 0
  ret r2
}
",
            |cx| {
                assert!(matches!(
                    cx.match_cmp((0, 3)),
                    CmpMatch::No {
                        a: Decline::RegionBoundary,
                        ..
                    }
                ));
            },
        );
    }

    #[test]
    fn address_redefinition_declines_cmp() {
        ctx_for(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  r0 = add r0, 1
  r2 = cmp.gt r1, 0
  tmend
  ret r2
}
",
            |cx| {
                assert!(matches!(
                    cx.match_cmp((0, 3)),
                    CmpMatch::No {
                        a: Decline::AddrRedefined,
                        ..
                    }
                ));
            },
        );
    }

    #[test]
    fn ambiguous_defs_decline_with_reason() {
        ctx_for(
            r"
func f(1) {
entry:
  tmbegin
  condbr r0, a, b
a:
  r1 = tmload r0
  br join
b:
  r1 = const 5
  br join
join:
  r2 = cmp.gt r1, 0
  tmend
  ret r2
}
",
            |cx| {
                assert!(matches!(
                    cx.match_cmp((3, 0)),
                    CmpMatch::No {
                        a: Decline::AmbiguousLoad,
                        ..
                    }
                ));
            },
        );
    }

    #[test]
    fn in_loop_same_block_pair_still_matches() {
        // Load and compare share a loop body with a store *after* the
        // compare. The wrap-around path re-executes the load, so each
        // iteration's compare sees that iteration's value — the
        // promotion is sound and must not be declined.
        ctx_for(
            r"
func f(1) {
entry:
  tmbegin
  br head
head:
  condbr r0, body, out
body:
  r1 = tmload r0
  r2 = add r1, 0
  r3 = cmp.gt r1, 0
  tmstore r0, 7
  br head
out:
  tmend
  ret 0
}
",
            |cx| {
                // load at (2,0), use at (2,2): only (2,1) lies between.
                assert_eq!(cx.positions_between((2, 0), (2, 2)), vec![(2, 1)]);
                assert!(matches!(cx.match_cmp((2, 2)), CmpMatch::S1R { .. }));
            },
        );
    }

    #[test]
    fn use_block_cycle_positions_are_conservative() {
        // The compare's block loops on itself *without* re-executing the
        // load: the second compare still sees the first load, but the
        // store on the self-loop has changed memory — a promoted
        // re-reading builtin would diverge, so the match must decline.
        ctx_for(
            r"
func f(1) {
entry:
  tmbegin
  r1 = tmload r0
  br spin
spin:
  r2 = cmp.gt r1, 0
  tmstore r0, 7
  condbr r2, spin, out
out:
  tmend
  ret 0
}
",
            |cx| {
                // load at (0,1), use at (1,0): the tmstore at (1,1) sits
                // on the spin→spin cycle, between load and a later use.
                let between = cx.positions_between((0, 1), (1, 0));
                assert!(between.contains(&(1, 1)), "store on cycle: {between:?}");
                assert!(matches!(
                    cx.match_cmp((1, 0)),
                    CmpMatch::No {
                        a: Decline::InterveningWrite,
                        ..
                    }
                ));
            },
        );
    }
}
