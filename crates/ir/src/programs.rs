//! Benchmark kernels written in the IR's *classical* TM style — plain
//! transactional loads, stores and comparisons, exactly what GCC's
//! `_transaction_atomic` lowering would produce. None of them mention a
//! semantic builtin: the whole point of the Figure-2 ("GCC")
//! configuration is that [`crate::passes::tm_mark`] discovers the
//! `cmp`/`inc` patterns by itself, keeping the programming model
//! untouched.
//!
//! The sources live as checked-in `.ir` files under `programs/` at the
//! repository root (so `semlint` and CI can lint them as files) and are
//! embedded here with `include_str!`:
//!
//! * [`hashtable_op`] — the open-addressing probe of the paper's
//!   Algorithm 2 (get or insert, selected by an argument);
//! * [`vacation_reserve`] — the reservation scan-and-book kernel of
//!   Algorithm 4 over a contiguous offer table;
//! * [`bank_transfer`] — a guarded transfer (overdraft check + two
//!   balance updates);
//! * [`cross_block_guard`] — a test-and-set guard whose comparison sits
//!   in a different basic block than its feeding load, exercising the
//!   whole-function matcher;
//! * [`range_gate`] — a token-bucket admission gate whose threshold
//!   check compares an *offset* of the loaded value, promotable only by
//!   the abstract interpreter's range widening ([`crate::passes::tm_widen`]).

use crate::ir::Function;
use crate::parser::parse_function;

/// Open-addressing hash-table operation (see `programs/ht_op.ir`).
///
/// Arguments: `r0` = states base address, `r1` = keys base address,
/// `r2` = capacity mask, `r3` = key, `r4` = op (0 = get, 1 = insert).
/// Returns 1 found, 0 absent, 2 inserted.
/// Cell states: 0 = FREE, 1 = USED, 2 = REMOVED.
pub const HASHTABLE_OP_SRC: &str = include_str!("../../../programs/ht_op.ir");

/// Vacation reservation kernel (see `programs/vac_reserve.ir`).
///
/// Arguments: `r0` = offer-table base, `r1` = number of offers. Offers
/// are 5-word records `id, numUsed, numFree, numTotal, price`. Scans all
/// offers for the priciest one with a free unit and books it.
/// Returns the booked record address, or -1.
pub const VACATION_RESERVE_SRC: &str = include_str!("../../../programs/vac_reserve.ir");

/// Guarded bank transfer (see `programs/bank_transfer.ir`).
///
/// Arguments: `r0` = source account address, `r1` = destination account
/// address, `r2` = amount. Returns 1 if the transfer happened, 0 if the
/// overdraft check blocked it.
pub const BANK_TRANSFER_SRC: &str = include_str!("../../../programs/bank_transfer.ir");

/// Cross-block test-and-set guard (see `programs/cross_block_guard.ir`).
///
/// The lock word is loaded in the entry block but compared in a
/// successor, so only the whole-function matcher promotes the guard to
/// `_ITM_S1R`. Arguments: `r0` = lock address, `r1` = counter address.
/// Returns 1 if the lock was acquired, 0 if it was already held.
pub const CROSS_BLOCK_GUARD_SRC: &str = include_str!("../../../programs/cross_block_guard.ir");

/// Token-bucket admission gate (see `programs/range_gate.ir`).
///
/// Admits when `*tokens <= 100 && *tokens + 27 > 77` — the offset
/// compare is the range-widening acceptance kernel: syntactically it is
/// a compare of an `add`, not of a load, so `tm_mark` declines it;
/// `tm_widen` proves `+ 27` cannot wrap under the capacity guard and
/// rewrites it to `tmcmp.gt tokens, 50`. Arguments: `r0` = tokens
/// address, `r1` = grants address. Returns 1 admitted, 0 rejected.
pub const RANGE_GATE_SRC: &str = include_str!("../../../programs/range_gate.ir");

/// Parse the hashtable kernel.
pub fn hashtable_op() -> Function {
    parse_function(HASHTABLE_OP_SRC).expect("ht_op parses")
}

/// Parse the vacation kernel.
pub fn vacation_reserve() -> Function {
    parse_function(VACATION_RESERVE_SRC).expect("vac_reserve parses")
}

/// Parse the bank kernel.
pub fn bank_transfer() -> Function {
    parse_function(BANK_TRANSFER_SRC).expect("bank_transfer parses")
}

/// Parse the cross-block guard kernel.
pub fn cross_block_guard() -> Function {
    parse_function(CROSS_BLOCK_GUARD_SRC).expect("cross_block_guard parses")
}

/// Parse the range-gate kernel.
pub fn range_gate() -> Function {
    parse_function(RANGE_GATE_SRC).expect("range_gate parses")
}

/// All builtin kernels, paired with the path of their `.ir` source
/// relative to the repository root (used by the differential oracle and
/// by `semlint --builtin`).
pub fn all() -> Vec<(&'static str, Function)> {
    vec![
        ("programs/ht_op.ir", hashtable_op()),
        ("programs/vac_reserve.ir", vacation_reserve()),
        ("programs/bank_transfer.ir", bank_transfer()),
        ("programs/cross_block_guard.ir", cross_block_guard()),
        ("programs/range_gate.ir", range_gate()),
    ]
}

/// The raw `.ir` sources of the builtin kernels, paired with their
/// repository-relative paths (lets `semlint --builtin` re-parse them
/// with source spans).
pub fn sources() -> Vec<(&'static str, &'static str)> {
    vec![
        ("programs/ht_op.ir", HASHTABLE_OP_SRC),
        ("programs/vac_reserve.ir", VACATION_RESERVE_SRC),
        ("programs/bank_transfer.ir", BANK_TRANSFER_SRC),
        ("programs/cross_block_guard.ir", CROSS_BLOCK_GUARD_SRC),
        ("programs/range_gate.ir", RANGE_GATE_SRC),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::passes::run_tm_passes;
    use semtm_core::{Algorithm, Stm, StmConfig};

    fn stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 12).orec_count(1 << 8))
    }

    #[test]
    fn hashtable_kernel_get_insert_cycle() {
        for passes in [false, true] {
            let s = stm(Algorithm::SNOrec);
            let states = s.alloc_array(16, 0i64);
            let keys = s.alloc_array(16, 0i64);
            let mut f = hashtable_op();
            if passes {
                let rep = run_tm_passes(&mut f);
                assert!(rep.s1r >= 2, "probe checks become S1R: {rep:?}");
            }
            let interp = Interp::new(&s);
            let args =
                |key: i64, op: i64| vec![states.index() as i64, keys.index() as i64, 15, key, op];
            assert_eq!(interp.execute(&f, &args(7, 0)).unwrap(), Some(0), "miss");
            assert_eq!(interp.execute(&f, &args(7, 1)).unwrap(), Some(2), "insert");
            assert_eq!(interp.execute(&f, &args(7, 0)).unwrap(), Some(1), "hit");
            assert_eq!(
                interp.execute(&f, &args(23, 1)).unwrap(),
                Some(2),
                "collision chain insert (23 & 15 == 7)"
            );
            assert_eq!(interp.execute(&f, &args(23, 0)).unwrap(), Some(1));
            assert_eq!(interp.execute(&f, &args(7, 0)).unwrap(), Some(1));
        }
    }

    #[test]
    fn vacation_kernel_books_best_offer() {
        let s = stm(Algorithm::SNOrec);
        let base = s.alloc(15); // three 5-word offers
        for (i, (free, price)) in [(2i64, 100i64), (0, 900), (1, 300)].iter().enumerate() {
            s.write_now(base.offset(i * 5), i as i64);
            s.write_now(base.offset(i * 5 + 1), 0);
            s.write_now(base.offset(i * 5 + 2), *free);
            s.write_now(base.offset(i * 5 + 3), *free);
            s.write_now(base.offset(i * 5 + 4), *price);
        }
        let mut f = vacation_reserve();
        let rep = run_tm_passes(&mut f);
        assert!(rep.s1r >= 2, "{rep:?}");
        assert_eq!(rep.sw, 2, "both counter updates become _ITM_SW");
        let interp = Interp::new(&s);
        let booked = interp
            .execute(&f, &[base.index() as i64, 3])
            .unwrap()
            .unwrap();
        // Offer 1 is priciest but sold out; offer 2 (price 300) wins.
        assert_eq!(booked as usize, base.index() + 10);
        assert_eq!(s.read_now(base.offset(12)), 0, "numFree decremented");
        assert_eq!(s.read_now(base.offset(11)), 1, "numUsed incremented");
    }

    #[test]
    fn bank_kernel_respects_overdraft() {
        for passes in [false, true] {
            for alg in [Algorithm::NOrec, Algorithm::SNOrec] {
                let s = stm(alg);
                let a = s.alloc_cell(100i64);
                let b = s.alloc_cell(0i64);
                let mut f = bank_transfer();
                if passes {
                    let rep = run_tm_passes(&mut f);
                    assert_eq!(rep.s1r, 1);
                    assert_eq!(rep.sw, 2);
                    assert_eq!(rep.loads_removed, 3);
                }
                let interp = Interp::new(&s);
                let args = |amt: i64| vec![a.index() as i64, b.index() as i64, amt];
                assert_eq!(interp.execute(&f, &args(60)).unwrap(), Some(1));
                assert_eq!(interp.execute(&f, &args(60)).unwrap(), Some(0), "blocked");
                assert_eq!(s.read_now(a), 40);
                assert_eq!(s.read_now(b), 60);
            }
        }
    }

    #[test]
    fn passed_bank_kernel_issues_three_barriers_instead_of_five() {
        let plain = bank_transfer();
        assert_eq!(plain.barrier_count(), 5);
        let mut passed = bank_transfer();
        run_tm_passes(&mut passed);
        assert_eq!(
            passed.barrier_count(),
            3,
            "S1R + 2x SW after dead-load elimination"
        );
    }

    #[test]
    fn cross_block_guard_is_promoted_and_sheds_barriers() {
        // The acceptance criterion for the whole-function matcher: the
        // guard's load and compare live in different blocks, and the
        // passes still fuse them into one _ITM_S1R.
        let plain = cross_block_guard();
        assert_eq!(plain.barrier_count(), 4, "2 loads + 2 stores before");
        let mut passed = cross_block_guard();
        let rep = run_tm_passes(&mut passed);
        assert_eq!(rep.s1r, 1, "cross-block compare promoted: {rep:?}");
        assert_eq!(rep.sw, 1, "counter bump promoted: {rep:?}");
        assert_eq!(rep.loads_removed, 2, "{rep:?}");
        assert!(
            passed.barrier_count() < plain.barrier_count(),
            "barrier count must drop: {} -> {}",
            plain.barrier_count(),
            passed.barrier_count()
        );
        assert_eq!(passed.barrier_count(), 3, "S1R + store + SW");
    }

    #[test]
    fn cross_block_guard_executes_identically_after_passes() {
        for passes in [false, true] {
            for alg in [Algorithm::NOrec, Algorithm::SNOrec] {
                let s = stm(alg);
                let lock = s.alloc_cell(0i64);
                let count = s.alloc_cell(0i64);
                let mut f = cross_block_guard();
                if passes {
                    run_tm_passes(&mut f);
                }
                let interp = Interp::new(&s);
                let args = vec![lock.index() as i64, count.index() as i64];
                assert_eq!(interp.execute(&f, &args).unwrap(), Some(1), "acquired");
                assert_eq!(interp.execute(&f, &args).unwrap(), Some(0), "held");
                assert_eq!(s.read_now(lock), 1);
                assert_eq!(s.read_now(count), 1, "bumped exactly once");
            }
        }
    }

    #[test]
    fn passes_are_idempotent_with_exact_counts() {
        // (widened, s1r, s2r, sw, loads_removed, pure_removed) per
        // kernel. A second run over already-transformed IR must find
        // nothing left to rewrite — the builtins are terminal forms,
        // not inputs to further matching.
        let expected = [
            ("programs/ht_op.ir", (0, 3, 0, 0, 3, 0)),
            ("programs/vac_reserve.ir", (0, 2, 0, 2, 4, 2)),
            ("programs/bank_transfer.ir", (0, 1, 0, 2, 3, 2)),
            ("programs/cross_block_guard.ir", (0, 1, 0, 1, 2, 1)),
            ("programs/range_gate.ir", (1, 1, 0, 1, 2, 2)),
        ];
        for (path, mut f) in all() {
            let want = expected
                .iter()
                .find(|(p, _)| *p == path)
                .map(|(_, w)| *w)
                .unwrap_or_else(|| panic!("no expectation for {path}"));
            let rep = run_tm_passes(&mut f);
            assert_eq!(
                (
                    rep.widened,
                    rep.s1r,
                    rep.s2r,
                    rep.sw,
                    rep.loads_removed,
                    rep.pure_removed
                ),
                want,
                "{path}: first run {rep:?}"
            );
            let again = run_tm_passes(&mut f);
            assert_eq!(
                (
                    again.widened,
                    again.s1r,
                    again.s2r,
                    again.sw,
                    again.loads_removed,
                    again.pure_removed
                ),
                (0, 0, 0, 0, 0, 0),
                "{path}: second run must be a no-op, got {again:?}"
            );
        }
    }

    #[test]
    fn range_gate_widening_beats_syntactic_matcher() {
        use crate::ir::{Inst, Operand};
        use semtm_core::CmpOp;
        // Syntactic pipeline only: the offset compare survives as a
        // plain Cmp — tm_mark declines it (the compared register is an
        // add, not a load).
        let mut syntactic = range_gate();
        let rep = crate::passes::tm_mark(&mut syntactic);
        assert_eq!(rep.s1r, 1, "only the capacity guard matches: {rep:?}");
        assert_eq!(
            syntactic.count_insts(|i| matches!(i, Inst::Cmp { .. })),
            1,
            "the offset compare is declined syntactically"
        );
        // Full pipeline: the abstract interpreter proves the rewrite.
        let mut f = range_gate();
        let rep = run_tm_passes(&mut f);
        assert_eq!(rep.widened, 1, "{rep:?}");
        assert_eq!(f.count_insts(|i| matches!(i, Inst::Cmp { .. })), 0);
        // The widened builtin checks the folded relation *tokens > 50.
        assert_eq!(
            f.count_insts(|i| matches!(
                i,
                Inst::TmCmpVal {
                    op: CmpOp::Gt,
                    val: Operand::Imm(50),
                    ..
                }
            )),
            1
        );
        assert_eq!(f.barrier_count(), 3, "2 tmcmp + 1 tminc");
    }

    #[test]
    fn range_gate_admits_only_above_threshold() {
        for passes in [false, true] {
            let s = stm(Algorithm::SNOrec);
            let tokens = s.alloc_cell(60i64);
            let grants = s.alloc_cell(0i64);
            let mut f = range_gate();
            if passes {
                run_tm_passes(&mut f);
            }
            let interp = Interp::new(&s);
            let args = vec![tokens.index() as i64, grants.index() as i64];
            assert_eq!(interp.execute(&f, &args).unwrap(), Some(1), "60 > 50");
            s.write_now(tokens, 50);
            assert_eq!(
                interp.execute(&f, &args).unwrap(),
                Some(0),
                "50 is not > 50"
            );
            s.write_now(tokens, 120);
            assert_eq!(interp.execute(&f, &args).unwrap(), Some(0), "over cap");
            assert_eq!(s.read_now(grants), 1, "granted exactly once");
        }
    }

    #[test]
    fn concurrent_ir_bank_conserves_money() {
        let s = stm(Algorithm::SNOrec);
        let accounts: Vec<_> = (0..4).map(|_| s.alloc_cell(250i64)).collect();
        let mut f = bank_transfer();
        run_tm_passes(&mut f);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let s = &s;
                let f = &f;
                let accounts = &accounts;
                scope.spawn(move || {
                    let interp = Interp::new(s);
                    let mut rng = semtm_core::util::SplitMix64::new(t as u64 + 1);
                    for _ in 0..200 {
                        let src = accounts[rng.index(4)].index() as i64;
                        let dst = accounts[rng.index(4)].index() as i64;
                        if src == dst {
                            continue;
                        }
                        let amt = 1 + rng.below(100) as i64;
                        interp.execute(f, &[src, dst, amt]).unwrap();
                    }
                });
            }
        });
        let total: i64 = accounts.iter().map(|a| s.read_now(*a)).sum();
        assert_eq!(total, 1000, "money conserved under concurrent IR runs");
    }
}
