//! Benchmark kernels written in the IR's *classical* TM style — plain
//! transactional loads, stores and comparisons, exactly what GCC's
//! `_transaction_atomic` lowering would produce. None of them mention a
//! semantic builtin: the whole point of the Figure-2 ("GCC")
//! configuration is that [`crate::passes::tm_mark`] discovers the
//! `cmp`/`inc` patterns by itself, keeping the programming model
//! untouched.
//!
//! * [`hashtable_op`] — the open-addressing probe of the paper's
//!   Algorithm 2 (get or insert, selected by an argument);
//! * [`vacation_reserve`] — the reservation scan-and-book kernel of
//!   Algorithm 4 over a contiguous offer table;
//! * [`bank_transfer`] — a guarded transfer (overdraft check + two
//!   balance updates).

use crate::ir::Function;
use crate::parser::parse_function;

/// Open-addressing hash-table operation.
///
/// Arguments: `r0` = states base address, `r1` = keys base address,
/// `r2` = capacity mask, `r3` = key, `r4` = op (0 = get, 1 = insert).
/// Returns 1 found, 0 absent, 2 inserted.
/// Cell states: 0 = FREE, 1 = USED, 2 = REMOVED.
pub const HASHTABLE_OP_SRC: &str = r"
; Algorithm 2: while (states[i] != FREE && (states[i] == REMOVED || keys[i] != key)) i++
func ht_op(5) {
entry:
  tmbegin
  r5 = and r3, r2
  br probe
probe:
  r6 = add r0, r5
  r7 = tmload r6
  r8 = cmp.neq r7, 0
  condbr r8, check_used, terminal
check_used:
  r9 = tmload r6
  r10 = cmp.eq r9, 2
  condbr r10, advance, check_key
check_key:
  r11 = add r1, r5
  r12 = tmload r11
  r13 = cmp.neq r12, r3
  condbr r13, advance, found
advance:
  r14 = add r5, 1
  r5 = and r14, r2
  br probe
terminal:
  condbr r4, do_insert, miss
found:
  tmend
  ret 1
miss:
  tmend
  ret 0
do_insert:
  r15 = add r0, r5
  tmstore r15, 1
  r16 = add r1, r5
  tmstore r16, r3
  tmend
  ret 2
}
";

/// Vacation reservation kernel (Algorithm 4).
///
/// Arguments: `r0` = offer-table base, `r1` = number of offers. Offers
/// are 5-word records `id, numUsed, numFree, numTotal, price`. Scans all
/// offers for the priciest one with a free unit and books it.
/// Returns the booked record address, or -1.
pub const VACATION_RESERVE_SRC: &str = r"
; for each offer: if (numFree > 0 && price > max_price) remember; then book.
func vac_reserve(2) {
entry:
  tmbegin
  r2 = const 0
  r3 = const -1
  r4 = const -1
  br loop
loop:
  r5 = cmp.lt r2, r1
  condbr r5, body, book
body:
  r6 = mul r2, 5
  r7 = add r0, r6
  r8 = add r7, 2
  r9 = tmload r8
  r10 = cmp.gt r9, 0
  condbr r10, chkprice, next
chkprice:
  r11 = add r7, 4
  r12 = tmload r11
  r13 = cmp.gt r12, r4
  condbr r13, take, next
take:
  r14 = tmload r11
  r4 = mov r14
  r3 = mov r7
  br next
next:
  r2 = add r2, 1
  br loop
book:
  r15 = cmp.lt r3, 0
  condbr r15, none, dobook
dobook:
  r16 = add r3, 2
  r17 = tmload r16
  r18 = sub r17, 1
  tmstore r16, r18
  r19 = add r3, 1
  r20 = tmload r19
  r21 = add r20, 1
  tmstore r19, r21
  tmend
  ret r3
none:
  tmend
  ret -1
}
";

/// Guarded bank transfer.
///
/// Arguments: `r0` = source account address, `r1` = destination account
/// address, `r2` = amount. Returns 1 if the transfer happened, 0 if the
/// overdraft check blocked it.
pub const BANK_TRANSFER_SRC: &str = r"
; if (*src >= amount) { *src -= amount; *dst += amount; }
func bank_transfer(3) {
entry:
  tmbegin
  r3 = tmload r0
  r4 = cmp.gte r3, r2
  condbr r4, do_move, skip
do_move:
  r5 = tmload r0
  r6 = sub r5, r2
  tmstore r0, r6
  r7 = tmload r1
  r8 = add r7, r2
  tmstore r1, r8
  tmend
  ret 1
skip:
  tmend
  ret 0
}
";

/// Parse the hashtable kernel.
pub fn hashtable_op() -> Function {
    parse_function(HASHTABLE_OP_SRC).expect("ht_op parses")
}

/// Parse the vacation kernel.
pub fn vacation_reserve() -> Function {
    parse_function(VACATION_RESERVE_SRC).expect("vac_reserve parses")
}

/// Parse the bank kernel.
pub fn bank_transfer() -> Function {
    parse_function(BANK_TRANSFER_SRC).expect("bank_transfer parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::passes::run_tm_passes;
    use semtm_core::{Algorithm, Stm, StmConfig};

    fn stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 12).orec_count(1 << 8))
    }

    #[test]
    fn hashtable_kernel_get_insert_cycle() {
        for passes in [false, true] {
            let s = stm(Algorithm::SNOrec);
            let states = s.alloc_array(16, 0i64);
            let keys = s.alloc_array(16, 0i64);
            let mut f = hashtable_op();
            if passes {
                let rep = run_tm_passes(&mut f);
                assert!(rep.s1r >= 2, "probe checks become S1R: {rep:?}");
            }
            let interp = Interp::new(&s);
            let args =
                |key: i64, op: i64| vec![states.index() as i64, keys.index() as i64, 15, key, op];
            assert_eq!(interp.execute(&f, &args(7, 0)).unwrap(), Some(0), "miss");
            assert_eq!(interp.execute(&f, &args(7, 1)).unwrap(), Some(2), "insert");
            assert_eq!(interp.execute(&f, &args(7, 0)).unwrap(), Some(1), "hit");
            assert_eq!(
                interp.execute(&f, &args(23, 1)).unwrap(),
                Some(2),
                "collision chain insert (23 & 15 == 7)"
            );
            assert_eq!(interp.execute(&f, &args(23, 0)).unwrap(), Some(1));
            assert_eq!(interp.execute(&f, &args(7, 0)).unwrap(), Some(1));
        }
    }

    #[test]
    fn vacation_kernel_books_best_offer() {
        let s = stm(Algorithm::SNOrec);
        let base = s.alloc(15); // three 5-word offers
        for (i, (free, price)) in [(2i64, 100i64), (0, 900), (1, 300)].iter().enumerate() {
            s.write_now(base.offset(i * 5), i as i64);
            s.write_now(base.offset(i * 5 + 1), 0);
            s.write_now(base.offset(i * 5 + 2), *free);
            s.write_now(base.offset(i * 5 + 3), *free);
            s.write_now(base.offset(i * 5 + 4), *price);
        }
        let mut f = vacation_reserve();
        let rep = run_tm_passes(&mut f);
        assert!(rep.s1r >= 2, "{rep:?}");
        assert_eq!(rep.sw, 2, "both counter updates become _ITM_SW");
        let interp = Interp::new(&s);
        let booked = interp
            .execute(&f, &[base.index() as i64, 3])
            .unwrap()
            .unwrap();
        // Offer 1 is priciest but sold out; offer 2 (price 300) wins.
        assert_eq!(booked as usize, base.index() + 10);
        assert_eq!(s.read_now(base.offset(12)), 0, "numFree decremented");
        assert_eq!(s.read_now(base.offset(11)), 1, "numUsed incremented");
    }

    #[test]
    fn bank_kernel_respects_overdraft() {
        for passes in [false, true] {
            for alg in [Algorithm::NOrec, Algorithm::SNOrec] {
                let s = stm(alg);
                let a = s.alloc_cell(100i64);
                let b = s.alloc_cell(0i64);
                let mut f = bank_transfer();
                if passes {
                    let rep = run_tm_passes(&mut f);
                    assert_eq!(rep.s1r, 1);
                    assert_eq!(rep.sw, 2);
                    assert_eq!(rep.loads_removed, 3);
                }
                let interp = Interp::new(&s);
                let args = |amt: i64| vec![a.index() as i64, b.index() as i64, amt];
                assert_eq!(interp.execute(&f, &args(60)).unwrap(), Some(1));
                assert_eq!(interp.execute(&f, &args(60)).unwrap(), Some(0), "blocked");
                assert_eq!(s.read_now(a), 40);
                assert_eq!(s.read_now(b), 60);
            }
        }
    }

    #[test]
    fn passed_bank_kernel_issues_three_barriers_instead_of_five() {
        let plain = bank_transfer();
        assert_eq!(plain.barrier_count(), 5);
        let mut passed = bank_transfer();
        run_tm_passes(&mut passed);
        assert_eq!(
            passed.barrier_count(),
            3,
            "S1R + 2x SW after dead-load elimination"
        );
    }

    #[test]
    fn concurrent_ir_bank_conserves_money() {
        let s = stm(Algorithm::SNOrec);
        let accounts: Vec<_> = (0..4).map(|_| s.alloc_cell(250i64)).collect();
        let mut f = bank_transfer();
        run_tm_passes(&mut f);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let s = &s;
                let f = &f;
                let accounts = &accounts;
                scope.spawn(move || {
                    let interp = Interp::new(s);
                    let mut rng = semtm_core::util::SplitMix64::new(t as u64 + 1);
                    for _ in 0..200 {
                        let src = accounts[rng.index(4)].index() as i64;
                        let dst = accounts[rng.index(4)].index() as i64;
                        if src == dst {
                            continue;
                        }
                        let amt = 1 + rng.below(100) as i64;
                        interp.execute(f, &[src, dst, amt]).unwrap();
                    }
                });
            }
        });
        let total: i64 = accounts.iter().map(|a| s.read_now(*a)).sum();
        assert_eq!(total, 1000, "money conserved under concurrent IR runs");
    }
}
