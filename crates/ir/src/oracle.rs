//! Differential-testing oracle for the pass pipeline.
//!
//! The paper's correctness claim for the compiler integration is that
//! the promoted builtins are *observationally equivalent* to the
//! classical barrier sequences they replace. This module tests exactly
//! that, end to end: every builtin kernel in [`crate::programs`] is run
//! through a scripted scenario sixteen ways — {original, after
//! `tm_widen`+`tm_mark`+`tm_optimize`} × {tree-walking
//! [`Interp::execute`], flat [`Interp::execute_lowered`]} × every
//! [`Algorithm`] (NOrec, S-NOrec, TL2, S-TL2) — and the oracle asserts
//! that all executions return identical results and leave identical
//! heap state. The dispatch dimension makes the oracle also the
//! correctness gate for the threaded-dispatch lowering
//! ([`crate::lower`]). Alongside the equivalence verdict it reports
//! the barrier-count reduction the passes achieved (the paper's
//! 2-calls→1 argument, aggregated per kernel).
//!
//! The strict verifier runs on both the original and the transformed
//! function ([`crate::passes::run_tm_passes_checked`]), so a pass bug
//! surfaces either as a [`VerifyError`] or as an observation mismatch —
//! never as silent corruption.

use crate::analysis::VerifyError;
use crate::interp::{ExecError, Interp};
use crate::ir::Function;
use crate::passes::{run_tm_passes_checked, PassReport};
use semtm_core::{Algorithm, Stm, StmConfig};

/// Result of differentially testing one kernel.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Kernel (function) name.
    pub name: String,
    /// Barrier calls in the original function.
    pub barriers_before: usize,
    /// Barrier calls after both passes.
    pub barriers_after: usize,
    /// What the passes rewrote/removed.
    pub passes: PassReport,
    /// Number of scripted calls executed per configuration.
    pub calls: usize,
}

impl std::fmt::Display for DiffReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} -> {} barriers (widened {}, s1r {}, s2r {}, sw {}, loads removed {}), \
             {} calls identical on all {} backend/dispatch configs",
            self.name,
            self.barriers_before,
            self.barriers_after,
            self.passes.widened,
            self.passes.s1r,
            self.passes.s2r,
            self.passes.sw,
            self.passes.loads_removed,
            self.calls,
            Algorithm::ALL.len() * 2
        )
    }
}

/// Why the oracle failed.
#[derive(Clone, Debug)]
pub enum OracleError {
    /// The verifier rejected the function before or after the passes.
    Verify(VerifyError),
    /// A scripted call failed at runtime.
    Exec {
        /// Kernel name.
        name: String,
        /// Which configuration was running.
        config: String,
        /// The interpreter error.
        error: ExecError,
    },
    /// Two configurations observed different results or heap state.
    Mismatch {
        /// Kernel name.
        name: String,
        /// Baseline configuration label.
        base: String,
        /// Diverging configuration label.
        other: String,
        /// Index into the observation vector where they diverge.
        at: usize,
    },
    /// The kernel has no scripted scenario (only builtin kernels do).
    NoScenario(String),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Verify(e) => write!(f, "verifier: {e}"),
            OracleError::Exec {
                name,
                config,
                error,
            } => write!(f, "{name} [{config}]: execution failed: {error:?}"),
            OracleError::Mismatch {
                name,
                base,
                other,
                at,
            } => write!(
                f,
                "{name}: observation {at} differs between {base} and {other}"
            ),
            OracleError::NoScenario(name) => write!(f, "{name}: no oracle scenario"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<VerifyError> for OracleError {
    fn from(e: VerifyError) -> OracleError {
        OracleError::Verify(e)
    }
}

fn stm(alg: Algorithm) -> Stm {
    Stm::new(StmConfig::new(alg).heap_words(1 << 12).orec_count(1 << 8))
}

/// How the scenario drives the kernel: the tree-walking interpreter or
/// the flat threaded-dispatch array from [`crate::lower`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Dispatch {
    Tree,
    Lowered,
}

/// Run the kernel's scripted scenario on a fresh heap under `alg` and
/// return everything observable: each call's return value followed by a
/// full dump of the touched heap cells. Two equivalent functions must
/// produce byte-identical vectors.
fn observe(
    func: &Function,
    alg: Algorithm,
    dispatch: Dispatch,
) -> Result<(Vec<i64>, usize), OracleError> {
    let s = stm(alg);
    let interp = Interp::new(&s);
    // `check_function` verified the function, so lowering cannot fail.
    let lowered = match dispatch {
        Dispatch::Tree => None,
        Dispatch::Lowered => Some(crate::lower::lower(func).expect("verified function lowers")),
    };
    let mut obs: Vec<i64> = Vec::new();
    let mut calls = 0usize;
    let mut call = |args: &[i64]| -> Result<(), OracleError> {
        calls += 1;
        let out = match &lowered {
            None => interp.execute(func, args),
            Some(l) => interp.execute_lowered(l, args),
        };
        match out {
            Ok(ret) => {
                obs.push(ret.unwrap_or(i64::MIN));
                Ok(())
            }
            Err(error) => Err(OracleError::Exec {
                name: func.name.clone(),
                config: format!("{dispatch:?}/{alg:?}"),
                error,
            }),
        }
    };
    match func.name.as_str() {
        "ht_op" => {
            let states = s.alloc_array(16, 0i64);
            let keys = s.alloc_array(16, 0i64);
            let a =
                |key: i64, op: i64| vec![states.index() as i64, keys.index() as i64, 15, key, op];
            for (key, op) in [
                (7, 0),
                (7, 1),
                (7, 0),
                (23, 1), // collides with 7 (23 & 15 == 7)
                (23, 0),
                (7, 0),
                (3, 1),
                (3, 0),
                (12, 0),
            ] {
                call(&a(key, op))?;
            }
            for i in 0..16 {
                obs.push(s.read_now(states.offset(i)));
                obs.push(s.read_now(keys.offset(i)));
            }
        }
        "vac_reserve" => {
            let base = s.alloc(20); // four 5-word offers
            for (i, (free, price)) in [(2i64, 100i64), (0, 900), (1, 300), (3, 300)]
                .iter()
                .enumerate()
            {
                s.write_now(base.offset(i * 5), i as i64);
                s.write_now(base.offset(i * 5 + 1), 0);
                s.write_now(base.offset(i * 5 + 2), *free);
                s.write_now(base.offset(i * 5 + 3), *free);
                s.write_now(base.offset(i * 5 + 4), *price);
            }
            // Book repeatedly until everything is sold out (-1).
            for _ in 0..8 {
                call(&[base.index() as i64, 4])?;
            }
            for i in 0..20 {
                obs.push(s.read_now(base.offset(i)));
            }
        }
        "bank_transfer" => {
            let a = s.alloc_cell(100i64);
            let b = s.alloc_cell(10i64);
            for (src, dst, amt) in [
                (a, b, 60),
                (a, b, 60), // blocked by the overdraft check
                (b, a, 5),
                (a, b, 45),
                (b, a, 1000), // blocked
            ] {
                call(&[src.index() as i64, dst.index() as i64, amt])?;
            }
            obs.push(s.read_now(a));
            obs.push(s.read_now(b));
        }
        "cross_block_guard" => {
            let lock = s.alloc_cell(0i64);
            let count = s.alloc_cell(0i64);
            let args = [lock.index() as i64, count.index() as i64];
            call(&args)?; // acquires
            call(&args)?; // already held
            call(&args)?;
            obs.push(s.read_now(lock));
            obs.push(s.read_now(count));
        }
        "range_gate" => {
            let tokens = s.alloc_cell(0i64);
            let grants = s.alloc_cell(0i64);
            let args = [tokens.index() as i64, grants.index() as i64];
            // Sweep the threshold (51 admits, 50 does not), the cap
            // boundary (100 in, 101 out), and a negative balance — the
            // widened `tmcmp.gt tokens, 50` must agree everywhere.
            for t in [60, 51, 50, 100, 101, 0, -5, 77, 120] {
                s.write_now(tokens, t);
                call(&args)?;
            }
            obs.push(s.read_now(tokens));
            obs.push(s.read_now(grants));
        }
        other => return Err(OracleError::NoScenario(other.to_string())),
    }
    Ok((obs, calls))
}

/// Differentially test one kernel: verify, transform, and compare all
/// {pipeline} × {dispatch} × {algorithm} observation vectors.
pub fn check_function(func: &Function) -> Result<DiffReport, OracleError> {
    let mut passed = func.clone();
    let passes = run_tm_passes_checked(&mut passed)?;
    let mut baseline: Option<(String, Vec<i64>)> = None;
    let mut calls = 0usize;
    for (label_fn, f) in [("original", func), ("passed", &passed)] {
        for (dispatch, alg) in [Dispatch::Tree, Dispatch::Lowered]
            .into_iter()
            .flat_map(|d| Algorithm::ALL.into_iter().map(move |a| (d, a)))
        {
            let label = format!("{label_fn}/{dispatch:?}/{alg:?}");
            let (obs, c) = observe(f, alg, dispatch)?;
            calls = c;
            match &baseline {
                None => baseline = Some((label, obs)),
                Some((base_label, base_obs)) => {
                    if let Some(at) =
                        (0..base_obs.len().max(obs.len())).find(|&i| base_obs.get(i) != obs.get(i))
                    {
                        return Err(OracleError::Mismatch {
                            name: func.name.clone(),
                            base: base_label.clone(),
                            other: label,
                            at,
                        });
                    }
                }
            }
        }
    }
    Ok(DiffReport {
        name: func.name.clone(),
        barriers_before: func.barrier_count(),
        barriers_after: passed.barrier_count(),
        passes,
        calls,
    })
}

/// Run the oracle over every builtin kernel.
pub fn run_differential_oracle() -> Result<Vec<DiffReport>, OracleError> {
    crate::programs::all()
        .iter()
        .map(|(_, f)| check_function(f))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Inst, Operand};

    #[test]
    fn oracle_accepts_all_builtin_kernels() {
        let reports = run_differential_oracle().unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(reports.len(), 5);
        for r in &reports {
            // S1R promotions trade a load barrier for a compare barrier
            // (cheaper, not fewer); only SW promotions fuse two barriers
            // into one. So the count never grows, and drops wherever the
            // kernel has an increment pattern.
            assert!(r.barriers_after <= r.barriers_before, "{r}");
            let promotions = r.passes.s1r + r.passes.s2r + r.passes.sw;
            assert!(promotions > 0, "every kernel has a promotable pattern: {r}");
            // A widened compare turns a *plain* Cmp into a tmcmp
            // barrier (one new barrier, cheaper than the load it
            // replaces), offsetting one SW fusion in the count.
            if r.passes.sw > r.passes.widened {
                assert!(
                    r.barriers_after < r.barriers_before,
                    "SW promotion must shed barriers: {r}"
                );
            }
            assert!(r.calls >= 3, "{r}");
        }
        let bank = reports.iter().find(|r| r.name == "bank_transfer").unwrap();
        assert_eq!((bank.barriers_before, bank.barriers_after), (5, 3));
        let guard = reports
            .iter()
            .find(|r| r.name == "cross_block_guard")
            .unwrap();
        assert_eq!((guard.barriers_before, guard.barriers_after), (4, 3));
        assert_eq!(guard.passes.s1r, 1);
        let ht = reports.iter().find(|r| r.name == "ht_op").unwrap();
        assert_eq!(ht.passes.s1r, 3, "all three probe checks promoted");
        let gate = reports.iter().find(|r| r.name == "range_gate").unwrap();
        assert_eq!(
            gate.passes.widened, 1,
            "range widening fires on the offset compare: {gate}"
        );
        assert_eq!((gate.barriers_before, gate.barriers_after), (3, 3));
    }

    #[test]
    fn oracle_catches_a_miscompilation() {
        // Sabotage the bank kernel the way a buggy pass would: flip the
        // overdraft comparison. The observations diverge from the
        // original and the oracle must say so.
        let good = crate::programs::bank_transfer();
        let mut bad = good.clone();
        for b in &mut bad.blocks {
            for i in &mut b.insts {
                if let Inst::Cmp { op, .. } = i {
                    *op = op.swap();
                }
            }
        }
        // Compare observations directly (check_function transforms its
        // own clone, so feed the two variants through `observe`).
        let (good_obs, _) = observe(&good, Algorithm::SNOrec, Dispatch::Tree).unwrap();
        let (bad_obs, _) = observe(&bad, Algorithm::SNOrec, Dispatch::Tree).unwrap();
        assert_ne!(good_obs, bad_obs, "sabotage must be observable");
    }

    #[test]
    fn unknown_kernel_is_reported() {
        let mut fb = crate::ir::FunctionBuilder::new("mystery", 0);
        fb.push(Inst::Ret {
            val: Some(Operand::Imm(0)),
        });
        let f = fb.build();
        assert!(matches!(
            check_function(&f),
            Err(OracleError::NoScenario(n)) if n == "mystery"
        ));
    }
}
