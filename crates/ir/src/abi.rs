//! The extended TM ABI of the paper's Table 2.
//!
//! GCC lowers `_transaction_atomic` statements to libitm calls following
//! the Intel TM ABI; the paper adds three entry points, which our IR
//! models as builtin instructions:
//!
//! | ABI symbol      | Meaning                               | IR instruction |
//! |-----------------|---------------------------------------|----------------|
//! | `_ITM_S2Rtype`  | address–address semantic read         | [`crate::ir::Inst::TmCmpAddr`] |
//! | `_ITM_S1Rtype`  | address–value semantic read           | [`crate::ir::Inst::TmCmpVal`] |
//! | `_ITM_SWtype`   | semantic write (increment/decrement)  | [`crate::ir::Inst::TmInc`] |
//!
//! In the TM algorithms that do not handle semantics (plain NOrec/TL2),
//! "those new operations are implemented by delegating their execution to
//! the classical read and write handlers" (§6) — which is exactly what
//! [`semtm_core::stm::Tx`] does for non-semantic algorithms.

use crate::ir::Inst;

/// ABI symbol for the address–address semantic read.
pub const ITM_S2R: &str = "_ITM_S2R";
/// ABI symbol for the address–value semantic read.
pub const ITM_S1R: &str = "_ITM_S1R";
/// ABI symbol for the semantic write.
pub const ITM_SW: &str = "_ITM_SW";

/// The ABI symbol an instruction dispatches to, if it is one of the
/// extended builtins.
pub fn abi_symbol(inst: &Inst) -> Option<&'static str> {
    match inst {
        Inst::TmCmpAddr { .. } => Some(ITM_S2R),
        Inst::TmCmpVal { .. } => Some(ITM_S1R),
        Inst::TmInc { .. } => Some(ITM_SW),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Operand;
    use semtm_core::CmpOp;

    #[test]
    fn builtins_map_to_table2_symbols() {
        assert_eq!(
            abi_symbol(&Inst::TmCmpVal {
                op: CmpOp::Gt,
                dst: 0,
                addr: Operand::Imm(0),
                val: Operand::Imm(1)
            }),
            Some("_ITM_S1R")
        );
        assert_eq!(
            abi_symbol(&Inst::TmCmpAddr {
                op: CmpOp::Eq,
                dst: 0,
                a: Operand::Imm(0),
                b: Operand::Imm(1)
            }),
            Some("_ITM_S2R")
        );
        assert_eq!(
            abi_symbol(&Inst::TmInc {
                addr: Operand::Imm(0),
                delta: Operand::Imm(1),
                negate: false
            }),
            Some("_ITM_SW")
        );
        assert_eq!(abi_symbol(&Inst::TmBegin), None);
    }
}
