//! Seeded-defect lint fixtures: `programs/lintcases/slNNN.ir`.
//!
//! Each fixture declares the one rule it seeds in an `; expect: SLNNN`
//! header. The contract is exact: linting the fixture yields exactly
//! one diagnostic, of exactly that rule — and on the shipping
//! `programs/*.ir` kernels none of the seeded rules fires at all,
//! except SL004 in its downgraded (pipeline-folds-this) info form.

use semtm_ir::lint::{lint_function, Severity};
use semtm_ir::parser::parse_function_spanned;
use std::collections::BTreeMap;
use std::path::PathBuf;

const SEEDED_RULES: &[&str] = &[
    "SL000", "SL001", "SL002", "SL003", "SL004", "SL005", "SL006", "SL007", "SL008", "SL009",
    "SL010", "SL011",
];

fn lintcases_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../programs/lintcases")
}

fn fixtures() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = std::fs::read_dir(lintcases_dir())
        .expect("programs/lintcases exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ir"))
        .map(|p| {
            let src = std::fs::read_to_string(&p).expect("readable fixture");
            (p.file_name().unwrap().to_string_lossy().into_owned(), src)
        })
        .collect();
    out.sort();
    out
}

/// The `; expect: SLNNN` header of a fixture.
fn expected_rule(src: &str) -> &str {
    src.lines()
        .find_map(|l| l.trim().strip_prefix("; expect:"))
        .expect("fixture declares an `; expect:` rule")
        .trim()
}

#[test]
fn every_seeded_fixture_fires_exactly_its_rule() {
    let fixtures = fixtures();
    assert_eq!(
        fixtures.len(),
        SEEDED_RULES.len(),
        "one fixture per seeded rule"
    );
    let mut seen: Vec<&str> = Vec::new();
    for (name, src) in &fixtures {
        let expect = expected_rule(src);
        let (func, map) = parse_function_spanned(src)
            .unwrap_or_else(|e| panic!("{name}: parse error: {}", e.message));
        let diags = lint_function(&func, Some(&map));
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for d in &diags {
            *counts.entry(d.rule).or_insert(0) += 1;
        }
        assert_eq!(
            counts,
            BTreeMap::from([(expect, 1)]),
            "{name}: expected exactly one {expect} and nothing else, got {diags:?}"
        );
        seen.push(diags[0].rule);
    }
    let mut seen_sorted = seen.clone();
    seen_sorted.sort_unstable();
    assert_eq!(seen_sorted, SEEDED_RULES, "all twelve rules are covered");
}

#[test]
fn seeded_rules_never_fire_on_shipping_kernels() {
    for (path, src) in semtm_ir::programs::sources() {
        let (func, map) = parse_function_spanned(src).expect("builtin parses");
        let diags = lint_function(&func, Some(&map));
        for d in &diags {
            // The pre-pass kernels deliberately carry duplicate loads
            // the pipeline folds — SL004 may appear, but only in its
            // downgraded info form (so `--deny warnings` stays green).
            if d.rule == "SL004" {
                assert_eq!(
                    d.severity,
                    Severity::Info,
                    "{path}: unfoldable duplicate load in a shipping kernel: {d:?}"
                );
                continue;
            }
            assert!(
                !SEEDED_RULES.contains(&d.rule),
                "{path}: seeded rule fired on a shipping kernel: {d:?}"
            );
        }
    }
}
