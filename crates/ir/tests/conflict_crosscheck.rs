//! Cross-check the static conflict matrix against the runtime flight
//! recorder. The abstract interpreter *predicts* which words two
//! concurrent instances of a kernel can fight over; the telemetry
//! sketches *observe* the fight. The sound direction is ⊆: every
//! address the recorder attributes a conflict to must lie inside the
//! concretized static prediction (a quiet run may observe nothing, and
//! the static set may over-approximate — never the reverse).

use semtm_ir::analysis::absint::{AbsAddr, Overlap};
use semtm_ir::analysis::{AbsInt, Cfg, ConflictAnalysis, Regions};
use semtm_ir::{programs, Interp};

use semtm_core::{Algorithm, Stm, StmConfig, TelemetryLevel};
use std::collections::HashSet;

#[test]
fn runtime_hot_addresses_stay_within_static_prediction() {
    let f = programs::bank_transfer();
    let cfg = Cfg::new(&f);
    let ai = AbsInt::compute(&f, &cfg);
    let regions = Regions::compute(&f, &cfg);
    let ca = ConflictAnalysis::compute(&f, &cfg, &ai, &regions);

    // Statically, the bank region must self-conflict (two instances
    // race on the same accounts) and every access has an exact
    // arg+offset address.
    assert_eq!(ca.summaries.len(), 1);
    let c = ca.conflict(0, 0).expect("bank region self-conflicts");
    assert_eq!(c.overlap, Overlap::Must);

    let s = Stm::new(
        StmConfig::new(Algorithm::SNOrec)
            .heap_words(1 << 8)
            .orec_count(1 << 8)
            .telemetry(TelemetryLevel::Spans),
    );
    let a = s.alloc_cell(10_000i64);
    let b = s.alloc_cell(10_000i64);
    let fwd = [a.index() as i64, b.index() as i64, 1];
    let bwd = [b.index() as i64, a.index() as i64, 1];

    // Concretize the abstract access set under both argument bindings
    // the workers use: `Arg(r) + k` becomes `binding[r] + k`.
    let mut predicted: HashSet<i64> = HashSet::new();
    for bind in [&fwd, &bwd] {
        for acc in &ca.summaries[0].accesses {
            let AbsAddr::Arg(r, off) = acc.addr else {
                panic!("bank access without an arg-based address: {:?}", acc.addr);
            };
            let k = off.singleton().expect("bank offsets are exact");
            predicted.insert(bind[r as usize] + k);
        }
    }

    // Four workers hammer the same two accounts in both directions —
    // write/write and read/write collisions on exactly those words.
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let s = &s;
            let f = &f;
            let (fwd, bwd) = (fwd, bwd);
            scope.spawn(move || {
                let interp = Interp::new(s);
                for i in 0..400usize {
                    let args = if (i + t) % 2 == 0 { fwd } else { bwd };
                    interp.execute(f, &args).unwrap();
                }
            });
        }
    });

    let tele = s.telemetry();
    for (addr, count) in tele.hot_addresses() {
        assert!(
            predicted.contains(&(addr.index() as i64)),
            "runtime conflict on word {} (count {count}) outside the \
             static prediction {predicted:?}",
            addr.index()
        );
    }
    // Abort attribution consistency: who-aborted-whom edges only exist
    // if some address was contended.
    if !tele.conflict_edges().is_empty() {
        assert!(
            !tele.hot_addresses().is_empty(),
            "conflict edges imply contended addresses"
        );
    }
}
