//! `cargo bench` entry point that regenerates every table and figure at
//! smoke scale (a custom harness, not Criterion): the same sweeps as
//! `cargo run --release -p semtm-bench --bin figures -- all`, sized for
//! CI. For EXPERIMENTS.md-grade numbers run the binary without --smoke.

use semtm_bench::experiments as exp;
use semtm_bench::report::{markdown_table, speedup_summary};
use semtm_bench::{fig2, table3, Scale, Sweep};
use semtm_workloads::stamp::labyrinth::Variant;
use std::time::Duration;

fn main() {
    // `cargo bench -- --test` style filters are ignored; this harness
    // always runs the full smoke sweep.
    let sweep = Sweep::new(Scale::Smoke);
    println!("# paper figures (smoke scale, threads {:?})", sweep.threads);

    let rows = table3::table3(true);
    println!("{}", table3::markdown(&rows));

    let pairs: &[(&str, &str)] = &[("NOrec", "S-NOrec"), ("TL2", "S-TL2")];
    let sections: Vec<(&str, Vec<semtm_bench::FigureRow>)> = vec![
        ("Figures 1a/1b — Hashtable", exp::fig1_hashtable(&sweep)),
        ("Figures 1c/1d — Bank", exp::fig1_bank(&sweep)),
        ("Figures 1e/1f — LRU", exp::fig1_lru(&sweep)),
        ("Figures 1g/1h — Kmeans", exp::fig1_kmeans(&sweep)),
        ("Figures 1i/1j — Vacation", exp::fig1_vacation(&sweep)),
        (
            "Figures 1k/1l — Labyrinth 1",
            exp::fig1_labyrinth(&sweep, Variant::CopyInsideTx),
        ),
        (
            "Figures 1m/1n — Labyrinth 2",
            exp::fig1_labyrinth(&sweep, Variant::CopyOutsideTx),
        ),
        ("Figures 1o/1p — Yada", exp::fig1_yada(&sweep)),
        (
            "Ablation A1 — S-TL2 snapshot extension",
            exp::ablation_stl2_extension(&sweep),
        ),
        (
            "Ablation A2 — S-NOrec read-set dedup",
            exp::ablation_snorec_dedup(&sweep),
        ),
        (
            "Ablation A3 — contention managers",
            exp::ablation_cm_policy(&sweep),
        ),
        (
            "Ablation A4 — RingSTM commit filters",
            exp::ablation_ring_filters(&sweep),
        ),
    ];
    for (title, rows) in sections {
        println!("{}", markdown_table(title, &rows));
        for (b, s) in pairs {
            print!("{}", speedup_summary(&rows, b, s));
        }
    }

    let rows = fig2::fig2_hashtable(&sweep.threads, Duration::from_millis(80), 7, sweep.seed);
    println!(
        "{}",
        markdown_table("Figures 2a/2b — Hashtable (GCC path)", &rows)
    );
    print!("{}", speedup_summary(&rows, "NOrec", "S-NOrec"));
    let rows = fig2::fig2_vacation(&sweep.threads, 32, 400, sweep.seed);
    println!(
        "{}",
        markdown_table("Figures 2c/2d — Vacation (GCC path)", &rows)
    );
    print!("{}", speedup_summary(&rows, "NOrec", "S-NOrec"));
    println!("\nsmoke figures done.");
}
