//! Criterion micro-latency benches: per-operation and per-transaction
//! costs of every algorithm. These quantify the paper's overhead
//! discussion — semantic metadata (compare-sets, write-set flags) must
//! cost little enough that avoided aborts dominate (§4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semtm_core::util::SplitMix64;
use semtm_core::{Algorithm, CmpOp, Stm, StmConfig};
use semtm_workloads::{bank, hashtable, lru, queue};

fn stm(alg: Algorithm) -> Stm {
    Stm::new(StmConfig::new(alg).heap_words(1 << 18).orec_count(1 << 12))
}

/// Barrier-level costs: a transaction of 16 reads / cmps / incs.
fn bench_barriers(c: &mut Criterion) {
    let mut g = c.benchmark_group("barriers");
    g.sample_size(20);
    for alg in Algorithm::ALL {
        let s = stm(alg);
        let arr = s.alloc_array(16, 1i64);
        g.bench_with_input(BenchmarkId::new("read16", alg.name()), &s, |b, s| {
            b.iter(|| {
                s.atomic(|tx| {
                    let mut acc = 0;
                    for i in 0..16 {
                        acc += tx.read(arr.offset(i))?;
                    }
                    Ok(acc)
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("cmp16", alg.name()), &s, |b, s| {
            b.iter(|| {
                s.atomic(|tx| {
                    let mut acc = 0;
                    for i in 0..16 {
                        acc += tx.cmp(arr.offset(i), CmpOp::Gt, 0)? as i64;
                    }
                    Ok(acc)
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("inc16", alg.name()), &s, |b, s| {
            b.iter(|| {
                s.atomic(|tx| {
                    for i in 0..16 {
                        tx.inc(arr.offset(i), 1)?;
                    }
                    Ok(())
                })
            })
        });
    }
    g.finish();
}

/// Whole-transaction latency of the micro-benchmarks (single-threaded:
/// pure overhead, no contention).
fn bench_workload_tx(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_tx");
    g.sample_size(20);
    for alg in Algorithm::ALL {
        // Bank transfer transaction.
        {
            let s = stm(alg);
            let b_ = bank::Bank::new(&s, bank::BankConfig::default());
            let mut rng = SplitMix64::new(5);
            g.bench_function(BenchmarkId::new("bank", alg.name()), |b| {
                b.iter(|| b_.transfer_tx(&s, &mut rng))
            });
        }
        // Hashtable 10-op transaction.
        {
            let s = stm(alg);
            let t = hashtable::Hashtable::new(
                &s,
                hashtable::HashtableConfig {
                    capacity: 1 << 10,
                    ..hashtable::HashtableConfig::default()
                },
            );
            let mut rng = SplitMix64::new(6);
            g.bench_function(BenchmarkId::new("hashtable", alg.name()), |b| {
                b.iter(|| t.workload_tx(&s, &mut rng))
            });
        }
        // LRU batch transaction.
        {
            let s = stm(alg);
            let cache = lru::LruCache::new(&s, lru::LruConfig::default());
            let mut rng = SplitMix64::new(7);
            g.bench_function(BenchmarkId::new("lru", alg.name()), |b| {
                b.iter(|| cache.workload_tx(&s, &mut rng))
            });
        }
        // Queue enqueue+dequeue pair (Algorithm 3).
        {
            let s = stm(alg);
            let q = queue::TQueue::new(&s, 64);
            g.bench_function(BenchmarkId::new("queue_pair", alg.name()), |b| {
                b.iter(|| {
                    s.atomic(|tx| q.enqueue(tx, 1));
                    s.atomic(|tx| q.dequeue(tx))
                })
            });
        }
    }
    g.finish();
}

/// Validation-cost scaling: read-set size vs revalidation time, the
/// S-TL2 compare-set overhead called out in §4.2.
fn bench_validation_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("validation_scaling");
    g.sample_size(15);
    for n in [8usize, 64, 256] {
        for alg in [Algorithm::SNOrec, Algorithm::STl2] {
            let s = stm(alg);
            let arr = s.alloc_array(n, 1i64);
            let probe = s.alloc_cell(0i64);
            g.bench_function(BenchmarkId::new(format!("cmpset{n}"), alg.name()), |b| {
                b.iter(|| {
                    s.atomic(|tx| {
                        for i in 0..n {
                            let _ = tx.cmp(arr.offset(i), CmpOp::Gt, 0)?;
                        }
                        // A write forces commit-time validation work.
                        tx.write(probe, 1)?;
                        Ok(())
                    })
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_barriers,
    bench_workload_tx,
    bench_validation_scaling
);
criterion_main!(benches);
