//! Schema-validate the semlint SARIF export with the harness's JSON
//! reader: the report must be well-formed JSON and carry the SARIF
//! 2.1.0 run/driver/results structure GitHub code scanning consumes.

use semtm_bench::jsonin::{parse, JValue};
use semtm_ir::lint::{lint_function, RULES};
use semtm_ir::parser::parse_function_spanned;
use semtm_ir::sarif::sarif_report;

fn field<'a>(v: &'a JValue, key: &str) -> &'a JValue {
    v.get(key).unwrap_or_else(|| panic!("missing key {key}"))
}

#[test]
fn sarif_export_is_valid_json_with_resolvable_rules() {
    // Lint the seeded SL011 shape plus a clean builtin so the report
    // mixes a populated and an empty file entry.
    let seeded = "func f(1) {\nentry:\n  tminc r0, 1\n  ret\n}\n";
    let (f1, m1) = parse_function_spanned(seeded).unwrap();
    let (path, src) = semtm_ir::programs::sources()[0];
    let (f2, m2) = parse_function_spanned(src).unwrap();
    let files = vec![
        ("seeded.ir".to_string(), lint_function(&f1, Some(&m1))),
        (path.to_string(), lint_function(&f2, Some(&m2))),
    ];
    let report = sarif_report(&files);

    let json = parse(&report).expect("well-formed JSON");
    assert_eq!(field(&json, "version").as_str(), Some("2.1.0"));
    let runs = field(&json, "runs").as_arr().expect("runs array");
    assert_eq!(runs.len(), 1);
    let driver = field(field(&runs[0], "tool"), "driver");
    assert_eq!(field(driver, "name").as_str(), Some("semlint"));
    let rules = field(driver, "rules").as_arr().expect("rules array");
    assert_eq!(rules.len(), RULES.len(), "full catalogue exported");

    let results = field(&runs[0], "results").as_arr().expect("results array");
    assert!(!results.is_empty(), "the seeded file produced results");
    for r in results {
        // Every result's ruleId resolves through its ruleIndex.
        let id = field(r, "ruleId").as_str().expect("ruleId string");
        let idx = field(r, "ruleIndex").as_num().expect("ruleIndex number") as usize;
        assert_eq!(
            field(&rules[idx], "id").as_str(),
            Some(id),
            "ruleIndex points at the rule"
        );
        let level = field(r, "level").as_str().expect("level string");
        assert!(matches!(level, "error" | "warning" | "note"), "{level}");
        let locs = field(r, "locations").as_arr().expect("locations");
        let phys = field(&locs[0], "physicalLocation");
        let uri = field(field(phys, "artifactLocation"), "uri")
            .as_str()
            .expect("uri");
        assert!(files.iter().any(|(f, _)| f == uri), "{uri}");
        let region = field(phys, "region");
        assert!(field(region, "startLine").as_num().unwrap() >= 1.0);
    }
    let sl011 = results
        .iter()
        .find(|r| field(r, "ruleId").as_str() == Some("SL011"))
        .expect("seeded SL011 present");
    assert_eq!(field(sl011, "level").as_str(), Some("error"));
}
