//! Flight-recorder trace export and schema validation.
//!
//! `figures -- trace` runs a skewed Bank workload with the
//! [`TelemetryLevel::Spans`](semtm_core::TelemetryLevel::Spans) flight
//! recorder on, serializes the recorded spans as Chrome trace-event JSON
//! (`results/trace_bank.json`, loadable in Perfetto or
//! `chrome://tracing` as-is), and re-parses its own output through
//! [`crate::jsonin`] to enforce the schema: a non-empty `traceEvents`
//! array, valid `ph`/`ts`/`dur`/`tid` on every complete event, one
//! timeline track (and at least one complete span) per worker thread,
//! and `args.reason`/`args.addr` on every abort span.

use crate::jsonin::{parse, JValue};
use semtm_core::chrome::chrome_trace_json;
use semtm_core::{Algorithm, Stm, StmConfig, TelemetryLevel};
use semtm_workloads::bank;
use std::time::Duration;

/// What a validated trace contained (printed by the harness).
#[derive(Clone, Copy, Debug)]
pub struct TraceSummary {
    /// Distinct worker-thread tracks.
    pub threads: usize,
    /// Complete (`ph:"X"`) commit spans.
    pub commit_spans: usize,
    /// Complete abort spans.
    pub abort_spans: usize,
    /// Abort spans whose conflict was attributed to a concrete address.
    pub attributed_aborts: usize,
}

/// Run the skewed Bank under the flight recorder and return the Chrome
/// trace JSON plus the worker-thread count it must validate against.
/// The skew concentrates conflicts so the timeline reliably contains
/// abort spans with attributed addresses.
pub fn record_bank_trace(
    algorithm: Algorithm,
    threads: usize,
    duration: Duration,
    seed: u64,
) -> (String, Vec<(u64, u64)>) {
    let cfg = bank::BankConfig {
        accounts: 64,
        skew_accounts: 4,
        ..bank::BankConfig::default()
    };
    let stm = Stm::new(
        StmConfig::new(algorithm)
            .heap_words(1 << 12)
            .orec_count(1 << 10)
            .telemetry(TelemetryLevel::Spans),
    );
    bank::run(&stm, cfg, threads, duration, seed);
    let spans = stm.telemetry().span_events();
    let hot = stm
        .telemetry()
        .hot_addresses()
        .into_iter()
        .map(|(a, n)| (a.index() as u64, n))
        .collect();
    (chrome_trace_json(algorithm, &spans), hot)
}

fn field<'a>(e: &'a JValue, key: &str, ctx: &str) -> Result<&'a JValue, String> {
    e.get(key)
        .ok_or_else(|| format!("{ctx}: missing \"{key}\""))
}

fn num(e: &JValue, key: &str, ctx: &str) -> Result<f64, String> {
    field(e, key, ctx)?
        .as_num()
        .ok_or_else(|| format!("{ctx}: \"{key}\" is not a number"))
}

/// Schema-validate a Chrome trace-event document produced by
/// [`chrome_trace_json`], requiring at least one complete span on each
/// of `worker_threads` distinct thread tracks. Returns a summary of
/// what the trace contained.
pub fn validate_chrome_trace(json: &str, worker_threads: usize) -> Result<TraceSummary, String> {
    let doc = parse(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = field(&doc, "traceEvents", "document")?
        .as_arr()
        .ok_or("\"traceEvents\" is not an array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".to_string());
    }

    let mut named_tracks = std::collections::BTreeSet::new();
    let mut span_tracks = std::collections::BTreeSet::new();
    let mut commit_spans = 0usize;
    let mut abort_spans = 0usize;
    let mut attributed = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ctx = format!("event {i}");
        let ph = field(e, "ph", &ctx)?
            .as_str()
            .ok_or_else(|| format!("{ctx}: \"ph\" is not a string"))?;
        match ph {
            "M" => {
                let name = field(e, "name", &ctx)?.as_str().unwrap_or_default();
                if name == "thread_name" {
                    named_tracks.insert(num(e, "tid", &ctx)? as u64);
                }
            }
            "X" => {
                let ts = num(e, "ts", &ctx)?;
                let dur = num(e, "dur", &ctx)?;
                if !(ts >= 0.0 && dur > 0.0) {
                    return Err(format!("{ctx}: bad ts/dur ({ts}/{dur})"));
                }
                let tid = num(e, "tid", &ctx)? as u64;
                span_tracks.insert(tid);
                let name = field(e, "name", &ctx)?
                    .as_str()
                    .ok_or_else(|| format!("{ctx}: \"name\" is not a string"))?;
                let args = field(e, "args", &ctx)?;
                num(args, "attempt", &ctx)?;
                num(args, "read_set", &ctx)?;
                num(args, "write_set", &ctx)?;
                if let Some(reason) = name.strip_prefix("abort:") {
                    abort_spans += 1;
                    let recorded = field(args, "reason", &ctx)?
                        .as_str()
                        .ok_or_else(|| format!("{ctx}: abort \"reason\" is not a string"))?;
                    if recorded != reason {
                        return Err(format!(
                            "{ctx}: name says {reason:?} but args.reason is {recorded:?}"
                        ));
                    }
                    // Always present; -1 is the "unknown" sentinel.
                    if num(args, "addr", &ctx)? >= 0.0 {
                        attributed += 1;
                    }
                    num(args, "orec", &ctx)?;
                    num(args, "by", &ctx)?;
                } else if name == "commit" {
                    commit_spans += 1;
                } else {
                    return Err(format!("{ctx}: unexpected span name {name:?}"));
                }
            }
            other => return Err(format!("{ctx}: unexpected ph {other:?}")),
        }
    }

    if span_tracks.len() < worker_threads {
        return Err(format!(
            "only {} thread tracks carry spans, expected at least {worker_threads}",
            span_tracks.len()
        ));
    }
    for tid in &span_tracks {
        if !named_tracks.contains(tid) {
            return Err(format!("track {tid} has spans but no thread_name record"));
        }
    }
    if commit_spans < worker_threads {
        return Err(format!(
            "{commit_spans} commit spans for {worker_threads} workers: \
             every worker must complete at least one transaction"
        ));
    }
    Ok(TraceSummary {
        threads: span_tracks.len(),
        commit_spans,
        abort_spans,
        attributed_aborts: attributed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorded_bank_trace_passes_schema_validation() {
        let threads = 4;
        let (json, hot) = record_bank_trace(
            Algorithm::SNOrec,
            threads,
            Duration::from_millis(120),
            0xB0C4,
        );
        let summary = validate_chrome_trace(&json, threads).expect("schema");
        assert!(summary.threads >= threads);
        assert!(summary.commit_spans >= threads);
        assert!(
            summary.abort_spans > 0,
            "the skewed bank must produce abort spans"
        );
        assert!(
            summary.attributed_aborts > 0,
            "validation aborts must carry a guilty address"
        );
        assert!(!hot.is_empty(), "hot-address sketch must be populated");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_chrome_trace("not json", 1).is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}", 1).is_err());
        // A lone metadata record has no span tracks.
        let md = "{\"traceEvents\":[{\"ph\":\"M\",\"pid\":1,\"tid\":0,\
                   \"name\":\"process_name\",\"args\":{\"name\":\"x\"}}]}";
        assert!(validate_chrome_trace(md, 1).is_err());
        // A span with a negative duration must be rejected.
        let bad = "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1,\"tid\":1,\
                    \"ts\":1.0,\"dur\":-2.0,\"name\":\"commit\",\"cat\":\"tx\",\
                    \"cname\":\"good\",\"args\":{\"attempt\":1,\"read_set\":0,\
                    \"write_set\":0,\"compare_set\":0}}]}";
        assert!(validate_chrome_trace(bad, 1).is_err());
    }

    #[test]
    fn validator_accepts_the_chrome_serializer_output() {
        use semtm_core::telemetry::SpanEvent;
        let spans = [SpanEvent {
            thread: 3,
            start_ns: 500,
            end_ns: 2_500,
            validate_ns: None,
            lock_ns: None,
            writeback_ns: None,
            attempt: 1,
            read_set: 2,
            write_set: 1,
            compare_set: 0,
            abort: None,
        }];
        let json = chrome_trace_json(Algorithm::Tl2, &spans);
        let summary = validate_chrome_trace(&json, 1).expect("valid");
        assert_eq!(summary.commit_spans, 1);
        assert_eq!(summary.abort_spans, 0);
    }
}
