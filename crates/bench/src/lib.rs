//! # semtm-bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation (§7). Each
//! returns [`FigureRow`]s carrying both the paper's left-column metric
//! (throughput or execution time) and the right-column metric (abort
//! rate), so a single sweep regenerates both sub-figures.
//!
//! The `figures` binary (`cargo run --release -p semtm-bench --bin
//! figures -- all`) prints every experiment as a markdown table and
//! writes CSVs under `results/`; `cargo bench` runs reduced-scale
//! versions of the same sweeps plus Criterion latency benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dashboard;
pub mod experiments;
pub mod fig2;
pub mod jsonin;
pub mod report;
pub mod snapshot;
pub mod table3;
pub mod trace;

pub use experiments::{Scale, Sweep};
pub use report::{AlgorithmTelemetry, FigureRow, Json, OverheadRow, TelemetryReport};
pub use trace::{record_bank_trace, validate_chrome_trace, TraceSummary};
