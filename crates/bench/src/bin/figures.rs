//! The figure/table regeneration harness.
//!
//! ```text
//! cargo run --release -p semtm-bench --bin figures -- all
//! cargo run --release -p semtm-bench --bin figures -- fig1-hashtable fig2-vacation
//! cargo run --release -p semtm-bench --bin figures -- --smoke all
//! ```
//!
//! Prints each experiment as a markdown table (paper-style series) and a
//! semantic-vs-base speedup digest, and writes CSVs under `results/`.

use semtm_bench::experiments as exp;
use semtm_bench::report::{markdown_table, speedup_summary, write_csv, write_results_file};
use semtm_bench::{dashboard, fig2, snapshot, table3, trace, Scale, Sweep};
use semtm_core::Algorithm;
use semtm_workloads::stamp::labyrinth::Variant;
use std::time::Duration;

const EXPERIMENTS: &[&str] = &[
    "table3",
    "fig1-hashtable",
    "fig1-bank",
    "fig1-lru",
    "fig1-kmeans",
    "fig1-vacation",
    "fig1-labyrinth1",
    "fig1-labyrinth2",
    "fig1-yada",
    "fig2-hashtable",
    "fig2-vacation",
    "ablation-stl2",
    "ablation-snorec",
    "ablation-cm",
    "ablation-ring",
    "ablation-layout",
    "ablation-durability",
    "ablation-adaptive",
    "bench-snapshot",
    "contention",
    "telemetry",
    "trace",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if selected.is_empty() {
        eprintln!(
            "usage: figures [--smoke] all | dash | {}",
            EXPERIMENTS.join(" | ")
        );
        std::process::exit(2);
    }
    let run_all = selected.contains(&"all");
    let scale = if smoke { Scale::Smoke } else { Scale::Paper };
    let sweep = Sweep::new(scale);
    let pick = |name: &str| run_all || selected.contains(&name);

    println!(
        "# semtm figure harness (scale: {scale:?}, threads: {:?})",
        sweep.threads
    );

    if pick("table3") {
        let rows = table3::table3(smoke);
        println!("{}", table3::markdown(&rows));
        std::fs::create_dir_all("results").ok();
        std::fs::write("results/table3.csv", table3::csv(&rows)).expect("write table3");
        println!("wrote results/table3.csv");
    }

    let emit =
        |name: &str, title: &str, rows: Vec<semtm_bench::FigureRow>, pairs: &[(&str, &str)]| {
            println!("{}", markdown_table(title, &rows));
            for (base, sem) in pairs {
                print!("{}", speedup_summary(&rows, base, sem));
            }
            match write_csv(name, &rows) {
                Ok(p) => println!("wrote {}", p.display()),
                Err(e) => eprintln!("csv write failed: {e}"),
            }
        };

    let stm_pairs: &[(&str, &str)] = &[("NOrec", "S-NOrec"), ("TL2", "S-TL2")];

    if pick("fig1-hashtable") {
        emit(
            "fig1_hashtable",
            "Figures 1a/1b — Hashtable (throughput kTx/s, abort %)",
            exp::fig1_hashtable(&sweep),
            stm_pairs,
        );
    }
    if pick("fig1-bank") {
        emit(
            "fig1_bank",
            "Figures 1c/1d — Bank",
            exp::fig1_bank(&sweep),
            stm_pairs,
        );
    }
    if pick("fig1-lru") {
        emit(
            "fig1_lru",
            "Figures 1e/1f — LRU Cache",
            exp::fig1_lru(&sweep),
            stm_pairs,
        );
    }
    if pick("fig1-kmeans") {
        emit(
            "fig1_kmeans",
            "Figures 1g/1h — Kmeans (execution time s, abort %)",
            exp::fig1_kmeans(&sweep),
            stm_pairs,
        );
    }
    if pick("fig1-vacation") {
        emit(
            "fig1_vacation",
            "Figures 1i/1j — Vacation",
            exp::fig1_vacation(&sweep),
            stm_pairs,
        );
    }
    if pick("fig1-labyrinth1") {
        emit(
            "fig1_labyrinth1",
            "Figures 1k/1l — Labyrinth 1 (copy inside tx)",
            exp::fig1_labyrinth(&sweep, Variant::CopyInsideTx),
            stm_pairs,
        );
    }
    if pick("fig1-labyrinth2") {
        emit(
            "fig1_labyrinth2",
            "Figures 1m/1n — Labyrinth 2 (copy outside tx, Ruan et al.)",
            exp::fig1_labyrinth(&sweep, Variant::CopyOutsideTx),
            stm_pairs,
        );
    }
    if pick("fig1-yada") {
        emit(
            "fig1_yada",
            "Figures 1o/1p — Yada",
            exp::fig1_yada(&sweep),
            stm_pairs,
        );
    }
    let gcc_pairs: &[(&str, &str)] = &[("NOrec", "NOrec Modified-GCC"), ("NOrec", "S-NOrec")];
    if pick("fig2-hashtable") {
        let (cap, dur) = if smoke {
            (7, Duration::from_millis(80))
        } else {
            (10, Duration::from_millis(400))
        };
        emit(
            "fig2_hashtable",
            "Figures 2a/2b — Hashtable via modified-GCC path",
            fig2::fig2_hashtable(&sweep.threads, dur, cap, sweep.seed),
            gcc_pairs,
        );
    }
    if pick("fig2-vacation") {
        let (offers, res) = if smoke { (32, 400) } else { (128, 3000) };
        emit(
            "fig2_vacation",
            "Figures 2c/2d — Vacation kernel via modified-GCC path",
            fig2::fig2_vacation(&sweep.threads, offers, res, sweep.seed),
            gcc_pairs,
        );
    }
    if pick("contention") {
        emit(
            "contention_hashtable",
            "Supplementary C1 — hot hashtable (90% occupancy, 2x threads)",
            exp::contention_sweep(&sweep),
            stm_pairs,
        );
    }
    if pick("ablation-stl2") {
        emit(
            "ablation_stl2",
            "Ablation A1 — S-TL2 snapshot extension on/off (LRU)",
            exp::ablation_stl2_extension(&sweep),
            &[("S-TL2/no-extension", "S-TL2")],
        );
    }
    if pick("ablation-cm") {
        emit(
            "ablation_cm",
            "Ablation A3 — contention-manager policies (Bank, S-NOrec)",
            exp::ablation_cm_policy(&sweep),
            &[],
        );
    }
    if pick("ablation-ring") {
        emit(
            "ablation_ring",
            "Ablation A4 — RingSTM commit filters on/off (LRU, S-NOrec)",
            exp::ablation_ring_filters(&sweep),
            &[("S-NOrec", "S-NOrec/ring-filters")],
        );
    }
    if pick("ablation-layout") {
        emit(
            "ablation_layout",
            "Ablation A5 — memory layout x commit clock (Bank + Hashtable, S-NOrec)",
            exp::ablation_layout_clock(&sweep),
            &[("S-NOrec/global+flat", "S-NOrec/sharded+padded")],
        );
    }
    if pick("ablation-durability") {
        emit(
            "ablation_durability",
            "Ablation A6 — durability cost: no-wal vs sync vs group commit (Bank, S-NOrec)",
            exp::ablation_durability(&sweep),
            &[("S-NOrec/no-wal", "S-NOrec/wal-group")],
        );
    }
    if pick("ablation-adaptive") {
        emit(
            "ablation_adaptive",
            "Ablation A7 — adaptive engine switching across phase shifts \
             (Bank -> hot Hashtable -> Scan)",
            exp::ablation_adaptive(&sweep),
            &[
                ("S-NOrec", "adaptive"),
                ("S-NOrec/sharded", "adaptive"),
                ("S-TL2", "adaptive"),
            ],
        );
    }
    if pick("bench-snapshot") {
        let snap = snapshot::collect(&sweep);
        print!("{}", snapshot::markdown(&snap));
        let json = snap.to_json().render();
        if let Err(e) = snapshot::validate(&json) {
            eprintln!("bench snapshot failed schema validation: {e}");
            std::process::exit(1);
        }
        match write_results_file("BENCH_10.json", &json) {
            Ok(p) => println!("wrote {} (schema {})", p.display(), snapshot::SCHEMA),
            Err(e) => eprintln!("snapshot write failed: {e}"),
        }
    }
    if pick("telemetry") {
        let report = exp::telemetry_bank(&sweep);
        println!(
            "\n### Telemetry — Bank deep-dive ({} threads)\n",
            report.threads
        );
        println!("| algorithm | ktps | abort % | p50 ns | p90 ns | p99 ns | attempts p99 | wasted work |");
        println!("|---|---:|---:|---:|---:|---:|---:|---:|");
        for a in &report.algorithms {
            println!(
                "| {} | {:.1} | {:.1} | {} | {} | {} | {} | {:.3} |",
                a.algorithm,
                a.throughput_ktps,
                a.stats.abort_pct(),
                a.commit_latency_ns.p50(),
                a.commit_latency_ns.p90(),
                a.commit_latency_ns.p99(),
                a.attempts_per_commit.p99(),
                a.stats.wasted_work_ratio(),
            );
        }
        match write_results_file("telemetry_bank.json", &report.to_json().render()) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("json write failed: {e}"),
        }
        match write_results_file("telemetry_bank_series.csv", &report.series_csv()) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
    }
    if pick("trace") {
        let (threads, dur) = if smoke {
            (2, Duration::from_millis(120))
        } else {
            (4, Duration::from_millis(400))
        };
        let (json, hot) = trace::record_bank_trace(Algorithm::SNOrec, threads, dur, sweep.seed);
        match trace::validate_chrome_trace(&json, threads) {
            Ok(summary) => {
                println!(
                    "\n### Flight recorder — skewed Bank, S-NOrec, {threads} threads\n\n\
                     {} thread tracks, {} commit spans, {} abort spans \
                     ({} attributed to a heap address)",
                    summary.threads,
                    summary.commit_spans,
                    summary.abort_spans,
                    summary.attributed_aborts
                );
                println!("hottest addresses (count-min estimate):");
                for (addr, n) in hot.iter().take(5) {
                    println!("  addr {addr:>8}  ~{n} conflicts");
                }
            }
            Err(e) => {
                eprintln!("trace schema validation failed: {e}");
                std::process::exit(1);
            }
        }
        match write_results_file("trace_bank.json", &json) {
            Ok(p) => println!(
                "wrote {} (load in Perfetto / chrome://tracing)",
                p.display()
            ),
            Err(e) => eprintln!("trace write failed: {e}"),
        }
    }
    // Interactive: repaints the terminal, so only on explicit request
    // (never part of "all").
    if selected.contains(&"dash") {
        let (threads, dur) = if smoke {
            (2, Duration::from_millis(600))
        } else {
            (4, Duration::from_secs(5))
        };
        let last = dashboard::run_bank_dashboard(
            Algorithm::SNOrec,
            threads,
            dur,
            Duration::from_millis(100),
            sweep.seed,
        );
        println!(
            "final: {:.0} tx/s, {:.1}% aborts, {} spans retained",
            last.throughput_tps, last.abort_pct, last.spans
        );
    }
    if pick("ablation-snorec") {
        emit(
            "ablation_snorec",
            "Ablation A2 — S-NOrec read-set duplicates vs dedup (Hashtable)",
            exp::ablation_snorec_dedup(&sweep),
            &[("S-NOrec/dedup", "S-NOrec")],
        );
    }
    println!("\ndone.");
}
