//! Figure-1 experiments: the RSTM-style (hand-annotated API) evaluation
//! of §7.1 — micro-benchmarks and STAMP applications under NOrec,
//! S-NOrec, TL2 and S-TL2.

use crate::report::{AlgorithmTelemetry, FigureRow, OverheadRow, TelemetryReport};
use semtm_core::{AdaptPolicy, Algorithm, CmPolicy, Stm, StmConfig, TelemetryLevel};
use semtm_workloads::driver::{run_for_duration, RunResult};
use semtm_workloads::stamp::{kmeans, labyrinth, vacation, yada};
use semtm_workloads::{bank, hashtable, lru, scan};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Experiment scale.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny runs for `cargo bench` / CI smoke.
    Smoke,
    /// The scale used for EXPERIMENTS.md numbers.
    Paper,
}

/// Sweep parameters shared by every figure.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Thread counts to sweep (the paper's x-axis).
    pub threads: Vec<usize>,
    /// Interval per duration-based (throughput) measurement.
    pub duration: Duration,
    /// Scale selector for fixed-work sizes.
    pub scale: Scale,
    /// Base RNG seed.
    pub seed: u64,
}

impl Sweep {
    /// The scale's default sweep. The paper sweeps 2–24 threads on a
    /// 24-core machine; on small hosts the interesting signal (semantic
    /// abort avoidance) already shows at low counts, so default to
    /// 1–8 threads.
    pub fn new(scale: Scale) -> Sweep {
        match scale {
            Scale::Smoke => Sweep {
                threads: vec![1, 2, 4],
                duration: Duration::from_millis(80),
                scale,
                seed: 42,
            },
            Scale::Paper => Sweep {
                threads: vec![1, 2, 4, 8],
                duration: Duration::from_millis(400),
                scale,
                seed: 42,
            },
        }
    }

    pub(crate) fn pick<T>(&self, smoke: T, paper: T) -> T {
        match self.scale {
            Scale::Smoke => smoke,
            Scale::Paper => paper,
        }
    }
}

fn stm_for(alg: Algorithm, heap_words: usize) -> Stm {
    Stm::new(
        StmConfig::new(alg)
            .heap_words(heap_words)
            .orec_count(1 << 14),
    )
}

fn row(
    figure: &'static str,
    benchmark: &'static str,
    alg: Algorithm,
    metric: &'static str,
    value: f64,
    r: &RunResult,
) -> FigureRow {
    FigureRow {
        figure,
        benchmark,
        algorithm: alg.name().to_string(),
        threads: r.threads,
        metric,
        value,
        abort_pct: r.abort_pct(),
        commits: r.stats.commits,
        aborts: r.stats.conflict_aborts(),
    }
}

/// Figures 1a/1b: Hashtable throughput and abort rate.
pub fn fig1_hashtable(sweep: &Sweep) -> Vec<FigureRow> {
    let cfg = hashtable::HashtableConfig {
        capacity: sweep.pick(1 << 9, 1 << 12),
        ..hashtable::HashtableConfig::default()
    };
    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        for &t in &sweep.threads {
            let stm = stm_for(alg, 1 << 16);
            let r = hashtable::run(&stm, cfg, t, sweep.duration, sweep.seed);
            rows.push(row(
                "1a/1b",
                "hashtable",
                alg,
                "throughput_ktps",
                r.throughput_ktps(),
                &r,
            ));
        }
    }
    rows
}

/// Figures 1c/1d: Bank throughput and abort rate.
pub fn fig1_bank(sweep: &Sweep) -> Vec<FigureRow> {
    let cfg = bank::BankConfig {
        accounts: sweep.pick(32, 64),
        ..bank::BankConfig::default()
    };
    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        for &t in &sweep.threads {
            let stm = stm_for(alg, 1 << 12);
            let r = bank::run(&stm, cfg, t, sweep.duration, sweep.seed);
            rows.push(row(
                "1c/1d",
                "bank",
                alg,
                "throughput_ktps",
                r.throughput_ktps(),
                &r,
            ));
        }
    }
    rows
}

/// Figures 1e/1f: LRU-cache throughput and abort rate.
pub fn fig1_lru(sweep: &Sweep) -> Vec<FigureRow> {
    let cfg = lru::LruConfig {
        lines: sweep.pick(64, 256),
        ..lru::LruConfig::default()
    };
    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        for &t in &sweep.threads {
            let stm = stm_for(alg, 1 << 16);
            let r = lru::run(&stm, cfg, t, sweep.duration, sweep.seed);
            rows.push(row(
                "1e/1f",
                "lru",
                alg,
                "throughput_ktps",
                r.throughput_ktps(),
                &r,
            ));
        }
    }
    rows
}

/// Figures 1g/1h: Kmeans execution time and abort rate.
pub fn fig1_kmeans(sweep: &Sweep) -> Vec<FigureRow> {
    let cfg = kmeans::KmeansConfig {
        points: sweep.pick(512, 2048),
        features: 16,
        clusters: 8,
        max_iterations: sweep.pick(3, 8),
        ..kmeans::KmeansConfig::default()
    };
    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        for &t in &sweep.threads {
            let stm = stm_for(alg, 1 << 14);
            let r = kmeans::run(&stm, cfg, t, sweep.seed);
            rows.push(row(
                "1g/1h",
                "kmeans",
                alg,
                "time_s",
                r.elapsed.as_secs_f64(),
                &r,
            ));
        }
    }
    rows
}

/// Figures 1i/1j: Vacation execution time and abort rate.
pub fn fig1_vacation(sweep: &Sweep) -> Vec<FigureRow> {
    let cfg = vacation::VacationConfig {
        relations: sweep.pick(64, 256),
        ..vacation::VacationConfig::default()
    };
    let sessions = sweep.pick(400, 4000) as u64;
    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        for &t in &sweep.threads {
            let stm = stm_for(alg, 1 << 22);
            let r = vacation::run(&stm, cfg, t, sessions, sweep.seed);
            rows.push(row(
                "1i/1j",
                "vacation",
                alg,
                "time_s",
                r.elapsed.as_secs_f64(),
                &r,
            ));
        }
    }
    rows
}

/// Figures 1k/1l ("Labyrinth 1") or 1m/1n ("Labyrinth 2").
pub fn fig1_labyrinth(sweep: &Sweep, variant: labyrinth::Variant) -> Vec<FigureRow> {
    let cfg = labyrinth::LabyrinthConfig {
        x: sweep.pick(16, 32),
        y: sweep.pick(16, 32),
        z: 3,
        pairs: sweep.pick(16, 48),
        wall_pct: 10,
        variant,
    };
    let (figure, benchmark): (&'static str, &'static str) = match variant {
        labyrinth::Variant::CopyInsideTx => ("1k/1l", "labyrinth1"),
        labyrinth::Variant::CopyOutsideTx => ("1m/1n", "labyrinth2"),
    };
    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        for &t in &sweep.threads {
            let stm = stm_for(alg, 1 << 14);
            let r = labyrinth::run(&stm, cfg, t, sweep.seed);
            rows.push(row(
                figure,
                benchmark,
                alg,
                "time_s",
                r.elapsed.as_secs_f64(),
                &r,
            ));
        }
    }
    rows
}

/// Figures 1o/1p: Yada execution time and abort rate.
pub fn fig1_yada(sweep: &Sweep) -> Vec<FigureRow> {
    let cfg = yada::YadaConfig {
        elements: sweep.pick(128, 512),
        ..yada::YadaConfig::default()
    };
    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        for &t in &sweep.threads {
            let stm = stm_for(alg, 1 << 22);
            let r = yada::run(&stm, cfg, t, sweep.seed);
            rows.push(row(
                "1o/1p",
                "yada",
                alg,
                "time_s",
                r.elapsed.as_secs_f64(),
                &r,
            ));
        }
    }
    rows
}

/// Ablation A1 (DESIGN.md): S-TL2 with and without the phase-1
/// snapshot-extension optimisation, on the LRU cache (whose mix of
/// plain reads and compares is what the optimisation targets).
pub fn ablation_stl2_extension(sweep: &Sweep) -> Vec<FigureRow> {
    let cfg = lru::LruConfig {
        lines: sweep.pick(64, 256),
        ..lru::LruConfig::default()
    };
    let mut rows = Vec::new();
    for (label, extension) in [("S-TL2", true), ("S-TL2/no-extension", false)] {
        for &t in &sweep.threads {
            let stm = Stm::new(
                StmConfig::new(Algorithm::STl2)
                    .heap_words(1 << 16)
                    .orec_count(1 << 14)
                    .stl2_snapshot_extension(extension),
            );
            let r = lru::run(&stm, cfg, t, sweep.duration, sweep.seed);
            rows.push(FigureRow {
                figure: "A1",
                benchmark: "lru",
                algorithm: label.to_string(),
                threads: r.threads,
                metric: "throughput_ktps",
                value: r.throughput_ktps(),
                abort_pct: r.abort_pct(),
                commits: r.stats.commits,
                aborts: r.stats.conflict_aborts(),
            });
        }
    }
    rows
}

/// Ablation A2 (DESIGN.md): S-NOrec with duplicate read-set entries
/// (paper default) vs deduplicated entries, on the hashtable.
pub fn ablation_snorec_dedup(sweep: &Sweep) -> Vec<FigureRow> {
    let cfg = hashtable::HashtableConfig {
        capacity: sweep.pick(1 << 9, 1 << 12),
        ..hashtable::HashtableConfig::default()
    };
    let mut rows = Vec::new();
    for (label, dedup) in [("S-NOrec", false), ("S-NOrec/dedup", true)] {
        for &t in &sweep.threads {
            let stm = Stm::new(
                StmConfig::new(Algorithm::SNOrec)
                    .heap_words(1 << 16)
                    .snorec_dedup_reads(dedup),
            );
            let r = hashtable::run(&stm, cfg, t, sweep.duration, sweep.seed);
            rows.push(FigureRow {
                figure: "A2",
                benchmark: "hashtable",
                algorithm: label.to_string(),
                threads: r.threads,
                metric: "throughput_ktps",
                value: r.throughput_ktps(),
                abort_pct: r.abort_pct(),
                commits: r.stats.commits,
                aborts: r.stats.conflict_aborts(),
            });
        }
    }
    rows
}

/// Supplementary experiment C1: a deliberately *hot* hashtable (tiny
/// table, long probe chains, many threads) to recover the paper's
/// high-contention regime on small hosts, where the recorded Figure-1
/// sweeps sit at low absolute abort rates. This is where the semantic
/// abort avoidance is meant to shine.
pub fn contention_sweep(sweep: &Sweep) -> Vec<FigureRow> {
    // On a timesliced host, a transaction only conflicts if a commit
    // lands *during* it — so contention scales with transaction length,
    // not with table smallness. 90% occupancy makes probe chains (and
    // hence transactions) very long.
    let cfg = hashtable::HashtableConfig {
        capacity: 1 << 10,
        fill_pct: 45,
        tombstone_pct: 45,
        ops_per_tx: 10,
        get_pct: 60, // heavy mutation
        key_space: 1 << 12,
        padded: false,
    };
    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        for &t in &sweep.threads {
            let stm = stm_for(alg, 1 << 14);
            let r = hashtable::run(&stm, cfg, t * 2, sweep.duration, sweep.seed);
            rows.push(FigureRow {
                figure: "C1",
                benchmark: "hashtable-hot",
                algorithm: alg.name().to_string(),
                threads: r.threads,
                metric: "throughput_ktps",
                value: r.throughput_ktps(),
                abort_pct: r.abort_pct(),
                commits: r.stats.commits,
                aborts: r.stats.conflict_aborts(),
            });
        }
    }
    rows
}

/// Ablation A4: RingSTM-style commit filters on/off for S-NOrec, on the
/// LRU cache (read-set-heavy, mostly-disjoint lines: the case filters
/// are built for).
pub fn ablation_ring_filters(sweep: &Sweep) -> Vec<FigureRow> {
    let cfg = lru::LruConfig {
        lines: sweep.pick(64, 256),
        ..lru::LruConfig::default()
    };
    let mut rows = Vec::new();
    for (label, ring) in [("S-NOrec", false), ("S-NOrec/ring-filters", true)] {
        for &t in &sweep.threads {
            let stm = Stm::new(
                StmConfig::new(Algorithm::SNOrec)
                    .heap_words(1 << 16)
                    .norec_ring_filters(ring),
            );
            let r = lru::run(&stm, cfg, t, sweep.duration, sweep.seed);
            rows.push(FigureRow {
                figure: "A4",
                benchmark: "lru",
                algorithm: label.to_string(),
                threads: r.threads,
                metric: "throughput_ktps",
                value: r.throughput_ktps(),
                abort_pct: r.abort_pct(),
                commits: r.stats.commits,
                aborts: r.stats.conflict_aborts(),
            });
        }
    }
    rows
}

/// Ablation A3: contention-manager policies under the high-conflict
/// Bank configuration (S-NOrec). Not a paper figure; quantifies how
/// much of the end-to-end numbers the retry pacing owns.
pub fn ablation_cm_policy(sweep: &Sweep) -> Vec<FigureRow> {
    let cfg = bank::BankConfig {
        accounts: 16,
        ..bank::BankConfig::default()
    };
    let mut rows = Vec::new();
    for policy in CmPolicy::ALL {
        for &t in &sweep.threads {
            let stm = Stm::new(
                StmConfig::new(Algorithm::SNOrec)
                    .heap_words(1 << 12)
                    .cm_policy(policy),
            );
            let r = bank::run(&stm, cfg, t, sweep.duration, sweep.seed);
            rows.push(FigureRow {
                figure: "A3",
                benchmark: "bank",
                algorithm: format!("S-NOrec/{}", policy.name()),
                threads: r.threads,
                metric: "throughput_ktps",
                value: r.throughput_ktps(),
                abort_pct: r.abort_pct(),
                commits: r.stats.commits,
                aborts: r.stats.conflict_aborts(),
            });
        }
    }
    rows
}

/// Ablation A5: memory layout × commit clock on S-NOrec, over Bank and
/// Hashtable — the four cells {global, 16-shard clock} × {flat
/// contiguous arrays, line-striped padded arrays}.
///
/// The headline cell is sharded+padded: striping puts each account/cell
/// on its own cache line and therefore its own clock shard, so a
/// committing writer bumps only the shards it wrote and concurrent
/// readers revalidate only the read-set entries on shards that moved,
/// instead of the whole read-set on every tick of one global sequence
/// lock. sharded+flat is the control showing that the clock alone can't
/// help while a contiguous layout collapses all traffic into shard 0;
/// global+padded isolates the layout's cache effect.
///
/// The two benchmarks sit on opposite sides of the trade: the hashtable
/// runs the contention_sweep regime (90% occupancy ⇒ long probe chains
/// ⇒ large compare-sets, heavy mutation ⇒ a busy clock), where the
/// sharded clock's partial revalidation wins; Bank's transactions write
/// ~20 scattered accounts but compare only ~10, so the per-shard
/// acquisition cost has almost no validation savings to pay for it —
/// the CSV records that cost honestly.
pub fn ablation_layout_clock(sweep: &Sweep) -> Vec<FigureRow> {
    const SHARDS: usize = 16;
    const LINE_WORDS: usize = semtm_core::heap::LINE_WORDS;
    let variants: [(&str, usize, bool); 4] = [
        ("global+flat", 1, false),
        ("global+padded", 1, true),
        ("sharded+flat", SHARDS, false),
        ("sharded+padded", SHARDS, true),
    ];
    let bank_cfg = bank::BankConfig {
        accounts: sweep.pick(32, 64),
        ..bank::BankConfig::default()
    };
    let ht_cap = sweep.pick(1 << 9, 1 << 10);
    let ht_cfg = hashtable::HashtableConfig {
        capacity: ht_cap,
        fill_pct: 45,
        tombstone_pct: 45,
        get_pct: 60,
        key_space: (ht_cap as u64) * 4,
        ..hashtable::HashtableConfig::default()
    };
    let mut rows = Vec::new();
    for (label, shards, padded) in variants {
        let stm_with = |heap_words: usize| {
            Stm::new(
                StmConfig::new(Algorithm::SNOrec)
                    .heap_words(heap_words)
                    .orec_count(1 << 14)
                    .clock_shards(shards),
            )
        };
        for &t in &sweep.threads {
            let stm = stm_with(bank_cfg.accounts * LINE_WORDS + 4 * LINE_WORDS);
            let cfg = bank::BankConfig { padded, ..bank_cfg };
            let r = bank::run(&stm, cfg, t, sweep.duration, sweep.seed);
            rows.push(FigureRow {
                figure: "A5",
                benchmark: "bank",
                algorithm: format!("S-NOrec/{label}"),
                threads: r.threads,
                metric: "throughput_ktps",
                value: r.throughput_ktps(),
                abort_pct: r.abort_pct(),
                commits: r.stats.commits,
                aborts: r.stats.conflict_aborts(),
            });
        }
        for &t in &sweep.threads {
            // Striping costs LINE_WORDS× per array; size the heap for
            // the padded cells so all four share one capacity.
            let stm = stm_with(ht_cap * LINE_WORDS * 2 + 4 * LINE_WORDS);
            let cfg = hashtable::HashtableConfig { padded, ..ht_cfg };
            let r = hashtable::run(&stm, cfg, t, sweep.duration, sweep.seed);
            rows.push(FigureRow {
                figure: "A5",
                benchmark: "hashtable",
                algorithm: format!("S-NOrec/{label}"),
                threads: r.threads,
                metric: "throughput_ktps",
                value: r.throughput_ktps(),
                abort_pct: r.abort_pct(),
                commits: r.stats.commits,
                aborts: r.stats.conflict_aborts(),
            });
        }
    }
    rows
}

/// Ablation A6 (DESIGN.md §9): what durability costs. Bank throughput
/// under three configurations of the same engine — no WAL at all,
/// WAL with a synchronous fsync per commit, and WAL with the
/// group-commit flusher — plus recovery-throughput rows measuring how
/// fast `replay` rebuilds a heap from the group-commit run's log.
///
/// The log lives in a real temp file (`FileStorage`), so the sync
/// variant pays genuine per-commit fsync latency and the group variant
/// shows what batch amortization buys back.
pub fn ablation_durability(sweep: &Sweep) -> Vec<FigureRow> {
    use semtm_core::wal::{read_records, replay, DurabilityMode, FileStorage};

    let bank_cfg = bank::BankConfig {
        accounts: sweep.pick(32, 64),
        ..bank::BankConfig::default()
    };
    let heap_words = bank_cfg.accounts + 4 * semtm_core::heap::LINE_WORDS;
    let base_cfg = || {
        StmConfig::new(Algorithm::SNOrec)
            .heap_words(heap_words)
            .orec_count(1 << 14)
    };
    let variants: [(&str, Option<DurabilityMode>); 3] = [
        ("no-wal", None),
        ("wal-sync", Some(DurabilityMode::Sync)),
        ("wal-group", Some(DurabilityMode::Group)),
    ];

    let mut rows = Vec::new();
    let mut group_log: Option<Vec<u8>> = None;
    for (label, mode) in variants {
        for &t in &sweep.threads {
            let path = std::env::temp_dir().join(format!(
                "semtm_ablation_durability_{}_{label}_{t}.wal",
                std::process::id()
            ));
            let stm = match mode {
                None => Stm::new(base_cfg()),
                Some(m) => {
                    let storage = FileStorage::create(&path).expect("create WAL temp file");
                    Stm::with_wal(base_cfg().durability(m), Box::new(storage))
                }
            };
            let r = bank::run(&stm, bank_cfg, t, sweep.duration, sweep.seed);
            // Keep the largest group-commit log for the recovery rows.
            if mode == Some(DurabilityMode::Group) && t == *sweep.threads.last().unwrap() {
                drop(stm); // join the flusher; final batch lands
                group_log = std::fs::read(&path).ok();
            }
            if mode.is_some() {
                let _ = std::fs::remove_file(&path);
            }
            rows.push(FigureRow {
                figure: "A6",
                benchmark: "bank",
                algorithm: format!("S-NOrec/{label}"),
                threads: r.threads,
                metric: "throughput_ktps",
                value: r.throughput_ktps(),
                abort_pct: r.abort_pct(),
                commits: r.stats.commits,
                aborts: r.stats.conflict_aborts(),
            });
        }
    }

    // Recovery throughput: replay the group-commit run's full log into a
    // fresh heap and report records/s and MB/s.
    let bytes = group_log.expect("group-commit run produced a log");
    let (records, _, _) = read_records(&bytes);
    let heap = semtm_core::Heap::new(heap_words);
    let start = std::time::Instant::now();
    let report = replay(&bytes, &heap);
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    for (metric, value) in [
        ("replay_krecs_per_s", report.records as f64 / secs / 1e3),
        ("replay_mb_per_s", bytes.len() as f64 / secs / 1e6),
    ] {
        rows.push(FigureRow {
            figure: "A6",
            benchmark: "bank",
            algorithm: "S-NOrec/recovery".to_string(),
            threads: 1,
            metric,
            value,
            abort_pct: 0.0,
            commits: records.len() as u64,
            aborts: 0,
        });
    }
    rows
}

/// The A7 ticker cadence and controller tuning: sampled fast enough to
/// react within a few percent of a phase, with two ticks of dwell so a
/// single noisy window can't thrash the engine.
fn a7_policy(sweep: &Sweep) -> AdaptPolicy {
    AdaptPolicy {
        // Low enough that even the hot hashtable phase (a few thousand
        // commits per second) yields a decidable window per tick.
        min_commits: sweep.pick(8, 16),
        dwell_ticks: 2,
        ..AdaptPolicy::default()
    }
}

/// Ablation A7 (DESIGN.md §10): telemetry-driven adaptive engine
/// switching under a phase-shifting workload. One process runs three
/// back-to-back phases on the *same* transactional heap —
///
/// 1. **Bank** — small read/compare-sets, ~20-entry write-sets: the
///    global-clock S-NOrec regime (A5 showed the sharded clock's
///    commit tax has nothing to amortise against here);
/// 2. **hot Hashtable** — the contention_sweep regime (90% occupancy,
///    long probe chains, heavy mutation): large compare-sets and a busy
///    clock, where partial revalidation or per-orec validation wins;
/// 3. **Scan** — 64-cell read windows with a 1–2 word write-set: a
///    global clock forces whole-window revalidation on every commit,
///    the sharded clock localises it to the shards that moved.
///
/// Each fixed engine (global S-NOrec, sharded S-NOrec, S-TL2) runs the
/// gauntlet pinned; the `adaptive` runtime starts wherever
/// [`semtm_core::Mode::initial`] puts it and lets [`Stm::adapt_tick`] —
/// driven by a
/// harness ticker thread, exactly as an embedding application would —
/// re-pick the engine from live telemetry as the phases shift. Rows
/// report per-phase and whole-gauntlet throughput, plus the adaptive
/// run's switch count and mean hot-swap latency.
pub fn ablation_adaptive(sweep: &Sweep) -> Vec<FigureRow> {
    const SHARDS: usize = 16;
    let threads = sweep.threads.iter().copied().max().unwrap_or(1);
    let tick = sweep.pick(Duration::from_millis(2), Duration::from_millis(8));
    let bank_cfg = bank::BankConfig {
        accounts: sweep.pick(32, 64),
        padded: true,
        ..bank::BankConfig::default()
    };
    let ht_cap = sweep.pick(1 << 9, 1 << 10);
    let ht_cfg = hashtable::HashtableConfig {
        capacity: ht_cap,
        fill_pct: 45,
        tombstone_pct: 45,
        ops_per_tx: 10,
        get_pct: 60,
        key_space: (ht_cap as u64) * 4,
        padded: true,
    };
    let scan_cfg = scan::ScanConfig {
        cells: sweep.pick(128, 256),
        reads_per_tx: sweep.pick(32, 64),
        padded: true,
        ..scan::ScanConfig::default()
    };

    let engines: [(&str, usize, Option<AdaptPolicy>); 4] = [
        ("S-NOrec", 1, None),
        ("S-NOrec/sharded", SHARDS, None),
        ("S-TL2", 1, None),
        ("adaptive", SHARDS, Some(a7_policy(sweep))),
    ];

    let mut rows = Vec::new();
    for (label, shards, policy) in engines {
        let alg = if label == "S-TL2" {
            Algorithm::STl2
        } else {
            Algorithm::SNOrec
        };
        let mut cfg = StmConfig::new(alg)
            .heap_words(1 << 16)
            .orec_count(1 << 14)
            .clock_shards(shards);
        if let Some(p) = policy {
            cfg = cfg.adaptive(p);
        }
        let stm = Stm::new(cfg);
        let bank_state = bank::Bank::new(&stm, bank_cfg);
        let table = hashtable::Hashtable::new(&stm, ht_cfg);
        let scan_state = scan::Scan::new(&stm, scan_cfg);
        let incs = AtomicU64::new(0);
        let stop = AtomicBool::new(false);

        let mut phases: Vec<(&'static str, RunResult)> = Vec::new();
        let mut switch_reports = Vec::new();
        std::thread::scope(|s| {
            // The embedding application's control loop: poll the
            // controller at a fixed cadence for the whole gauntlet.
            let ticker = policy.map(|_| {
                s.spawn(|| {
                    let mut reports = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        if let Some(r) = stm.adapt_tick() {
                            reports.push(r);
                        }
                        std::thread::sleep(tick);
                    }
                    reports
                })
            });
            let stm = &stm;
            phases.push((
                "bank",
                run_for_duration(stm, threads, sweep.duration, sweep.seed, |_tid, rng| {
                    bank_state.transfer_tx(stm, rng);
                }),
            ));
            phases.push((
                "hashtable-hot",
                run_for_duration(stm, threads, sweep.duration, sweep.seed, |_tid, rng| {
                    table.workload_tx(stm, rng);
                }),
            ));
            phases.push((
                "scan",
                run_for_duration(stm, threads, sweep.duration, sweep.seed, |_tid, rng| {
                    incs.fetch_add(scan_state.scan_tx(stm, rng), Ordering::Relaxed);
                }),
            ));
            stop.store(true, Ordering::Relaxed);
            if let Some(h) = ticker {
                switch_reports = h.join().expect("ticker thread panicked");
            }
        });
        // Every phase's invariants must hold across however many
        // hot-swaps happened mid-run.
        bank_state.verify(&stm).expect("bank invariants violated");
        table.verify(&stm).expect("hashtable integrity violated");
        scan_state
            .verify(&stm, incs.load(Ordering::Relaxed))
            .expect("scan invariants violated");

        let mut total_ops = 0u64;
        let mut total_secs = 0.0f64;
        let mut commits = 0u64;
        let mut aborts = 0u64;
        let mut attempts = 0u64;
        for (phase, r) in &phases {
            total_ops += r.total_ops;
            total_secs += r.elapsed.as_secs_f64();
            commits += r.stats.commits;
            aborts += r.stats.conflict_aborts();
            attempts += r.stats.attempts();
            rows.push(FigureRow {
                figure: "A7",
                benchmark: phase,
                algorithm: label.to_string(),
                threads,
                metric: "throughput_ktps",
                value: r.throughput_ktps(),
                abort_pct: r.abort_pct(),
                commits: r.stats.commits,
                aborts: r.stats.conflict_aborts(),
            });
        }
        rows.push(FigureRow {
            figure: "A7",
            benchmark: "full",
            algorithm: label.to_string(),
            threads,
            metric: "throughput_ktps",
            value: total_ops as f64 / total_secs.max(1e-9) / 1000.0,
            abort_pct: 100.0 * aborts as f64 / attempts.max(1) as f64,
            commits,
            aborts,
        });
        if policy.is_some() {
            let mean_us = if switch_reports.is_empty() {
                0.0
            } else {
                switch_reports
                    .iter()
                    .map(|r| r.elapsed.as_secs_f64() * 1e6)
                    .sum::<f64>()
                    / switch_reports.len() as f64
            };
            for (metric, value) in [
                ("switches", switch_reports.len() as f64),
                ("switch_mean_us", mean_us),
            ] {
                rows.push(FigureRow {
                    figure: "A7",
                    benchmark: "full",
                    algorithm: label.to_string(),
                    threads,
                    metric,
                    value,
                    abort_pct: 0.0,
                    commits: stm.switch_count(),
                    aborts: 0,
                });
            }
        }
    }
    rows
}

/// Telemetry deep-dive on the Bank workload: one fully-instrumented run
/// per algorithm at the sweep's highest thread count, with the
/// [`TelemetryLevel::Spans`] flight recorder enabled. Produces the JSON
/// report of EXPERIMENTS.md §Telemetry — commit-latency quantiles,
/// attempts-per-commit histogram, abort-reason breakdown, attributed
/// abort-event trace, hot-address ranking, who-aborted-whom edges, a
/// throughput/abort-rate time series, and a Counters-vs-Spans overhead
/// ablation demonstrating that the default level stays zero-cost.
pub fn telemetry_bank(sweep: &Sweep) -> TelemetryReport {
    let cfg = bank::BankConfig {
        accounts: sweep.pick(32, 64),
        ..bank::BankConfig::default()
    };
    let threads = sweep.threads.iter().copied().max().unwrap_or(1);
    // Sample ~20 points across the interval, but never finer than 5 ms.
    let sample_every = (sweep.duration / 20).max(Duration::from_millis(5));
    let mut algorithms = Vec::new();
    for alg in Algorithm::ALL {
        let stm = Stm::new(
            StmConfig::new(alg)
                .heap_words(1 << 12)
                .orec_count(1 << 14)
                .telemetry(TelemetryLevel::Spans)
                .trace_capacity(sweep.pick(64, 256)),
        );
        let (r, series) =
            bank::run_sampled(&stm, cfg, threads, sweep.duration, sample_every, sweep.seed);
        let t = stm.telemetry();
        algorithms.push(AlgorithmTelemetry {
            algorithm: alg.name().to_string(),
            throughput_ktps: r.throughput_ktps(),
            stats: r.stats,
            commit_latency_ns: t.commit_latency_ns(),
            attempts_per_commit: t.attempts_per_commit(),
            commit_read_set: t.commit_read_set(),
            commit_compare_set: t.commit_compare_set(),
            backoff_spins: t.backoff_spins(),
            trace: t.trace_events(),
            trace_evicted: t.trace_evicted(),
            series,
            hot_addresses: t
                .hot_addresses()
                .into_iter()
                .map(|(a, n)| (a.index() as u64, n))
                .collect(),
            conflict_edges: t.conflict_edges(),
        });
    }
    // Overhead ablation: the same S-NOrec run at Counters vs Spans. The
    // Counters hot path is required to be untouched by the flight
    // recorder; this pair of rows is the evidence.
    let mut overhead = Vec::new();
    for level in [TelemetryLevel::Counters, TelemetryLevel::Spans] {
        let stm = Stm::new(
            StmConfig::new(Algorithm::SNOrec)
                .heap_words(1 << 12)
                .telemetry(level)
                .trace_capacity(sweep.pick(64, 256)),
        );
        let r = bank::run(&stm, cfg, threads, sweep.duration, sweep.seed);
        overhead.push(OverheadRow {
            level: level.name().to_string(),
            throughput_ktps: r.throughput_ktps(),
            commits: r.stats.commits,
        });
    }
    // Third row: the adaptive controller attached and ticking over a
    // stable workload. On steady Bank the cost model keeps the current
    // engine (no switch ever fires), so any gap against the plain
    // Counters row is the whole price of adaptation-at-idle: a pull-based
    // rates() merge per tick on the ticker thread, nothing on the
    // transaction hot path.
    {
        let stm = Stm::new(
            StmConfig::new(Algorithm::SNOrec)
                .heap_words(1 << 12)
                .telemetry(TelemetryLevel::Counters)
                .adaptive(AdaptPolicy::default()),
        );
        let stop = AtomicBool::new(false);
        let mut r = None;
        std::thread::scope(|s| {
            let ticker = s.spawn(|| {
                let mut switched = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if stm.adapt_tick().is_some() {
                        switched += 1;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                switched
            });
            r = Some(bank::run(&stm, cfg, threads, sweep.duration, sweep.seed));
            stop.store(true, Ordering::Relaxed);
            assert_eq!(
                ticker.join().expect("ticker thread panicked"),
                0,
                "steady Bank must not trigger a switch"
            );
        });
        let r = r.expect("bank run completed");
        overhead.push(OverheadRow {
            level: "counters+adaptive-idle".to_string(),
            throughput_ktps: r.throughput_ktps(),
            commits: r.stats.commits,
        });
    }
    TelemetryReport {
        benchmark: "bank".to_string(),
        threads,
        duration_secs: sweep.duration.as_secs_f64(),
        algorithms,
        overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Sweep {
        Sweep {
            threads: vec![2],
            duration: Duration::from_millis(30),
            scale: Scale::Smoke,
            seed: 1,
        }
    }

    #[test]
    fn fig1_hashtable_produces_all_series() {
        let rows = fig1_hashtable(&tiny());
        assert_eq!(rows.len(), 4, "one row per algorithm");
        for alg in Algorithm::ALL {
            assert!(rows.iter().any(|r| r.algorithm == alg.name()));
        }
        assert!(rows.iter().all(|r| r.commits > 0));
    }

    #[test]
    fn fig1_kmeans_reports_time() {
        let rows = fig1_kmeans(&tiny());
        assert_eq!(rows[0].metric, "time_s");
        assert!(rows.iter().all(|r| r.value > 0.0));
    }

    #[test]
    fn ablations_produce_paired_series() {
        let rows = ablation_stl2_extension(&tiny());
        assert_eq!(rows.len(), 2);
        assert_ne!(rows[0].algorithm, rows[1].algorithm);
    }

    #[test]
    fn contention_sweep_reaches_real_abort_rates() {
        let rows = contention_sweep(&tiny());
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.commits > 0));
    }

    #[test]
    fn cm_ablation_covers_all_policies() {
        let rows = ablation_cm_policy(&tiny());
        assert_eq!(rows.len(), CmPolicy::ALL.len());
        assert!(rows.iter().all(|r| r.commits > 0));
    }

    #[test]
    fn layout_clock_ablation_covers_all_cells() {
        let rows = ablation_layout_clock(&tiny());
        // 4 variants × 1 thread count × 2 benchmarks.
        assert_eq!(rows.len(), 8);
        for label in [
            "S-NOrec/global+flat",
            "S-NOrec/global+padded",
            "S-NOrec/sharded+flat",
            "S-NOrec/sharded+padded",
        ] {
            for bench in ["bank", "hashtable"] {
                assert!(
                    rows.iter()
                        .any(|r| r.algorithm == label && r.benchmark == bench && r.commits > 0),
                    "{label}/{bench} missing or empty"
                );
            }
        }
    }

    #[test]
    fn adaptive_ablation_covers_all_engines_and_phases() {
        let rows = ablation_adaptive(&tiny());
        for engine in ["S-NOrec", "S-NOrec/sharded", "S-TL2", "adaptive"] {
            for bench in ["bank", "hashtable-hot", "scan", "full"] {
                assert!(
                    rows.iter().any(|r| r.algorithm == engine
                        && r.benchmark == bench
                        && r.metric == "throughput_ktps"
                        && r.commits > 0),
                    "{engine}/{bench} missing or empty"
                );
            }
        }
        // The adaptive run reports its switch telemetry.
        assert!(rows
            .iter()
            .any(|r| r.algorithm == "adaptive" && r.metric == "switches"));
        assert!(rows
            .iter()
            .any(|r| r.algorithm == "adaptive" && r.metric == "switch_mean_us"));
    }

    #[test]
    fn telemetry_bank_report_is_complete_and_consistent() {
        let report = telemetry_bank(&tiny());
        assert_eq!(report.benchmark, "bank");
        assert_eq!(report.algorithms.len(), Algorithm::ALL.len());
        for a in &report.algorithms {
            assert!(a.stats.commits > 0, "{}", a.algorithm);
            // Every committed transaction has a latency and an attempts count.
            assert_eq!(
                a.commit_latency_ns.count(),
                a.stats.commits,
                "{}",
                a.algorithm
            );
            assert_eq!(
                a.attempts_per_commit.count(),
                a.stats.commits,
                "{}",
                a.algorithm
            );
            assert_eq!(
                a.attempts_per_commit.sum(),
                a.stats.attempts(),
                "{}: attempts histogram must account for every attempt",
                a.algorithm
            );
            // The time series sums to the run totals.
            let commits: u64 = a.series.iter().map(|p| p.commits).sum();
            assert_eq!(commits, a.stats.commits, "{}", a.algorithm);
            // Trace holds one event per (retained) abort.
            assert_eq!(
                a.trace.len() as u64 + a.trace_evicted,
                a.stats.total_aborts(),
                "{}",
                a.algorithm
            );
        }
        // The overhead ablation has the Counters/Spans pair plus the
        // adaptive-idle row.
        assert_eq!(report.overhead.len(), 3);
        assert_eq!(report.overhead[0].level, "counters");
        assert_eq!(report.overhead[1].level, "spans");
        assert_eq!(report.overhead[2].level, "counters+adaptive-idle");
        assert!(report.overhead.iter().all(|o| o.commits > 0));
        let json = report.to_json().render();
        assert!(json.contains("\"commit_latency_ns\""));
        assert!(json.contains("\"abort_breakdown\""));
        assert!(json.contains("\"telemetry_overhead\""));
        assert!(json.contains("\"hot_addresses\""));
    }
}
