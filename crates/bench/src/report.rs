//! Result rows and markdown/CSV/JSON emission.
//!
//! The JSON layer is hand-rolled: the workspace builds offline with no
//! registry dependencies, so there is no serde. [`Json`] is a tiny value
//! tree with an escaping pretty-printer — enough for the telemetry
//! report schema documented in EXPERIMENTS.md.

use semtm_core::{AbortEvent, ConflictEdge, HistogramSnapshot, SamplePoint, StatsSnapshot};

/// A JSON value for the hand-rolled writer.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (most counters).
    UInt(u64),
    /// Floating point; non-finite values serialize as `null`.
    Float(f64),
    /// String (escaped on output).
    Str(String),
    /// Ordered array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(&'static str, Json)>),
}

impl Json {
    /// Serialize with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest round-trippable form,
                    // but bare integers ("3") are still valid JSON numbers.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push('"');
                    out.push_str(k);
                    out.push_str("\": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Serialize a histogram snapshot: summary quantiles plus the non-empty
/// buckets as `(lower_bound, count)` pairs.
pub fn histogram_json(h: &HistogramSnapshot) -> Json {
    Json::Object(vec![
        ("count", Json::UInt(h.count())),
        ("sum", Json::UInt(h.sum())),
        ("min", Json::UInt(h.min())),
        ("max", Json::UInt(h.max())),
        ("mean", Json::Float(h.mean())),
        ("p50", Json::UInt(h.p50())),
        ("p90", Json::UInt(h.p90())),
        ("p99", Json::UInt(h.p99())),
        (
            "buckets",
            Json::Array(
                h.nonzero_buckets()
                    .map(|(lower, count)| {
                        Json::Object(vec![
                            ("lower_bound", Json::UInt(lower)),
                            ("count", Json::UInt(count)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn abort_breakdown_json(s: &StatsSnapshot) -> Json {
    Json::Object(vec![
        ("validation", Json::UInt(s.aborts_validation)),
        ("locked", Json::UInt(s.aborts_locked)),
        ("timeout", Json::UInt(s.aborts_timeout)),
        ("lock_acquire", Json::UInt(s.aborts_lock_acquire)),
        ("explicit", Json::UInt(s.aborts_explicit)),
    ])
}

fn sample_point_json(p: &SamplePoint) -> Json {
    Json::Object(vec![
        ("t_secs", Json::Float(p.t_secs)),
        ("dt_secs", Json::Float(p.dt_secs)),
        ("commits", Json::UInt(p.commits)),
        ("conflict_aborts", Json::UInt(p.conflict_aborts)),
        ("throughput_tps", Json::Float(p.throughput)),
        ("abort_pct", Json::Float(p.abort_pct)),
    ])
}

fn abort_event_json(e: &AbortEvent) -> Json {
    let opt = |v: Option<u64>| v.map_or(Json::Null, Json::UInt);
    Json::Object(vec![
        ("timestamp_ns", Json::UInt(e.timestamp_ns)),
        ("reason", Json::Str(e.reason.name().to_string())),
        ("attempt", Json::UInt(e.attempt as u64)),
        ("read_set", Json::UInt(e.read_set as u64)),
        ("compare_set", Json::UInt(e.compare_set as u64)),
        // Conflict attribution; null where the abort site could not name
        // the guilty address / orec / committer.
        ("addr", opt(e.conflict.addr().map(|a| a.index() as u64))),
        ("orec", opt(e.conflict.orec().map(u64::from))),
        ("by", opt(e.conflict.by())),
    ])
}

fn hot_address_json(addr: u64, conflicts: u64) -> Json {
    Json::Object(vec![
        ("addr", Json::UInt(addr)),
        ("conflicts", Json::UInt(conflicts)),
    ])
}

fn conflict_edge_json(e: &ConflictEdge) -> Json {
    Json::Object(vec![
        ("victim", Json::UInt(e.victim)),
        ("by", Json::UInt(e.by)),
        ("count", Json::UInt(e.count)),
    ])
}

/// Per-algorithm telemetry captured by one instrumented run.
#[derive(Clone, Debug)]
pub struct AlgorithmTelemetry {
    /// Algorithm legend name (`NOrec`, `S-NOrec`, ...).
    pub algorithm: String,
    /// Throughput over the measured interval, kTx/s.
    pub throughput_ktps: f64,
    /// Interval statistics delta.
    pub stats: StatsSnapshot,
    /// Commit latency (ns per successful `atomic` call).
    pub commit_latency_ns: HistogramSnapshot,
    /// Attempts needed per committed transaction.
    pub attempts_per_commit: HistogramSnapshot,
    /// Read-set size at commit.
    pub commit_read_set: HistogramSnapshot,
    /// Compare-set size at commit.
    pub commit_compare_set: HistogramSnapshot,
    /// Contention-manager backoff spins per abort.
    pub backoff_spins: HistogramSnapshot,
    /// Most recent abort events (bounded by the trace ring).
    pub trace: Vec<AbortEvent>,
    /// Abort events evicted from the trace ring.
    pub trace_evicted: u64,
    /// Throughput/abort-rate time series over the interval.
    pub series: Vec<SamplePoint>,
    /// Hottest conflict addresses `(heap index, estimated conflicts)`,
    /// ranked descending (flight-recorder sketch; empty below `Spans`).
    pub hot_addresses: Vec<(u64, u64)>,
    /// Who-aborted-whom conflict summary (empty below `Spans`).
    pub conflict_edges: Vec<ConflictEdge>,
}

/// One row of the flight-recorder overhead ablation: the same workload
/// run at a given telemetry level.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Telemetry level name (`counters`, `spans`, ...).
    pub level: String,
    /// Throughput at that level, kTx/s.
    pub throughput_ktps: f64,
    /// Commits in the measured interval.
    pub commits: u64,
}

/// A full telemetry report for one workload across algorithms.
#[derive(Clone, Debug)]
pub struct TelemetryReport {
    /// Workload name (e.g. `bank`).
    pub benchmark: String,
    /// Worker threads.
    pub threads: usize,
    /// Measured interval per algorithm, seconds.
    pub duration_secs: f64,
    /// One entry per algorithm.
    pub algorithms: Vec<AlgorithmTelemetry>,
    /// Flight-recorder overhead ablation: the same workload/algorithm at
    /// `Counters` vs `Spans` (empty when the ablation was not run).
    pub overhead: Vec<OverheadRow>,
}

impl TelemetryReport {
    /// Build the JSON tree for this report (schema in EXPERIMENTS.md).
    pub fn to_json(&self) -> Json {
        let algorithms = self
            .algorithms
            .iter()
            .map(|a| {
                let s = &a.stats;
                Json::Object(vec![
                    ("algorithm", Json::Str(a.algorithm.clone())),
                    ("throughput_ktps", Json::Float(a.throughput_ktps)),
                    ("commits", Json::UInt(s.commits)),
                    ("aborts", Json::UInt(s.total_aborts())),
                    ("attempts", Json::UInt(s.attempts())),
                    ("abort_pct", Json::Float(s.abort_pct())),
                    ("abort_breakdown", abort_breakdown_json(s)),
                    ("wasted_work_ratio", Json::Float(s.wasted_work_ratio())),
                    ("commit_latency_ns", histogram_json(&a.commit_latency_ns)),
                    (
                        "attempts_per_commit",
                        histogram_json(&a.attempts_per_commit),
                    ),
                    ("commit_read_set", histogram_json(&a.commit_read_set)),
                    ("commit_compare_set", histogram_json(&a.commit_compare_set)),
                    ("backoff_spins", histogram_json(&a.backoff_spins)),
                    ("trace_evicted", Json::UInt(a.trace_evicted)),
                    (
                        "trace",
                        Json::Array(a.trace.iter().map(abort_event_json).collect()),
                    ),
                    (
                        "hot_addresses",
                        Json::Array(
                            a.hot_addresses
                                .iter()
                                .map(|&(addr, n)| hot_address_json(addr, n))
                                .collect(),
                        ),
                    ),
                    (
                        "conflict_edges",
                        Json::Array(a.conflict_edges.iter().map(conflict_edge_json).collect()),
                    ),
                    (
                        "series",
                        Json::Array(a.series.iter().map(sample_point_json).collect()),
                    ),
                ])
            })
            .collect();
        let overhead = self
            .overhead
            .iter()
            .map(|o| {
                Json::Object(vec![
                    ("level", Json::Str(o.level.clone())),
                    ("throughput_ktps", Json::Float(o.throughput_ktps)),
                    ("commits", Json::UInt(o.commits)),
                ])
            })
            .collect();
        Json::Object(vec![
            ("benchmark", Json::Str(self.benchmark.clone())),
            ("threads", Json::UInt(self.threads as u64)),
            ("duration_secs", Json::Float(self.duration_secs)),
            ("algorithms", Json::Array(algorithms)),
            ("telemetry_overhead", Json::Array(overhead)),
        ])
    }

    /// CSV flattening of the time series: one line per (algorithm, sample).
    pub fn series_csv(&self) -> String {
        let mut out = String::from(
            "benchmark,algorithm,threads,t_secs,dt_secs,commits,conflict_aborts,throughput_tps,abort_pct\n",
        );
        for a in &self.algorithms {
            for p in &a.series {
                out.push_str(&format!(
                    "{},{},{},{:.4},{:.4},{},{},{:.1},{:.2}\n",
                    self.benchmark,
                    a.algorithm,
                    self.threads,
                    p.t_secs,
                    p.dt_secs,
                    p.commits,
                    p.conflict_aborts,
                    p.throughput,
                    p.abort_pct
                ));
            }
        }
        out
    }
}

/// Write `body` to `results/<name>`, creating the directory if needed.
/// Returns the path written.
pub fn write_results_file(name: &str, body: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, body)?;
    Ok(path)
}

/// One data point of one sub-figure series.
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Paper figure id, e.g. `"1a/1b"`.
    pub figure: &'static str,
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Algorithm / configuration legend entry.
    pub algorithm: String,
    /// Worker threads.
    pub threads: usize,
    /// Left-column metric name (`throughput_ktps` or `time_s`).
    pub metric: &'static str,
    /// Left-column metric value.
    pub value: f64,
    /// Right-column metric: abort percentage.
    pub abort_pct: f64,
    /// Committed transactions in the interval.
    pub commits: u64,
    /// Conflict aborts in the interval.
    pub aborts: u64,
}

impl FigureRow {
    /// CSV header matching [`FigureRow::csv`].
    pub const CSV_HEADER: &'static str =
        "figure,benchmark,algorithm,threads,metric,value,abort_pct,commits,aborts";

    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{},{:.4},{:.2},{},{}",
            self.figure,
            self.benchmark,
            self.algorithm,
            self.threads,
            self.metric,
            self.value,
            self.abort_pct,
            self.commits,
            self.aborts
        )
    }
}

/// Render rows as a markdown table grouped like the paper's figures:
/// one line per (algorithm, threads), value + abort columns.
pub fn markdown_table(title: &str, rows: &[FigureRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n### {title}\n\n"));
    if rows.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    // Multi-benchmark row-sets (e.g. the A5 layout ablation) get an
    // extra leading column; single-benchmark tables keep the old shape.
    let multi = rows.iter().any(|r| r.benchmark != rows[0].benchmark);
    if multi {
        out.push_str(&format!(
            "| benchmark | algorithm | threads | {} | abort % | commits | aborts |\n",
            rows[0].metric
        ));
        out.push_str("|---|---|---:|---:|---:|---:|---:|\n");
    } else {
        out.push_str(&format!(
            "| algorithm | threads | {} | abort % | commits | aborts |\n",
            rows[0].metric
        ));
        out.push_str("|---|---:|---:|---:|---:|---:|\n");
    }
    for r in rows {
        if multi {
            out.push_str(&format!("| {} ", r.benchmark));
        }
        out.push_str(&format!(
            "| {} | {} | {:.2} | {:.1} | {} | {} |\n",
            r.algorithm, r.threads, r.value, r.abort_pct, r.commits, r.aborts
        ));
    }
    out
}

/// Write rows (plus header) to `results/<name>.csv`, creating the
/// directory if needed. Returns the path written.
pub fn write_csv(name: &str, rows: &[FigureRow]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut body = String::from(FigureRow::CSV_HEADER);
    body.push('\n');
    for r in rows {
        body.push_str(&r.csv());
        body.push('\n');
    }
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Summarise the semantic-vs-base ratio per thread count: the "who wins
/// and by how much" digest used in EXPERIMENTS.md.
pub fn speedup_summary(rows: &[FigureRow], base: &str, semantic: &str) -> String {
    let mut out = String::new();
    let higher_is_better = rows.first().map(|r| r.metric) == Some("throughput_ktps");
    // Experiments like the A5 layout ablation interleave several
    // benchmarks in one row-set; pairing must match on benchmark as
    // well as thread count or the digest compares apples to oranges.
    let multi = rows.iter().any(|r| r.benchmark != rows[0].benchmark);
    for r in rows.iter().filter(|r| r.algorithm == semantic) {
        if let Some(b) = rows
            .iter()
            .find(|b| b.algorithm == base && b.threads == r.threads && b.benchmark == r.benchmark)
        {
            if b.value > 0.0 && r.value > 0.0 {
                let ratio = if higher_is_better {
                    r.value / b.value
                } else {
                    b.value / r.value
                };
                let bench = if multi {
                    format!(" [{}]", r.benchmark)
                } else {
                    String::new()
                };
                out.push_str(&format!(
                    "  {semantic} vs {base}{bench} @ {} threads: {ratio:.2}x (aborts {:.1}% -> {:.1}%)\n",
                    r.threads, b.abort_pct, r.abort_pct
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(alg: &str, threads: usize, value: f64, abort: f64) -> FigureRow {
        FigureRow {
            figure: "1a/1b",
            benchmark: "hashtable",
            algorithm: alg.to_string(),
            threads,
            metric: "throughput_ktps",
            value,
            abort_pct: abort,
            commits: 100,
            aborts: 10,
        }
    }

    #[test]
    fn csv_roundtrip_fields() {
        let r = row("NOrec", 4, 12.5, 3.0);
        let line = r.csv();
        assert!(line.starts_with("1a/1b,hashtable,NOrec,4,throughput_ktps,12.5"));
        assert_eq!(
            FigureRow::CSV_HEADER.split(',').count(),
            line.split(',').count()
        );
    }

    #[test]
    fn markdown_contains_all_rows() {
        let rows = vec![row("NOrec", 2, 10.0, 5.0), row("S-NOrec", 2, 20.0, 1.0)];
        let md = markdown_table("Fig 1a", &rows);
        assert!(md.contains("Fig 1a"));
        assert!(md.contains("| NOrec | 2 |"));
        assert!(md.contains("| S-NOrec | 2 |"));
    }

    #[test]
    fn speedup_summary_computes_ratio() {
        let rows = vec![row("NOrec", 2, 10.0, 50.0), row("S-NOrec", 2, 25.0, 5.0)];
        let s = speedup_summary(&rows, "NOrec", "S-NOrec");
        assert!(s.contains("2.50x"), "{s}");
    }

    #[test]
    fn speedup_summary_pairs_within_benchmark() {
        let mut bank_base = row("NOrec", 2, 100.0, 0.0);
        let mut bank_sem = row("S-NOrec", 2, 50.0, 0.0);
        bank_base.benchmark = "bank";
        bank_sem.benchmark = "bank";
        let rows = vec![
            bank_base,
            bank_sem,
            row("NOrec", 2, 10.0, 50.0),
            row("S-NOrec", 2, 25.0, 5.0),
        ];
        let s = speedup_summary(&rows, "NOrec", "S-NOrec");
        assert!(s.contains("[bank] @ 2 threads: 0.50x"), "{s}");
        assert!(s.contains("[hashtable] @ 2 threads: 2.50x"), "{s}");
    }

    #[test]
    fn json_writer_escapes_and_nests() {
        let v = Json::Object(vec![
            (
                "name",
                Json::Str("quote \" backslash \\ tab \t".to_string()),
            ),
            ("n", Json::UInt(42)),
            ("x", Json::Float(1.5)),
            ("inf", Json::Float(f64::INFINITY)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Array(vec![Json::UInt(1), Json::UInt(2)])),
            ("empty", Json::Array(vec![])),
        ]);
        let s = v.render();
        assert!(s.contains("\\\""), "{s}");
        assert!(s.contains("\\\\"), "{s}");
        assert!(s.contains("\\t"), "{s}");
        assert!(s.contains("\"n\": 42"), "{s}");
        assert!(s.contains("\"x\": 1.5"), "{s}");
        assert!(
            s.contains("\"inf\": null"),
            "non-finite floats become null: {s}"
        );
        assert!(s.contains("\"empty\": []"), "{s}");
        assert!(s.ends_with('\n'));
        // Balanced braces/brackets (crude structural check).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn telemetry_report_json_has_required_sections() {
        use semtm_core::{Algorithm, Stm, StmConfig, TelemetryLevel};
        let stm = Stm::new(
            StmConfig::new(Algorithm::STl2)
                .heap_words(1 << 8)
                .telemetry(TelemetryLevel::Trace),
        );
        let a = stm.alloc_cell(0i64);
        for _ in 0..32 {
            stm.atomic(|tx| tx.inc(a, 1));
        }
        let t = stm.telemetry();
        let report = TelemetryReport {
            benchmark: "bank".to_string(),
            threads: 1,
            duration_secs: 0.1,
            algorithms: vec![AlgorithmTelemetry {
                algorithm: "S-TL2".to_string(),
                throughput_ktps: 320.0,
                stats: stm.stats(),
                commit_latency_ns: t.commit_latency_ns(),
                attempts_per_commit: t.attempts_per_commit(),
                commit_read_set: t.commit_read_set(),
                commit_compare_set: t.commit_compare_set(),
                backoff_spins: t.backoff_spins(),
                trace: t.trace_events(),
                trace_evicted: t.trace_evicted(),
                series: vec![],
                hot_addresses: vec![(17, 5)],
                conflict_edges: vec![ConflictEdge {
                    victim: 2,
                    by: 3,
                    count: 4,
                }],
            }],
            overhead: vec![OverheadRow {
                level: "spans".to_string(),
                throughput_ktps: 310.0,
                commits: 32,
            }],
        };
        let s = report.to_json().render();
        for key in [
            "\"benchmark\": \"bank\"",
            "\"commit_latency_ns\"",
            "\"attempts_per_commit\"",
            "\"abort_breakdown\"",
            "\"wasted_work_ratio\"",
            "\"min\"",
            "\"p50\"",
            "\"p90\"",
            "\"p99\"",
            "\"series\"",
            "\"trace\"",
            "\"hot_addresses\"",
            "\"conflict_edges\"",
            "\"telemetry_overhead\"",
            "\"level\": \"spans\"",
        ] {
            assert!(s.contains(key), "missing {key} in:\n{s}");
        }
        // 32 single-threaded commits must all appear in the latency histogram.
        assert!(s.contains("\"commits\": 32"), "{s}");
        let csv = report.series_csv();
        assert!(csv.starts_with("benchmark,algorithm,threads,t_secs"));
    }

    #[test]
    fn speedup_summary_inverts_for_time_metric() {
        let mut a = row("TL2", 4, 8.0, 40.0);
        let mut b = row("S-TL2", 4, 4.0, 10.0);
        a.metric = "time_s";
        b.metric = "time_s";
        let s = speedup_summary(&[a, b], "TL2", "S-TL2");
        assert!(s.contains("2.00x"), "lower time must be a win: {s}");
    }
}
