//! Result rows and markdown/CSV emission.

/// One data point of one sub-figure series.
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Paper figure id, e.g. `"1a/1b"`.
    pub figure: &'static str,
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Algorithm / configuration legend entry.
    pub algorithm: String,
    /// Worker threads.
    pub threads: usize,
    /// Left-column metric name (`throughput_ktps` or `time_s`).
    pub metric: &'static str,
    /// Left-column metric value.
    pub value: f64,
    /// Right-column metric: abort percentage.
    pub abort_pct: f64,
    /// Committed transactions in the interval.
    pub commits: u64,
    /// Conflict aborts in the interval.
    pub aborts: u64,
}

impl FigureRow {
    /// CSV header matching [`FigureRow::csv`].
    pub const CSV_HEADER: &'static str =
        "figure,benchmark,algorithm,threads,metric,value,abort_pct,commits,aborts";

    /// One CSV line.
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{},{:.4},{:.2},{},{}",
            self.figure,
            self.benchmark,
            self.algorithm,
            self.threads,
            self.metric,
            self.value,
            self.abort_pct,
            self.commits,
            self.aborts
        )
    }
}

/// Render rows as a markdown table grouped like the paper's figures:
/// one line per (algorithm, threads), value + abort columns.
pub fn markdown_table(title: &str, rows: &[FigureRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n### {title}\n\n"));
    if rows.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    out.push_str(&format!(
        "| algorithm | threads | {} | abort % | commits | aborts |\n",
        rows[0].metric
    ));
    out.push_str("|---|---:|---:|---:|---:|---:|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {:.2} | {:.1} | {} | {} |\n",
            r.algorithm, r.threads, r.value, r.abort_pct, r.commits, r.aborts
        ));
    }
    out
}

/// Write rows (plus header) to `results/<name>.csv`, creating the
/// directory if needed. Returns the path written.
pub fn write_csv(name: &str, rows: &[FigureRow]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut body = String::from(FigureRow::CSV_HEADER);
    body.push('\n');
    for r in rows {
        body.push_str(&r.csv());
        body.push('\n');
    }
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Summarise the semantic-vs-base ratio per thread count: the "who wins
/// and by how much" digest used in EXPERIMENTS.md.
pub fn speedup_summary(rows: &[FigureRow], base: &str, semantic: &str) -> String {
    let mut out = String::new();
    let higher_is_better = rows.first().map(|r| r.metric) == Some("throughput_ktps");
    for r in rows.iter().filter(|r| r.algorithm == semantic) {
        if let Some(b) = rows
            .iter()
            .find(|b| b.algorithm == base && b.threads == r.threads)
        {
            if b.value > 0.0 && r.value > 0.0 {
                let ratio = if higher_is_better {
                    r.value / b.value
                } else {
                    b.value / r.value
                };
                out.push_str(&format!(
                    "  {semantic} vs {base} @ {} threads: {ratio:.2}x (aborts {:.1}% -> {:.1}%)\n",
                    r.threads, b.abort_pct, r.abort_pct
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(alg: &str, threads: usize, value: f64, abort: f64) -> FigureRow {
        FigureRow {
            figure: "1a/1b",
            benchmark: "hashtable",
            algorithm: alg.to_string(),
            threads,
            metric: "throughput_ktps",
            value,
            abort_pct: abort,
            commits: 100,
            aborts: 10,
        }
    }

    #[test]
    fn csv_roundtrip_fields() {
        let r = row("NOrec", 4, 12.5, 3.0);
        let line = r.csv();
        assert!(line.starts_with("1a/1b,hashtable,NOrec,4,throughput_ktps,12.5"));
        assert_eq!(
            FigureRow::CSV_HEADER.split(',').count(),
            line.split(',').count()
        );
    }

    #[test]
    fn markdown_contains_all_rows() {
        let rows = vec![row("NOrec", 2, 10.0, 5.0), row("S-NOrec", 2, 20.0, 1.0)];
        let md = markdown_table("Fig 1a", &rows);
        assert!(md.contains("Fig 1a"));
        assert!(md.contains("| NOrec | 2 |"));
        assert!(md.contains("| S-NOrec | 2 |"));
    }

    #[test]
    fn speedup_summary_computes_ratio() {
        let rows = vec![row("NOrec", 2, 10.0, 50.0), row("S-NOrec", 2, 25.0, 5.0)];
        let s = speedup_summary(&rows, "NOrec", "S-NOrec");
        assert!(s.contains("2.50x"), "{s}");
    }

    #[test]
    fn speedup_summary_inverts_for_time_metric() {
        let mut a = row("TL2", 4, 8.0, 40.0);
        let mut b = row("S-TL2", 4, 4.0, 10.0);
        a.metric = "time_s";
        b.metric = "time_s";
        let s = speedup_summary(&[a, b], "TL2", "S-TL2");
        assert!(s.contains("2.00x"), "lower time must be a win: {s}");
    }
}
