//! Figure-2 experiments: the GCC-based evaluation of §7.2, reproduced
//! through the IR interpreter (see DESIGN.md for the substitution).
//!
//! Three configurations per benchmark, matching the paper's legend:
//!
//! * **NOrec** — unmodified compiler: the kernel keeps its classical
//!   `tmload`/`tmstore` barriers (no passes) and runs on plain NOrec;
//! * **NOrec Modified-GCC** — the passes rewrite the kernel to the
//!   `_ITM_S1R`/`_ITM_SW` builtins (fewer dispatches), but the TM
//!   algorithm delegates them to plain reads/writes;
//! * **S-NOrec** — the passed kernel on the semantic algorithm.
//!
//! Kernels execute through the flat threaded-dispatch lowering
//! ([`semtm_ir::lower`] + [`Interp::execute_lowered`]) rather than the
//! tree-walking interpreter, so the per-instruction cost these figures
//! measure is dispatch into the TM runtime — the quantity the paper's
//! call-reduction argument is about — not block-structure walking
//! overhead. The differential oracle pins both execution modes to
//! identical observable behaviour.

use crate::report::FigureRow;
use semtm_core::util::SplitMix64;
use semtm_core::{Algorithm, Stm, StmConfig};
use semtm_ir::programs;
use semtm_ir::{lower, run_tm_passes, Function, Interp, LoweredFunction};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The three Figure-2 configurations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GccConfig {
    /// Unmodified GCC, plain NOrec.
    Plain,
    /// Passes on, semantics delegated ("NOrec Modified-GCC").
    ModifiedDelegating,
    /// Passes on, S-NOrec.
    Semantic,
}

impl GccConfig {
    /// All three, in the paper's legend order.
    pub const ALL: [GccConfig; 3] = [
        GccConfig::Plain,
        GccConfig::ModifiedDelegating,
        GccConfig::Semantic,
    ];

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            GccConfig::Plain => "NOrec",
            GccConfig::ModifiedDelegating => "NOrec Modified-GCC",
            GccConfig::Semantic => "S-NOrec",
        }
    }

    /// Whether the passes run on the kernel.
    pub fn passes(self) -> bool {
        !matches!(self, GccConfig::Plain)
    }

    /// The STM algorithm executing the kernel.
    pub fn algorithm(self) -> Algorithm {
        match self {
            GccConfig::Semantic => Algorithm::SNOrec,
            _ => Algorithm::NOrec,
        }
    }

    fn prepare(self, mut f: Function) -> LoweredFunction {
        if self.passes() {
            run_tm_passes(&mut f);
        }
        lower(&f).expect("builtin kernel lowers")
    }
}

/// Throughput of the hashtable kernel (Figures 2a/2b): threads hammer
/// get/insert IR transactions for `duration`.
pub fn fig2_hashtable(
    threads_list: &[usize],
    duration: Duration,
    capacity_pow2: u32,
    seed: u64,
) -> Vec<FigureRow> {
    let mut rows = Vec::new();
    let mask = (1i64 << capacity_pow2) - 1;
    // Distinct keys are capped at half the capacity so the open-addressed
    // table can never saturate (the IR kernel's probe loop has no
    // full-table bailout, matching Algorithm 2).
    let key_universe = (1u64 << capacity_pow2) / 2;
    for cfg in GccConfig::ALL {
        let func = cfg.prepare(programs::hashtable_op());
        for &threads in threads_list {
            let stm = Stm::new(
                StmConfig::new(cfg.algorithm())
                    .heap_words(1 << (capacity_pow2 + 2))
                    .orec_count(1 << 12),
            );
            let states = stm.alloc_array(1 << capacity_pow2, 0i64);
            let keys = stm.alloc_array(1 << capacity_pow2, 0i64);
            // Pre-fill half the table so probes have work to do.
            let mut rng = SplitMix64::new(seed);
            {
                let interp = Interp::new(&stm);
                for _ in 0..(1 << capacity_pow2) / 4 {
                    let key = 1 + rng.below(key_universe) as i64;
                    let _ = interp.execute_lowered(
                        &func,
                        &[states.index() as i64, keys.index() as i64, mask, key, 1],
                    );
                }
            }
            let before = stm.stats();
            let stop = AtomicBool::new(false);
            let ops = AtomicU64::new(0);
            let start = Instant::now();
            std::thread::scope(|s| {
                for t in 0..threads {
                    let stm = &stm;
                    let func = &func;
                    let stop = &stop;
                    let ops = &ops;
                    s.spawn(move || {
                        let interp = Interp::new(stm);
                        let mut rng = SplitMix64::new(seed ^ ((t as u64 + 1) * 77));
                        let mut local = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let key = 1 + rng.below(key_universe) as i64;
                            let op = i64::from(rng.below(100) < 20); // 20% inserts
                            interp
                                .execute_lowered(
                                    func,
                                    &[states.index() as i64, keys.index() as i64, mask, key, op],
                                )
                                .expect("kernel executes");
                            local += 1;
                        }
                        ops.fetch_add(local, Ordering::Relaxed);
                    });
                }
                std::thread::sleep(duration);
                stop.store(true, Ordering::Relaxed);
            });
            let elapsed = start.elapsed();
            let stats = stm.stats().since(&before);
            rows.push(FigureRow {
                figure: "2a/2b",
                benchmark: "hashtable-gcc",
                algorithm: cfg.label().to_string(),
                threads,
                metric: "throughput_ktps",
                value: ops.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64() / 1000.0,
                abort_pct: stats.abort_pct(),
                commits: stats.commits,
                aborts: stats.conflict_aborts(),
            });
        }
    }
    rows
}

/// Execution time of the vacation reservation kernel (Figures 2c/2d):
/// a fixed number of reservation transactions split across threads.
pub fn fig2_vacation(
    threads_list: &[usize],
    offers: usize,
    reservations: u64,
    seed: u64,
) -> Vec<FigureRow> {
    let mut rows = Vec::new();
    for cfg in GccConfig::ALL {
        let func = cfg.prepare(programs::vacation_reserve());
        for &threads in threads_list {
            let stm = Stm::new(
                StmConfig::new(cfg.algorithm())
                    .heap_words(offers * 5 + 64)
                    .orec_count(1 << 10),
            );
            let base = stm.alloc(offers * 5);
            let mut rng = SplitMix64::new(seed);
            for i in 0..offers {
                stm.write_now(base.offset(i * 5), i as i64);
                stm.write_now(base.offset(i * 5 + 1), 0);
                let cap = 4 + rng.below(60) as i64;
                stm.write_now(base.offset(i * 5 + 2), cap);
                stm.write_now(base.offset(i * 5 + 3), cap);
                stm.write_now(base.offset(i * 5 + 4), 100 + rng.below(400) as i64);
            }
            let before = stm.stats();
            let start = Instant::now();
            std::thread::scope(|s| {
                for t in 0..threads {
                    let stm = &stm;
                    let func = &func;
                    s.spawn(move || {
                        let interp = Interp::new(stm);
                        let mut i = t as u64;
                        while i < reservations {
                            interp
                                .execute_lowered(func, &[base.index() as i64, offers as i64])
                                .expect("kernel executes");
                            i += threads as u64;
                        }
                    });
                }
            });
            let elapsed = start.elapsed();
            let stats = stm.stats().since(&before);
            // Invariant: free + used == total on every offer.
            for i in 0..offers {
                let used = stm.read_now(base.offset(i * 5 + 1));
                let free = stm.read_now(base.offset(i * 5 + 2));
                let total = stm.read_now(base.offset(i * 5 + 3));
                assert_eq!(free + used, total, "offer {i} corrupted");
                assert!(free >= 0, "offer {i} oversold");
            }
            rows.push(FigureRow {
                figure: "2c/2d",
                benchmark: "vacation-gcc",
                algorithm: cfg.label().to_string(),
                threads,
                metric: "time_s",
                value: elapsed.as_secs_f64(),
                abort_pct: stats.abort_pct(),
                commits: stats.commits,
                aborts: stats.conflict_aborts(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_metadata() {
        assert!(!GccConfig::Plain.passes());
        assert!(GccConfig::ModifiedDelegating.passes());
        assert_eq!(GccConfig::Semantic.algorithm(), Algorithm::SNOrec);
        assert_eq!(GccConfig::ModifiedDelegating.algorithm(), Algorithm::NOrec);
    }

    #[test]
    fn fig2_hashtable_runs_all_configs() {
        let rows = fig2_hashtable(&[2], Duration::from_millis(30), 7, 3);
        assert_eq!(rows.len(), 3);
        for cfg in GccConfig::ALL {
            let r = rows.iter().find(|r| r.algorithm == cfg.label()).unwrap();
            assert!(r.commits > 0, "{}", cfg.label());
        }
    }

    #[test]
    fn fig2_vacation_preserves_offer_invariants() {
        let rows = fig2_vacation(&[2], 16, 200, 5);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.value > 0.0));
    }

    #[test]
    fn semantic_config_reduces_hashtable_aborts() {
        // The headline Figure-2b effect: S-NOrec's abort rate undercuts
        // plain NOrec's under contention.
        let rows = fig2_hashtable(&[4], Duration::from_millis(120), 6, 11);
        let plain = rows.iter().find(|r| r.algorithm == "NOrec").unwrap();
        let sem = rows.iter().find(|r| r.algorithm == "S-NOrec").unwrap();
        assert!(
            sem.abort_pct <= plain.abort_pct + 1e-9,
            "semantic {:.2}% vs plain {:.2}%",
            sem.abort_pct,
            plain.abort_pct
        );
    }
}
