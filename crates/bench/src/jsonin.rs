//! A minimal JSON *reader* to validate what the harness writes.
//!
//! The workspace builds offline with no registry dependencies, so there
//! is no serde to round-trip through. This recursive-descent parser
//! accepts standard JSON (objects, arrays, strings with escapes,
//! numbers, booleans, null) — enough to schema-check the Chrome
//! trace-event files and telemetry reports in CI. It is a validator,
//! not a performance parser: inputs are trusted-size artifacts we
//! produced ourselves.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; fine for validation).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JValue>),
    /// An object. Keys are owned; duplicate keys keep the last value.
    Obj(BTreeMap<String, JValue>),
}

impl JValue {
    /// Object field access; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JValue> {
        match self {
            JValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items; `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[JValue]> {
        match self {
            JValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload; `None` for non-numbers.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing garbage is an error.
pub fn parse(input: &str) -> Result<JValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: JValue) -> Result<JValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JValue, String> {
    let start = *pos;
    if matches!(b.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(
        b.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JValue::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs don't occur in our own output;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(JValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JValue::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' (found {other:?})")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JValue, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(JValue::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JValue::Obj(map));
            }
            other => return Err(format!("expected ',' or '}}' (found {other:?})")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5, 1e3], "b": {"c": true, "d": null}, "s": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_num(),
            Some(-2.5)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(1000.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JValue::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JValue::Null));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""quote \" backslash \\ tab \t unicode A""#).unwrap();
        assert_eq!(v.as_str(), Some("quote \" backslash \\ tab \t unicode A"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("12 34").is_err(), "trailing data");
        assert!(parse("nul").is_err());
    }

    #[test]
    fn roundtrips_the_report_writer() {
        use crate::report::Json;
        let written = Json::Object(vec![
            ("name", Json::Str("a \"b\"\n".to_string())),
            ("n", Json::UInt(7)),
            ("arr", Json::Array(vec![Json::Float(0.25), Json::Null])),
        ])
        .render();
        let v = parse(&written).expect("our own writer must emit valid JSON");
        assert_eq!(v.get("name").unwrap().as_str(), Some("a \"b\"\n"));
        assert_eq!(v.get("n").unwrap().as_num(), Some(7.0));
        assert_eq!(v.get("arr").unwrap().as_arr().unwrap()[1], JValue::Null);
    }
}
