//! Table 3: "Average Number of Operations per Transaction" — the
//! base-vs-semantic operation profile of every workload.
//!
//! Each workload runs twice single-threaded (profiles are workload
//! properties, not concurrency properties): once under plain NOrec
//! ("base": semantic calls delegate, so they surface as reads/writes)
//! and once under S-NOrec ("semantic").

use semtm_core::{Algorithm, StatsSnapshot, Stm, StmConfig};
use semtm_workloads::stamp::{genome, intruder, kmeans, labyrinth, ssca2, vacation, yada};
use semtm_workloads::{bank, hashtable, lru};
use std::time::Duration;

/// One workload's profile under one mode.
#[derive(Clone, Debug)]
pub struct ProfileRow {
    /// Workload name (Table 3 column group).
    pub benchmark: &'static str,
    /// `base` or `semantic`.
    pub mode: &'static str,
    /// Average plain reads per committed transaction.
    pub reads: f64,
    /// Average plain writes per committed transaction.
    pub writes: f64,
    /// Average compares per committed transaction.
    pub compares: f64,
    /// Average increments per committed transaction.
    pub increments: f64,
    /// Average promotions per committed transaction.
    pub promotes: f64,
}

impl ProfileRow {
    fn from_stats(benchmark: &'static str, mode: &'static str, s: &StatsSnapshot) -> ProfileRow {
        ProfileRow {
            benchmark,
            mode,
            reads: s.reads_per_tx(),
            writes: s.writes_per_tx(),
            compares: s.cmps_per_tx(),
            increments: s.incs_per_tx(),
            promotes: s.promotes_per_tx(),
        }
    }
}

fn stm(alg: Algorithm, heap_pow2: u32) -> Stm {
    Stm::new(
        StmConfig::new(alg)
            .heap_words(1 << heap_pow2)
            .orec_count(1 << 12),
    )
}

/// Build the full Table 3 (10 workloads × 2 modes). `quick` shrinks the
/// run lengths for smoke testing.
pub fn table3(quick: bool) -> Vec<ProfileRow> {
    let dur = Duration::from_millis(if quick { 40 } else { 250 });
    let mut rows = Vec::new();
    for (mode, alg) in [("base", Algorithm::NOrec), ("semantic", Algorithm::SNOrec)] {
        // Hashtable
        {
            let s = stm(alg, 16);
            let cfg = hashtable::HashtableConfig {
                capacity: if quick { 1 << 9 } else { 1 << 12 },
                ..hashtable::HashtableConfig::default()
            };
            hashtable::run(&s, cfg, 1, dur, 7);
            rows.push(ProfileRow::from_stats("Hashtable", mode, &s.stats()));
        }
        // Bank
        {
            let s = stm(alg, 12);
            bank::run(&s, bank::BankConfig::default(), 1, dur, 7);
            rows.push(ProfileRow::from_stats("Bank", mode, &s.stats()));
        }
        // LRU
        {
            let s = stm(alg, 16);
            lru::run(&s, lru::LruConfig::default(), 1, dur, 7);
            rows.push(ProfileRow::from_stats("LRU", mode, &s.stats()));
        }
        // Vacation
        {
            let s = stm(alg, 22);
            let cfg = vacation::VacationConfig::default();
            vacation::run(&s, cfg, 1, if quick { 200 } else { 2000 }, 7);
            rows.push(ProfileRow::from_stats("Vacation", mode, &s.stats()));
        }
        // Kmeans
        {
            let s = stm(alg, 14);
            let cfg = kmeans::KmeansConfig {
                points: if quick { 256 } else { 2048 },
                features: 24,
                max_iterations: 3,
                ..kmeans::KmeansConfig::default()
            };
            kmeans::run(&s, cfg, 1, 7);
            rows.push(ProfileRow::from_stats("Kmeans", mode, &s.stats()));
        }
        // Labyrinth
        {
            let s = stm(alg, 14);
            let cfg = labyrinth::LabyrinthConfig {
                x: 24,
                y: 24,
                z: 3,
                pairs: if quick { 12 } else { 40 },
                wall_pct: 10,
                variant: labyrinth::Variant::CopyOutsideTx,
            };
            labyrinth::run(&s, cfg, 1, 7);
            rows.push(ProfileRow::from_stats("Labyrinth", mode, &s.stats()));
        }
        // Yada
        {
            let s = stm(alg, 22);
            let cfg = yada::YadaConfig {
                elements: if quick { 128 } else { 512 },
                ..yada::YadaConfig::default()
            };
            yada::run(&s, cfg, 1, 7);
            rows.push(ProfileRow::from_stats("Yada", mode, &s.stats()));
        }
        // SSCA2
        {
            let s = stm(alg, 18);
            let cfg = ssca2::Ssca2Config {
                edges: if quick { 512 } else { 4096 },
                ..ssca2::Ssca2Config::default()
            };
            ssca2::run(&s, cfg, 1, 7);
            rows.push(ProfileRow::from_stats("SSCA2", mode, &s.stats()));
        }
        // Genome
        {
            let s = stm(alg, 18);
            let cfg = genome::GenomeConfig {
                segments: if quick { 512 } else { 4096 },
                ..genome::GenomeConfig::default()
            };
            genome::run(&s, cfg, 1, 7);
            rows.push(ProfileRow::from_stats("Genome", mode, &s.stats()));
        }
        // Intruder
        {
            let s = stm(alg, 18);
            let cfg = intruder::IntruderConfig {
                flows: if quick { 64 } else { 256 },
                ..intruder::IntruderConfig::default()
            };
            intruder::run(&s, cfg, 1, 7);
            rows.push(ProfileRow::from_stats("Intruder", mode, &s.stats()));
        }
    }
    rows
}

/// Render Table 3 as markdown, paper-style: one row per operation type,
/// one column pair (base, semantic) per workload.
pub fn markdown(rows: &[ProfileRow]) -> String {
    let benchmarks: Vec<&'static str> = {
        let mut seen = Vec::new();
        for r in rows {
            if !seen.contains(&r.benchmark) {
                seen.push(r.benchmark);
            }
        }
        seen
    };
    let get = |b: &str, mode: &str| rows.iter().find(|r| r.benchmark == b && r.mode == mode);
    let mut out = String::from("\n### Table 3: average operations per transaction\n\n");
    out.push_str("| op |");
    for b in &benchmarks {
        out.push_str(&format!(" {b} base | {b} sem |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &benchmarks {
        out.push_str("---:|---:|");
    }
    out.push('\n');
    type Sel = fn(&ProfileRow) -> f64;
    let metrics: [(&str, Sel); 5] = [
        ("Read", |r| r.reads),
        ("Write", |r| r.writes),
        ("Compare", |r| r.compares),
        ("Increment", |r| r.increments),
        ("Promote", |r| r.promotes),
    ];
    for (name, sel) in metrics {
        out.push_str(&format!("| {name} |"));
        for b in &benchmarks {
            for mode in ["base", "semantic"] {
                match get(b, mode) {
                    Some(r) => out.push_str(&format!(" {:.2} |", sel(r))),
                    None => out.push_str(" - |"),
                }
            }
        }
        out.push('\n');
    }
    out
}

/// CSV emission for `results/table3.csv`.
pub fn csv(rows: &[ProfileRow]) -> String {
    let mut out = String::from("benchmark,mode,reads,writes,compares,increments,promotes\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
            r.benchmark, r.mode, r.reads, r.writes, r.compares, r.increments, r.promotes
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_twenty_rows_and_expected_shape() {
        let rows = table3(true);
        assert_eq!(rows.len(), 20, "10 workloads x 2 modes");

        let find = |b: &str, m: &str| {
            rows.iter()
                .find(|r| r.benchmark == b && r.mode == m)
                .unwrap()
        };
        // Paper shape checks (Table 3):
        // Hashtable: all base reads become compares.
        assert_eq!(find("Hashtable", "semantic").reads, 0.0);
        assert!(find("Hashtable", "semantic").compares > 10.0);
        assert!(find("Hashtable", "base").reads > 10.0);
        assert_eq!(find("Hashtable", "base").compares, 0.0);
        // Kmeans: base read/write pairs become pure increments.
        assert_eq!(find("Kmeans", "semantic").reads, 0.0);
        assert!(find("Kmeans", "semantic").increments > 10.0);
        assert!(find("Kmeans", "base").reads > 10.0);
        // Vacation: semantic mode keeps most reads plain and promotes.
        let v = find("Vacation", "semantic");
        assert!(v.reads > v.compares);
        assert!(v.promotes > 0.0);
        // Intruder: no semantic ops in either mode; Genome: only the
        // tiny phase-2 claim-check residue (paper: 0.06 compares/tx).
        assert_eq!(find("Intruder", "semantic").compares, 0.0);
        assert_eq!(find("Intruder", "semantic").increments, 0.0);
        let genome = find("Genome", "semantic");
        assert!(
            genome.compares < 0.1 * genome.reads,
            "claim checks must stay a residue of the read traffic: {} cmps vs {} reads",
            genome.compares,
            genome.reads
        );
        assert_eq!(genome.increments, 0.0);
        // SSCA2: exactly one increment per transaction in semantic mode.
        assert!((find("SSCA2", "semantic").increments - 1.0).abs() < 1e-9);

        let md = markdown(&rows);
        assert!(md.contains("Hashtable base"));
        let c = csv(&rows);
        assert_eq!(c.lines().count(), 21);
    }
}
