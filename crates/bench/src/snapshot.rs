//! Machine-readable per-PR performance snapshot (`results/BENCH_10.json`).
//!
//! One fixed grid — the three A7 benchmarks × the three fixed engines
//! plus the adaptive runtime — with throughput, p99 commit latency,
//! abort rate, and commit counts per cell. The file is the CI artifact
//! a regression tracker diffs across PRs, so its shape is pinned by
//! [`SCHEMA`] and enforced by [`validate`] (tier-1 runs it on every
//! emitted snapshot; the schema check is also a unit test).

use crate::experiments::Sweep;
use crate::jsonin::{self, JValue};
use crate::report::Json;
use semtm_core::{AdaptPolicy, Algorithm, Stm, StmConfig, TelemetryLevel};
use semtm_workloads::driver::{run_for_duration, RunResult};
use semtm_workloads::{bank, hashtable, scan};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Schema identifier embedded in (and required of) every snapshot.
pub const SCHEMA: &str = "semtm-bench-snapshot/v1";

/// One engine's measurements on one benchmark.
#[derive(Clone, Debug)]
pub struct EngineSample {
    /// Engine label (`S-NOrec`, `S-NOrec/sharded`, `S-TL2`, `adaptive`).
    pub engine: String,
    /// Committed transactions per second, in thousands.
    pub throughput_ktps: f64,
    /// 99th-percentile end-to-end commit latency in nanoseconds
    /// ([`TelemetryLevel::Histograms`] tier).
    pub p99_commit_ns: u64,
    /// Conflict aborts as a percentage of attempts.
    pub abort_pct: f64,
    /// Committed transactions over the interval.
    pub commits: u64,
    /// Engine hot-swaps during the run (0 for the fixed engines).
    pub switches: u64,
}

/// One benchmark's engine grid.
#[derive(Clone, Debug)]
pub struct BenchmarkSnapshot {
    /// Benchmark name (`bank`, `hashtable-hot`, `scan`).
    pub benchmark: String,
    /// One sample per engine.
    pub engines: Vec<EngineSample>,
}

/// The whole snapshot.
#[derive(Clone, Debug)]
pub struct BenchSnapshot {
    /// Worker threads every cell ran with.
    pub threads: usize,
    /// Measured interval per cell, in seconds.
    pub duration_secs: f64,
    /// Per-benchmark engine grids.
    pub benchmarks: Vec<BenchmarkSnapshot>,
}

/// Number of clock shards the sharded/adaptive engines run with.
const SHARDS: usize = 16;

fn engine_stm(label: &str, alg: Algorithm, adaptive: Option<AdaptPolicy>) -> Stm {
    let shards = if label == "S-NOrec" || label == "S-TL2" {
        1
    } else {
        SHARDS
    };
    let mut cfg = StmConfig::new(alg)
        .heap_words(1 << 16)
        .orec_count(1 << 14)
        .clock_shards(shards)
        .telemetry(TelemetryLevel::Histograms);
    if let Some(p) = adaptive {
        cfg = cfg.adaptive(p);
    }
    Stm::new(cfg)
}

/// Run `work` for `duration`, with a controller ticker thread polling
/// [`Stm::adapt_tick`] if the runtime is adaptive (mirroring the A7
/// harness — the snapshot's `adaptive` cells measure the settled mode
/// the controller picks for each benchmark, switches included).
fn measured_run(
    stm: &Stm,
    adaptive: bool,
    threads: usize,
    duration: Duration,
    seed: u64,
    work: impl Fn(usize, &mut semtm_core::util::SplitMix64) + Sync,
) -> RunResult {
    if !adaptive {
        return run_for_duration(stm, threads, duration, seed, work);
    }
    let stop = AtomicBool::new(false);
    let mut r = None;
    std::thread::scope(|s| {
        let ticker = s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                stm.adapt_tick();
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        r = Some(run_for_duration(stm, threads, duration, seed, work));
        stop.store(true, Ordering::Relaxed);
        ticker.join().expect("ticker thread panicked");
    });
    r.expect("measured run completed")
}

/// Measure the full grid at the sweep's highest thread count.
pub fn collect(sweep: &Sweep) -> BenchSnapshot {
    let threads = sweep.threads.iter().copied().max().unwrap_or(1);
    let policy = AdaptPolicy {
        min_commits: sweep.pick(8, 16),
        dwell_ticks: 2,
        ..AdaptPolicy::default()
    };
    let engines: [(&str, Algorithm, Option<AdaptPolicy>); 4] = [
        ("S-NOrec", Algorithm::SNOrec, None),
        ("S-NOrec/sharded", Algorithm::SNOrec, None),
        ("S-TL2", Algorithm::STl2, None),
        ("adaptive", Algorithm::SNOrec, Some(policy)),
    ];
    let bank_cfg = bank::BankConfig {
        accounts: sweep.pick(32, 64),
        padded: true,
        ..bank::BankConfig::default()
    };
    let ht_cap = sweep.pick(1 << 9, 1 << 10);
    let ht_cfg = hashtable::HashtableConfig {
        capacity: ht_cap,
        fill_pct: 45,
        tombstone_pct: 45,
        ops_per_tx: 10,
        get_pct: 60,
        key_space: (ht_cap as u64) * 4,
        padded: true,
    };
    let scan_cfg = scan::ScanConfig {
        cells: sweep.pick(128, 256),
        reads_per_tx: sweep.pick(32, 64),
        padded: true,
        ..scan::ScanConfig::default()
    };

    let mut benchmarks = Vec::new();
    for bench in ["bank", "hashtable-hot", "scan"] {
        let mut samples = Vec::new();
        for (label, alg, adaptive) in &engines {
            let stm = engine_stm(label, *alg, *adaptive);
            let r = match bench {
                "bank" => {
                    let state = bank::Bank::new(&stm, bank_cfg);
                    let r = measured_run(
                        &stm,
                        adaptive.is_some(),
                        threads,
                        sweep.duration,
                        sweep.seed,
                        |_tid, rng| {
                            state.transfer_tx(&stm, rng);
                        },
                    );
                    state.verify(&stm).expect("bank invariants violated");
                    r
                }
                "hashtable-hot" => {
                    let table = hashtable::Hashtable::new(&stm, ht_cfg);
                    let r = measured_run(
                        &stm,
                        adaptive.is_some(),
                        threads,
                        sweep.duration,
                        sweep.seed,
                        |_tid, rng| {
                            table.workload_tx(&stm, rng);
                        },
                    );
                    table.verify(&stm).expect("hashtable integrity violated");
                    r
                }
                _ => {
                    let state = scan::Scan::new(&stm, scan_cfg);
                    let incs = AtomicU64::new(0);
                    let r = measured_run(
                        &stm,
                        adaptive.is_some(),
                        threads,
                        sweep.duration,
                        sweep.seed,
                        |_tid, rng| {
                            incs.fetch_add(state.scan_tx(&stm, rng), Ordering::Relaxed);
                        },
                    );
                    state
                        .verify(&stm, incs.load(Ordering::Relaxed))
                        .expect("scan invariants violated");
                    r
                }
            };
            samples.push(EngineSample {
                engine: label.to_string(),
                throughput_ktps: r.throughput_ktps(),
                p99_commit_ns: stm.telemetry().commit_latency_ns().p99(),
                abort_pct: r.abort_pct(),
                commits: r.stats.commits,
                switches: stm.switch_count(),
            });
        }
        benchmarks.push(BenchmarkSnapshot {
            benchmark: bench.to_string(),
            engines: samples,
        });
    }
    BenchSnapshot {
        threads,
        duration_secs: sweep.duration.as_secs_f64(),
        benchmarks,
    }
}

impl BenchSnapshot {
    /// Serialize in the pinned [`SCHEMA`] shape.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("schema", Json::Str(SCHEMA.to_string())),
            ("threads", Json::UInt(self.threads as u64)),
            ("duration_secs", Json::Float(self.duration_secs)),
            (
                "benchmarks",
                Json::Array(
                    self.benchmarks
                        .iter()
                        .map(|b| {
                            Json::Object(vec![
                                ("benchmark", Json::Str(b.benchmark.clone())),
                                (
                                    "engines",
                                    Json::Array(
                                        b.engines
                                            .iter()
                                            .map(|e| {
                                                Json::Object(vec![
                                                    ("engine", Json::Str(e.engine.clone())),
                                                    (
                                                        "throughput_ktps",
                                                        Json::Float(e.throughput_ktps),
                                                    ),
                                                    ("p99_commit_ns", Json::UInt(e.p99_commit_ns)),
                                                    ("abort_pct", Json::Float(e.abort_pct)),
                                                    ("commits", Json::UInt(e.commits)),
                                                    ("switches", Json::UInt(e.switches)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn require<'a>(obj: &'a JValue, key: &str, at: &str) -> Result<&'a JValue, String> {
    obj.get(key).ok_or_else(|| format!("{at}: missing `{key}`"))
}

fn require_num(obj: &JValue, key: &str, at: &str) -> Result<f64, String> {
    require(obj, key, at)?
        .as_num()
        .ok_or_else(|| format!("{at}: `{key}` is not a number"))
}

/// Validate a rendered snapshot against the pinned schema: exact schema
/// tag, well-typed fields, non-empty benchmark and engine lists, and an
/// `adaptive` sample alongside every fixed engine.
pub fn validate(text: &str) -> Result<(), String> {
    let root = jsonin::parse(text)?;
    let schema = require(&root, "schema", "root")?
        .as_str()
        .ok_or("root: `schema` is not a string")?;
    if schema != SCHEMA {
        return Err(format!("schema mismatch: `{schema}` != `{SCHEMA}`"));
    }
    let threads = require_num(&root, "threads", "root")?;
    if threads < 1.0 {
        return Err("root: `threads` must be >= 1".into());
    }
    let secs = require_num(&root, "duration_secs", "root")?;
    if secs.is_nan() || secs <= 0.0 {
        return Err("root: `duration_secs` must be positive".into());
    }
    let benches = require(&root, "benchmarks", "root")?
        .as_arr()
        .ok_or("root: `benchmarks` is not an array")?;
    if benches.is_empty() {
        return Err("root: `benchmarks` is empty".into());
    }
    for b in benches {
        let name = require(b, "benchmark", "benchmark")?
            .as_str()
            .ok_or("benchmark: `benchmark` is not a string")?
            .to_string();
        let at = format!("benchmark `{name}`");
        let engines = require(b, "engines", &at)?
            .as_arr()
            .ok_or_else(|| format!("{at}: `engines` is not an array"))?;
        if engines.is_empty() {
            return Err(format!("{at}: `engines` is empty"));
        }
        let mut has_adaptive = false;
        for e in engines {
            let engine = require(e, "engine", &at)?
                .as_str()
                .ok_or_else(|| format!("{at}: `engine` is not a string"))?;
            has_adaptive |= engine == "adaptive";
            let cell = format!("{at}, engine `{engine}`");
            let ktps = require_num(e, "throughput_ktps", &cell)?;
            if ktps.is_nan() || ktps < 0.0 {
                return Err(format!("{cell}: negative throughput"));
            }
            require_num(e, "p99_commit_ns", &cell)?;
            let abort = require_num(e, "abort_pct", &cell)?;
            if !(0.0..=100.0).contains(&abort) {
                return Err(format!("{cell}: abort_pct {abort} out of range"));
            }
            if require_num(e, "commits", &cell)? < 1.0 {
                return Err(format!("{cell}: no commits recorded"));
            }
            require_num(e, "switches", &cell)?;
        }
        if !has_adaptive {
            return Err(format!("{at}: no `adaptive` sample"));
        }
    }
    Ok(())
}

/// Markdown digest of a snapshot for the figure harness's stdout.
pub fn markdown(snap: &BenchSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\n### Bench snapshot ({} threads, {:.2}s per cell)\n\n\
         | benchmark | engine | ktps | p99 commit ns | abort % | switches |\n\
         |---|---|---:|---:|---:|---:|\n",
        snap.threads, snap.duration_secs
    ));
    for b in &snap.benchmarks {
        for e in &b.engines {
            out.push_str(&format!(
                "| {} | {} | {:.1} | {} | {:.1} | {} |\n",
                b.benchmark, e.engine, e.throughput_ktps, e.p99_commit_ns, e.abort_pct, e.switches
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    fn tiny() -> Sweep {
        Sweep {
            threads: vec![2],
            duration: Duration::from_millis(30),
            scale: Scale::Smoke,
            seed: 1,
        }
    }

    #[test]
    fn snapshot_round_trips_through_its_own_validator() {
        let snap = collect(&tiny());
        assert_eq!(snap.benchmarks.len(), 3);
        for b in &snap.benchmarks {
            assert_eq!(b.engines.len(), 4, "{}", b.benchmark);
            // Histograms tier is live: every cell has a real p99.
            for e in &b.engines {
                assert!(e.commits > 0, "{}/{}", b.benchmark, e.engine);
                assert!(e.p99_commit_ns > 0, "{}/{}", b.benchmark, e.engine);
            }
        }
        let text = snap.to_json().render();
        validate(&text).expect("snapshot must satisfy its own schema");
    }

    #[test]
    fn validator_rejects_malformed_snapshots() {
        assert!(validate("{}").is_err());
        assert!(validate("not json").is_err());
        let wrong_schema = r#"{"schema": "other/v9", "threads": 2,
            "duration_secs": 0.1, "benchmarks": []}"#;
        assert!(validate(wrong_schema).unwrap_err().contains("schema"));
        let empty = r#"{"schema": "semtm-bench-snapshot/v1", "threads": 2,
            "duration_secs": 0.1, "benchmarks": []}"#;
        assert!(validate(empty).unwrap_err().contains("empty"));
        let no_adaptive = r#"{"schema": "semtm-bench-snapshot/v1", "threads": 2,
            "duration_secs": 0.1, "benchmarks": [{"benchmark": "bank",
            "engines": [{"engine": "S-NOrec", "throughput_ktps": 1.0,
            "p99_commit_ns": 10, "abort_pct": 0.0, "commits": 5,
            "switches": 0}]}]}"#;
        assert!(validate(no_adaptive).unwrap_err().contains("adaptive"));
    }
}
