//! A live terminal dashboard over the flight recorder, for eyeballing
//! stress runs: throughput sparkline, abort rate, hottest conflict
//! addresses and who-aborted-whom edges, refreshed in place with ANSI
//! cursor control. `figures -- dash` drives the skewed Bank under it.
//!
//! The rendering is a pure function of a [`DashboardFrame`] so tests can
//! assert on the output without a terminal.

use semtm_core::{Algorithm, ConflictEdge, Stm, StmConfig, TelemetryLevel};
use semtm_workloads::bank;
use std::fmt::Write as _;
use std::time::Duration;

/// One refresh tick's worth of dashboard state.
#[derive(Clone, Debug, Default)]
pub struct DashboardFrame {
    /// Seconds since the run started.
    pub elapsed_secs: f64,
    /// Commits in the last tick.
    pub tick_commits: u64,
    /// Conflict aborts in the last tick.
    pub tick_aborts: u64,
    /// Throughput over the last tick, tx/s.
    pub throughput_tps: f64,
    /// Abort percentage over the last tick.
    pub abort_pct: f64,
    /// Recent per-tick throughputs, oldest first (sparkline input).
    pub history_tps: Vec<f64>,
    /// Hottest conflict addresses `(heap index, estimated conflicts)`.
    pub hot: Vec<(u64, u64)>,
    /// Who-aborted-whom edges, most frequent first.
    pub edges: Vec<ConflictEdge>,
    /// Flight-recorder spans currently retained.
    pub spans: usize,
    /// Spans evicted from the rings so far.
    pub spans_evicted: u64,
}

/// Map a series onto a block-character sparkline.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                BARS[0]
            } else {
                let idx = ((v / max) * (BARS.len() - 1) as f64).round() as usize;
                BARS[idx.min(BARS.len() - 1)]
            }
        })
        .collect()
}

/// Render one frame as plain text (no ANSI — the caller owns cursor
/// control). Fixed layout, one logical panel per line group.
pub fn render(algorithm: Algorithm, threads: usize, frame: &DashboardFrame) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "semtm flight recorder — {} | {} threads | t = {:6.2}s",
        algorithm.name(),
        threads,
        frame.elapsed_secs
    );
    let _ = writeln!(
        out,
        "throughput {:>10.0} tx/s   abort {:5.1}%   tick: {} commits / {} aborts",
        frame.throughput_tps, frame.abort_pct, frame.tick_commits, frame.tick_aborts
    );
    let _ = writeln!(out, "history    {}", sparkline(&frame.history_tps));
    let _ = writeln!(
        out,
        "spans      {} retained, {} evicted",
        frame.spans, frame.spans_evicted
    );
    out.push_str("hot addresses:\n");
    if frame.hot.is_empty() {
        out.push_str("  (no attributed conflicts yet)\n");
    }
    for (addr, n) in frame.hot.iter().take(5) {
        let _ = writeln!(out, "  addr {addr:>8}  ~{n} conflicts");
    }
    out.push_str("who aborted whom:\n");
    if frame.edges.is_empty() {
        out.push_str("  (no attributed committers yet)\n");
    }
    for e in frame.edges.iter().take(5) {
        let _ = writeln!(
            out,
            "  thread {:>3} aborted by thread {:>3}  x{}",
            e.victim, e.by, e.count
        );
    }
    out
}

/// Build a frame from the runtime's telemetry plus the tick sample.
pub fn frame_from(
    stm: &Stm,
    elapsed: Duration,
    point: &semtm_core::SamplePoint,
    history_tps: &[f64],
) -> DashboardFrame {
    let t = stm.telemetry();
    DashboardFrame {
        elapsed_secs: elapsed.as_secs_f64(),
        tick_commits: point.commits,
        tick_aborts: point.conflict_aborts,
        throughput_tps: point.throughput,
        abort_pct: point.abort_pct,
        history_tps: history_tps.to_vec(),
        hot: t
            .hot_addresses()
            .into_iter()
            .map(|(a, n)| (a.index() as u64, n))
            .collect(),
        edges: t.conflict_edges(),
        spans: t.span_events().len(),
        spans_evicted: t.spans_evicted(),
    }
}

/// Drive the skewed Bank for `duration`, repainting the dashboard every
/// `refresh` on stdout. Returns the final frame (also painted).
pub fn run_bank_dashboard(
    algorithm: Algorithm,
    threads: usize,
    duration: Duration,
    refresh: Duration,
    seed: u64,
) -> DashboardFrame {
    let cfg = bank::BankConfig {
        accounts: 64,
        skew_accounts: 4,
        ..bank::BankConfig::default()
    };
    let stm = Stm::new(
        StmConfig::new(algorithm)
            .heap_words(1 << 12)
            .orec_count(1 << 10)
            .telemetry(TelemetryLevel::Spans),
    );
    let mut history = Vec::new();
    let mut last = DashboardFrame::default();
    // Clear once, then repaint from the home position each tick.
    print!("\x1b[2J");
    bank::run_observed(
        &stm,
        cfg,
        threads,
        duration,
        refresh,
        seed,
        |elapsed, point| {
            history.push(point.throughput);
            let keep = history.len().saturating_sub(40);
            let frame = frame_from(&stm, elapsed, point, &history[keep..]);
            print!("\x1b[H\x1b[J{}", render(algorithm, threads, &frame));
            last = frame;
        },
    );
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_max() {
        let s = sparkline(&[0.0, 50.0, 100.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁", "all-zero history is flat");
    }

    #[test]
    fn render_mentions_every_panel() {
        let frame = DashboardFrame {
            elapsed_secs: 1.5,
            tick_commits: 100,
            tick_aborts: 7,
            throughput_tps: 1234.0,
            abort_pct: 6.5,
            history_tps: vec![100.0, 1234.0],
            hot: vec![(17, 9)],
            edges: vec![ConflictEdge {
                victim: 2,
                by: 3,
                count: 4,
            }],
            spans: 12,
            spans_evicted: 0,
        };
        let text = render(Algorithm::SNOrec, 4, &frame);
        assert!(text.contains("S-NOrec"));
        assert!(text.contains("addr       17"));
        assert!(text.contains("thread   2 aborted by thread   3"));
        assert!(text.contains("12 retained"));
        assert!(!text.contains('\x1b'), "render itself is ANSI-free");
    }

    #[test]
    fn frames_populate_from_a_live_run() {
        // Headless end-to-end: observe a short skewed run without
        // painting, then check the telemetry made it into the frame.
        let cfg = bank::BankConfig {
            accounts: 64,
            skew_accounts: 4,
            ..bank::BankConfig::default()
        };
        let stm = Stm::new(
            StmConfig::new(Algorithm::SNOrec)
                .heap_words(1 << 12)
                .telemetry(TelemetryLevel::Spans),
        );
        let mut frames = Vec::new();
        let mut history = Vec::new();
        bank::run_observed(
            &stm,
            cfg,
            4,
            Duration::from_millis(80),
            Duration::from_millis(10),
            5,
            |elapsed, point| {
                history.push(point.throughput);
                frames.push(frame_from(&stm, elapsed, point, &history));
            },
        );
        assert!(frames.len() >= 3);
        let last = frames.last().unwrap();
        assert!(last.spans > 0, "flight recorder must have spans");
        let text = render(Algorithm::SNOrec, 4, last);
        assert!(text.contains("semtm flight recorder"));
    }
}
