//! Hashtable-with-open-addressing micro-benchmark (paper §3.1
//! Algorithm 2 and §7.1).
//!
//! The probing loop checks *semantics*, not values: a probed cell only
//! needs to be "not FREE and (REMOVED or holding a different key)" for
//! the probe to continue. Written with the classical API every probed
//! cell lands in the read-set by value and any concurrent insertion
//! aborts the prober; with the TM-friendly constructs each check is a
//! `cmp` that stays valid as long as its outcome holds.
//!
//! Layout: two parallel arrays, `states` (FREE / USED / REMOVED) and
//! `keys`. Linear probing with a fixed stride.

use crate::driver::{run_fixed_work, run_for_duration, RunResult};
use semtm_core::util::SplitMix64;
use semtm_core::{Abort, CmpOp, Stm, TArray, Tx};
use std::time::Duration;

/// Cell state: empty, never used.
pub const FREE: i64 = 0;
/// Cell state: holds a live key.
pub const USED: i64 = 1;
/// Cell state: tombstone.
pub const REMOVED: i64 = 2;

/// Hashtable configuration.
#[derive(Clone, Copy, Debug)]
pub struct HashtableConfig {
    /// Number of cells (rounded up to a power of two).
    pub capacity: usize,
    /// Fraction (percent) of cells pre-filled with live keys.
    pub fill_pct: u32,
    /// Fraction (percent) of cells pre-filled with tombstones — these
    /// lengthen probe chains, which is what gives the benchmark its long
    /// read (resp. compare) sequences in Table 3.
    pub tombstone_pct: u32,
    /// Operations per transaction (the paper uses 10 set/get ops).
    pub ops_per_tx: usize,
    /// Percent of operations that are `get` (the rest alternate
    /// insert/remove to keep occupancy stable).
    pub get_pct: u32,
    /// Key universe size (keys are drawn from `1..=key_space`).
    pub key_space: u64,
    /// Line-stripe both cell arrays ([`TArray::new_striped`]): one cell
    /// per cache line, so probes over neighbouring cells never share a
    /// line and, under a sharded commit clock, spread across shards.
    /// Costs 16× the heap words.
    pub padded: bool,
}

impl Default for HashtableConfig {
    fn default() -> Self {
        HashtableConfig {
            capacity: 1 << 12,
            fill_pct: 40,
            tombstone_pct: 40,
            ops_per_tx: 10,
            get_pct: 80,
            key_space: 1 << 14,
            padded: false,
        }
    }
}

/// Open-addressing hash set over the transactional heap.
pub struct Hashtable {
    states: TArray<i64>,
    keys: TArray<i64>,
    mask: usize,
    config: HashtableConfig,
}

impl Hashtable {
    /// Allocate and pre-populate the table. Pre-population goes through
    /// the same probe discipline as live insertions (so every key stays
    /// reachable from its home bucket), then tombstones a slice of the
    /// inserted keys to lengthen probe chains.
    pub fn new(stm: &Stm, config: HashtableConfig) -> Hashtable {
        let cap = config.capacity.next_power_of_two();
        let alloc = |init: i64| {
            if config.padded {
                TArray::new_striped(stm, cap, init)
            } else {
                TArray::new(stm, cap, init)
            }
        };
        let table = Hashtable {
            states: alloc(FREE),
            keys: alloc(0),
            mask: cap - 1,
            config,
        };
        let mut rng = SplitMix64::new(0xBEEF);
        assert!(
            config.fill_pct + config.tombstone_pct < 95,
            "prepopulation must leave free cells"
        );
        let live = cap * config.fill_pct as usize / 100;
        let tombs = cap * config.tombstone_pct as usize / 100;
        let mut seeded: Vec<i64> = Vec::with_capacity(live + tombs);
        let mut used = std::collections::HashSet::new();
        while seeded.len() < live + tombs {
            let key = 1 + rng.below(config.key_space) as i64;
            if !used.insert(key) {
                continue;
            }
            // Probe-respecting quiescent insert.
            let mut idx = table.bucket(key);
            while table.states.read_now(stm, idx) == USED {
                idx = (idx + 1) & table.mask;
            }
            table.states.write_now(stm, idx, USED);
            table.keys.write_now(stm, idx, key);
            seeded.push(key);
        }
        // Tombstone the first `tombs` seeded keys (probe-respecting
        // remove), leaving long REMOVED runs in the chains.
        for &key in seeded.iter().take(tombs) {
            let mut idx = table.bucket(key);
            loop {
                let st = table.states.read_now(stm, idx);
                if st == FREE {
                    break; // unreachable in practice: key was inserted
                }
                if st == USED && table.keys.read_now(stm, idx) == key {
                    table.states.write_now(stm, idx, REMOVED);
                    break;
                }
                idx = (idx + 1) & table.mask;
            }
        }
        table
    }

    #[inline]
    fn bucket(&self, key: i64) -> usize {
        semtm_core::util::hash_u32(key as u32) as usize & self.mask
    }

    /// Algorithm 2's probe: find the cell holding `key`, or `None` if a
    /// FREE cell terminates the chain first. Every check is a semantic
    /// `cmp` (delegated to reads under the baselines).
    pub fn probe_find(&self, tx: &mut Tx<'_>, key: i64) -> Result<Option<usize>, Abort> {
        let mut index = self.bucket(key);
        let mut steps = 0;
        // while states[i] != FREE && (states[i] == REMOVED || keys[i] != key)
        while tx.cmp(self.states.addr(index), CmpOp::Neq, FREE)?
            && (tx.cmp(self.states.addr(index), CmpOp::Eq, REMOVED)?
                || tx.cmp(self.keys.addr(index), CmpOp::Neq, key)?)
        {
            index = (index + 1) & self.mask;
            steps += 1;
            if steps > self.mask {
                return Ok(None); // full cycle: key absent, table saturated
            }
        }
        // return states[index] == FREE ? -1 : index
        if tx.cmp(self.states.addr(index), CmpOp::Eq, FREE)? {
            Ok(None)
        } else {
            Ok(Some(index)) // cell is USED and holds `key`
        }
    }

    /// Membership test.
    pub fn contains(&self, tx: &mut Tx<'_>, key: i64) -> Result<bool, Abort> {
        Ok(self.probe_find(tx, key)?.is_some())
    }

    /// Insert `key`; returns false if it was already present. The probe
    /// for an insertion slot accepts FREE or REMOVED cells.
    pub fn insert(&self, tx: &mut Tx<'_>, key: i64) -> Result<bool, Abort> {
        if self.probe_find(tx, key)?.is_some() {
            return Ok(false);
        }
        let mut index = self.bucket(key);
        let mut steps = 0;
        // First non-USED cell takes the key.
        while tx.cmp(self.states.addr(index), CmpOp::Eq, USED)? {
            index = (index + 1) & self.mask;
            steps += 1;
            if steps > self.mask {
                return Ok(false); // table full
            }
        }
        tx.write(self.states.addr(index), USED)?;
        tx.write(self.keys.addr(index), key)?;
        Ok(true)
    }

    /// Remove `key`; returns whether it was present. Leaves a tombstone.
    pub fn remove(&self, tx: &mut Tx<'_>, key: i64) -> Result<bool, Abort> {
        match self.probe_find(tx, key)? {
            None => Ok(false),
            Some(index) => {
                tx.write(self.states.addr(index), REMOVED)?;
                Ok(true)
            }
        }
    }

    /// One workload transaction: `ops_per_tx` get/insert/remove calls.
    pub fn workload_tx(&self, stm: &Stm, rng: &mut SplitMix64) {
        let mut plan: Vec<(u8, i64)> = Vec::with_capacity(self.config.ops_per_tx);
        for _ in 0..self.config.ops_per_tx {
            let key = 1 + rng.below(self.config.key_space) as i64;
            let kind = if rng.below(100) < self.config.get_pct as u64 {
                0
            } else if rng.chance(50) {
                1
            } else {
                2
            };
            plan.push((kind, key));
        }
        stm.atomic(|tx| {
            for &(kind, key) in &plan {
                match kind {
                    0 => {
                        let _ = self.contains(tx, key)?;
                    }
                    1 => {
                        let _ = self.insert(tx, key)?;
                    }
                    _ => {
                        let _ = self.remove(tx, key)?;
                    }
                }
            }
            Ok(())
        });
    }

    /// Quiescent occupancy census: (used, removed, free).
    pub fn census(&self, stm: &Stm) -> (usize, usize, usize) {
        let mut used = 0;
        let mut removed = 0;
        let mut free = 0;
        for i in 0..=self.mask {
            match self.states.read_now(stm, i) {
                USED => used += 1,
                REMOVED => removed += 1,
                _ => free += 1,
            }
        }
        (used, removed, free)
    }

    /// Quiescent check: every USED cell is reachable from its key's home
    /// bucket without crossing a FREE cell (open-addressing integrity).
    pub fn verify(&self, stm: &Stm) -> Result<(), String> {
        for i in 0..=self.mask {
            if self.states.read_now(stm, i) != USED {
                continue;
            }
            let key = self.keys.read_now(stm, i);
            let mut index = self.bucket(key);
            let mut ok = false;
            for _ in 0..=self.mask {
                if index == i {
                    ok = true;
                    break;
                }
                if self.states.read_now(stm, index) == FREE {
                    break;
                }
                index = (index + 1) & self.mask;
            }
            if !ok {
                return Err(format!("key {key} at cell {i} unreachable from its bucket"));
            }
        }
        Ok(())
    }
}

/// Measured run for the figure harness.
pub fn run(
    stm: &Stm,
    config: HashtableConfig,
    threads: usize,
    duration: Duration,
    seed: u64,
) -> RunResult {
    let table = Hashtable::new(stm, config);
    let r = run_for_duration(stm, threads, duration, seed, |_tid, rng| {
        table.workload_tx(stm, rng);
    });
    table.verify(stm).expect("hashtable integrity violated");
    r
}

/// Fixed-work run: exactly `total_ops` workload transactions split
/// across `threads`. Pre-population is non-transactional (`write_now`),
/// so `stats.commits == total_ops` holds exactly.
pub fn run_fixed(
    stm: &Stm,
    config: HashtableConfig,
    threads: usize,
    total_ops: u64,
    seed: u64,
) -> RunResult {
    let table = Hashtable::new(stm, config);
    let r = run_fixed_work(stm, threads, total_ops, seed, |_tid, _i, rng| {
        table.workload_tx(stm, rng);
    });
    table.verify(stm).expect("hashtable integrity violated");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::{Algorithm, StmConfig};

    fn small_stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 16).orec_count(1 << 10))
    }

    fn empty_table(stm: &Stm) -> Hashtable {
        Hashtable::new(
            stm,
            HashtableConfig {
                capacity: 64,
                fill_pct: 0,
                tombstone_pct: 0,
                ..HashtableConfig::default()
            },
        )
    }

    #[test]
    fn insert_lookup_remove_cycle() {
        for alg in Algorithm::ALL {
            let s = small_stm(alg);
            let t = empty_table(&s);
            assert!(s.atomic(|tx| t.insert(tx, 42)));
            assert!(!s.atomic(|tx| t.insert(tx, 42)), "double insert");
            assert!(s.atomic(|tx| t.contains(tx, 42)));
            assert!(!s.atomic(|tx| t.contains(tx, 43)));
            assert!(s.atomic(|tx| t.remove(tx, 42)));
            assert!(!s.atomic(|tx| t.contains(tx, 42)));
            assert!(!s.atomic(|tx| t.remove(tx, 42)), "{alg}: double remove");
            t.verify(&s).unwrap();
        }
    }

    #[test]
    fn probe_walks_over_tombstones() {
        let s = small_stm(Algorithm::SNOrec);
        let t = empty_table(&s);
        // Force a chain: occupy the key's home bucket with another key.
        let key = 7i64;
        let home = t.bucket(key);
        t.states.write_now(&s, home, REMOVED);
        assert!(s.atomic(|tx| t.insert(tx, key)));
        assert!(s.atomic(|tx| t.contains(tx, key)));
        // The key must not sit in a tombstone-free home if REMOVED was
        // reusable — either reused or next cell; both are valid as long
        // as verify() passes.
        t.verify(&s).unwrap();
    }

    #[test]
    fn prepopulation_respects_percentages_roughly() {
        let s = small_stm(Algorithm::Tl2);
        let t = Hashtable::new(
            &s,
            HashtableConfig {
                capacity: 1 << 10,
                fill_pct: 40,
                tombstone_pct: 40,
                ..HashtableConfig::default()
            },
        );
        let (used, removed, free) = t.census(&s);
        let cap = (t.mask + 1) as f64;
        assert!((used as f64 / cap - 0.4).abs() < 0.1, "used {used}");
        assert!(
            (removed as f64 / cap - 0.4).abs() < 0.1,
            "removed {removed}"
        );
        assert!(free > 0);
    }

    #[test]
    fn semantic_mode_turns_probes_into_compares() {
        let s = small_stm(Algorithm::SNOrec);
        let t = Hashtable::new(
            &s,
            HashtableConfig {
                capacity: 256,
                ..HashtableConfig::default()
            },
        );
        let mut rng = SplitMix64::new(9);
        for _ in 0..20 {
            t.workload_tx(&s, &mut rng);
        }
        let st = s.stats();
        assert_eq!(st.reads, 0, "all probe reads must become compares");
        assert!(st.cmps_per_tx() > 10.0);
    }

    #[test]
    fn padded_table_keeps_integrity_under_sharded_clock() {
        // The ablation's "sharded+padded" cell: striped cell arrays on a
        // 16-shard commit clock. Striping costs 16× heap, so the heap is
        // sized at capacity × stride × 2 arrays plus slack.
        for alg in [Algorithm::NOrec, Algorithm::SNOrec] {
            let s = Stm::new(
                StmConfig::new(alg)
                    .heap_words(512 * 16 * 2 + 256)
                    .orec_count(1 << 10)
                    .clock_shards(16),
            );
            let r = run(
                &s,
                HashtableConfig {
                    capacity: 512,
                    padded: true,
                    ..HashtableConfig::default()
                },
                4,
                Duration::from_millis(80),
                23,
            );
            assert!(r.total_ops > 0, "{alg}");
        }
    }

    #[test]
    fn concurrent_mixed_ops_keep_integrity() {
        for alg in [Algorithm::SNOrec, Algorithm::STl2] {
            let s = small_stm(alg);
            let r = run(
                &s,
                HashtableConfig {
                    capacity: 512,
                    ..HashtableConfig::default()
                },
                4,
                Duration::from_millis(80),
                17,
            );
            assert!(r.total_ops > 0, "{alg}");
        }
    }
}
