//! Read-heavy scan workload: the third leg of the A7 phase-shift
//! ablation (alongside Bank and the hot Hashtable).
//!
//! Each transaction reads a contiguous window of data cells, publishes
//! the observed sum into one of a few summary slots, and occasionally
//! increments one scanned cell (a semantic `TM_INC`). The profile is
//! the inverse of Bank's: a large read-set with a one-or-two-word
//! write-set — the regime where a single global commit clock forces
//! every reader to revalidate its whole window on every commit, while a
//! sharded clock localises the damage to the one or two shards a commit
//! actually moved.
//!
//! Invariants (cells only ever grow, one increment per writing tx):
//! * conservation — `Σ cells == cells·initial_value + total increments`;
//! * snapshot consistency — every published sum lies in
//!   `[window·initial_value, window·initial_value + total increments]`;
//!   a torn scan (half old, half new values of a moving window) can
//!   land outside only by observing an inconsistent snapshot.

use crate::driver::{run_for_duration, RunResult};
use semtm_core::util::SplitMix64;
use semtm_core::{Stm, TArray};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Scan configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScanConfig {
    /// Number of data cells.
    pub cells: usize,
    /// Cells read (contiguously, wrapping) per transaction.
    pub reads_per_tx: usize,
    /// Summary slots the observed sums are published into.
    pub summary_slots: usize,
    /// Per-mille probability that a transaction also increments one
    /// scanned cell (the workload's only mutation of the data).
    pub inc_per_mille: u32,
    /// Initial value of every data cell (nonzero keeps the published
    /// sum bound meaningful).
    pub initial_value: i64,
    /// Line-stripe both arrays ([`TArray::new_striped`]) so cells land
    /// on distinct cache lines and, under a sharded commit clock,
    /// distinct shards. Costs 16× the heap words.
    pub padded: bool,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            cells: 256,
            reads_per_tx: 64,
            summary_slots: 16,
            inc_per_mille: 150,
            initial_value: 1,
            padded: false,
        }
    }
}

/// Shared scan state over a transactional heap.
pub struct Scan {
    cells: TArray<i64>,
    summaries: TArray<i64>,
    config: ScanConfig,
}

impl Scan {
    /// Allocate and initialise the arrays on `stm`'s heap.
    pub fn new(stm: &Stm, config: ScanConfig) -> Scan {
        let (cells, summaries) = if config.padded {
            (
                TArray::new_striped(stm, config.cells, config.initial_value),
                TArray::new_striped(stm, config.summary_slots, 0),
            )
        } else {
            (
                TArray::new(stm, config.cells, config.initial_value),
                TArray::new(stm, config.summary_slots, 0),
            )
        };
        Scan {
            cells,
            summaries,
            config,
        }
    }

    /// One workload transaction: scan a window, publish its sum, maybe
    /// increment one scanned cell. Returns 1 if the increment ran.
    pub fn scan_tx(&self, stm: &Stm, rng: &mut SplitMix64) -> u64 {
        let n = self.config.cells;
        let window = self.config.reads_per_tx.min(n);
        let start = rng.index(n);
        let slot = rng.index(self.config.summary_slots);
        let bump = if rng.below(1000) < self.config.inc_per_mille as u64 {
            Some((start + rng.index(window.max(1))) % n)
        } else {
            None
        };
        stm.atomic(|tx| {
            let mut sum = 0i64;
            for k in 0..window {
                sum += self.cells.read(tx, (start + k) % n)?;
            }
            self.summaries.write(tx, slot, sum)?;
            if let Some(i) = bump {
                self.cells.inc(tx, i, 1)?;
            }
            Ok(u64::from(bump.is_some()))
        })
    }

    /// Quiescent check of both invariants given the total number of
    /// increments the committed workload performed.
    pub fn verify(&self, stm: &Stm, total_incs: u64) -> Result<(), String> {
        let cfg = &self.config;
        let total: i64 = (0..cfg.cells).map(|i| self.cells.read_now(stm, i)).sum();
        let expected = cfg.cells as i64 * cfg.initial_value + total_incs as i64;
        if total != expected {
            return Err(format!("cell total {total} != expected {expected}"));
        }
        let window = cfg.reads_per_tx.min(cfg.cells) as i64;
        let lo = window * cfg.initial_value;
        let hi = lo + total_incs as i64;
        for s in 0..cfg.summary_slots {
            let v = self.summaries.read_now(stm, s);
            if v != 0 && !(lo..=hi).contains(&v) {
                return Err(format!(
                    "summary slot {s} holds {v}, outside consistent range [{lo}, {hi}]"
                ));
            }
        }
        Ok(())
    }
}

/// Measured run for the figure harness.
pub fn run(
    stm: &Stm,
    config: ScanConfig,
    threads: usize,
    duration: Duration,
    seed: u64,
) -> RunResult {
    let scan = Scan::new(stm, config);
    let incs = AtomicU64::new(0);
    let r = run_for_duration(stm, threads, duration, seed, |_tid, rng| {
        incs.fetch_add(scan.scan_tx(stm, rng), Ordering::Relaxed);
    });
    scan.verify(stm, incs.load(Ordering::Relaxed))
        .expect("scan invariants violated");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::{Algorithm, StmConfig};

    fn small_stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 14).orec_count(1 << 10))
    }

    #[test]
    fn scan_preserves_invariants_on_all_algorithms() {
        for alg in Algorithm::ALL {
            let stm = small_stm(alg);
            let cfg = ScanConfig {
                cells: 64,
                reads_per_tx: 16,
                ..ScanConfig::default()
            };
            let r = run(&stm, cfg, 2, Duration::from_millis(30), 7);
            assert!(r.total_ops > 0, "{alg:?} made no progress");
        }
    }

    #[test]
    fn scan_profile_is_read_dominated() {
        let stm = small_stm(Algorithm::SNOrec);
        let cfg = ScanConfig {
            cells: 64,
            reads_per_tx: 32,
            ..ScanConfig::default()
        };
        let r = run(&stm, cfg, 1, Duration::from_millis(30), 3);
        let reads = r.stats.reads;
        let writes = r.stats.writes + r.stats.incs;
        assert!(
            reads > writes * 8,
            "expected read-heavy profile, got {reads} reads vs {writes} writes"
        );
    }

    #[test]
    fn torn_sums_are_reported() {
        let stm = small_stm(Algorithm::SNOrec);
        let scan = Scan::new(&stm, ScanConfig::default());
        // Forge an impossible published sum (larger than any consistent
        // snapshot allows) and check verify() rejects it.
        let mut rng = SplitMix64::new(1);
        let incs = scan.scan_tx(&stm, &mut rng);
        scan.summaries.write_now(&stm, 0, i64::MAX / 2);
        assert!(scan.verify(&stm, incs).is_err());
    }

    #[test]
    fn padded_layout_matches_flat_semantics() {
        let stm = small_stm(Algorithm::STl2);
        let cfg = ScanConfig {
            cells: 32,
            reads_per_tx: 8,
            padded: true,
            ..ScanConfig::default()
        };
        let r = run(&stm, cfg, 2, Duration::from_millis(30), 11);
        assert!(r.total_ops > 0);
    }
}
