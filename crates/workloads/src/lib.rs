//! # semtm-workloads — the paper's benchmark applications
//!
//! Rust ports of every workload evaluated in *"Extending TM Primitives
//! using Low Level Semantics"* (SPAA 2016), §7:
//!
//! * micro-benchmarks: [`bank`], [`hashtable`] (open addressing, paper
//!   Algorithm 2), [`lru`], the read-heavy [`scan`] of ablation A7,
//!   plus the [`queue`] of Algorithm 3;
//! * STAMP ports under [`stamp`]: Vacation, Kmeans, Labyrinth (plain and
//!   the optimised variant of Ruan et al.), Yada, and the reduced
//!   Genome / Intruder / SSCA2 kernels used for Table 3's operation
//!   profiles.
//!
//! Every workload is written once against the extended TM API; the
//! baseline algorithms transparently delegate semantic calls to plain
//! reads/writes, so the same source produces both the "base" and
//! "semantic" columns of Table 3.
//!
//! The [`driver`] module provides the thread/timing harness shared by the
//! figure generators in `semtm-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod driver;
pub mod hashtable;
pub mod lru;
pub mod queue;
pub mod scan;
pub mod stamp;
